"""Quickstart: simulate the HSPA+-like link with and without memory defects.

Runs a handful of packets through the full chain (CRC, turbo coding, rate
matching, 64QAM, multipath channel, MMSE equalization, HARQ with soft
combining) twice — once with a defect-free HARQ LLR memory and once with a
10 % defect rate — and prints the throughput / retransmission comparison.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import NoProtection, SystemLevelFaultSimulator
from repro.link import LinkConfig


def main() -> None:
    """Run the quickstart comparison and print a small report."""
    config = LinkConfig(payload_bits=296, crc_bits=16, turbo_iterations=5)
    print("Link configuration:", config.describe())
    print(f"HARQ LLR storage: {config.llr_storage_cells} SRAM cells")
    print()

    simulator = SystemLevelFaultSimulator(
        config, NoProtection(bits_per_word=config.llr_bits), num_fault_maps=2
    )
    snr_db = 20.0
    num_packets = 24

    clean = simulator.evaluate_defect_rate(snr_db, 0.0, num_packets, rng=1)
    faulty = simulator.evaluate_defect_rate(snr_db, 0.10, num_packets, rng=1)

    print(f"At {snr_db:.0f} dB with {num_packets} packets:")
    for label, point in (("defect-free", clean), ("10% defects", faulty)):
        print(
            f"  {label:>12}: throughput={point.normalized_throughput:.2f}  "
            f"avg transmissions={point.average_transmissions:.2f}  "
            f"residual BLER={point.block_error_rate:.2f}"
        )
    print()
    print(
        "The unprotected memory still delivers packets at a 10% defect rate, "
        "but needs more HARQ retransmissions — the inherent error resilience "
        "the paper exploits."
    )


if __name__ == "__main__":
    main()
