"""Trace a single packet's HARQ lifetime through the full link.

Shows the substrate in isolation (no fault injection): one packet is encoded,
transmitted over independent multipath realisations, equalized, soft-demapped,
combined in the HARQ buffer and turbo-decoded until the CRC passes — printing
what happened after every transmission, for three SNR regimes.

Run with::

    python examples/harq_link_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.link import HspaLikeLink, LinkConfig


def main() -> None:
    """Trace one packet per SNR regime and print its retransmission history."""
    config = LinkConfig(payload_bits=296, crc_bits=16, turbo_iterations=6)
    link = HspaLikeLink(config)
    print("Link configuration:", config.describe())
    print()

    for snr_db in (10.0, 18.0, 26.0):
        result = link.simulate_single_packet(snr_db, rng=int(snr_db))
        history = ", ".join(
            f"Tx{i + 1}: {'NACK' if failed else 'ACK'}"
            for i, failed in enumerate(result.failure_history)
        )
        outcome = "delivered" if result.success else "dropped after HARQ budget"
        print(
            f"SNR {snr_db:4.1f} dB -> {outcome} in {result.num_transmissions} "
            f"transmission(s)  [{history}]"
        )
    print()
    print(
        "Low SNR packets lean on HARQ retransmissions and soft combining; high "
        "SNR packets decode on the first attempt — the behaviour of Fig. 2."
    )


if __name__ == "__main__":
    main()
