"""Yield / voltage-scaling trade-off for the HARQ LLR memory.

Walks the circuit side of the paper's methodology:

1. the cell failure probability of 6T / upsized-6T / 8T cells versus supply
   voltage (Fig. 3);
2. the yield of the LLR storage when dies with up to ``Nf`` faulty cells are
   accepted (Eq. 2 / Fig. 5); and
3. the lowest supply voltage — and resulting power saving — admissible for a
   given defect budget and yield target (Section 6.3).

Run with::

    python examples/yield_voltage_tradeoff.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.protection import MsbProtection, NoProtection
from repro.core.voltage import VoltageScalingAnalysis
from repro.experiments import fig3_cell_failure, fig5_yield
from repro.link import LinkConfig


def main() -> None:
    """Print the three stages of the circuit-level analysis."""
    print("=== Cell failure probability vs supply voltage (Fig. 3) ===")
    fig3_cell_failure.run(voltages=np.arange(0.6, 1.01, 0.1)).print()
    print()

    print("=== Defects to accept for a 95% yield target (Fig. 5) ===")
    fig5_yield.run()["targets"].print()
    print()

    print("=== Minimum voltage and power saving for the HARQ memory (Section 6.3) ===")
    config = LinkConfig(payload_bits=296, crc_bits=16)
    for protection, defect_budget in (
        (NoProtection(bits_per_word=config.llr_bits), 0.001),
        (MsbProtection(bits_per_word=config.llr_bits, protected_msbs=4), 0.10),
    ):
        analysis = VoltageScalingAnalysis(config.llr_storage_words, protection)
        point = analysis.min_voltage_for_defect_budget(defect_budget)
        saving = analysis.power_saving_versus_nominal(point.vdd)
        print(
            f"  {protection.name:>16}: tolerates {defect_budget:>5.1%} defects "
            f"-> min Vdd {point.vdd:.3f} V, power saving {saving:.0%}, "
            f"area overhead {protection.area_overhead():.0%}"
        )


if __name__ == "__main__":
    main()
