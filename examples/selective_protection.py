"""Preferential (MSB) protection of the HARQ LLR storage.

Reproduces the Section 6 design exploration on a small scale:

1. rank the stored LLR bit positions by how much a flip perturbs the LLR
   (the sign bit dominates);
2. compare throughput at a 10 % defect rate for the unprotected array, the
   4-MSB-protected hybrid array and the fully protected array; and
3. report the area overhead each option costs.

Run with::

    python examples/selective_protection.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    BitSensitivityAnalysis,
    FullCellProtection,
    MsbProtection,
    NoProtection,
    SystemLevelFaultSimulator,
)
from repro.link import LinkConfig


def main() -> None:
    """Run the preferential-storage exploration and print the comparison."""
    config = LinkConfig(payload_bits=296, crc_bits=16, turbo_iterations=5)
    snr_db = 20.0
    defect_rate = 0.10
    num_packets = 16

    print("=== Bit-position sensitivity of the stored LLR words ===")
    sensitivity = BitSensitivityAnalysis(config.quantizer)
    for entry in sensitivity.analytical_perturbations():
        bar = "#" * max(1, int(40 * entry.worst_llr_perturbation / (2 * config.llr_max_abs)))
        print(
            f"  bit {entry.bit_position:2d}: worst LLR perturbation "
            f"{entry.worst_llr_perturbation:6.2f}  {bar}"
        )
    depth = sensitivity.recommended_protection_depth()
    print(f"  -> analytical recommendation: protect the {depth} most significant bits")
    print()

    print(f"=== Throughput at {snr_db:.0f} dB with {defect_rate:.0%} defects in fallible cells ===")
    schemes = [
        NoProtection(bits_per_word=config.llr_bits),
        MsbProtection(bits_per_word=config.llr_bits, protected_msbs=4),
        FullCellProtection(bits_per_word=config.llr_bits),
    ]
    for scheme in schemes:
        simulator = SystemLevelFaultSimulator(config, scheme, num_fault_maps=2)
        point = simulator.evaluate_defect_rate(snr_db, defect_rate, num_packets, rng=7)
        print(
            f"  {scheme.name:>16}: throughput={point.normalized_throughput:.2f}  "
            f"avg transmissions={point.average_transmissions:.2f}  "
            f"area overhead={scheme.area_overhead():.0%}"
        )
    print()
    print(
        "Protecting only the few most significant LLR bits recovers most of the "
        "throughput at a fraction of the all-8T area overhead — the paper's "
        "preferential storage result."
    )


if __name__ == "__main__":
    main()
