"""Joint choice of LLR quantization width and defect tolerance (Section 6.4).

Compares 10-, 11- and 12-bit LLR storage with and without a 10 % defect rate,
showing that the conventional "more bits are safer" rule inverts once
hardware faults scale with the memory size.

Run with::

    python examples/bitwidth_exploration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import BitWidthAnalysis
from repro.link import LinkConfig


def main() -> None:
    """Run the bit-width exploration and print the comparison table."""
    config = LinkConfig(payload_bits=296, crc_bits=16, turbo_iterations=5)
    analysis = BitWidthAnalysis(config, num_fault_maps=2)
    snr_points = (20.0, 26.0)
    widths = (10, 11, 12)
    num_packets = 16

    print("=== Defect-free reference ===")
    clean = analysis.sweep(widths, snr_points, 0.0, num_packets, rng=3)
    for point in clean:
        print(
            f"  {point.llr_bits:2d} bits @ {point.snr_db:4.1f} dB: "
            f"throughput={point.throughput:.2f} (storage {point.storage_cells} cells)"
        )
    print()

    print("=== With 10% defects, no protection ===")
    faulty = analysis.sweep(widths, snr_points, 0.10, num_packets, rng=3)
    for point in faulty:
        print(
            f"  {point.llr_bits:2d} bits @ {point.snr_db:4.1f} dB: "
            f"throughput={point.throughput:.2f}  faults={point.num_faults}"
        )
    best = analysis.best_width_per_snr(faulty)
    print()
    print("Best width per SNR under defects:", best)
    print(
        "Wider words enlarge the storage and accumulate more faults at the same "
        "defect rate, so the narrower quantization wins — circuit limitations "
        "belong in the quantization decision."
    )


if __name__ == "__main__":
    main()
