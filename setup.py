"""Setuptools shim enabling legacy editable installs (``pip install -e . --no-use-pep517``).

The environment used for reproduction has no network access and no ``wheel``
package, so PEP 517 editable installs (which build a wheel) are unavailable;
this shim lets ``setup.py develop`` handle the editable install instead.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
