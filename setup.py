"""Setuptools entry point: package metadata plus the optional native kernel.

The environment used for reproduction has no network access and no ``wheel``
package, so PEP 517 editable installs (which build a wheel) are unavailable;
``setup.py develop`` / ``build_ext --inplace`` handle installs and extension
builds instead.

The C extension is declared ``optional=True``: on a machine without a C
compiler the build degrades gracefully, the ``native`` decoder-backend
family simply reports itself unavailable and everything runs on the pure
numpy backends.  Build it in place for development with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, find_packages, setup

NATIVE_KERNEL = Extension(
    "repro.phy.turbo.backends._native._sisokernel",
    sources=["src/repro/phy/turbo/backends/_native/sisokernel.c"],
    depends=["src/repro/phy/turbo/backends/_native/sisokernel_impl.h"],
    extra_compile_args=["-O3"],
    optional=True,
)

setup(
    name="repro",
    version="0.9.0",
    description=(
        "Reproduction of an HSPA+ turbo-coded link over unreliable memory "
        "(DAC'12), with batched numpy and native decoder backends"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    ext_modules=[NATIVE_KERNEL],
)
