"""Benchmark regenerating Fig. 3 (cell failure probability vs supply voltage)."""

from repro.experiments import fig3_cell_failure


def test_fig3_cell_failure(benchmark, bench_scale, bench_seed):
    """Failure probability of 6T / upsized-6T / 8T cells over the voltage range."""
    table = benchmark(fig3_cell_failure.run, bench_scale, bench_seed)
    print()
    print(table.to_markdown())

    for row in table.rows:
        # Robustness ordering of the paper's Fig. 3 at every voltage.
        assert row["p_8t"] <= row["p_6t_upsized"] <= row["p_6t"]
    nominal = next(r for r in table.rows if abs(r["vdd"] - 1.0) < 1e-9)
    low = next(r for r in table.rows if abs(r["vdd"] - 0.5) < 1e-9)
    # Parametric failures grow by many orders of magnitude over 500 mV ...
    assert low["p_6t"] / max(nominal["p_6t"], 1e-300) > 1e6
    # ... while the soft-error rate only grows by ~3x per 500 mV.
    assert 2.0 < low["soft_error_rate"] / nominal["soft_error_rate"] < 4.0
