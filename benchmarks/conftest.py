"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation figures at the
``smoke`` scale (seconds per figure); the ``paper`` scale used for
EXPERIMENTS.md is selected by setting the ``REPRO_BENCH_SCALE`` environment
variable.
"""

import os
import sys
from pathlib import Path

import pytest

# Allow running the benchmarks from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Scale preset used by all benchmarks (override with REPRO_BENCH_SCALE)."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed shared by all benchmarks for reproducible figures."""
    return 2012
