"""Benchmark: wall-clock speedup of the parallel runner at 4 workers.

Runs a default-scale Fig. 6 workload (default-scale packet counts and
payload on a reduced sweep grid) serially and with 4 worker processes, and
asserts the parallel run is at least 2x faster.  Demonstrating a speedup
needs real cores, so the benchmark skips on machines with fewer than 4 CPUs
(set ``REPRO_FORCE_SPEEDUP=1`` to run — and still assert — regardless), and
the CI workflow excludes it (shared CI vCPUs make the wall-clock ratio
flaky); run it on a real >= 4-core machine.
"""

import os
import time

import pytest

from repro.experiments import fig6_throughput_vs_defects
from repro.experiments.scales import SCALES
from repro.runner.parallel import ParallelRunner

#: Reduced sweep grid: default-scale per-point cost, fewer points, so the
#: benchmark finishes in minutes rather than hours.
DEFECT_RATES = (0.0, 0.10)
SNR_POINTS_DB = (9.0, 15.0, 21.0, 27.0)
WORKERS = 4
REQUIRED_SPEEDUP = 2.0


def _run(workers: int):
    started = time.perf_counter()
    table = fig6_throughput_vs_defects.run(
        SCALES["default"],
        seed=2012,
        defect_rates=DEFECT_RATES,
        snr_points_db=SNR_POINTS_DB,
        runner=ParallelRunner(workers=workers),
    )
    return table, time.perf_counter() - started


def test_parallel_speedup_at_4_workers():
    forced = os.environ.get("REPRO_FORCE_SPEEDUP") == "1"
    cpus = os.cpu_count() or 1
    if cpus < WORKERS and not forced:
        pytest.skip(
            f"needs >= {WORKERS} CPUs to demonstrate a {REQUIRED_SPEEDUP:.0f}x speedup "
            f"(found {cpus}); set REPRO_FORCE_SPEEDUP=1 to run anyway"
        )

    serial_table, serial_seconds = _run(workers=1)
    parallel_table, parallel_seconds = _run(workers=WORKERS)
    speedup = serial_seconds / parallel_seconds

    print()
    print(f"serial:   {serial_seconds:8.2f} s")
    print(f"4-worker: {parallel_seconds:8.2f} s")
    print(f"speedup:  {speedup:8.2f}x")

    # Correctness first: parallelism must never change the numbers.
    assert serial_table.to_json() == parallel_table.to_json()
    assert speedup >= REQUIRED_SPEEDUP
