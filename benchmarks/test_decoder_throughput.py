"""Benchmarks: pipeline throughput per stage, backend and batch size.

``BENCH_decoder.json`` (the name is historical — it now covers the whole
pipeline) collects three sections: the turbo-decoder kernel comparison
below, the end-to-end llr-dtype link benchmark, and the link front-end
section (seed-serial vs batched transmit/channel/equalize/demap) produced
by :mod:`repro.runner.bench` / ``repro bench front-end``.

Decoder section:

Measures information bits decoded per second on a realistic mixed-noise
workload (rows from clean to garbage, like a Monte-Carlo sweep's decode
calls) for

* the **seed** kernel — a faithful copy of the pre-engine decoder, kept
  here as the fixed baseline,
* every available backend of the new engine (numpy, numpy-f32, plus numba /
  native / cupy when importable),

at the batch sizes that occur at smoke scale: 8 (one work-item chunk /
fault-map die) and 32 (the cross-work-item aggregated batch,
``DEFAULT_AGGREGATE_PACKETS``), plus 128 for headroom.  Results are written
to ``BENCH_decoder.json`` at the repository root; the committed copy is the
reference-container snapshot, and the non-gating ``decoder-bench`` CI job
regenerates and uploads it as an artifact per commit.

Set ``REPRO_BENCH_STRICT=1`` to also assert the engine's speedup targets —
numpy backend >= 3x the seed kernel at the aggregated batch sizes (>= 32)
and for the aggregated pipeline, >= 2.5x at batch 8 (measured ~3.1x; the
looser bound absorbs shared-machine jitter).  Kept opt-in because
wall-clock ratios are flaky on shared CI machines.
"""

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments.scales import SCALES
from repro.phy.turbo import TurboCode, TurboDecoder
from repro.phy.turbo.backends import available_backends
from repro.phy.turbo.interleaver import TurboInterleaver, make_turbo_interleaver
from repro.phy.turbo.trellis import RscTrellis, UMTS_TRELLIS
from repro.runner.tasks import DEFAULT_AGGREGATE_PACKETS

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_decoder.json"
BATCH_SIZES = (8, DEFAULT_AGGREGATE_PACKETS, 128)
REPEATS = 12
#: Per-row noise levels cycled through the batch: solid, moderate, hard,
#: hopeless — the convergence mix a sweep's decode calls actually see.
NOISE_SIGMAS = (0.8, 1.5, 2.2, 3.0)

_NEG_INF = -1e30


# --------------------------------------------------------------------------- #
# The seed decoder (pre-engine), preserved verbatim as the benchmark baseline.
# --------------------------------------------------------------------------- #
class _SeedSisoDecoder:
    def __init__(self, trellis: RscTrellis, block_size: int) -> None:
        self.trellis = trellis
        self.block_size = block_size
        self._parity_sign = 1.0 - 2.0 * trellis.parity.astype(np.float64)
        self._input_sign = np.array([1.0, -1.0])
        self._next_state = trellis.next_state
        self._prev_state = trellis.prev_state
        self._prev_input = trellis.prev_input

    def decode(self, sys_llrs, par_llrs, apriori_llrs, *, terminated_start=True):
        batch, k = sys_llrs.shape
        num_states = self.trellis.num_states
        combined = 0.5 * (sys_llrs + apriori_llrs)
        half_par = 0.5 * par_llrs

        alphas = np.empty((k + 1, batch, num_states), dtype=np.float64)
        alpha = np.full((batch, num_states), _NEG_INF)
        if terminated_start:
            alpha[:, 0] = 0.0
        else:
            alpha[:, :] = 0.0
        alphas[0] = alpha

        prev_state = self._prev_state
        prev_input = self._prev_input
        next_state = self._next_state
        parity_sign = self._parity_sign
        input_sign = self._input_sign
        in_sign_for_target = input_sign[prev_input]
        par_sign_for_target = parity_sign[prev_state, prev_input]

        for t in range(k):
            c = combined[:, t][:, None, None]
            p = half_par[:, t][:, None, None]
            branch = c * in_sign_for_target[None, :, :] + p * par_sign_for_target[None, :, :]
            candidates = alpha[:, prev_state] + branch
            alpha = candidates.max(axis=2)
            alpha -= alpha.max(axis=1, keepdims=True)
            alphas[t + 1] = alpha

        beta = np.zeros((batch, num_states), dtype=np.float64)
        app = np.empty((batch, k), dtype=np.float64)
        in_sign_from_state = input_sign[None, :]
        par_sign_from_state = parity_sign

        for t in range(k - 1, -1, -1):
            c = combined[:, t][:, None, None]
            p = half_par[:, t][:, None, None]
            branch = c * in_sign_from_state[None, :, :] + p * par_sign_from_state[None, :, :]
            beta_next = beta[:, next_state]
            metric = alphas[t][:, :, None] + branch + beta_next
            app[:, t] = metric[:, :, 0].max(axis=1) - metric[:, :, 1].max(axis=1)
            beta = (branch + beta_next).max(axis=2)
            beta -= beta.max(axis=1, keepdims=True)

        return app


class _SeedTurboDecoder:
    """The pre-engine iterative decoder (whole-batch early stopping)."""

    def __init__(self, block_size, num_iterations, interleaver: TurboInterleaver) -> None:
        self.block_size = block_size
        self.num_iterations = num_iterations
        self.extrinsic_scale = 0.75
        self.interleaver = interleaver
        self._siso = _SeedSisoDecoder(UMTS_TRELLIS, block_size)

    def decode(self, sys_llrs, par1, par2):
        batch, k = sys_llrs.shape
        perm = self.interleaver.permutation
        sys_interleaved = sys_llrs[:, perm]
        extrinsic12 = np.zeros((batch, k), dtype=np.float64)
        previous_hard = None
        app_llrs = sys_llrs.copy()
        for _iteration in range(self.num_iterations):
            apriori1 = np.zeros((batch, k), dtype=np.float64)
            apriori1[:, perm] = extrinsic12
            app1 = self._siso.decode(sys_llrs, par1, apriori1)
            extrinsic1 = self.extrinsic_scale * (app1 - sys_llrs - apriori1)
            apriori2 = extrinsic1[:, perm]
            app2 = self._siso.decode(sys_interleaved, par2, apriori2)
            extrinsic12 = self.extrinsic_scale * (app2 - sys_interleaved - apriori2)
            app_llrs = np.empty((batch, k), dtype=np.float64)
            app_llrs[:, perm] = app2
            hard = (app_llrs < 0).astype(np.int8)
            if previous_hard is not None and np.all(hard == previous_hard):
                break
            previous_hard = hard
        return (app_llrs < 0).astype(np.int8)


# --------------------------------------------------------------------------- #
@dataclass
class _Workload:
    block_size: int
    num_iterations: int
    interleaver: TurboInterleaver
    batches: dict = field(default_factory=dict)


def _build_workload() -> _Workload:
    scale = SCALES[os.environ.get("REPRO_BENCH_SCALE", "smoke")]
    config = scale.link_config()
    k = config.block_size
    code = TurboCode(k, num_iterations=scale.turbo_iterations)
    rng = np.random.default_rng(2012)
    workload = _Workload(
        block_size=k,
        num_iterations=scale.turbo_iterations,
        interleaver=code.encoder.interleaver,
    )
    for batch in BATCH_SIZES:
        rows = []
        for i in range(batch):
            bits = rng.integers(0, 2, k, dtype=np.int8)
            coded = code.encode(bits)
            noise = rng.normal(0.0, NOISE_SIGMAS[i % len(NOISE_SIGMAS)], coded.size)
            rows.append((1.0 - 2.0 * coded.astype(np.float64)) * 2.0 + noise)
        llrs = np.stack(rows)
        workload.batches[batch] = (
            llrs[:, :k],
            np.ascontiguousarray(llrs[:, k::2]),
            np.ascontiguousarray(llrs[:, k + 1 :: 2]),
        )
    return workload


def _throughput(decode, batch_inputs, block_size: int, batch: int) -> float:
    """Best-of-groups throughput: the minimum elapsed time over several
    timed groups is the least-noise estimate on a shared machine."""
    decode(*batch_inputs)  # warm-up (JIT compilation, workspace growth)
    best = float("inf")
    for _group in range(3):
        start = time.perf_counter()
        for _ in range(REPEATS):
            decode(*batch_inputs)
        best = min(best, (time.perf_counter() - start) / REPEATS)
    return batch * block_size / best


def test_decoder_throughput_benchmark():
    workload = _build_workload()
    k, iterations = workload.block_size, workload.num_iterations

    backends = ["numpy", "numpy-f32"]
    for optional in ("numba", "native", "native-f32", "cupy-f32"):
        if optional in available_backends():
            backends.append(optional)

    results = {"seed": {}}
    for name in backends:
        results[name] = {}

    for batch, inputs in workload.batches.items():
        seed_decoder = _SeedTurboDecoder(k, iterations, workload.interleaver)
        results["seed"][batch] = _throughput(seed_decoder.decode, inputs, k, batch)
        for name in backends:
            decoder = TurboDecoder(
                k, iterations, interleaver=workload.interleaver, backend=name
            )
            results[name][batch] = _throughput(decoder.decode, inputs, k, batch)

    speedup_vs_seed = {
        name: {
            str(batch): results[name][batch] / results["seed"][batch]
            for batch in workload.batches
        }
        for name in backends
    }
    # What the pipeline change actually did to smoke-scale decode calls: the
    # seed pipeline decoded per-chunk batches of 8; the aggregation layer
    # pools work items into batches of DEFAULT_AGGREGATE_PACKETS.
    aggregated_speedup = (
        results["numpy"][DEFAULT_AGGREGATE_PACKETS] / results["seed"][BATCH_SIZES[0]]
    )

    # Read-modify-write: other benchmarks (the link llr_dtype one below)
    # own their own sections of the same file — never clobber them.
    payload = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    payload.update({
        "block_size": k,
        "num_iterations": iterations,
        "batch_sizes": list(workload.batches),
        "info_bits_per_second": {
            name: {str(batch): value for batch, value in per_batch.items()}
            for name, per_batch in results.items()
        },
        "kernel_speedup_vs_seed": speedup_vs_seed,
        "aggregated_pipeline_speedup": aggregated_speedup,
        "aggregate_packets": DEFAULT_AGGREGATE_PACKETS,
        "available_backends": list(available_backends()),
    })
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print()
    for name, per_batch in results.items():
        for batch, value in per_batch.items():
            ratio = value / results["seed"][batch]
            print(f"{name:10s} batch={batch:4d}: {value:10.0f} info bits/s ({ratio:4.2f}x seed)")
    print(f"aggregated pipeline (numpy@{DEFAULT_AGGREGATE_PACKETS} vs seed@8): {aggregated_speedup:.2f}x")

    assert all(v > 0 for per in results.values() for v in per.values())
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert aggregated_speedup >= 3.0, payload
        for batch in workload.batches:
            floor = 3.0 if batch >= DEFAULT_AGGREGATE_PACKETS else 2.5
            assert speedup_vs_seed["numpy"][str(batch)] >= floor, payload


# --------------------------------------------------------------------------- #
# decoder backend-family sweep (families x batch x threads + BLER parity)
# --------------------------------------------------------------------------- #
def test_decoder_backend_sweep():
    """Sweep every available decoder family across batch sizes and threads.

    Delegates to :mod:`repro.runner.bench` (also exposed as ``repro bench
    decoder``): throughput per backend token at each batch size, the
    speedup of every token against the ``numpy-f32`` baseline, an ``@t<N>``
    thread-scaling series for threaded families (recorded with the
    machine's ``cpu_count`` so single-core containers are reported
    honestly), and a paired seeded BLER sweep holding the fastest
    non-exact family within ``DECODER_BLER_TOLERANCE`` of the numpy
    reference.  Results land in the ``decoder_backends`` section of
    ``BENCH_decoder.json``.  The >= 3x native-vs-numpy-f32 target at the
    widest batch gates only under ``REPRO_BENCH_STRICT=1`` (and only when
    the extension is built); the always-on assertions are positive
    throughput and BLER parity within tolerance.
    """
    from repro.runner.bench import run_and_record_decoder_backends

    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    section = run_and_record_decoder_backends(scale, path=BENCH_PATH)
    assert all(
        value > 0
        for per_token in section["info_bits_per_second"].values()
        for value in per_token.values()
    )
    parity = section.get("bler_parity")
    if parity is not None:
        assert parity["within_tolerance"], parity
    if (
        os.environ.get("REPRO_BENCH_STRICT") == "1"
        and "native-f32" in section["info_bits_per_second"]
    ):
        widest = str(max(section["batch_sizes"]))
        speedup = section["speedup_vs_numpy_f32"]["native-f32"][widest]
        assert speedup >= 3.0, section


# --------------------------------------------------------------------------- #
# end-to-end link-LLR dtype benchmark (the opt-in LinkConfig.llr_dtype mode)
# --------------------------------------------------------------------------- #
LINK_BENCH_PACKETS = 16
LINK_BENCH_SNR_DB = 14.0
LINK_BENCH_SEED = 2012


def test_link_llr_dtype_benchmark():
    """Measure the float32 end-to-end link-LLR mode against the default.

    Times full packet lifetimes (transmit -> channel -> equalize -> demap ->
    HARQ buffer -> decode) at one mid-range SNR for the float64 default and
    the opt-in ``llr_dtype="float32"`` + ``numpy-f32`` decoder pairing, and
    records packets-per-second (and the speedup ratio) under the
    ``link_llr_dtype`` key of ``BENCH_decoder.json``.  Non-gating on speed:
    the mode trades precision for memory traffic, and wall-clock ratios are
    flaky on shared machines — the assertion is only that both modes run.
    """
    from repro.experiments.scales import SCALES as ALL_SCALES
    from repro.link.system import HspaLikeLink

    scale = ALL_SCALES[os.environ.get("REPRO_BENCH_SCALE", "smoke")]
    modes = {
        "float64": scale.link_config(),
        "float32": scale.link_config(llr_dtype="float32", decoder_backend="numpy-f32"),
    }
    throughput = {}
    for mode, config in modes.items():
        link = HspaLikeLink(config)
        link.simulate_packets(LINK_BENCH_PACKETS, LINK_BENCH_SNR_DB, rng=LINK_BENCH_SEED)
        best = float("inf")
        for _group in range(3):
            start = time.perf_counter()
            link.simulate_packets(
                LINK_BENCH_PACKETS, LINK_BENCH_SNR_DB, rng=LINK_BENCH_SEED
            )
            best = min(best, time.perf_counter() - start)
        throughput[mode] = LINK_BENCH_PACKETS / best

    section = {
        "packets_per_second": throughput,
        "speedup_f32_vs_f64": throughput["float32"] / throughput["float64"],
        "num_packets": LINK_BENCH_PACKETS,
        "snr_db": LINK_BENCH_SNR_DB,
    }
    payload = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    payload["link_llr_dtype"] = section
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print()
    for mode, value in throughput.items():
        print(f"link llr_dtype={mode}: {value:8.1f} packets/s")
    print(f"float32 vs float64: {section['speedup_f32_vs_f64']:.2f}x")
    assert all(v > 0 for v in throughput.values())


# --------------------------------------------------------------------------- #
# link front-end benchmark (batched vs the preserved pre-batching serial path)
# --------------------------------------------------------------------------- #
def test_front_end_benchmark():
    """Measure the batched link front end against the seed serial copy.

    Delegates to :mod:`repro.runner.bench` (also exposed as ``repro bench
    front-end``), which times one HARQ transmission's front end — encode,
    transmit, channel, equalize, demap, HARQ store + combined read — for
    both implementations and asserts they produce byte-identical LLR
    matrices before timing.  Results land in the ``front_end`` section of
    ``BENCH_decoder.json``.  The >= 4x speedup target at batch 32 is gated
    only under ``REPRO_BENCH_STRICT=1`` (wall-clock ratios are flaky on
    shared CI machines); the always-on assertion is byte-identity plus
    positive throughput.
    """
    from repro.runner.bench import (
        FRONT_END_TARGET_SPEEDUP,
        run_and_record_front_end,
    )

    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    section = run_and_record_front_end(scale, path=BENCH_PATH)
    assert all(
        value > 0
        for per_path in section["packets_per_second"].values()
        for value in per_path.values()
    )
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert section["speedup_vs_seed"]["32"] >= FRONT_END_TARGET_SPEEDUP, section
