"""Benchmark regenerating Fig. 5 (yield of a 200 Kb array accepting Nf defects)."""

from repro.experiments import fig5_yield


def test_fig5_yield(benchmark, bench_scale, bench_seed):
    """Yield-vs-accepted-defects curves and the defects needed for 95 % yield."""
    tables = benchmark(fig5_yield.run, bench_scale, bench_seed)
    curves, targets = tables["curves"], tables["targets"]
    print()
    print(targets.to_markdown())

    # Yield is non-decreasing in the number of accepted defects for every Pcell.
    by_pcell = {}
    for row in curves.rows:
        by_pcell.setdefault(row["pcell"], []).append(row)
    for rows in by_pcell.values():
        rows.sort(key=lambda r: r["accepted_faults"])
        yields = [r["yield"] for r in rows]
        assert all(b >= a - 1e-12 for a, b in zip(yields, yields[1:]))

    # Paper anchor: for Pcell = 1e-3 about 0.1 % of the cells must be accepted
    # to reach the 95 % target.
    anchor = next(r for r in targets.rows if abs(r["pcell"] - 1e-3) < 1e-12)
    assert 0.0008 < anchor["defect_fraction_for_target"] < 0.0015
