"""Benchmark regenerating Fig. 7 (throughput when protecting k MSBs)."""

import pytest

from repro.experiments import fig7_msb_protection


@pytest.mark.parametrize("subfigure,defect_rate", [("a", 0.01), ("b", 0.10)])
def test_fig7_msb_protection(benchmark, bench_scale, bench_seed, subfigure, defect_rate):
    """Throughput vs SNR for 0/2/3/4/10 protected MSBs at 1 % and 10 % defects."""
    table = benchmark.pedantic(
        fig7_msb_protection.run,
        kwargs={
            "scale": bench_scale,
            "seed": bench_seed,
            "defect_rate": defect_rate,
            "protected_bit_counts": (0, 3, 4, 10),
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(table.to_markdown())

    by_bits = {}
    for row in table.rows:
        by_bits.setdefault(row["protected_bits"], {})[row["snr_db"]] = row
    top_snr = max(by_bits[0])
    unprotected = by_bits[0][top_snr]["throughput"]
    protected4 = by_bits[4][top_snr]["throughput"]
    fully = by_bits[10][top_snr]["throughput"]
    # Protection of the MSBs recovers throughput; full protection is not
    # meaningfully better than 4 protected bits (Fig. 7 / Section 6.1).
    assert protected4 >= unprotected - 0.05
    assert fully <= protected4 + 0.25
    if defect_rate >= 0.10:
        # At 10 % defects the recovery must be substantial at high SNR.
        assert protected4 >= unprotected
