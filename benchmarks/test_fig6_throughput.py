"""Benchmark regenerating Fig. 6 (throughput and transmissions vs defect rate)."""

from repro.experiments import fig6_throughput_vs_defects


def test_fig6_throughput_and_transmissions(benchmark, bench_scale, bench_seed):
    """Throughput (6a) and average transmissions (6b) for 0 / 0.1 / 1 / 10 % defects."""
    table = benchmark.pedantic(
        fig6_throughput_vs_defects.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        iterations=1,
        rounds=1,
    )
    print()
    print(table.to_markdown())
    print(fig6_throughput_vs_defects.throughput_requirement_check(table).to_markdown())

    by_rate = {}
    for row in table.rows:
        by_rate.setdefault(row["defect_rate"], {})[row["snr_db"]] = row
    rates = sorted(by_rate)
    assert rates[0] == 0.0

    top_snr = max(snr for snr in by_rate[rates[0]])
    clean_top = by_rate[rates[0]][top_snr]
    dirty_top = by_rate[rates[-1]][top_snr]
    # Who wins: the defect-free system outperforms the 10 %-defect system at
    # high SNR, and by a visible factor (paper Fig. 6a shape).
    assert clean_top["throughput"] >= dirty_top["throughput"]
    # 0.1 % defects are essentially harmless (within Monte-Carlo noise).
    if 0.001 in by_rate:
        mild_top = by_rate[0.001][top_snr]
        assert mild_top["throughput"] >= 0.7 * clean_top["throughput"]
    # Average transmissions increase with the defect rate (Fig. 6b shape).
    assert dirty_top["avg_transmissions"] >= clean_top["avg_transmissions"] - 1e-9
