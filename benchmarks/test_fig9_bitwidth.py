"""Benchmark regenerating Fig. 9 (throughput vs LLR bit-width with 10 % defects)."""

from repro.experiments import fig9_bitwidth


def test_fig9_bitwidth(benchmark, bench_scale, bench_seed):
    """10-bit vs 11-bit vs 12-bit LLR storage under a 10 % defect rate."""
    output = benchmark.pedantic(
        fig9_bitwidth.run,
        kwargs={"scale": bench_scale, "seed": bench_seed, "snr_points_db": (14.0, 20.0, 26.0)},
        iterations=1,
        rounds=1,
    )
    table = output["table"]
    print()
    print(table.to_markdown())
    print("best width per SNR:", output["best_width_per_snr"])

    # Wider words mean a physically larger storage and more injected faults
    # at the same defect rate — the mechanism behind the paper's conclusion.
    by_bits = {}
    for row in table.rows:
        by_bits.setdefault(row["llr_bits"], row)
    widths = sorted(by_bits)
    cells = [by_bits[w]["storage_cells"] for w in widths]
    faults = [by_bits[w]["num_faults"] for w in widths]
    assert all(b > a for a, b in zip(cells, cells[1:]))
    assert all(b >= a for a, b in zip(faults, faults[1:]))

    # The narrowest (10-bit) word is the best choice for at least one of the
    # evaluated SNR points (Fig. 9's high-SNR reading).
    assert 10 in set(output["best_width_per_snr"].values())
