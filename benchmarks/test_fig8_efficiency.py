"""Benchmark regenerating Fig. 8 (protection efficiency) and the Section 6.2 overheads."""

from repro.experiments import fig8_efficiency


def test_fig8_protection_efficiency(benchmark, bench_scale, bench_seed):
    """Throughput gain per area overhead as a function of the protected bits."""
    # 24 dB is where the unprotected 10%-defect system shows its largest
    # relative penalty in this reproduction (the paper's criterion for
    # choosing the Fig. 8 operating point).
    output = benchmark.pedantic(
        fig8_efficiency.run,
        kwargs={"scale": bench_scale, "seed": bench_seed, "snr_db": 24.0},
        iterations=1,
        rounds=1,
    )
    table = output["table"]
    print()
    print(table.to_markdown())
    print("optimum protected bits:", output["optimum_bits"])
    print("ECC comparison:", output["ecc"])

    # Area overhead grows linearly with the number of protected bits.
    overheads = [row["area_overhead"] for row in table.rows]
    assert all(b >= a for a, b in zip(overheads, overheads[1:]))

    # Paper anchors: 4 protected 8T bits cost on the order of 12-13 % area,
    # full-word Hamming SEC costs >= 35 %, so MSB protection is cheaper.
    four = next(r for r in table.rows if r["protected_bits"] == 4)
    full = next(r for r in table.rows if r["protected_bits"] == 10)
    assert 0.10 <= four["area_overhead"] <= 0.16
    assert output["ecc"]["ecc_overhead"] >= 0.35
    assert output["ecc"]["msb4_overhead"] < output["ecc"]["ecc_overhead"]

    # Protecting all bits adds area without commensurate throughput benefit:
    # the 4-MSB configuration is the more efficient design point (Fig. 8).
    assert four["efficiency"] > full["efficiency"]
    assert full["throughput_gain"] <= four["throughput_gain"] + 0.35
    # The optimum reported by the analysis never exceeds the evaluated range
    # and the 4-bit point recovers most of the achievable gain.
    assert output["optimum_bits"] <= 10
    assert four["throughput_gain"] >= 0.6 * full["throughput_gain"]
