"""Ablation: HARQ soft-buffer organisation under memory defects.

DESIGN.md calls out a modelling choice the paper leaves implicit: whether the
LLR memory stores each transmission's received LLRs separately (combining on
read) or the running combined sum (virtual IR buffer).  This ablation runs
the same 10 %-defect operating point with both organisations.  In the
per-transmission organisation a faulty cell corrupts only one transmission's
contribution, so HARQ retransmissions dilute the damage — it should therefore
never do worse than the combined organisation once retransmissions happen.
"""

from repro.core import NoProtection, SystemLevelFaultSimulator
from repro.experiments.scales import get_scale


def _throughput(architecture: str, scale, seed: int, defect_rate: float) -> dict:
    config = scale.link_config(buffer_architecture=architecture)
    simulator = SystemLevelFaultSimulator(
        config,
        NoProtection(bits_per_word=config.llr_bits),
        num_fault_maps=scale.num_fault_maps,
    )
    # The architectures differ only statistically, so this ablation uses more
    # packets than the figure benchmarks to keep the comparison meaningful.
    point = simulator.evaluate_defect_rate(
        22.0, defect_rate, num_packets=max(24, scale.num_packets), rng=seed
    )
    return {
        "architecture": architecture,
        "throughput": point.normalized_throughput,
        "avg_transmissions": point.average_transmissions,
        "storage_cells": simulator.total_cells,
    }


def test_buffer_architecture_ablation(benchmark, bench_scale, bench_seed):
    """Per-transmission vs combined LLR storage at a 10 % defect rate."""
    scale = get_scale(bench_scale)

    def run_both():
        return [
            _throughput("per-transmission", scale, bench_seed, 0.10),
            _throughput("combined", scale, bench_seed, 0.10),
        ]

    per_transmission, combined = benchmark.pedantic(run_both, iterations=1, rounds=1)
    print()
    for row in (per_transmission, combined):
        print(
            f"  {row['architecture']:>16}: throughput={row['throughput']:.3f} "
            f"avgTx={row['avg_transmissions']:.2f} cells={row['storage_cells']}"
        )

    # Both organisations keep delivering packets at 10 % defects ...
    assert per_transmission["throughput"] > 0.0
    assert combined["throughput"] >= 0.0
    # ... and distributing the faults over per-transmission copies is not
    # substantially worse than corrupting the combined values (dilution
    # through combining) — a statistical statement, hence the wide margin at
    # Monte-Carlo scales of a few dozen packets.
    assert (
        per_transmission["throughput"] >= combined["throughput"] - 0.12
    )
