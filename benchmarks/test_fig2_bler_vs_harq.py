"""Benchmark regenerating Fig. 2 (decoding failure probability vs HARQ round)."""

from repro.experiments import fig2_bler_vs_harq


def test_fig2_bler_vs_harq(benchmark, bench_scale, bench_seed):
    """BLER after each HARQ transmission for low / medium / high SNR regimes."""
    table = benchmark.pedantic(
        fig2_bler_vs_harq.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        iterations=1,
        rounds=1,
    )
    print()
    print(table.to_markdown())

    # Shape check: within each SNR regime the failure probability must be
    # non-increasing over transmissions (HARQ combining only helps).
    by_snr = {}
    for row in table.rows:
        by_snr.setdefault(row["snr_db"], []).append(row)
    for rows in by_snr.values():
        rows.sort(key=lambda r: r["transmission"])
        probabilities = [r["failure_probability"] for r in rows]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(probabilities, probabilities[1:])
        )
    # The high-SNR regime decodes most packets on the first transmission.
    high_snr = max(by_snr)
    assert by_snr[high_snr][0]["failure_probability"] <= 0.5
