"""Benchmark regenerating the Section 6.3 voltage / power-saving numbers."""

from repro.experiments import power_savings


def test_power_savings(benchmark, bench_scale, bench_seed):
    """Minimum supply voltage and power saving, unprotected vs MSB-protected storage."""
    table = benchmark(power_savings.run, bench_scale, bench_seed)
    print()
    print(table.to_markdown())

    rows = {row["scheme"]: row for row in table.rows}
    unprotected = rows["unprotected-6T"]
    protected = next(v for k, v in rows.items() if k.startswith("msb-"))

    # Section 5/6.3 anchors: the unprotected array reaches roughly 0.8 V, the
    # preferentially protected array roughly 0.6 V, and the voltage scaling
    # yields double-digit power savings for the HARQ memory block.
    assert 0.7 <= unprotected["min_vdd"] <= 0.9
    assert 0.55 <= protected["min_vdd"] <= 0.7
    assert protected["min_vdd"] < unprotected["min_vdd"]
    assert unprotected["power_saving"] >= 0.2
    assert protected["power_saving"] >= unprotected["power_saving"]
    # The protection that enables this costs little area (~12-13 %).
    assert protected["area_overhead"] <= 0.2
