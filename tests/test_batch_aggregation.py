"""Cross-work-item decode aggregation and adaptive fault-map stopping.

Aggregation is a pure throughput optimisation: pooling the packets of many
work items into shared decoder calls must reproduce the per-task results
bit-for-bit, for any grouping, worker count or scheduling.  Adaptive
stopping trades packets for confidence but must stay deterministic in the
worker count.
"""

import numpy as np
import pytest

from repro.core.protection import NoProtection, msb_protection_scheme
from repro.link.system import PacketGroup, simulate_packet_groups
from repro.runner.parallel import ParallelRunner
from repro.runner.tasks import (
    AdaptiveStopping,
    FaultMapTask,
    GridPoint,
    LinkChunkTask,
    fault_map_tasks_for_point,
    group_tasks_for_batching,
    resolve_adaptive,
    run_fault_map_grid,
    simulate_fault_map,
    simulate_fault_map_batch,
    simulate_link_chunk,
    simulate_link_chunk_batch,
)
from repro.utils.rng import keyed_seed_sequence


def _chunk_tasks(config, snrs, entropy=2012, packets=4):
    return [
        LinkChunkTask(
            config=config,
            snr_db=snr,
            num_packets=packets,
            entropy=entropy,
            key=(index,),
        )
        for index, snr in enumerate(snrs)
    ]


class TestGrouping:
    def test_groups_respect_packet_target_and_order(self, tiny_config):
        tasks = _chunk_tasks(tiny_config, [10.0, 12.0, 14.0, 16.0, 18.0], packets=4)
        groups = group_tasks_for_batching(tasks, aggregate_packets=8)
        assert [len(g) for g in groups] == [2, 2, 1]
        assert [t for g in groups for t in g] == tasks

    def test_incompatible_configs_split_groups(self, tiny_config, tiny_64qam_config):
        tasks = _chunk_tasks(tiny_config, [10.0]) + _chunk_tasks(tiny_64qam_config, [10.0])
        groups = group_tasks_for_batching(tasks, aggregate_packets=64)
        assert len(groups) == 2

    def test_mixed_configs_rejected_by_batch_executor(self, tiny_config, tiny_64qam_config):
        tasks = _chunk_tasks(tiny_config, [10.0]) + _chunk_tasks(tiny_64qam_config, [10.0])
        with pytest.raises(ValueError, match="share one link configuration"):
            simulate_link_chunk_batch(tasks)

    def test_invalid_aggregate_packets(self, tiny_config):
        with pytest.raises(ValueError):
            group_tasks_for_batching(_chunk_tasks(tiny_config, [10.0]), aggregate_packets=0)


class TestLinkChunkAggregation:
    def test_batched_chunks_match_solo_chunks(self, tiny_config):
        tasks = _chunk_tasks(tiny_config, [8.0, 12.0, 16.0], packets=5)
        solo = [simulate_link_chunk(task) for task in tasks]
        batched = simulate_link_chunk_batch(tasks)
        for a, b in zip(solo, batched):
            assert a.as_dict() == b.as_dict()
            assert np.array_equal(
                a.attempts_per_transmission, b.attempts_per_transmission
            )
            assert np.array_equal(
                a.failures_per_transmission, b.failures_per_transmission
            )

    def test_packet_groups_independent_of_grouping(self, tiny_config):
        """Simulating groups together or apart gives identical packets."""
        from repro.runner.tasks import _cached_link

        link = _cached_link(tiny_config)
        make = lambda key, snr: PacketGroup(
            num_packets=3, snr_db=snr, rng=keyed_seed_sequence(7, key)
        )
        together = simulate_packet_groups(
            link, [make((0,), 10.0), make((1,), 14.0)]
        )
        apart = [
            simulate_packet_groups(link, [make((0,), 10.0)])[0],
            simulate_packet_groups(link, [make((1,), 14.0)])[0],
        ]
        for merged, alone in zip(together, apart):
            assert len(merged.packet_results) == len(alone.packet_results)
            for p_merged, p_alone in zip(merged.packet_results, alone.packet_results):
                assert p_merged.success == p_alone.success
                assert p_merged.num_transmissions == p_alone.num_transmissions
                assert np.array_equal(p_merged.decoded_bits, p_alone.decoded_bits)
                assert p_merged.failure_history == p_alone.failure_history


class TestFaultMapAggregation:
    def test_batched_dies_match_solo_dies(self, tiny_config):
        protection = msb_protection_scheme(tiny_config.llr_bits, 3)
        tasks = fault_map_tasks_for_point(
            tiny_config,
            protection,
            snr_db=12.0,
            defect_rate=0.05,
            num_packets=8,
            num_fault_maps=4,
            entropy=2012,
            key_prefix=(0, 0),
        )
        solo = [simulate_fault_map(task) for task in tasks]
        batched = simulate_fault_map_batch(tasks)
        for a, b in zip(solo, batched):
            assert a.num_faults == b.num_faults
            assert a.fallible_cells == b.fallible_cells
            assert a.statistics.as_dict() == b.statistics.as_dict()

    def test_grid_results_independent_of_aggregate_size(self, tiny_config):
        protection = NoProtection(bits_per_word=tiny_config.llr_bits)
        points = [
            GridPoint(
                key_prefix=(i,),
                config=tiny_config,
                protection=protection,
                snr_db=snr,
                defect_rate=0.01,
            )
            for i, snr in enumerate([10.0, 16.0])
        ]
        runner = ParallelRunner.serial()
        results = [
            run_fault_map_grid(
                runner,
                points,
                num_packets=6,
                num_fault_maps=2,
                entropy=2012,
                aggregate_packets=aggregate,
            )
            for aggregate in (1, 8, 1024)
        ]
        reference = results[0]
        for other in results[1:]:
            for a, b in zip(reference, other):
                assert a.statistics.as_dict() == b.statistics.as_dict()
                assert a.per_map_throughput == b.per_map_throughput


class TestAdaptiveFaultSweeps:
    def test_resolve_adaptive(self):
        assert resolve_adaptive(None) is None
        assert resolve_adaptive(False) is None
        assert isinstance(resolve_adaptive(True), AdaptiveStopping)
        custom = AdaptiveStopping(bler_floor=0.2)
        assert resolve_adaptive(custom) is custom
        with pytest.raises(TypeError):
            resolve_adaptive("yes")

    def test_adaptive_point_deterministic_across_workers(self, tiny_config):
        protection = NoProtection(bits_per_word=tiny_config.llr_bits)
        point = GridPoint(
            key_prefix=(0,),
            config=tiny_config,
            protection=protection,
            snr_db=18.0,
            defect_rate=0.0,
        )
        kwargs = dict(num_packets=8, num_fault_maps=2, entropy=2012, adaptive=AdaptiveStopping())
        serial = run_fault_map_grid(ParallelRunner.serial(), [point], **kwargs)[0]
        parallel = run_fault_map_grid(ParallelRunner(workers=3), [point], **kwargs)[0]
        assert serial.statistics.as_dict() == parallel.statistics.as_dict()
        assert serial.per_map_throughput == parallel.per_map_throughput

    def test_adaptive_uses_fixed_schedule_dies(self, tiny_config):
        """The first dies of an adaptive run coincide with the fixed sweep's."""
        protection = NoProtection(bits_per_word=tiny_config.llr_bits)
        point = GridPoint(
            key_prefix=(3,),
            config=tiny_config,
            protection=protection,
            snr_db=14.0,
            defect_rate=0.02,
        )
        adaptive = run_fault_map_grid(
            ParallelRunner.serial(),
            [point],
            num_packets=8,
            num_fault_maps=2,
            entropy=99,
            adaptive=AdaptiveStopping(chunks_per_round=2),
        )[0]
        fixed_tasks = fault_map_tasks_for_point(
            tiny_config,
            protection,
            snr_db=14.0,
            defect_rate=0.02,
            num_packets=8,
            num_fault_maps=2,
            entropy=99,
            key_prefix=(3,),
        )
        fixed = [simulate_fault_map(task) for task in fixed_tasks]
        assert adaptive.per_map_throughput[: len(fixed)] == [
            o.normalized_throughput for o in fixed
        ]

    def test_adaptive_stops_confident_low_bler_point_early(self, tiny_config):
        """A clean high-SNR point must not burn the whole fixed budget."""
        protection = NoProtection(bits_per_word=tiny_config.llr_bits)
        point = GridPoint(
            key_prefix=(0,),
            config=tiny_config,
            protection=protection,
            snr_db=20.0,
            defect_rate=0.0,
        )
        result = run_fault_map_grid(
            ParallelRunner.serial(),
            [point],
            num_packets=64,
            num_fault_maps=16,
            entropy=2012,
            adaptive=AdaptiveStopping(bler_floor=0.5, chunks_per_round=2),
        )[0]
        # budget for bler_floor=0.5 at 0.3 relative error is ~12 packets,
        # far below the 64-packet fixed budget.
        assert result.statistics.num_packets < 64
