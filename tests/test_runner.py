"""Tests for the parallel experiment runner: sharding, determinism, stopping."""

import numpy as np
import pytest

from repro.experiments import fig2_bler_vs_harq, fig6_throughput_vs_defects
from repro.experiments.scales import SCALES
from repro.harq.metrics import HarqStatistics, merge_statistics
from repro.link.config import LinkConfig
from repro.runner.parallel import AdaptiveEstimate, ParallelRunner, default_workers
from repro.runner.tasks import (
    FaultMapTask,
    LinkChunkTask,
    count_block_errors,
    fault_map_tasks_for_point,
    simulate_fault_map,
    simulate_link_chunk,
    split_packets,
)
from repro.core.protection import NoProtection
from repro.utils.rng import child_rngs, keyed_seed_sequence


@pytest.fixture(scope="module")
def micro_scale():
    """A sub-smoke scale so parallel end-to-end tests stay fast."""
    return SCALES["smoke"].with_updates(
        payload_bits=56,
        num_packets=4,
        num_fault_maps=2,
        turbo_iterations=3,
        snr_points_db=(16.0, 26.0),
        defect_rates=(0.0, 0.10),
    )


# Module-level so the process pool can pickle it by reference.
def _square(value):
    return value * value


class TestParallelRunnerMap:
    def test_serial_fallback_preserves_order(self):
        runner = ParallelRunner.serial()
        assert runner.is_serial
        assert runner.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_task_list(self):
        assert ParallelRunner(workers=4).map(_square, []) == []

    def test_parallel_preserves_order(self):
        runner = ParallelRunner(workers=2)
        assert runner.map(_square, list(range(10))) == [i * i for i in range(10)]

    def test_workers_zero_means_auto(self):
        assert ParallelRunner(workers=0).workers == default_workers()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=-1)


class TestDeterminism:
    """Parallel and serial runs must be bit-identical for the same seed."""

    def test_link_chunk_is_location_independent(self):
        config = LinkConfig(payload_bits=56, crc_bits=16, turbo_iterations=3, max_transmissions=2)
        task = LinkChunkTask(config=config, snr_db=20.0, num_packets=2, entropy=9, key=(4, 2))
        first = simulate_link_chunk(task)
        second = simulate_link_chunk(task)
        assert first.num_successful == second.num_successful
        assert first.total_transmissions == second.total_transmissions
        np.testing.assert_array_equal(
            first.attempts_per_transmission, second.attempts_per_transmission
        )

    def test_fig6_parallel_matches_serial_bit_for_bit(self, micro_scale):
        serial = fig6_throughput_vs_defects.run(micro_scale, seed=2012)
        parallel = fig6_throughput_vs_defects.run(
            micro_scale, seed=2012, runner=ParallelRunner(workers=4)
        )
        assert serial.to_json() == parallel.to_json()

    def test_fig2_parallel_matches_serial_bit_for_bit(self, micro_scale):
        serial = fig2_bler_vs_harq.run(micro_scale, seed=3, snr_regimes_db=(12.0, 24.0))
        parallel = fig2_bler_vs_harq.run(
            micro_scale,
            seed=3,
            snr_regimes_db=(12.0, 24.0),
            runner=ParallelRunner(workers=3),
        )
        assert serial.to_json() == parallel.to_json()

    def test_different_seeds_differ(self, micro_scale):
        one = fig6_throughput_vs_defects.run(micro_scale, seed=1)
        two = fig6_throughput_vs_defects.run(micro_scale, seed=2)
        assert one.to_json() != two.to_json()


class TestSeedKeys:
    def test_child_rngs_seed_sequence_children_never_collide(self):
        parent = np.random.SeedSequence(42)
        children = child_rngs(parent, 64)
        draws = {int(rng.integers(0, 2**63 - 1)) for rng in children}
        assert len(draws) == 64

    def test_seed_sequence_spawn_keys_unique(self):
        parent = np.random.SeedSequence(42)
        spawned = parent.spawn(32)
        keys = {child.spawn_key for child in spawned}
        assert len(keys) == 32

    def test_keyed_seed_sequence_distinct_keys_distinct_streams(self):
        keys = [(0,), (1,), (0, 0), (0, 1), (1, 0), (2, 5, 7)]
        draws = {
            key: int(np.random.default_rng(keyed_seed_sequence(7, key)).integers(0, 2**63 - 1))
            for key in keys
        }
        assert len(set(draws.values())) == len(keys)

    def test_keyed_seed_sequence_same_key_same_stream(self):
        a = np.random.default_rng(keyed_seed_sequence(7, (3, 1))).integers(0, 2**31, 4)
        b = np.random.default_rng(keyed_seed_sequence(7, (3, 1))).integers(0, 2**31, 4)
        np.testing.assert_array_equal(a, b)

    def test_keyed_seed_sequence_rejects_negative(self):
        with pytest.raises(ValueError):
            keyed_seed_sequence(-1)
        with pytest.raises(ValueError):
            keyed_seed_sequence(1, (-2,))


class TestSplitPackets:
    def test_exact_division(self):
        assert split_packets(32, 8) == [8, 8, 8, 8]

    def test_remainder_chunk(self):
        assert split_packets(20, 8) == [8, 8, 4]

    def test_small_budget_single_chunk(self):
        assert split_packets(3, 8) == [3]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_packets(0)
        with pytest.raises(ValueError):
            split_packets(8, 0)


class TestFaultMapTasks:
    def test_point_sharding_matches_serial_packet_split(self):
        config = LinkConfig(payload_bits=56, crc_bits=16, turbo_iterations=3, max_transmissions=2)
        protection = NoProtection(bits_per_word=config.llr_bits)
        tasks = fault_map_tasks_for_point(
            config,
            protection,
            snr_db=20.0,
            defect_rate=0.1,
            num_packets=5,
            num_fault_maps=2,
            entropy=11,
            key_prefix=(0, 3),
        )
        assert [t.key for t in tasks] == [(0, 3, 0), (0, 3, 1)]
        # Same split the serial fault simulator uses: num_packets // maps each.
        assert [t.num_packets for t in tasks] == [2, 2]

    def test_fault_count_scales_with_defect_rate(self):
        config = LinkConfig(payload_bits=56, crc_bits=16, turbo_iterations=3, max_transmissions=2)
        protection = NoProtection(bits_per_word=config.llr_bits)
        task = FaultMapTask(
            config=config,
            protection=protection,
            snr_db=20.0,
            defect_rate=0.1,
            num_packets=1,
            entropy=5,
            key=(0,),
        )
        outcome = simulate_fault_map(task)
        assert outcome.fallible_cells == config.llr_storage_cells
        assert outcome.num_faults == int(round(0.1 * config.llr_storage_cells))


# Adaptive-stopping doubles: deterministic "simulators" at module level so
# they stay picklable for the multi-worker variant of the test.
def _always_one_error(chunk_index):
    return (1, 10)


def _never_errors(chunk_index):
    return (0, 10)


def _identity_task(chunk_index):
    return chunk_index


class TestAdaptiveStopping:
    def test_stops_once_confident(self):
        outcome = ParallelRunner.serial().run_adaptive_proportion(
            _identity_task,
            _always_one_error,
            relative_error=0.5,
            bler_floor=1e-3,
            min_trials=20,
        )
        assert isinstance(outcome, AdaptiveEstimate)
        assert outcome.stop_reason == "confident"
        assert outcome.estimate.half_width <= 0.5 * outcome.estimate.value
        assert outcome.trials == 10 * outcome.num_chunks

    def test_error_free_point_stops_at_budget(self):
        outcome = ParallelRunner.serial().run_adaptive_proportion(
            _identity_task, _never_errors, relative_error=0.5, bler_floor=0.05
        )
        assert outcome.stop_reason == "budget"
        assert outcome.errors == 0
        # required_packets_for_bler(0.05, 0.5) == ceil(0.95 / (0.05 * 0.25)) == 76.
        assert outcome.trials >= 76

    def test_max_trials_ceiling(self):
        outcome = ParallelRunner.serial().run_adaptive_proportion(
            _identity_task,
            _never_errors,
            relative_error=0.1,
            bler_floor=1e-6,
            max_trials=50,
        )
        assert outcome.stop_reason == "max_packets"
        assert outcome.trials >= 50

    def test_stopping_point_independent_of_workers(self):
        serial = ParallelRunner.serial().run_adaptive_proportion(
            _identity_task, _always_one_error, relative_error=0.5, min_trials=20
        )
        parallel = ParallelRunner(workers=2).run_adaptive_proportion(
            _identity_task, _always_one_error, relative_error=0.5, min_trials=20
        )
        assert serial == parallel

    def test_adaptive_on_real_link(self, micro_scale):
        config = micro_scale.link_config()

        def make_task(chunk_index):
            return LinkChunkTask(
                config=config,
                snr_db=8.0,
                num_packets=2,
                entropy=2012,
                key=(chunk_index,),
            )

        outcome = ParallelRunner.serial().run_adaptive_proportion(
            make_task,
            count_block_errors,
            relative_error=0.5,
            bler_floor=0.2,
            min_trials=8,
            max_trials=24,
        )
        assert outcome.trials >= 8
        assert 0.0 <= outcome.estimate.lower <= outcome.estimate.upper <= 1.0

    def test_rejects_bad_parameters(self):
        runner = ParallelRunner.serial()
        with pytest.raises(ValueError):
            runner.run_adaptive_proportion(
                _identity_task, _never_errors, bler_floor=0.0
            )
        with pytest.raises(ValueError):
            runner.run_adaptive_proportion(
                _identity_task, _never_errors, chunks_per_round=0
            )


class TestLinkCacheLru:
    """The per-thread link memo is a bounded LRU (long-lived workers)."""

    @pytest.fixture()
    def patched_tasks(self, monkeypatch):
        from repro.runner import tasks

        class FakeLink:
            def __init__(self, config, use_rake=False):
                self.config = config
                self.use_rake = use_rake

        monkeypatch.setattr(tasks, "HspaLikeLink", FakeLink)
        monkeypatch.setattr(tasks, "LINK_CACHE_MAX_ENTRIES", 3)
        tasks._link_cache().clear()
        yield tasks
        tasks._link_cache().clear()

    @staticmethod
    def _configs(count):
        return [
            LinkConfig(
                payload_bits=56 + 8 * index,
                crc_bits=16,
                turbo_iterations=3,
                max_transmissions=2,
            )
            for index in range(count)
        ]

    def test_hit_returns_cached_instance(self, patched_tasks):
        config = self._configs(1)[0]
        first = patched_tasks._cached_link(config)
        assert patched_tasks._cached_link(config) is first
        assert len(patched_tasks._link_cache()) == 1

    def test_rake_variant_is_a_distinct_entry(self, patched_tasks):
        config = self._configs(1)[0]
        plain = patched_tasks._cached_link(config)
        rake = patched_tasks._cached_link(config, use_rake=True)
        assert plain is not rake
        assert patched_tasks._cached_link(config, use_rake=True) is rake

    def test_capacity_is_bounded_and_lru_evicted(self, patched_tasks):
        configs = self._configs(4)
        links = [patched_tasks._cached_link(config) for config in configs[:3]]
        assert len(patched_tasks._link_cache()) == 3
        # Refresh config 0 so config 1 becomes least-recently used.
        assert patched_tasks._cached_link(configs[0]) is links[0]
        patched_tasks._cached_link(configs[3])
        assert len(patched_tasks._link_cache()) == 3
        assert (configs[1], False) not in patched_tasks._link_cache()
        # The refreshed entry survived; the evicted one is rebuilt anew.
        assert patched_tasks._cached_link(configs[0]) is links[0]
        assert patched_tasks._cached_link(configs[1]) is not links[1]

    def test_default_cap_covers_a_whole_experiment(self):
        from repro.runner.tasks import LINK_CACHE_MAX_ENTRIES

        # Fig. 9 sweeps one configuration per LLR bit-width; the cap must
        # comfortably exceed any stock sweep so runs never thrash.
        assert LINK_CACHE_MAX_ENTRIES >= 8

    def test_each_thread_owns_its_simulators(self, patched_tasks):
        """Slot threads must never share a simulator instance.

        A simulator is stateful while it runs; multi-slot worker daemons
        execute items concurrently on a thread pool, so a process-global
        memo would hand two threads the same ``HspaLikeLink`` and race.
        """
        import threading

        config = self._configs(1)[0]
        main_link = patched_tasks._cached_link(config)
        other: list = []

        def build():
            other.append(patched_tasks._cached_link(config))

        thread = threading.Thread(target=build)
        thread.start()
        thread.join(timeout=10.0)
        assert other and other[0] is not main_link
        # The main thread's cache is untouched by the other thread's build.
        assert patched_tasks._cached_link(config) is main_link


class TestMergeStatistics:
    def test_merge_equals_single_aggregate(self):
        parts = [
            HarqStatistics(
                num_packets=2,
                num_successful=1,
                total_transmissions=5,
                info_bits_per_packet=100,
                attempts_per_transmission=np.array([2, 2, 1]),
                failures_per_transmission=np.array([2, 1, 1]),
            ),
            HarqStatistics(
                num_packets=1,
                num_successful=1,
                total_transmissions=1,
                info_bits_per_packet=100,
                attempts_per_transmission=np.array([1]),
                failures_per_transmission=np.array([0]),
            ),
        ]
        merged = merge_statistics(parts)
        assert merged.num_packets == 3
        assert merged.num_successful == 2
        assert merged.total_transmissions == 6
        np.testing.assert_array_equal(merged.attempts_per_transmission, [3, 2, 1])
        np.testing.assert_array_equal(merged.failures_per_transmission, [2, 1, 1])

    def test_merge_rejects_empty_and_mixed(self):
        with pytest.raises(ValueError):
            merge_statistics([])
        parts = [
            HarqStatistics(1, 1, 1, 100, np.array([1]), np.array([0])),
            HarqStatistics(1, 1, 1, 200, np.array([1]), np.array([0])),
        ]
        with pytest.raises(ValueError):
            merge_statistics(parts)
