"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

from repro.link import LinkConfig  # noqa: E402  (path setup must come first)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_config() -> LinkConfig:
    """A very small link configuration keeping end-to-end tests fast."""
    return LinkConfig(
        payload_bits=56,
        crc_bits=16,
        modulation="16QAM",
        effective_code_rate=0.6,
        turbo_iterations=3,
        max_transmissions=3,
    )


@pytest.fixture
def tiny_64qam_config() -> LinkConfig:
    """A small 64QAM configuration (the paper's modulation mode)."""
    return LinkConfig(
        payload_bits=104,
        crc_bits=16,
        modulation="64QAM",
        effective_code_rate=0.7,
        turbo_iterations=3,
        max_transmissions=4,
    )
