"""Sweep-journal checkpoint/resume: crash-safe progress, byte-identical redo.

The journal's contract has three legs, each tested here:

* **Durability** — every completed unit reported written is replayed after a
  crash, and at most one torn trailing line is dropped (and truncated away
  on disk) during recovery.
* **Identity** — a journal belongs to one run identity; foreign or stale
  journals are discarded with a warning, and a fresh (non ``--resume``) run
  never inherits a dead run's progress.
* **Byte-identity of resume** — grid loops skip exactly the journaled
  units, and the merged results of a resumed run equal an uninterrupted
  serial reference bit for bit, including mid-point adaptive-round state.

The final test does it for real: ``kill -9`` on a coordinator subprocess,
then ``--resume`` must reproduce the reference payload exactly.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core.protection import NoProtection
from repro.runner.journal import (
    JOURNAL_FORMAT_VERSION,
    SweepJournal,
    outcome_from_json,
    outcome_to_json,
)
from repro.runner.parallel import ParallelRunner
from repro.runner.tasks import (
    AdaptiveStopping,
    GridPoint,
    fault_map_tasks_for_point,
    run_fault_map_grid,
    simulate_fault_map_batch,
)


def _grid(tiny_config, snrs=(14.0, 16.0, 18.0)):
    protection = NoProtection(bits_per_word=tiny_config.llr_bits)
    return [
        GridPoint(
            key_prefix=(i,),
            config=tiny_config,
            protection=protection,
            snr_db=snr,
            defect_rate=0.05,
        )
        for i, snr in enumerate(snrs)
    ]


_GRID_KWARGS = dict(num_packets=4, num_fault_maps=2, entropy=2012)


@pytest.fixture()
def journal(tmp_path):
    j = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef")
    yield j
    j.close()


@pytest.fixture(scope="module")
def sample_results(tiny_config_module):
    """Real merged points + per-die outcomes to feed the journal."""
    points = _grid(tiny_config_module)
    merged = run_fault_map_grid(ParallelRunner.serial(), points, **_GRID_KWARGS)
    tasks = fault_map_tasks_for_point(
        tiny_config_module,
        NoProtection(bits_per_word=tiny_config_module.llr_bits),
        snr_db=14.0,
        defect_rate=0.05,
        key_prefix=(0,),
        **_GRID_KWARGS,
    )
    outcomes = simulate_fault_map_batch(tasks)
    return merged, outcomes


@pytest.fixture(scope="module")
def tiny_config_module():
    from repro.link.config import LinkConfig

    return LinkConfig(
        payload_bits=56,
        crc_bits=16,
        modulation="16QAM",
        effective_code_rate=0.6,
        turbo_iterations=3,
        max_transmissions=3,
    )


def _points_equal(a, b):
    return (
        a.snr_db == b.snr_db
        and a.num_faults == b.num_faults
        and a.defect_rate == b.defect_rate
        and a.per_map_throughput == b.per_map_throughput
        and a.protection_name == b.protection_name
        and a.statistics.as_dict() == b.statistics.as_dict()
    )


# --------------------------------------------------------------------------- #
class TestJournalBasics:
    def test_outcome_round_trip_is_lossless(self, sample_results):
        _merged, outcomes = sample_results
        for outcome in outcomes:
            rebuilt = outcome_from_json(json.loads(json.dumps(outcome_to_json(outcome))))
            assert rebuilt.num_faults == outcome.num_faults
            assert rebuilt.fallible_cells == outcome.fallible_cells
            assert rebuilt.statistics.as_dict() == outcome.statistics.as_dict()

    def test_record_then_replay_restores_every_unit(
        self, tmp_path, journal, sample_results
    ):
        merged, outcomes = sample_results
        journal.record_fault_point(0, merged[0])
        journal.record_bler_cell(3, merged[1].statistics)
        journal.record_adaptive_round(7, list(outcomes))
        journal.close()

        resumed = SweepJournal.open_for_run(
            tmp_path, "figx", "deadbeef", resume=True
        )
        assert resumed.replayed_entries == 3
        assert not resumed.recovered_truncation
        assert _points_equal(resumed.completed_fault_point(0), merged[0])
        assert (
            resumed.completed_bler_cell(3).as_dict()
            == merged[1].statistics.as_dict()
        )
        [replayed_round] = resumed.adaptive_rounds(7)
        assert len(replayed_round) == len(outcomes)
        assert resumed.completed_fault_point(1) is None
        assert "resumed 2 completed unit(s)" in resumed.summary()
        resumed.close()

    def test_completed_point_supersedes_its_rounds(
        self, tmp_path, journal, sample_results
    ):
        merged, outcomes = sample_results
        journal.record_adaptive_round(0, list(outcomes))
        journal.record_fault_point(0, merged[0])
        assert journal.adaptive_rounds(0) == []  # live state
        journal.close()
        resumed = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        assert resumed.adaptive_rounds(0) == []  # replayed state agrees
        assert resumed.completed_fault_point(0) is not None
        resumed.close()

    def test_finalize_success_deletes_failure_keeps(self, tmp_path, sample_results):
        merged, _ = sample_results
        j = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef")
        j.record_fault_point(0, merged[0])
        j.finalize(success=False)
        assert j.path.exists()  # kept for --resume
        j = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        assert j.replayed_entries == 1
        j.finalize(success=True)
        assert not j.path.exists()  # the result cache takes over


# --------------------------------------------------------------------------- #
class TestCrashRecovery:
    def test_torn_tail_is_dropped_and_truncated_on_disk(
        self, tmp_path, journal, sample_results
    ):
        merged, _ = sample_results
        journal.record_fault_point(0, merged[0])
        journal.record_fault_point(1, merged[1])
        journal.close()
        intact_size = journal.path.stat().st_size
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "fault_point", "index": 2, "resu')  # no \n

        resumed = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        assert resumed.recovered_truncation
        assert resumed.replayed_entries == 2
        assert resumed.completed_fault_point(2) is None
        assert journal.path.stat().st_size == intact_size  # tail gone on disk
        # Appends continue on a clean line boundary after recovery.
        resumed.record_fault_point(2, merged[2])
        resumed.close()
        again = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        assert again.replayed_entries == 3
        assert not again.recovered_truncation
        again.close()

    def test_malformed_middle_line_invalidates_the_rest(
        self, tmp_path, journal, sample_results
    ):
        merged, _ = sample_results
        journal.record_fault_point(0, merged[0])
        journal.close()
        good_size = journal.path.stat().st_size
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(
                json.dumps({"type": "bler_cell", "index": 9, "result": {}}) + "\n"
            )
        resumed = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        # fsync order means nothing after the bad line is trustworthy.
        assert resumed.recovered_truncation
        assert resumed.replayed_entries == 1
        assert resumed.completed_bler_cell(9) is None
        assert journal.path.stat().st_size == good_size
        resumed.close()

    def test_unknown_entry_types_are_ignored(self, tmp_path, journal, sample_results):
        merged, _ = sample_results
        journal.record_fault_point(0, merged[0])
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "hologram", "index": 1}) + "\n")
        resumed = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        assert resumed.replayed_entries == 2  # counted, harmlessly skipped
        assert resumed.completed_fault_point(0) is not None
        resumed.close()

    def test_foreign_journal_is_discarded_with_warning(
        self, tmp_path, journal, sample_results
    ):
        merged, _ = sample_results
        journal.record_fault_point(0, merged[0])
        journal.close()
        # Same path, different run identity (digest changed).
        path = tmp_path / "figx-deadbeef.jsonl"
        foreign = SweepJournal(path, experiment="figx", digest="0ddba11")
        with pytest.warns(RuntimeWarning, match="does not match this run"):
            foreign.open(resume=True)
        assert foreign.replayed_entries == 0
        assert foreign.completed_fault_point(0) is None
        foreign.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["digest"] == "0ddba11"
        assert header["journal_format"] == JOURNAL_FORMAT_VERSION

    def test_fresh_run_discards_stale_progress(self, tmp_path, journal, sample_results):
        merged, _ = sample_results
        journal.record_fault_point(0, merged[0])
        journal.close()
        fresh = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=False)
        assert fresh.replayed_entries == 0
        assert fresh.completed_fault_point(0) is None
        fresh.close()
        assert len(fresh.path.read_text().splitlines()) == 1  # header only


# --------------------------------------------------------------------------- #
class TestGridResume:
    def _counting(self, monkeypatch):
        import repro.runner.tasks as tasks_module

        calls = SimpleNamespace(batches=0)
        original = tasks_module.simulate_fault_map_batch

        def counted(group):
            calls.batches += 1
            return original(group)

        monkeypatch.setattr(tasks_module, "simulate_fault_map_batch", counted)
        return calls

    def test_resume_skips_journaled_points_byte_identically(
        self, tmp_path, tiny_config_module, monkeypatch
    ):
        points = _grid(tiny_config_module)
        reference = run_fault_map_grid(
            ParallelRunner.serial(), points, **_GRID_KWARGS
        )

        with SweepJournal.open_for_run(tmp_path, "figx", "deadbeef") as first:
            run_fault_map_grid(
                ParallelRunner.serial(), points, journal=first, **_GRID_KWARGS
            )
        # Simulate a crash after the first point: keep header + first entry.
        lines = first.path.read_text().splitlines(keepends=True)
        first.path.write_text("".join(lines[:2]))

        calls = self._counting(monkeypatch)
        with SweepJournal.open_for_run(
            tmp_path, "figx", "deadbeef", resume=True
        ) as resumed:
            assert resumed.replayed_entries == 1
            results = run_fault_map_grid(
                ParallelRunner.serial(), points, journal=resumed, **_GRID_KWARGS
            )
        assert all(_points_equal(a, b) for a, b in zip(results, reference))
        # Only the two unjournaled points were simulated (one batch each at
        # the default aggregation), and they were re-journaled for next time.
        assert 0 < calls.batches
        with SweepJournal.open_for_run(
            tmp_path, "figx", "deadbeef", resume=True
        ) as full:
            assert full.replayed_entries == len(points)
            calls.batches = 0
            results = run_fault_map_grid(
                ParallelRunner.serial(), points, journal=full, **_GRID_KWARGS
            )
        assert calls.batches == 0  # fully journaled -> zero work scheduled
        assert all(_points_equal(a, b) for a, b in zip(results, reference))

    def test_adaptive_resume_from_mid_point_rounds_is_byte_identical(
        self, tmp_path, tiny_config_module, monkeypatch
    ):
        points = _grid(tiny_config_module, snrs=(14.0, 18.0))
        adaptive = AdaptiveStopping(chunks_per_round=1, min_trials=4)
        kwargs = dict(_GRID_KWARGS, num_fault_maps=4, adaptive=adaptive)
        reference = run_fault_map_grid(ParallelRunner.serial(), points, **kwargs)

        with SweepJournal.open_for_run(tmp_path, "figx", "deadbeef") as first:
            run_fault_map_grid(
                ParallelRunner.serial(), points, journal=first, **kwargs
            )
        # Simulate a crash mid-point 0: keep the header plus only point 0's
        # round-level checkpoints (its completing fault_point entry is lost).
        kept = []
        for line in first.path.read_text().splitlines(keepends=True):
            entry = json.loads(line)
            if "journal_format" in entry or (
                entry.get("type") == "adaptive_round" and entry.get("point") == 0
            ):
                kept.append(line)
        assert len(kept) >= 2  # the adaptive path journaled per-round state
        first.path.write_text("".join(kept))

        with SweepJournal.open_for_run(
            tmp_path, "figx", "deadbeef", resume=True
        ) as resumed:
            assert resumed.adaptive_rounds(0)
            results = run_fault_map_grid(
                ParallelRunner.serial(), points, journal=resumed, **kwargs
            )
        assert all(_points_equal(a, b) for a, b in zip(results, reference))


# --------------------------------------------------------------------------- #
class TestCliResume:
    def _run_cli(self, cache_dir, out, *extra, check=True):
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "run",
            "fig6",
            "--scale",
            "smoke",
            "--seed",
            "2012",
            "--no-cache",
            "--cache-dir",
            str(cache_dir),
            "--out",
            str(out),
            *extra,
        ]
        env = dict(os.environ, PYTHONPATH="src")
        return subprocess.run(
            cmd, cwd=Path(__file__).resolve().parent.parent, env=env,
            capture_output=True, text=True, check=check, timeout=300,
        )

    def test_resume_flag_conflicts(self):
        from repro.runner.cli import _journal_dir

        with pytest.raises(ValueError, match="drop --no-journal"):
            _journal_dir(
                SimpleNamespace(resume=True, no_journal=True, cache_dir="c"),
                stochastic=True,
            )
        with pytest.raises(ValueError, match="analytical"):
            _journal_dir(
                SimpleNamespace(resume=True, no_journal=False, cache_dir="c"),
                stochastic=False,
            )
        assert (
            _journal_dir(
                SimpleNamespace(resume=False, no_journal=True, cache_dir="c"),
                stochastic=True,
            )
            is None
        )

    def test_kill_dash_nine_then_resume_is_byte_identical(self, tmp_path):
        reference_out = tmp_path / "reference.json"
        self._run_cli(tmp_path / "ref-cache", reference_out)
        reference = reference_out.read_bytes()

        cache_dir = tmp_path / "cache"
        out = tmp_path / "out.json"
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "run", "fig6",
                "--scale", "smoke", "--seed", "2012", "--no-cache",
                "--cache-dir", str(cache_dir), "--out", str(out),
            ],
            cwd=Path(__file__).resolve().parent.parent,
            env=dict(os.environ, PYTHONPATH="src"),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Kill -9 as soon as the journal holds completed work.  If the run
        # wins the race and finishes, the resume below still must reproduce
        # the reference (from an absent journal); the unit tests above cover
        # torn-tail recovery deterministically.
        journal_glob = cache_dir / "journal"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and victim.poll() is None:
            journals = list(journal_glob.glob("fig6-*.jsonl"))
            if journals and "fault_point" in journals[0].read_text():
                break
            time.sleep(0.01)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        resumed = self._run_cli(cache_dir, out, "--resume")
        assert out.read_bytes() == reference
        if "resumed" in resumed.stderr:
            assert "journal:" in resumed.stderr
        # Success deletes the journal: nothing left to resume.
        assert not list(journal_glob.glob("*.jsonl"))
