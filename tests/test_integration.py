"""End-to-end integration and property-based tests across subsystems.

These tests exercise the full paper methodology on small configurations:
the link chain (CRC → turbo → rate matching → 64QAM → multipath → MMSE →
HARQ → decode) with fault injection in the LLR storage, and the statistical
relationships between the circuit models and the system metrics that the
paper's conclusions rest on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MsbProtection,
    NoProtection,
    SystemLevelFaultSimulator,
)
from repro.link import HspaLikeLink, LinkConfig
from repro.memory.cells import CELL_6T, CELL_8T
from repro.memory.faults import FaultMap
from repro.memory.yield_model import acceptance_yield, min_defects_for_yield


@pytest.fixture(scope="module")
def small_config():
    """Shared small 64QAM configuration for the integration tests."""
    return LinkConfig(
        payload_bits=104,
        crc_bits=16,
        modulation="64QAM",
        effective_code_rate=0.7,
        turbo_iterations=3,
        max_transmissions=4,
    )


class TestEndToEndResilience:
    """The paper's central claims, exercised end to end on a small link."""

    def test_small_defect_rate_is_harmless(self, small_config):
        """Up to ~0.1% defects the throughput matches the defect-free system."""
        simulator = SystemLevelFaultSimulator(
            small_config, NoProtection(bits_per_word=10), num_fault_maps=2
        )
        clean = simulator.evaluate_defect_rate(26.0, 0.0, num_packets=10, rng=1)
        mild = simulator.evaluate_defect_rate(26.0, 0.001, num_packets=10, rng=1)
        assert mild.normalized_throughput >= 0.7 * clean.normalized_throughput

    def test_degradation_is_monotone_in_defect_rate(self, small_config):
        """Average transmissions grow (statistically) with the defect rate."""
        simulator = SystemLevelFaultSimulator(
            small_config, NoProtection(bits_per_word=10), num_fault_maps=2
        )
        points = simulator.defect_sweep(20.0, [0.0, 0.10], num_packets=10, rng=2)
        assert points[1].average_transmissions >= points[0].average_transmissions - 1e-9

    def test_preferential_protection_beats_unprotected_at_high_defects(self, small_config):
        """Protecting 4 MSBs recovers throughput at a 10% defect rate (Fig. 7)."""
        unprotected = SystemLevelFaultSimulator(
            small_config, NoProtection(bits_per_word=10), num_fault_maps=2
        )
        protected = SystemLevelFaultSimulator(
            small_config, MsbProtection(bits_per_word=10, protected_msbs=4), num_fault_maps=2
        )
        dirty = unprotected.evaluate_defect_rate(22.0, 0.10, num_packets=12, rng=3)
        fixed = protected.evaluate_defect_rate(22.0, 0.10, num_packets=12, rng=3)
        assert fixed.normalized_throughput >= dirty.normalized_throughput
        assert fixed.average_transmissions <= dirty.average_transmissions + 1e-9

    def test_protected_storage_close_to_defect_free(self, small_config):
        protected = SystemLevelFaultSimulator(
            small_config, MsbProtection(bits_per_word=10, protected_msbs=4), num_fault_maps=2
        )
        clean = protected.evaluate_defect_rate(26.0, 0.0, num_packets=10, rng=4)
        dirty = protected.evaluate_defect_rate(26.0, 0.10, num_packets=10, rng=4)
        assert dirty.normalized_throughput >= 0.6 * clean.normalized_throughput

    def test_harq_rescues_low_snr_packets(self, small_config):
        """Fig. 2's behaviour: retransmissions raise the delivery probability."""
        link = HspaLikeLink(small_config)
        result = link.simulate_packets(12, 12.0, rng=5)
        stats = result.statistics
        probabilities = stats.failure_probability_per_transmission()
        assert probabilities[-1] <= probabilities[0] + 1e-9

    def test_yield_story_consistent_with_voltage(self):
        """Accepting the defects the system tolerates buys voltage headroom."""
        cells = 16_800  # the default LLR storage of the quickstart configuration
        # At 0.8 V the 6T Pcell implies an acceptable defect count well below
        # 1% of the array, so a system tolerating 1% defects can run there.
        pcell_08 = CELL_6T.failure_probability(0.8)
        needed = min_defects_for_yield(pcell_08, cells, 0.95)
        assert needed / cells < 0.01
        # The 100%-correct criterion would essentially never yield at 0.7 V...
        pcell_07 = CELL_6T.failure_probability(0.7)
        assert acceptance_yield(pcell_07, cells, 0) < 0.05
        # ...but accepting 10% defects (the protected system's budget) does.
        assert acceptance_yield(pcell_07, cells, int(0.10 * cells)) > 0.95
        # And the 8T cells used for the protected MSBs are still reliable there.
        assert CELL_8T.failure_probability(0.7) < 1e-6


class TestCrossModuleConsistency:
    def test_fault_injection_rate_matches_request(self, small_config, rng):
        """The defect rate seen by the buffer equals the requested acceptance rate."""
        link = HspaLikeLink(small_config)
        num_faults = int(0.05 * small_config.llr_storage_cells)
        fault_map = FaultMap.with_exact_fault_count(
            small_config.llr_storage_words, small_config.llr_bits, num_faults, rng
        )
        buffer = link.make_buffer(fault_map=fault_map)
        assert buffer.defect_rate() == pytest.approx(0.05, abs=0.002)

    def test_simulator_uses_all_packets(self, small_config):
        simulator = SystemLevelFaultSimulator(
            small_config, NoProtection(bits_per_word=10), num_fault_maps=2
        )
        point = simulator.evaluate(26.0, 0, num_packets=8, rng=6)
        assert point.statistics.num_packets == 8
        assert len(point.per_map_throughput) == 2

    def test_protection_reduces_fallible_cells(self, small_config):
        for protected_bits in (0, 2, 4, 10):
            if protected_bits == 0:
                scheme = NoProtection(bits_per_word=10)
            else:
                scheme = MsbProtection(bits_per_word=10, protected_msbs=protected_bits)
            simulator = SystemLevelFaultSimulator(small_config, scheme, num_fault_maps=1)
            expected = small_config.llr_storage_words * (10 - protected_bits)
            assert simulator.fallible_cells == expected


class TestStatisticalProperties:
    @given(st.floats(min_value=0.55, max_value=1.1))
    @settings(max_examples=25, deadline=None)
    def test_cell_failure_monotone_in_voltage_property(self, vdd):
        assert CELL_6T.failure_probability(vdd) >= CELL_6T.failure_probability(vdd + 0.05)

    @given(
        st.floats(min_value=1e-5, max_value=0.05),
        st.integers(min_value=100, max_value=20_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_yield_acceptance_dominates_strict_property(self, pcell, cells):
        strict = acceptance_yield(pcell, cells, 0)
        relaxed = acceptance_yield(pcell, cells, max(1, cells // 100))
        assert relaxed >= strict

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_fault_maps_never_touch_protected_columns_property(self, num_faults):
        scheme = MsbProtection(bits_per_word=10, protected_msbs=4)
        fault_map = scheme.make_fault_map(100, num_faults, rng=num_faults)
        assert fault_map.faults_per_column()[:4].sum() == 0
        assert fault_map.num_faults == num_faults
