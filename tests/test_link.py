"""Tests for the link layer: configuration, transmitter, receiver and system."""

import numpy as np
import pytest

from repro.link import HspaLikeLink, LinkConfig, Receiver, Transmitter
from repro.memory.faults import FaultMap


class TestLinkConfig:
    def test_defaults_are_papers_mode(self):
        config = LinkConfig()
        assert config.modulation == "64QAM"
        assert config.llr_bits == 10
        assert config.max_transmissions == 4

    def test_block_size_includes_crc(self):
        config = LinkConfig(payload_bits=100, crc_bits=16)
        assert config.block_size == 116
        assert config.num_coded_bits == 348

    def test_channel_bits_multiple_of_symbol(self):
        config = LinkConfig(payload_bits=100, crc_bits=16, modulation="64QAM")
        assert config.channel_bits_per_transmission % 6 == 0
        assert config.symbols_per_transmission * 6 == config.channel_bits_per_transmission

    def test_storage_sizes(self):
        config = LinkConfig(payload_bits=100, crc_bits=16)
        per_tx = config.channel_bits_per_transmission * config.max_transmissions
        assert config.llr_storage_words == per_tx
        assert config.llr_storage_cells == per_tx * 10
        combined = config.with_updates(buffer_architecture="combined")
        assert combined.llr_storage_words == combined.num_coded_bits

    def test_effective_code_rate_bounds(self):
        with pytest.raises(ValueError):
            LinkConfig(effective_code_rate=0.0)
        with pytest.raises(ValueError):
            LinkConfig(effective_code_rate=1.2)

    def test_invalid_crc_bits(self):
        with pytest.raises(ValueError):
            LinkConfig(crc_bits=12)

    def test_invalid_modulation(self):
        with pytest.raises(ValueError):
            LinkConfig(modulation="BPSK")

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            LinkConfig(channel_profile="Mars")

    def test_invalid_buffer_architecture(self):
        with pytest.raises(ValueError):
            LinkConfig(buffer_architecture="holographic")

    def test_with_updates(self):
        config = LinkConfig(payload_bits=100)
        updated = config.with_updates(llr_bits=12)
        assert updated.llr_bits == 12
        assert updated.payload_bits == 100
        assert config.llr_bits == 10  # original unchanged

    def test_describe_mentions_key_parameters(self):
        text = LinkConfig().describe()
        assert "64QAM" in text and "10-bit" in text


class TestTransmitter:
    def test_encode_attaches_crc_and_systematic(self, tiny_config, rng):
        transmitter = Transmitter(tiny_config)
        payload = transmitter.random_payload(rng)
        packet = transmitter.encode(payload)
        assert packet.payload_with_crc.size == tiny_config.block_size
        assert np.array_equal(packet.coded_buffer[: tiny_config.block_size], packet.payload_with_crc)
        assert tiny_config.crc.check(packet.payload_with_crc)

    def test_wrong_payload_length_rejected(self, tiny_config):
        transmitter = Transmitter(tiny_config)
        with pytest.raises(ValueError):
            transmitter.encode(np.zeros(tiny_config.payload_bits + 1, dtype=np.int8))

    def test_transmission_bits_length(self, tiny_config, rng):
        transmitter = Transmitter(tiny_config)
        packet = transmitter.encode(transmitter.random_payload(rng))
        bits = transmitter.transmission_bits(packet, 0)
        assert bits.size == tiny_config.channel_bits_per_transmission

    def test_redundancy_versions_differ(self, tiny_config, rng):
        transmitter = Transmitter(tiny_config)
        packet = transmitter.encode(transmitter.random_payload(rng))
        rv0 = transmitter.transmission_bits(packet, 0)
        rv1 = transmitter.transmission_bits(packet, 1)
        assert not np.array_equal(rv0, rv1)

    def test_transmit_symbol_count(self, tiny_config, rng):
        transmitter = Transmitter(tiny_config)
        packet = transmitter.encode(transmitter.random_payload(rng))
        symbols = transmitter.transmit(packet, 0)
        assert symbols.size == tiny_config.symbols_per_transmission

    def test_spreading_multiplies_samples(self, rng):
        config = LinkConfig(payload_bits=56, crc_bits=16, spreading_factor=4)
        transmitter = Transmitter(config)
        packet = transmitter.encode(transmitter.random_payload(rng))
        samples = transmitter.transmit(packet, 0)
        assert samples.size == config.symbols_per_transmission * 4


class TestReceiverAndLink:
    def test_noiseless_single_transmission_decodes(self, tiny_config, rng):
        """Over an ideal channel, the first transmission must decode and pass CRC."""
        transmitter = Transmitter(tiny_config)
        receiver = Receiver(tiny_config, transmitter)
        payload = transmitter.random_payload(rng)
        packet = transmitter.encode(payload)
        symbols = transmitter.transmit(packet, 0)
        mother = receiver.process_transmission(symbols, np.array([1.0]), 1e-4, 0)
        decoded_payload, crc_ok, _ = receiver.decode(mother)
        assert crc_ok
        assert np.array_equal(decoded_payload, payload)

    def test_high_snr_link_first_transmission(self, tiny_config):
        link = HspaLikeLink(tiny_config)
        result = link.simulate_packets(6, 30.0, rng=0)
        assert result.statistics.block_error_rate == 0.0
        assert result.statistics.average_transmissions < 1.5

    def test_decoded_payloads_match_at_high_snr(self, tiny_config, rng):
        link = HspaLikeLink(tiny_config)
        payloads = [link.transmitter.random_payload(rng) for _ in range(3)]
        result = link.simulate_packets(3, 30.0, rng=1, payloads=payloads)
        for sent, outcome in zip(payloads, result.packet_results):
            assert outcome.success
            assert np.array_equal(outcome.decoded_bits, sent)

    def test_low_snr_uses_retransmissions(self, tiny_config):
        link = HspaLikeLink(tiny_config)
        low = link.simulate_packets(6, 4.0, rng=2)
        high = link.simulate_packets(6, 30.0, rng=2)
        assert low.statistics.average_transmissions > high.statistics.average_transmissions

    def test_throughput_increases_with_snr(self, tiny_64qam_config):
        link = HspaLikeLink(tiny_64qam_config)
        results = link.snr_sweep([10.0, 30.0], 6, rng=3)
        assert results[1].statistics.normalized_throughput >= results[0].statistics.normalized_throughput

    def test_single_packet_api(self, tiny_config):
        link = HspaLikeLink(tiny_config)
        result = link.simulate_single_packet(28.0, rng=4)
        assert result.num_transmissions >= 1
        assert isinstance(result.success, bool)

    def test_combined_architecture_also_works(self, rng):
        config = LinkConfig(
            payload_bits=56,
            crc_bits=16,
            modulation="16QAM",
            effective_code_rate=0.6,
            turbo_iterations=3,
            max_transmissions=3,
            buffer_architecture="combined",
        )
        link = HspaLikeLink(config)
        result = link.simulate_packets(4, 30.0, rng=rng)
        assert result.statistics.block_error_rate == 0.0

    def test_faulty_buffer_degrades_low_snr_performance(self, tiny_64qam_config):
        link = HspaLikeLink(tiny_64qam_config)
        config = tiny_64qam_config

        def faulty_factory(i):
            fault_map = FaultMap.with_exact_fault_count(
                config.llr_storage_words,
                config.llr_bits,
                int(0.10 * config.llr_storage_cells),
                rng=100 + i,
            )
            return link.make_buffer(fault_map=fault_map)

        clean = link.simulate_packets(8, 16.0, rng=5)
        dirty = link.simulate_packets(8, 16.0, rng=5, buffer_factory=faulty_factory)
        assert (
            dirty.statistics.average_transmissions
            >= clean.statistics.average_transmissions - 1e-9
        )

    def test_rake_receiver_variant_runs(self, tiny_config):
        link = HspaLikeLink(tiny_config, use_rake=True)
        result = link.simulate_packets(3, 30.0, rng=6)
        assert result.statistics.num_packets == 3

    def test_reproducibility(self, tiny_config):
        link = HspaLikeLink(tiny_config)
        first = link.simulate_packets(4, 15.0, rng=9)
        second = link.simulate_packets(4, 15.0, rng=9)
        assert first.statistics.as_dict() == second.statistics.as_dict()

    def test_payload_count_mismatch_rejected(self, tiny_config, rng):
        link = HspaLikeLink(tiny_config)
        with pytest.raises(ValueError):
            link.simulate_packets(3, 20.0, rng=1, payloads=[link.transmitter.random_payload(rng)])


class TestSnrSweep:
    def test_sweep_runs_each_point(self, tiny_config):
        link = HspaLikeLink(tiny_config)
        results = link.snr_sweep([10.0, 30.0], num_packets=2, rng=4)
        assert [r.snr_db for r in results] == [10.0, 30.0]
        assert all(r.statistics.num_packets == 2 for r in results)

    def test_empty_sweep_rejected(self, tiny_config):
        link = HspaLikeLink(tiny_config)
        with pytest.raises(ValueError, match="snr_points_db"):
            link.snr_sweep([], num_packets=2, rng=4)

    def test_payloads_forwarded_to_every_point(self, tiny_config, rng):
        link = HspaLikeLink(tiny_config)
        payloads = [link.transmitter.random_payload(rng) for _ in range(2)]
        results = link.snr_sweep([40.0, 45.0], num_packets=2, rng=4, payloads=payloads)
        # At near-noiseless SNR every packet decodes, and the decoded payloads
        # must be the ones supplied — proving the forwarding works.
        for result in results:
            for packet, payload in zip(result.packet_results, payloads):
                assert packet.success
                np.testing.assert_array_equal(packet.decoded_bits, payload)

    def test_payload_count_mismatch_rejected_in_sweep(self, tiny_config, rng):
        link = HspaLikeLink(tiny_config)
        with pytest.raises(ValueError):
            link.snr_sweep(
                [20.0], num_packets=3, rng=1, payloads=[link.transmitter.random_payload(rng)]
            )
