"""Tests for repro.utils (RNG handling and validation helpers)."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, child_rngs, spawn_seeds
from repro.utils.validation import (
    ensure_bit_array,
    ensure_choice,
    ensure_in_range,
    ensure_non_negative_int,
    ensure_positive_int,
    ensure_probability,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_seed_is_reproducible(self):
        assert as_rng(7).integers(0, 1000) == as_rng(7).integers(0, 1000)

    def test_different_seeds_differ(self):
        draws_a = as_rng(1).integers(0, 2**31, 8)
        draws_b = as_rng(2).integers(0, 2**31, 8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        assert isinstance(as_rng(np.random.SeedSequence(3)), np.random.Generator)


class TestChildRngs:
    def test_count(self):
        assert len(child_rngs(0, 5)) == 5

    def test_reproducible(self):
        first = [r.integers(0, 1000) for r in child_rngs(42, 3)]
        second = [r.integers(0, 1000) for r in child_rngs(42, 3)]
        assert first == second

    def test_children_are_independent(self):
        children = child_rngs(0, 2)
        a = children[0].integers(0, 2**31, 16)
        b = children[1].integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            child_rngs(0, -1)

    def test_zero_count(self):
        assert child_rngs(0, 0) == []

    def test_spawn_seeds_are_ints(self):
        seeds = spawn_seeds(1, 4)
        assert len(seeds) == 4
        assert all(isinstance(s, int) for s in seeds)


class TestValidation:
    def test_positive_int_accepts(self):
        assert ensure_positive_int(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, 1.5, "3", True])
    def test_positive_int_rejects(self, value):
        with pytest.raises((ValueError, TypeError)):
            ensure_positive_int(value, "x")

    def test_non_negative_int_accepts_zero(self):
        assert ensure_non_negative_int(0, "x") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative_int(-1, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_accepts(self, value):
        assert ensure_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_probability_rejects(self, value):
        with pytest.raises(ValueError):
            ensure_probability(value, "p")

    def test_in_range_inclusive(self):
        assert ensure_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_in_range_exclusive_rejects_boundary(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.0, "x", 0.0, 1.0, inclusive=False)

    def test_bit_array_accepts_valid(self):
        out = ensure_bit_array([0, 1, 1, 0])
        assert out.dtype == np.int8
        assert out.tolist() == [0, 1, 1, 0]

    def test_bit_array_rejects_non_binary(self):
        with pytest.raises(ValueError):
            ensure_bit_array([0, 2, 1])

    def test_bit_array_rejects_2d(self):
        with pytest.raises(ValueError):
            ensure_bit_array(np.zeros((2, 2)))

    def test_choice_accepts(self):
        assert ensure_choice("a", "x", ["a", "b"]) == "a"

    def test_choice_rejects(self):
        with pytest.raises(ValueError):
            ensure_choice("c", "x", ["a", "b"])


class TestResolveEntropy:
    def test_int_passes_through(self):
        from repro.utils.rng import resolve_entropy

        assert resolve_entropy(2012) == 2012

    def test_none_gives_fresh_entropy(self):
        from repro.utils.rng import resolve_entropy

        assert resolve_entropy(None) >= 0

    def test_seed_sequence_entropy_recovered(self):
        from repro.utils.rng import resolve_entropy

        assert resolve_entropy(np.random.SeedSequence(77)) == 77

    def test_generator_reduces_reproducibly(self):
        from repro.utils.rng import resolve_entropy

        first = resolve_entropy(np.random.default_rng(3))
        second = resolve_entropy(np.random.default_rng(3))
        assert first == second

    def test_negative_and_bool_rejected(self):
        from repro.utils.rng import resolve_entropy

        with pytest.raises(ValueError):
            resolve_entropy(-1)
        with pytest.raises(TypeError):
            resolve_entropy(True)
