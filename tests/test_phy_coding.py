"""Tests for interleaving, rate matching, convolutional and turbo coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.bits import random_bits
from repro.phy.convolutional import ConvolutionalCode, umts_convolutional_code
from repro.phy.interleaving import (
    ChannelInterleaver,
    Interleaver,
    block_interleaver,
    identity_interleaver,
    random_interleaver,
)
from repro.phy.rate_matching import (
    RateMatcher,
    make_systematic_priority_buffer,
    split_systematic_priority_buffer,
)
from repro.phy.turbo import TurboCode, TurboDecoder, TurboEncoder, UMTS_TRELLIS
from repro.phy.turbo.interleaver import pseudo_random_interleaver, qpp_interleaver


class TestInterleaving:
    @pytest.mark.parametrize("size", [7, 30, 100, 257])
    def test_block_interleaver_roundtrip(self, size, rng):
        interleaver = block_interleaver(size)
        data = rng.normal(size=size)
        assert np.allclose(interleaver.deinterleave(interleaver.interleave(data)), data)

    def test_identity_interleaver(self):
        interleaver = identity_interleaver(10)
        data = np.arange(10)
        assert np.array_equal(interleaver.interleave(data), data)

    def test_random_interleaver_roundtrip(self, rng):
        interleaver = random_interleaver(64, seed=1)
        data = rng.normal(size=64)
        assert np.allclose(interleaver.deinterleave(interleaver.interleave(data)), data)

    def test_inverse_property(self):
        interleaver = random_interleaver(32, seed=5)
        data = np.arange(32)
        assert np.array_equal(
            interleaver.inverse.interleave(interleaver.interleave(data)), data
        )

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            Interleaver(np.array([0, 0, 1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            identity_interleaver(4).interleave(np.zeros(5))

    def test_block_interleaver_spreads_bursts(self):
        interleaver = block_interleaver(120, num_columns=30)
        burst = np.arange(10)  # 10 adjacent input positions
        output_positions = np.array(
            [np.nonzero(interleaver.permutation == b)[0][0] for b in burst]
        )
        # After interleaving the burst must be spread far apart on average.
        spacing = np.diff(np.sort(output_positions))
        assert spacing.mean() > 2

    def test_channel_interleaver_caches_and_roundtrips(self, rng):
        channel_interleaver = ChannelInterleaver()
        for length in (60, 61, 60):
            data = rng.normal(size=length)
            assert np.allclose(
                channel_interleaver.deinterleave(channel_interleaver.interleave(data)), data
            )

    @given(st.integers(min_value=2, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_block_interleaver_is_permutation_property(self, size):
        interleaver = block_interleaver(size)
        assert np.array_equal(np.sort(interleaver.permutation), np.arange(size))


class TestRateMatching:
    def test_puncturing_selects_subset(self, rng):
        matcher = RateMatcher(num_coded_bits=300, num_output_bits=200)
        coded = random_bits(300, rng)
        out = matcher.rate_match(coded, 0)
        assert out.size == 200

    def test_repetition_wraps(self, rng):
        matcher = RateMatcher(num_coded_bits=90, num_output_bits=120)
        coded = random_bits(90, rng)
        out = matcher.rate_match(coded, 0)
        assert np.array_equal(out[:90], coded)
        assert np.array_equal(out[90:], coded[:30])

    def test_derate_match_accumulates(self):
        matcher = RateMatcher(num_coded_bits=10, num_output_bits=15)
        llrs = np.ones(15)
        buffer = matcher.derate_match(llrs, 0)
        assert buffer[:5].tolist() == [2.0] * 5
        assert buffer[5:].tolist() == [1.0] * 5

    def test_redundancy_versions_cover_more_bits(self):
        matcher = RateMatcher(num_coded_bits=300, num_output_bits=100)
        assert matcher.coverage([0]) == pytest.approx(1 / 3)
        assert matcher.coverage([0, 1]) > matcher.coverage([0])
        assert matcher.coverage([0, 1, 2, 3]) == pytest.approx(1.0)

    def test_rate_then_derate_identity_positions(self, rng):
        matcher = RateMatcher(num_coded_bits=120, num_output_bits=80)
        llrs = rng.normal(size=120)
        selected = matcher.rate_match(llrs, 1)
        buffer = matcher.derate_match(selected, 1)
        indices = matcher.output_indices(1)
        assert np.allclose(buffer[indices], llrs[indices])
        untouched = np.setdiff1d(np.arange(120), indices)
        assert np.allclose(buffer[untouched], 0.0)

    def test_effective_code_rate(self):
        matcher = RateMatcher(num_coded_bits=300, num_output_bits=200)
        assert matcher.effective_code_rate == pytest.approx(0.5)

    def test_wrong_lengths_rejected(self):
        matcher = RateMatcher(num_coded_bits=30, num_output_bits=20)
        with pytest.raises(ValueError):
            matcher.rate_match(np.zeros(29, dtype=np.int8), 0)
        with pytest.raises(ValueError):
            matcher.derate_match(np.zeros(19), 0)

    def test_priority_buffer_roundtrip(self, rng):
        systematic = random_bits(50, rng)
        parity1 = random_bits(50, rng)
        parity2 = random_bits(50, rng)
        buffer = make_systematic_priority_buffer(systematic, parity1, parity2)
        s, p1, p2 = split_systematic_priority_buffer(buffer, 50)
        assert np.array_equal(s, systematic)
        assert np.array_equal(p1, parity1)
        assert np.array_equal(p2, parity2)


class TestConvolutional:
    def test_encode_length(self):
        code = ConvolutionalCode()
        assert code.encode(np.zeros(10, dtype=np.int8)).size == code.num_coded_bits(10)

    def test_noiseless_decode(self, rng):
        code = ConvolutionalCode()
        bits = random_bits(60, rng)
        coded = code.encode(bits)
        decoded = code.decode(1.0 - 2.0 * coded.astype(float))
        assert np.array_equal(decoded, bits)

    def test_corrects_scattered_errors(self, rng):
        code = ConvolutionalCode(generators=(0o133, 0o171), constraint_length=7)
        bits = random_bits(100, rng)
        coded = code.encode(bits)
        llrs = 1.0 - 2.0 * coded.astype(float)
        # Flip a few well separated coded bits.
        for position in (10, 60, 120, 180):
            llrs[position] = -llrs[position]
        assert np.array_equal(code.decode(llrs), bits)

    def test_umts_code_parameters(self):
        code = umts_convolutional_code()
        assert code.rate == pytest.approx(1 / 3)
        assert code.num_states == 256

    def test_hard_decision_decode(self, rng):
        code = ConvolutionalCode()
        bits = random_bits(40, rng)
        assert np.array_equal(code.decode_hard(code.encode(bits)), bits)


class TestTurbo:
    def test_trellis_tables_consistent(self):
        trellis = UMTS_TRELLIS
        assert trellis.num_states == 8
        # Every state reachable from exactly two predecessors.
        counts = np.zeros(8, dtype=int)
        for state in range(8):
            for bit in (0, 1):
                counts[trellis.next_state[state, bit]] += 1
        assert np.all(counts == 2)

    def test_termination_input_drives_to_zero(self):
        trellis = UMTS_TRELLIS
        for state in range(8):
            current = state
            for _ in range(3):
                bit = int(trellis.termination_input[current])
                current = int(trellis.next_state[current, bit])
            assert current == 0

    def test_qpp_interleaver_is_permutation(self):
        for size in (40, 64, 104, 320):
            interleaver = qpp_interleaver(size)
            assert np.array_equal(np.sort(interleaver.permutation), np.arange(size))

    def test_pseudo_random_interleaver_reproducible(self):
        assert np.array_equal(
            pseudo_random_interleaver(100).permutation,
            pseudo_random_interleaver(100).permutation,
        )

    def test_encoder_output_length(self):
        encoder = TurboEncoder(96)
        assert encoder.encode(np.zeros(96, dtype=np.int8)).size == 288

    def test_encoder_systematic_part(self, rng):
        encoder = TurboEncoder(64)
        bits = random_bits(64, rng)
        coded = encoder.encode(bits)
        assert np.array_equal(coded[:64], bits)

    def test_decoder_noiseless(self, rng):
        code = TurboCode(96, num_iterations=4)
        bits = random_bits(96, rng)
        llrs = 8.0 * (1.0 - 2.0 * code.encode(bits).astype(float))
        result = code.decode_buffer(llrs)
        assert np.array_equal(result.decoded_bits[0], bits)

    def test_decoder_moderate_awgn(self, rng):
        code = TurboCode(200, num_iterations=6)
        bits = rng.integers(0, 2, (4, 200)).astype(np.int8)
        coded = np.stack([code.encode(b) for b in bits])
        ebn0 = 10 ** (2.5 / 10) / 3.0
        noise_variance = 1.0 / (2.0 * ebn0)
        received = (1.0 - 2.0 * coded) + rng.normal(0, np.sqrt(noise_variance), coded.shape)
        llrs = 2.0 * received / noise_variance
        result = code.decode_buffer(llrs)
        ber = np.mean(result.decoded_bits != bits)
        assert ber < 0.01

    def test_decoder_beats_uncoded(self, rng):
        code = TurboCode(150, num_iterations=5)
        bits = rng.integers(0, 2, (4, 150)).astype(np.int8)
        coded = np.stack([code.encode(b) for b in bits])
        noise_variance = 0.8
        received = (1.0 - 2.0 * coded) + rng.normal(0, np.sqrt(noise_variance), coded.shape)
        llrs = 2.0 * received / noise_variance
        decoded = code.decode_buffer(llrs).decoded_bits
        coded_ber = np.mean(decoded != bits)
        uncoded_ber = np.mean((received < 0).astype(np.int8) != coded)
        assert coded_ber < uncoded_ber

    def test_batch_matches_single(self, rng):
        code = TurboCode(80, num_iterations=3)
        bits = rng.integers(0, 2, (3, 80)).astype(np.int8)
        coded = np.stack([code.encode(b) for b in bits])
        llrs = 4.0 * (1.0 - 2.0 * coded.astype(float))
        batch = code.decode_buffer(llrs).decoded_bits
        singles = np.stack([code.decode_buffer(llrs[i]).decoded_bits[0] for i in range(3)])
        assert np.array_equal(batch, singles)

    def test_early_stopping_reports_convergence(self, rng):
        code = TurboCode(80, num_iterations=8)
        bits = random_bits(80, rng)
        llrs = 10.0 * (1.0 - 2.0 * code.encode(bits).astype(float))
        result = code.decode_buffer(llrs)
        assert result.iterations_run < 8
        assert result.converged.all()

    def test_decoder_wrong_length_rejected(self):
        code = TurboCode(50)
        with pytest.raises(ValueError):
            code.decode_buffer(np.zeros(100))

    def test_decoder_erasures_give_chance_output(self):
        decoder = TurboDecoder(40, num_iterations=2)
        result = decoder.decode(np.zeros((1, 40)), np.zeros((1, 40)), np.zeros((1, 40)))
        assert result.decoded_bits.shape == (1, 40)
