"""Tests for QAM modulation/demapping, OVSF spreading and RRC pulse shaping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.bits import random_bits
from repro.phy.modulation import MODULATIONS, Modulator, get_modulator
from repro.phy.pulse_shaping import PulseShaper, rrc_taps
from repro.phy.spreading import Spreader, cross_correlation, ovsf_code, ovsf_code_tree


class TestModulation:
    @pytest.mark.parametrize("name", ["QPSK", "16QAM", "64QAM"])
    def test_unit_average_energy(self, name):
        assert get_modulator(name).average_symbol_energy() == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("name", ["QPSK", "16QAM", "64QAM"])
    def test_noiseless_roundtrip(self, name, rng):
        modulator = get_modulator(name)
        bits = random_bits(modulator.bits_per_symbol * 200, rng)
        symbols = modulator.modulate(bits)
        hard = modulator.demodulate_hard(symbols)
        assert np.array_equal(hard[: bits.size], bits)

    @pytest.mark.parametrize("name", ["QPSK", "16QAM", "64QAM"])
    def test_soft_llr_signs_match_bits_noiseless(self, name, rng):
        modulator = get_modulator(name)
        bits = random_bits(modulator.bits_per_symbol * 100, rng)
        llrs = modulator.demodulate_soft(modulator.modulate(bits), noise_variance=0.1)
        assert np.array_equal((llrs < 0).astype(np.int8)[: bits.size], bits)

    def test_constellation_size(self):
        assert get_modulator("64QAM").constellation().size == 64

    def test_constellation_gray_property(self):
        modulator = get_modulator("16QAM")
        points = modulator.constellation()
        # Nearest neighbours in the constellation differ in exactly one bit.
        min_distance = np.min(
            [
                np.abs(points[i] - points[j])
                for i in range(16)
                for j in range(16)
                if i != j
            ]
        )
        for i in range(16):
            for j in range(16):
                if i != j and np.abs(points[i] - points[j]) < min_distance * 1.01:
                    assert bin(i ^ j).count("1") == 1

    def test_llr_magnitude_scales_with_noise(self, rng):
        modulator = get_modulator("16QAM")
        bits = random_bits(400, rng)
        symbols = modulator.modulate(bits)
        quiet = np.mean(np.abs(modulator.demodulate_soft(symbols, 0.01)))
        loud = np.mean(np.abs(modulator.demodulate_soft(symbols, 1.0)))
        assert quiet > loud

    def test_awgn_ber_decreases_with_snr(self, rng):
        modulator = get_modulator("16QAM")
        bits = random_bits(4 * 3000, rng)
        symbols = modulator.modulate(bits)
        bers = []
        for snr_db in (5.0, 15.0):
            n0 = 10 ** (-snr_db / 10)
            noisy = symbols + (
                rng.normal(0, np.sqrt(n0 / 2), symbols.shape)
                + 1j * rng.normal(0, np.sqrt(n0 / 2), symbols.shape)
            )
            hard = (modulator.demodulate_soft(noisy, n0) < 0).astype(np.int8)
            bers.append(np.mean(hard[: bits.size] != bits))
        assert bers[1] < bers[0]

    def test_odd_bits_per_symbol_rejected(self):
        with pytest.raises(ValueError):
            Modulator(3)

    def test_unknown_modulation_rejected(self):
        with pytest.raises(ValueError):
            get_modulator("256QAM")

    def test_registry_names(self):
        assert set(MODULATIONS) == {"QPSK", "16QAM", "64QAM"}

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    @settings(max_examples=30, deadline=None)
    def test_single_symbol_roundtrip_property(self, pattern):
        modulator = get_modulator("64QAM")
        bits = np.array([(pattern >> (11 - i)) & 1 for i in range(12)], dtype=np.int8)
        hard = modulator.demodulate_hard(modulator.modulate(bits))
        assert np.array_equal(hard[:12], bits)


class TestSpreading:
    def test_ovsf_codes_are_orthogonal(self):
        tree = ovsf_code_tree(16)
        gram = tree @ tree.T / 16
        assert np.allclose(gram, np.eye(16), atol=1e-12)

    @pytest.mark.parametrize("sf", [2, 4, 8, 16, 32])
    def test_ovsf_code_values(self, sf):
        for index in (0, sf // 2, sf - 1):
            code = ovsf_code(sf, index)
            assert code.size == sf
            assert set(np.unique(code)).issubset({-1.0, 1.0})

    def test_ovsf_matches_tree(self):
        tree = ovsf_code_tree(8)
        for index in range(8):
            assert np.array_equal(ovsf_code(8, index), tree[index])

    def test_ovsf_invalid_sf(self):
        with pytest.raises(ValueError):
            ovsf_code(12, 0)

    def test_spread_despread_roundtrip(self, rng):
        spreader = Spreader(spreading_factor=8, code_index=3)
        symbols = rng.normal(size=64) + 1j * rng.normal(size=64)
        recovered = spreader.despread(spreader.spread(symbols))
        assert np.allclose(recovered, symbols, atol=1e-12)

    def test_despread_rejects_partial_symbol(self):
        spreader = Spreader(spreading_factor=4)
        with pytest.raises(ValueError):
            spreader.despread(np.zeros(6, dtype=complex))

    def test_processing_gain(self):
        assert Spreader(spreading_factor=16).processing_gain_db() == pytest.approx(12.04, abs=0.01)

    def test_other_user_rejected(self, rng):
        """A different OVSF code despreads to (near) zero — CDMA orthogonality."""
        user_a = Spreader(spreading_factor=8, code_index=1)
        user_b = Spreader(spreading_factor=8, code_index=5)
        symbols = rng.normal(size=32) + 1j * rng.normal(size=32)
        chips = user_a.spread(symbols)
        leaked = user_b.despread(chips)
        assert np.max(np.abs(leaked)) < 1e-10

    def test_cross_correlation_identical_code(self):
        code = ovsf_code(8, 2)
        assert cross_correlation(code, code) == pytest.approx(1.0)


class TestPulseShaping:
    def test_rrc_taps_unit_energy(self):
        taps = rrc_taps(8, 4, 0.22)
        assert np.sum(taps**2) == pytest.approx(1.0, rel=1e-9)

    def test_rrc_taps_symmetric(self):
        taps = rrc_taps(6, 4, 0.22)
        assert np.allclose(taps, taps[::-1], atol=1e-12)

    def test_matched_filter_recovers_chips(self, rng):
        shaper = PulseShaper(samples_per_symbol=4, span_symbols=10)
        chips = (1 - 2 * rng.integers(0, 2, 128)) + 1j * (1 - 2 * rng.integers(0, 2, 128))
        waveform = shaper.shape(chips)
        recovered = shaper.matched_filter(waveform, chips.size)
        # The cascade is only approximately ISI-free over a finite span.
        correlation = np.abs(np.vdot(recovered, chips)) / (
            np.linalg.norm(recovered) * np.linalg.norm(chips)
        )
        assert correlation > 0.98

    def test_end_to_end_response_peak_at_center(self):
        shaper = PulseShaper(samples_per_symbol=4, span_symbols=8)
        response = shaper.end_to_end_response()
        assert np.argmax(np.abs(response)) == response.size // 2

    def test_matched_filter_too_short_raises(self):
        shaper = PulseShaper()
        with pytest.raises(ValueError):
            shaper.matched_filter(np.zeros(10, dtype=complex), 100)
