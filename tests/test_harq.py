"""Tests for the HARQ subsystem: buffers, combining, controller and metrics."""

import numpy as np
import pytest

from repro.harq.buffer import LlrSoftBuffer, TransmissionSoftBuffer
from repro.harq.combining import (
    CombiningScheme,
    chase_combine,
    effective_snr_gain_db,
    incremental_redundancy_combine,
)
from repro.harq.controller import HarqController, HarqPacketResult
from repro.harq.metrics import aggregate_results
from repro.memory.faults import FaultMap
from repro.phy.quantization import LlrQuantizer


class TestCombining:
    def test_chase_adds(self):
        assert np.array_equal(chase_combine(np.ones(4), 2 * np.ones(4)), 3 * np.ones(4))

    def test_ir_adds(self):
        combined = incremental_redundancy_combine(np.array([1.0, 0.0]), np.array([0.0, 2.0]))
        assert combined.tolist() == [1.0, 2.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chase_combine(np.ones(3), np.ones(4))

    def test_chase_rv_schedule(self):
        scheme = CombiningScheme.CHASE
        assert [scheme.redundancy_version(i) for i in range(4)] == [0, 0, 0, 0]

    def test_ir_rv_schedule(self):
        scheme = CombiningScheme.INCREMENTAL_REDUNDANCY
        assert [scheme.redundancy_version(i) for i in range(5)] == [0, 1, 2, 3, 0]

    def test_snr_gain(self):
        assert effective_snr_gain_db(2) == pytest.approx(3.0103, abs=1e-3)


class TestLlrSoftBuffer:
    def test_empty_reads_zeros(self):
        buffer = LlrSoftBuffer(num_llrs=20)
        assert buffer.is_empty
        assert np.array_equal(buffer.load(), np.zeros(20))

    def test_store_load_roundtrip(self, rng):
        buffer = LlrSoftBuffer(num_llrs=100, quantizer=LlrQuantizer(num_bits=10))
        llrs = rng.normal(0, 10, 100)
        buffer.store(llrs)
        assert np.allclose(buffer.load(), llrs, atol=buffer.quantizer.step)

    def test_combine_accumulates(self, rng):
        buffer = LlrSoftBuffer(num_llrs=50)
        first = rng.normal(0, 5, 50)
        second = rng.normal(0, 5, 50)
        buffer.combine_and_store(first)
        combined = buffer.combine_and_store(second)
        assert np.allclose(combined, first + second, atol=3 * buffer.quantizer.step)

    def test_faulty_buffer_corrupts(self, rng):
        fault_map = FaultMap.with_exact_fault_count(100, 10, 200, rng)
        buffer = LlrSoftBuffer(num_llrs=100, fault_map=fault_map)
        llrs = rng.normal(0, 10, 100)
        buffer.store(llrs)
        assert not np.allclose(buffer.load(), llrs, atol=buffer.quantizer.step)

    def test_clear_resets(self, rng):
        buffer = LlrSoftBuffer(num_llrs=10)
        buffer.store(rng.normal(size=10))
        buffer.clear()
        assert buffer.is_empty

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            LlrSoftBuffer(num_llrs=10).store(np.zeros(11))

    def test_defect_rate(self, rng):
        fault_map = FaultMap.with_exact_fault_count(100, 10, 100, rng)
        buffer = LlrSoftBuffer(num_llrs=100, fault_map=fault_map)
        assert buffer.defect_rate() == pytest.approx(0.1)


class TestTransmissionSoftBuffer:
    def _derate_identity(self, llrs, _rv):
        return llrs

    def test_store_and_combine(self, rng):
        buffer = TransmissionSoftBuffer(words_per_transmission=60, num_slots=3)
        first = rng.normal(0, 5, 60)
        second = rng.normal(0, 5, 60)
        buffer.store_transmission(0, first, 0)
        buffer.store_transmission(1, second, 1)
        combined = buffer.combined_mother_llrs(self._derate_identity)
        assert np.allclose(combined, first + second, atol=2 * buffer.quantizer.step)
        assert buffer.num_stored_transmissions == 2

    def test_empty_combine_rejected(self):
        buffer = TransmissionSoftBuffer(words_per_transmission=10, num_slots=2)
        with pytest.raises(ValueError):
            buffer.combined_mother_llrs(self._derate_identity)

    def test_faults_partitioned_across_slots(self, rng):
        fault_map = FaultMap.with_exact_fault_count(40, 10, 100, rng)
        buffer = TransmissionSoftBuffer(
            words_per_transmission=20, num_slots=2, fault_map=fault_map
        )
        assert buffer.num_cells == 400
        assert buffer.defect_rate() == pytest.approx(0.25)

    def test_fault_only_corrupts_its_slot(self, rng):
        # All faults in the first slot's rows.
        mask = np.zeros((40, 10), dtype=bool)
        mask[:20, :] = rng.random((20, 10)) < 0.5
        fault_map = FaultMap(40, 10, mask)
        buffer = TransmissionSoftBuffer(
            words_per_transmission=20, num_slots=2, fault_map=fault_map
        )
        llrs = rng.normal(0, 5, 20)
        buffer.store_transmission(0, llrs, 0)
        buffer.store_transmission(1, llrs, 0)
        corrupted, _ = buffer.load_transmission(0)
        clean, _ = buffer.load_transmission(1)
        assert not np.allclose(corrupted, clean)
        assert np.allclose(clean, llrs, atol=buffer.quantizer.step)

    def test_fault_map_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TransmissionSoftBuffer(
                words_per_transmission=10, num_slots=2, fault_map=FaultMap.empty(10, 10)
            )

    def test_clear(self, rng):
        buffer = TransmissionSoftBuffer(words_per_transmission=10, num_slots=2)
        buffer.store_transmission(0, rng.normal(size=10), 0)
        buffer.clear()
        assert buffer.num_stored_transmissions == 0


class TestHarqController:
    def _make_controller(self, max_transmissions=4):
        buffer = LlrSoftBuffer(num_llrs=30)
        return HarqController(buffer, max_transmissions=max_transmissions)

    def test_success_on_first_transmission(self):
        controller = self._make_controller()
        result = controller.run_packet(
            lambda t, rv: np.ones(30),
            lambda combined: (np.ones(10, dtype=np.int8), True),
        )
        assert result.success
        assert result.num_transmissions == 1

    def test_retries_until_success(self):
        controller = self._make_controller()
        attempts = {"count": 0}

        def decode(_combined):
            attempts["count"] += 1
            return np.zeros(10, dtype=np.int8), attempts["count"] >= 3

        result = controller.run_packet(lambda t, rv: np.ones(30), decode)
        assert result.success
        assert result.num_transmissions == 3
        assert result.failure_history == [True, True, False]

    def test_gives_up_after_budget(self):
        controller = self._make_controller(max_transmissions=2)
        result = controller.run_packet(
            lambda t, rv: np.ones(30),
            lambda combined: (np.zeros(10, dtype=np.int8), False),
        )
        assert not result.success
        assert result.num_transmissions == 2

    def test_combining_visible_to_decoder(self):
        controller = self._make_controller(max_transmissions=3)
        seen = []

        def decode(combined):
            seen.append(combined.copy())
            return np.zeros(4, dtype=np.int8), False

        controller.run_packet(lambda t, rv: np.ones(30), decode)
        # Soft values grow with each combined transmission.
        assert seen[1].sum() > seen[0].sum()
        assert seen[2].sum() > seen[1].sum()

    def test_redundancy_versions_follow_schedule(self):
        controller = self._make_controller(max_transmissions=4)
        seen_rvs = []

        def transmit(_t, rv):
            seen_rvs.append(rv)
            return np.zeros(30)

        controller.run_packet(transmit, lambda c: (np.zeros(4, dtype=np.int8), False))
        assert seen_rvs == [0, 1, 2, 3]


class TestMetrics:
    def _results(self):
        return [
            HarqPacketResult(success=True, num_transmissions=1, failure_history=[False]),
            HarqPacketResult(success=True, num_transmissions=3, failure_history=[True, True, False]),
            HarqPacketResult(success=False, num_transmissions=4, failure_history=[True] * 4),
        ]

    def test_aggregate_counts(self):
        stats = aggregate_results(self._results(), info_bits_per_packet=100)
        assert stats.num_packets == 3
        assert stats.num_successful == 2
        assert stats.total_transmissions == 8

    def test_throughput_and_bler(self):
        stats = aggregate_results(self._results(), 100)
        assert stats.normalized_throughput == pytest.approx(2 / 8)
        assert stats.block_error_rate == pytest.approx(1 / 3)
        assert stats.average_transmissions == pytest.approx(8 / 3)
        assert stats.throughput_bits_per_transmission == pytest.approx(25.0)

    def test_failure_probability_per_transmission(self):
        stats = aggregate_results(self._results(), 100)
        probabilities = stats.failure_probability_per_transmission()
        # After Tx1: 2 of 3 packets still failed; after Tx4: 1 of 1 failed.
        assert probabilities[0] == pytest.approx(2 / 3)
        assert probabilities[-1] == pytest.approx(1.0)

    def test_empty_aggregate(self):
        stats = aggregate_results([], 100)
        assert stats.num_packets == 0
        assert stats.normalized_throughput == 0.0

    def test_as_dict_keys(self):
        stats = aggregate_results(self._results(), 100)
        assert {"block_error_rate", "normalized_throughput"} <= set(stats.as_dict())

    def test_type_check(self):
        with pytest.raises(TypeError):
            aggregate_results([object()], 10)
