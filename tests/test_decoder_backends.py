"""Decoder-backend engine: registry, equivalence, early stopping, batching.

The contracts pinned here are the ones the rest of the system builds on:

* the registry resolves names, auto-detects numba and falls back cleanly;
* every backend decodes rows independently (batch composition never changes
  a row's output) — the invariant behind cross-work-item batch aggregation;
* the float32 and numba paths agree with the default numpy/float64 backend
  within tolerance;
* ``converged`` is meaningful for ``num_iterations == 1`` (measured against
  the pre-iteration hard decisions);
* the result cache keys on the backend that actually ran (name + dtype).
"""

import numpy as np
import pytest

from repro.phy.turbo import TurboCode, TurboDecoder
from repro.phy.turbo.backends import (
    AUTO_PREFERENCE,
    BackendSpec,
    NumpySisoBackend,
    available_backends,
    backend_is_exact,
    backend_names,
    create_backend,
    parse_backend_name,
    resolve_backend,
)
from repro.phy.turbo.trellis import UMTS_TRELLIS
from repro.runner.cache import config_digest, decoder_backend_identity
from repro.runner.cli import run_identity


def _numba_available() -> bool:
    return "numba" in available_backends()


def _native_available() -> bool:
    return "native" in available_backends()


def _noisy_batch(code: TurboCode, batch: int, rng, amp: float = 2.0, sigmas=(0.6, 1.4, 2.4, 3.2)):
    """Encode random payloads and add per-row noise of varying strength."""
    k = code.block_size
    rows = []
    for i in range(batch):
        bits = rng.integers(0, 2, k, dtype=np.int8)
        coded = code.encode(bits)
        noise = rng.normal(0.0, sigmas[i % len(sigmas)], coded.size)
        rows.append((1.0 - 2.0 * coded.astype(np.float64)) * amp + noise)
    llrs = np.stack(rows)
    sys_llrs = llrs[:, :k]
    par1 = np.ascontiguousarray(llrs[:, k::2])
    par2 = np.ascontiguousarray(llrs[:, k + 1 :: 2])
    return sys_llrs, par1, par2


class TestRegistry:
    def test_backend_names_include_families_and_auto(self):
        names = backend_names()
        assert "auto" in names and "numpy" in names and "numba" in names
        assert "numpy-f32" in names

    def test_parse_tokens(self):
        assert parse_backend_name("numpy") == BackendSpec("numpy", "float64")
        assert parse_backend_name("numpy-f32") == BackendSpec("numpy", "float32")
        assert parse_backend_name("NUMPY-F64") == BackendSpec("numpy", "float64")
        assert parse_backend_name("auto").family == "auto"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown decoder backend"):
            parse_backend_name("cuda")

    def test_auto_resolves_to_an_available_family(self):
        spec = resolve_backend("auto")
        expected = next(
            f for f in AUTO_PREFERENCE if f in {t for t in available_backends()}
        )
        assert spec.family == expected
        if not _native_available() and not _numba_available():
            assert spec.family == "numpy"

    def test_thread_suffix_parses(self):
        spec = parse_backend_name("native-f32@t4")
        assert spec == BackendSpec("native", "float32", 4)
        assert spec.name == "native-f32"  # thread count excluded from identity
        assert spec.display_name == "native-f32@t4"
        assert parse_backend_name("native@t2") == BackendSpec("native", "float64", 2)
        assert parse_backend_name("numpy").num_threads == 1

    def test_thread_suffix_rejects_zero_and_garbage(self):
        with pytest.raises(ValueError, match="zero threads"):
            parse_backend_name("native@t0")
        with pytest.raises(ValueError, match="unknown decoder backend"):
            parse_backend_name("native@threads4")

    def test_thread_suffix_on_single_threaded_family_normalises(self):
        with pytest.warns(RuntimeWarning, match="single-threaded"):
            spec = resolve_backend("numpy@t4")
        assert spec == BackendSpec("numpy", "float64", 1)

    def test_numba_falls_back_to_numpy_when_missing(self):
        if _numba_available():
            pytest.skip("numba present; fallback path not reachable")
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            spec = resolve_backend("numba")
        assert spec == BackendSpec("numpy", "float64")
        # dtype is preserved through the fallback
        assert resolve_backend("numba-f32", warn=False).dtype_name == "float32"

    def test_native_falls_back_to_numpy_when_missing(self):
        if _native_available():
            pytest.skip("native extension built; fallback path not reachable")
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            spec = resolve_backend("native-f32@t4")
        assert spec.family == "numpy" and spec.dtype_name == "float32"

    def test_exactness_classification(self):
        assert backend_is_exact("numpy") and backend_is_exact("numpy-f32")
        # native/cupy requests resolve before classification, so when the
        # family is unavailable the verdict describes the numpy fallback.
        if _native_available():
            assert not backend_is_exact("native")
        else:
            assert backend_is_exact("native")

    def test_create_backend_passes_instances_through(self):
        backend = NumpySisoBackend(UMTS_TRELLIS, 40)
        assert create_backend(backend, UMTS_TRELLIS, 40) is backend

    def test_spec_names(self):
        assert BackendSpec("numpy", "float64").name == "numpy"
        assert BackendSpec("numba", "float32").name == "numba-f32"


class TestBackendEquivalence:
    def test_float32_matches_float64_decisions(self, rng):
        code = TurboCode(120, num_iterations=4)
        sys_llrs, par1, par2 = _noisy_batch(code, 12, rng)
        d64 = TurboDecoder(120, 4, interleaver=code.encoder.interleaver)
        d32 = TurboDecoder(120, 4, interleaver=code.encoder.interleaver, backend="numpy-f32")
        r64 = d64.decode(sys_llrs, par1, par2)
        r32 = d32.decode(sys_llrs, par1, par2)
        assert r32.app_llrs.dtype == np.float64  # API dtype is stable
        # Decisions agree on every confidently-decoded bit; APP magnitudes
        # agree to float32 resolution.
        confident = np.abs(r64.app_llrs) > 0.05
        assert np.array_equal(
            r64.decoded_bits[confident], r32.decoded_bits[confident]
        )
        scale = np.maximum(np.abs(r64.app_llrs), 1.0)
        assert np.max(np.abs(r64.app_llrs - r32.app_llrs) / scale) < 1e-2

    @pytest.mark.skipif(not _numba_available(), reason="numba not installed")
    def test_numba_matches_numpy(self, rng):
        code = TurboCode(96, num_iterations=4)
        sys_llrs, par1, par2 = _noisy_batch(code, 8, rng)
        ref = TurboDecoder(96, 4, interleaver=code.encoder.interleaver)
        jit = TurboDecoder(96, 4, interleaver=code.encoder.interleaver, backend="numba")
        r_ref = ref.decode(sys_llrs, par1, par2)
        r_jit = jit.decode(sys_llrs, par1, par2)
        assert np.array_equal(r_ref.decoded_bits, r_jit.decoded_bits)
        np.testing.assert_allclose(r_ref.app_llrs, r_jit.app_llrs, rtol=1e-9, atol=1e-9)

    def test_workspace_reuse_is_stateless(self, rng):
        """Repeated calls through one backend instance give identical output."""
        code = TurboCode(64, num_iterations=3)
        decoder = TurboDecoder(64, 3, interleaver=code.encoder.interleaver)
        sys_llrs, par1, par2 = _noisy_batch(code, 6, rng)
        first = decoder.decode(sys_llrs, par1, par2)
        second = decoder.decode(sys_llrs, par1, par2)
        assert np.array_equal(first.app_llrs, second.app_llrs)
        # Interleaving a different-shaped call must not corrupt the next one.
        decoder.decode(sys_llrs[:2], par1[:2], par2[:2])
        third = decoder.decode(sys_llrs, par1, par2)
        assert np.array_equal(first.app_llrs, third.app_llrs)


class TestFamilyConformance:
    """One sweep, every available family, the exactness contract applied.

    Exact families must reproduce the numpy/float64 reference bit-for-bit at
    float64; max-log families (``native``, ``cupy``) evaluate the same
    equations in a different operation order and are held to decision-level
    agreement on confidently-decoded bits plus an APP tolerance — and, in
    :class:`TestNativeBackend`, a paired-seed BLER delta bound.
    """

    @pytest.fixture(scope="class")
    def conformance_workload(self):
        code = TurboCode(104, num_iterations=4)
        rng = np.random.default_rng(2012)
        inputs = _noisy_batch(code, 12, rng)
        reference = TurboDecoder(
            104, 4, interleaver=code.encoder.interleaver, backend="numpy"
        ).decode(*inputs)
        return code, inputs, reference

    @pytest.mark.parametrize("family", ["numpy", "numba", "native", "cupy"])
    def test_family_agrees_with_reference(self, conformance_workload, family):
        if family not in available_backends():
            pytest.skip(f"{family} family unavailable on this machine")
        code, inputs, reference = conformance_workload
        result = TurboDecoder(
            104, 4, interleaver=code.encoder.interleaver, backend=family
        ).decode(*inputs)
        if backend_is_exact(family):
            assert np.array_equal(reference.app_llrs, result.app_llrs)
            assert np.array_equal(reference.decoded_bits, result.decoded_bits)
        else:
            confident = np.abs(reference.app_llrs) > 0.05
            assert np.array_equal(
                reference.decoded_bits[confident], result.decoded_bits[confident]
            )
            scale = np.maximum(np.abs(reference.app_llrs), 1.0)
            assert np.max(np.abs(reference.app_llrs - result.app_llrs) / scale) < 1e-6

    @pytest.mark.parametrize("family", ["numpy", "numba", "native", "cupy"])
    def test_family_f32_decisions_agree(self, conformance_workload, family):
        if family not in available_backends():
            pytest.skip(f"{family} family unavailable on this machine")
        code, inputs, reference = conformance_workload
        result = TurboDecoder(
            104, 4, interleaver=code.encoder.interleaver, backend=f"{family}-f32"
        ).decode(*inputs)
        assert result.app_llrs.dtype == np.float64  # API dtype is stable
        confident = np.abs(reference.app_llrs) > 0.05
        assert np.array_equal(
            reference.decoded_bits[confident], result.decoded_bits[confident]
        )


@pytest.mark.skipif(not _native_available(), reason="native extension not built")
class TestNativeBackend:
    def test_thread_count_never_changes_results(self, rng):
        """`@t<N>` is pure topology: any thread count, identical bytes."""
        code = TurboCode(88, num_iterations=4)
        inputs = _noisy_batch(code, 13, rng)  # odd batch: uneven slices
        results = [
            TurboDecoder(
                88, 4, interleaver=code.encoder.interleaver, backend=token
            ).decode(*inputs)
            for token in ("native-f32", "native-f32@t2", "native-f32@t4")
        ]
        for other in results[1:]:
            assert np.array_equal(results[0].app_llrs, other.app_llrs)
            assert np.array_equal(results[0].decoded_bits, other.decoded_bits)

    def test_batch_one_and_uneven_batches(self, rng):
        """Row independence holds for the native kernel too."""
        code = TurboCode(72, num_iterations=4)
        inputs = _noisy_batch(code, 7, rng)
        decoder = TurboDecoder(
            72, 4, interleaver=code.encoder.interleaver, backend="native"
        )
        batched = decoder.decode(*inputs)
        for row in range(7):
            solo = decoder.decode(
                inputs[0][row], inputs[1][row], inputs[2][row]
            )
            assert np.array_equal(solo.app_llrs[0], batched.app_llrs[row]), row

    def test_unterminated_start_supported(self, rng):
        """The second constituent decoder starts unterminated — both values
        of the flag must flow through the C kernel."""
        from repro.phy.turbo.backends.native_backend import NativeSisoBackend

        code = TurboCode(48, num_iterations=2)
        sys_llrs, par1, _ = _noisy_batch(code, 5, rng)
        native = NativeSisoBackend(UMTS_TRELLIS, 48, BackendSpec("native", "float64"))
        ref = NumpySisoBackend(UMTS_TRELLIS, 48, BackendSpec("numpy", "float64"))
        apriori = np.zeros_like(sys_llrs)
        for terminated in (True, False):
            got = native.siso(
                sys_llrs, par1, apriori, np.empty_like(sys_llrs),
                terminated_start=terminated,
            )
            want = ref.siso(
                sys_llrs, par1, apriori, np.empty_like(sys_llrs),
                terminated_start=terminated,
            )
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_bler_parity_with_reference(self):
        """Paired-seed sweep: native BLER within tolerance of numpy's."""
        from repro.runner.bench import run_decoder_bler_parity

        parity = run_decoder_bler_parity("native-f32", num_packets=16)
        assert parity["within_tolerance"], parity


class TestBatchCompositionIndependence:
    """The invariant behind cross-work-item decode aggregation."""

    @pytest.mark.parametrize("backend", ["numpy", "numpy-f32"])
    def test_rows_decode_identically_alone_and_batched(self, rng, backend):
        code = TurboCode(88, num_iterations=5)
        sys_llrs, par1, par2 = _noisy_batch(code, 10, rng)
        batch_decoder = TurboDecoder(
            88, 5, interleaver=code.encoder.interleaver, backend=backend
        )
        batched = batch_decoder.decode(sys_llrs, par1, par2)
        for row in range(10):
            solo = TurboDecoder(
                88, 5, interleaver=code.encoder.interleaver, backend=backend
            ).decode(sys_llrs[row], par1[row], par2[row])
            assert np.array_equal(solo.app_llrs[0], batched.app_llrs[row]), row
            assert np.array_equal(solo.decoded_bits[0], batched.decoded_bits[row]), row
            assert solo.converged[0] == batched.converged[row], row

    def test_early_stopping_shrinks_but_preserves_results(self, rng):
        code = TurboCode(88, num_iterations=6)
        sys_llrs, par1, par2 = _noisy_batch(code, 8, rng, sigmas=(0.4, 4.0))
        eager = TurboDecoder(88, 6, interleaver=code.encoder.interleaver)
        full = TurboDecoder(88, 6, interleaver=code.encoder.interleaver, early_stopping=False)
        r_eager = eager.decode(sys_llrs, par1, par2)
        r_full = full.decode(sys_llrs, par1, par2)
        # Frozen packets keep the decisions they stabilised on.
        assert np.array_equal(
            r_eager.decoded_bits[r_eager.converged], r_full.decoded_bits[r_eager.converged]
        )


class TestConvergedFlag:
    def test_single_iteration_reports_convergence(self, rng):
        """Regression: with num_iterations == 1, stable decisions used to
        report ``converged`` all-False."""
        code = TurboCode(60, num_iterations=1)
        # Essentially noise-free LLRs: one iteration decodes perfectly and
        # the decisions match the channel hard decisions.
        sys_llrs, par1, par2 = _noisy_batch(code, 4, rng, amp=8.0, sigmas=(0.05,))
        result = TurboDecoder(60, 1, interleaver=code.encoder.interleaver).decode(
            sys_llrs, par1, par2
        )
        assert result.iterations_run == 1
        assert result.converged.all()

    def test_single_iteration_garbage_not_converged(self, rng):
        decoder = TurboDecoder(60, 1)
        garbage = rng.normal(0.0, 1.0, (6, 60))
        result = decoder.decode(garbage, rng.normal(size=(6, 60)), rng.normal(size=(6, 60)))
        assert not result.converged.all()


class TestCacheIdentity:
    def test_backend_identity_records_name_and_dtype(self):
        identity = decoder_backend_identity("numpy-f32")
        assert identity == {"name": "numpy-f32", "dtype": "float32"}

    def test_unavailable_numba_resolves_to_numpy_identity(self):
        if _numba_available():
            pytest.skip("numba present")
        assert decoder_backend_identity("numba") == {"name": "numpy", "dtype": "float64"}

    def test_thread_count_never_enters_the_identity(self):
        """`@t<N>` cannot change results, so it must share the cache entry."""
        base = decoder_backend_identity("native-f32")
        threaded = decoder_backend_identity("native-f32@t4")
        assert base == threaded

    def test_run_identity_distinguishes_backends(self):
        base = run_identity("fig6", "smoke", 2012, {})
        f32 = run_identity("fig6", "smoke", 2012, {"decoder_backend": "numpy-f32"})
        assert config_digest(base) != config_digest(f32)
        assert f32["kwargs"]["decoder_backend"] == {
            "name": "numpy-f32",
            "dtype": "float32",
        }

    def test_run_identity_default_is_unchanged_by_backend_plumbing(self):
        """The no-kwargs identity must keep matching the golden snapshots."""
        identity = run_identity("fig6", "smoke", 2012, {})
        assert identity["kwargs"] == {}
        assert "decoder" not in identity["link_config"]

    def test_explicit_default_backend_shares_the_default_cache_entry(self):
        """Requesting numpy explicitly computes byte-identical results, so
        it must hash to the same digest as omitting the flag."""
        base = run_identity("fig6", "smoke", 2012, {})
        explicit = run_identity("fig6", "smoke", 2012, {"decoder_backend": "numpy"})
        assert config_digest(base) == config_digest(explicit)

    def test_adaptive_identity_hashes_resolved_parameters(self):
        """Changing AdaptiveStopping defaults must invalidate cache entries."""
        from repro.runner.tasks import AdaptiveStopping

        flag = run_identity("fig6", "smoke", 2012, {"adaptive": True})
        default = run_identity("fig6", "smoke", 2012, {"adaptive": AdaptiveStopping()})
        tighter = run_identity(
            "fig6", "smoke", 2012, {"adaptive": AdaptiveStopping(relative_error=0.1)}
        )
        assert config_digest(flag) == config_digest(default)
        assert config_digest(flag) != config_digest(tighter)
        off = run_identity("fig6", "smoke", 2012, {"adaptive": False})
        assert config_digest(off) == config_digest(run_identity("fig6", "smoke", 2012, {}))
