"""Golden-seed regression suite: every driver's smoke-scale output is pinned.

Each file under ``tests/golden/`` snapshots the full normalised output
(tables + extras) of one experiment at the ``smoke`` scale with seed 2012;
the ``scenario-*.json`` files snapshot the non-figure scenarios that open
the new physics (intra-packet fading, clustered fault maps, transient soft
errors).  Any numeric drift beyond 1e-9 — a changed default, a reordered
reduction, a different seeding path — fails the suite.  After an
*intentional* change to experiment behaviour, regenerate the snapshots
with::

    PYTHONPATH=src python -m repro golden --out-dir tests/golden
"""

import json
import math
from pathlib import Path

import pytest

from repro.runner.cache import serialize_payload
from repro.runner.cli import (
    GOLDEN_EXPERIMENTS,
    GOLDEN_SCENARIOS,
    run_identity,
    scenario_payload,
)
from repro.runner.registry import run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SCALE = "smoke"
GOLDEN_SEED = 2012
TOLERANCE = 1e-9

REGEN_HINT = (
    "golden snapshot mismatch; if the change is intentional, regenerate with "
    "`PYTHONPATH=src python -m repro golden --out-dir tests/golden`"
)


def _assert_close(actual, expected, path=""):
    """Recursively compare JSON trees with a 1e-9 numeric tolerance."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping ({REGEN_HINT})"
        assert sorted(actual) == sorted(expected), f"{path}: keys differ ({REGEN_HINT})"
        for key in expected:
            _assert_close(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected list ({REGEN_HINT})"
        assert len(actual) == len(expected), f"{path}: length differs ({REGEN_HINT})"
        for index, (a, e) in enumerate(zip(actual, expected)):
            _assert_close(a, e, f"{path}[{index}]")
    elif isinstance(expected, bool) or not isinstance(expected, (int, float)):
        assert actual == expected, f"{path}: {actual!r} != {expected!r} ({REGEN_HINT})"
    else:
        assert isinstance(actual, (int, float)) and not isinstance(actual, bool), (
            f"{path}: expected number, got {type(actual).__name__} ({REGEN_HINT})"
        )
        if math.isnan(expected):
            assert math.isnan(actual), f"{path}: expected nan, got {actual!r} ({REGEN_HINT})"
        else:
            assert abs(actual - expected) <= TOLERANCE, (
                f"{path}: |{actual!r} - {expected!r}| > {TOLERANCE} ({REGEN_HINT})"
            )


def test_every_experiment_has_a_snapshot():
    missing = [
        name for name in GOLDEN_EXPERIMENTS if not (GOLDEN_DIR / f"{name}.json").exists()
    ]
    missing += [
        name
        for name in GOLDEN_SCENARIOS
        if not (GOLDEN_DIR / f"scenario-{name}.json").exists()
    ]
    assert not missing, f"missing golden snapshots for {missing}; {REGEN_HINT}"


@pytest.mark.parametrize("experiment", GOLDEN_EXPERIMENTS)
def test_golden_output(experiment):
    golden_path = GOLDEN_DIR / f"{experiment}.json"
    if not golden_path.exists():
        pytest.fail(f"no golden snapshot for {experiment}; {REGEN_HINT}")
    expected = json.loads(golden_path.read_text())

    outcome = run_experiment(experiment, GOLDEN_SCALE, GOLDEN_SEED)
    actual = json.loads(
        serialize_payload(
            experiment,
            identity=run_identity(experiment, GOLDEN_SCALE, GOLDEN_SEED, {}),
            tables=outcome.tables,
            extras=outcome.extras,
        )
    )
    _assert_close(actual, expected)


@pytest.mark.parametrize("scenario", GOLDEN_SCENARIOS)
def test_golden_scenario_output(scenario):
    golden_path = GOLDEN_DIR / f"scenario-{scenario}.json"
    if not golden_path.exists():
        pytest.fail(f"no golden snapshot for scenario {scenario}; {REGEN_HINT}")
    expected = json.loads(golden_path.read_text())
    actual = json.loads(scenario_payload(scenario, GOLDEN_SCALE, GOLDEN_SEED, cache=None))
    _assert_close(actual, expected)
