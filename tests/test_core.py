"""Tests for the core fault-simulation framework and its analyses."""

import numpy as np
import pytest

from repro.core import (
    BitSensitivityAnalysis,
    BitWidthAnalysis,
    EccProtection,
    FullCellProtection,
    MsbProtection,
    NoProtection,
    ProtectionEfficiencyAnalysis,
    ResilienceAnalysis,
    SweepTable,
    SystemLevelFaultSimulator,
)
from repro.core.montecarlo import (
    mean_confidence_interval,
    proportion_confidence_interval,
    required_packets_for_bler,
)
from repro.core.voltage import VoltageScalingAnalysis, compare_protection_power
from repro.link import LinkConfig


class TestProtectionSchemes:
    def test_no_protection_properties(self):
        scheme = NoProtection(bits_per_word=10)
        assert scheme.area_overhead() == 0.0
        assert not scheme.protected_columns().any()
        assert scheme.unprotected_cells(100) == 1000

    def test_msb_protection_properties(self):
        scheme = MsbProtection(bits_per_word=10, protected_msbs=4)
        assert scheme.protected_columns()[:4].all()
        assert not scheme.protected_columns()[4:].any()
        assert scheme.unprotected_cells(100) == 600
        assert 0.10 <= scheme.area_overhead() <= 0.14

    def test_full_protection_properties(self):
        scheme = FullCellProtection(bits_per_word=10)
        assert scheme.protected_columns().all()
        assert scheme.unprotected_cells(100) == 0
        assert scheme.area_overhead() == pytest.approx(0.30, abs=0.01)

    def test_ecc_protection_properties(self):
        scheme = EccProtection(bits_per_word=10)
        assert scheme.stored_bits_per_word == 14
        assert scheme.area_overhead() >= 0.35
        assert scheme.ecc is not None

    def test_fault_map_respects_protection(self, rng):
        scheme = MsbProtection(bits_per_word=10, protected_msbs=3)
        fault_map = scheme.make_fault_map(200, 150, rng)
        assert fault_map.num_faults == 150
        assert fault_map.faults_per_column()[:3].sum() == 0

    def test_column_failure_probabilities_ordering(self):
        scheme = MsbProtection(bits_per_word=10, protected_msbs=4)
        probabilities = scheme.column_failure_probabilities(0.7)
        assert probabilities[:4].max() < probabilities[4:].min()

    def test_fault_map_at_voltage(self, rng):
        scheme = NoProtection(bits_per_word=10)
        fault_map = scheme.make_fault_map_at_voltage(500, 0.6, rng)
        # At 0.6 V the 6T Pcell is ~0.1, so a 5000-cell array has many faults.
        assert fault_map.num_faults > 100

    def test_relative_power_orderings(self):
        unprotected = NoProtection(bits_per_word=10)
        protected = MsbProtection(bits_per_word=10, protected_msbs=4)
        assert protected.relative_power(1.0) > unprotected.relative_power(1.0)
        assert unprotected.relative_power(0.7) < unprotected.relative_power(1.0)

    def test_protected_msbs_bounds(self):
        with pytest.raises(ValueError):
            MsbProtection(bits_per_word=10, protected_msbs=11)


class TestSweepTable:
    def test_add_and_column(self):
        table = SweepTable("t", ["a", "b"])
        table.add_row(a=1, b=2.0)
        assert table.column("a") == [1]
        assert len(table) == 1

    def test_unknown_column_rejected(self):
        table = SweepTable("t", ["a"])
        with pytest.raises(KeyError):
            table.add_row(c=1)
        with pytest.raises(KeyError):
            table.column("z")

    def test_markdown_and_csv(self):
        table = SweepTable("title", ["x", "y"])
        table.add_row(x=1, y=0.5)
        markdown = table.to_markdown()
        assert "title" in markdown and "| x | y |" in markdown
        assert "x,y" in table.to_csv()


class TestMonteCarlo:
    def test_mean_confidence_interval(self):
        estimate = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert estimate.value == pytest.approx(2.5)
        assert estimate.lower < 2.5 < estimate.upper

    def test_single_sample_interval_is_infinite(self):
        assert mean_confidence_interval([1.0]).half_width == float("inf")

    def test_proportion_interval(self):
        estimate = proportion_confidence_interval(5, 100)
        assert 0.0 < estimate.lower < 0.05 < estimate.upper < 0.2

    def test_required_packets(self):
        assert required_packets_for_bler(0.1) > required_packets_for_bler(0.5)
        with pytest.raises(ValueError):
            required_packets_for_bler(0.0)


class TestSystemLevelFaultSimulator:
    @pytest.fixture
    def simulator(self, tiny_64qam_config):
        return SystemLevelFaultSimulator(
            tiny_64qam_config,
            NoProtection(bits_per_word=tiny_64qam_config.llr_bits),
            num_fault_maps=2,
        )

    def test_cell_accounting(self, simulator, tiny_64qam_config):
        assert simulator.total_cells == tiny_64qam_config.llr_storage_cells
        assert simulator.fallible_cells == simulator.total_cells
        assert simulator.faults_for_defect_rate(0.1) == pytest.approx(
            0.1 * simulator.fallible_cells, abs=1
        )

    def test_word_width_mismatch_rejected(self, tiny_64qam_config):
        with pytest.raises(ValueError):
            SystemLevelFaultSimulator(tiny_64qam_config, NoProtection(bits_per_word=12))

    def test_defect_free_point(self, simulator):
        point = simulator.evaluate(28.0, 0, num_packets=6, rng=0)
        assert point.num_faults == 0
        assert point.normalized_throughput > 0.5
        assert point.block_error_rate == 0.0

    def test_heavy_defects_degrade(self, simulator):
        clean = simulator.evaluate_defect_rate(18.0, 0.0, num_packets=8, rng=1)
        dirty = simulator.evaluate_defect_rate(18.0, 0.10, num_packets=8, rng=1)
        assert dirty.average_transmissions >= clean.average_transmissions - 1e-9

    def test_msb_protection_recovers_throughput(self, tiny_64qam_config):
        unprotected = SystemLevelFaultSimulator(
            tiny_64qam_config, NoProtection(bits_per_word=10), num_fault_maps=2
        )
        protected = SystemLevelFaultSimulator(
            tiny_64qam_config, MsbProtection(bits_per_word=10, protected_msbs=4), num_fault_maps=2
        )
        dirty = unprotected.evaluate_defect_rate(24.0, 0.10, num_packets=8, rng=2)
        fixed = protected.evaluate_defect_rate(24.0, 0.10, num_packets=8, rng=2)
        assert fixed.normalized_throughput >= dirty.normalized_throughput

    def test_yield_for_acceptance(self, simulator):
        strict = simulator.yield_for_acceptance(1e-4, 0)
        relaxed = simulator.yield_for_acceptance(1e-4, simulator.faults_for_defect_rate(0.01))
        assert relaxed > strict

    def test_sweeps_and_table(self, simulator):
        table = simulator.throughput_table([24.0], [0.0, 0.10], num_packets=4, rng=3)
        assert len(table) == 2
        assert set(table.columns) >= {"defect_rate", "snr_db", "throughput"}

    def test_reproducible(self, simulator):
        a = simulator.evaluate_defect_rate(20.0, 0.05, num_packets=4, rng=11)
        b = simulator.evaluate_defect_rate(20.0, 0.05, num_packets=4, rng=11)
        assert a.normalized_throughput == b.normalized_throughput


class TestAnalyses:
    def test_sensitivity_analytical_ranking(self):
        config = LinkConfig(payload_bits=56, crc_bits=16)
        analysis = BitSensitivityAnalysis(config.quantizer)
        sensitivities = analysis.analytical_perturbations()
        perturbations = [s.worst_llr_perturbation for s in sensitivities]
        # Monotonically decreasing significance from MSB (sign) to LSB.
        assert all(a >= b for a, b in zip(perturbations, perturbations[1:]))
        assert perturbations[0] == pytest.approx(2 * config.llr_max_abs, rel=0.05)

    def test_sensitivity_recommendation_small(self):
        analysis = BitSensitivityAnalysis(LinkConfig().quantizer)
        assert 2 <= analysis.recommended_protection_depth() <= 5

    def test_sensitivity_simulation(self, tiny_64qam_config):
        simulator = SystemLevelFaultSimulator(
            tiny_64qam_config, NoProtection(bits_per_word=10), num_fault_maps=1
        )
        analysis = BitSensitivityAnalysis(tiny_64qam_config.quantizer)
        results = analysis.simulated_sensitivity(
            simulator, 26.0, faults_per_position=60, num_packets=4, rng=1, bit_positions=[0, 9]
        )
        table = analysis.to_table(results, "sensitivity")
        assert len(table) == 2
        sign, lsb = results[0], results[1]
        # Corrupting the sign bit hurts at least as much as corrupting the LSB.
        assert sign.throughput <= lsb.throughput + 0.15

    def test_resilience_analysis(self, tiny_64qam_config):
        simulator = SystemLevelFaultSimulator(
            tiny_64qam_config, NoProtection(bits_per_word=10), num_fault_maps=1
        )
        analysis = ResilienceAnalysis(simulator)
        table = analysis.sweep_table(26.0, [0.0, 0.10], num_packets=4, rng=5)
        assert len(table) == 2
        limit = analysis.find_limit(26.0, [0.0, 0.001], 0.1, num_packets=4, rng=5)
        assert limit.max_defect_rate >= 0.0
        assert 0.4 <= limit.min_supply_voltage <= 1.2
        improvement = analysis.yield_improvement(1e-4, 0.01)
        assert improvement["yield_accepting_defects"] >= improvement["yield_zero_defects"]

    def test_efficiency_analysis(self, tiny_64qam_config):
        analysis = ProtectionEfficiencyAnalysis(tiny_64qam_config, num_fault_maps=1)
        points = analysis.sweep(24.0, 0.10, [2, 4], num_packets=4, rng=6)
        assert [p.protected_bits for p in points] == [2, 4]
        assert points[1].area_overhead > points[0].area_overhead
        assert analysis.optimum_protection_depth(points) in (2, 4)
        comparison = analysis.ecc_comparison()
        assert comparison["msb4_overhead"] < comparison["ecc_overhead"]

    def test_bitwidth_analysis(self, tiny_64qam_config):
        analysis = BitWidthAnalysis(tiny_64qam_config, num_fault_maps=1)
        points = analysis.sweep([10, 12], [26.0], 0.10, num_packets=4, rng=7)
        cells = {p.llr_bits: p.storage_cells for p in points}
        faults = {p.llr_bits: p.num_faults for p in points}
        assert cells[12] > cells[10]
        assert faults[12] >= faults[10]
        best = analysis.best_width_per_snr(points)
        assert set(best) == {26.0}


class TestVoltageScaling:
    def test_operating_point_fields(self):
        analysis = VoltageScalingAnalysis(1000, NoProtection(bits_per_word=10))
        point = analysis.operating_point(0.8)
        assert point.vdd == 0.8
        assert point.cell_failure_probability > 0
        assert point.defects_for_yield >= 0
        assert 0 < point.relative_power < 1.0

    def test_lower_voltage_needs_more_accepted_defects(self):
        analysis = VoltageScalingAnalysis(5000, NoProtection(bits_per_word=10))
        high = analysis.operating_point(0.9)
        low = analysis.operating_point(0.7)
        assert low.defects_for_yield >= high.defects_for_yield
        assert low.relative_power < high.relative_power

    def test_min_voltage_for_budget_monotone(self):
        analysis = VoltageScalingAnalysis(5000, NoProtection(bits_per_word=10))
        generous = analysis.min_voltage_for_defect_budget(0.10)
        strict = analysis.min_voltage_for_defect_budget(0.0001)
        assert generous.vdd <= strict.vdd

    def test_protection_enables_lower_voltage(self):
        comparison = compare_protection_power(2000, 0.001, 0.10)
        assert comparison["protected_min_vdd"] < comparison["unprotected_min_vdd"]
        assert comparison["protected_power_saving"] > comparison["unprotected_power_saving"]

    def test_sweep_table(self):
        analysis = VoltageScalingAnalysis(1000, MsbProtection(bits_per_word=10, protected_msbs=4))
        table = analysis.sweep_table([1.0, 0.8, 0.6])
        assert len(table) == 3
        assert table.column("relative_power")[0] > table.column("relative_power")[-1]

    def test_power_saving_positive_below_nominal(self):
        analysis = VoltageScalingAnalysis(1000, NoProtection(bits_per_word=10))
        assert analysis.power_saving_versus_nominal(0.8) > 0.0
