"""Chaos conformance: injected faults must never change a single byte.

The runner stack claims its failure handling — at-least-once redelivery,
(round, index) de-duplication, atomic stores with corrupt-entry quarantine —
makes execution faults invisible in the results.  This suite injects real
faults on every layer (wire frames, the worker serve loop, cache and
point-store writes) through :mod:`repro.runner.chaos` and asserts
byte-identity against fault-free serial references, plus the poison-task
semantics of ``--on-task-error=quarantine`` and graceful worker drain.

Workers run as in-process threads here, so they share the coordinator's
active plan (and its once-per-process directive counters) without any
environment plumbing — exactly the ``chaos.activate(...)`` path ``--chaos``
uses, minus the env export for subprocess daemons.
"""

import json
import threading

import pytest

from repro.core.protection import NoProtection
from repro.experiments import fig6_throughput_vs_defects
from repro.experiments.scales import SCALES
from repro.runner import chaos
from repro.runner.backends import (
    SerialBackend,
    SocketDistributedBackend,
    TaskQuarantined,
    WORKER_EXIT_OK,
    create_execution_backend,
    run_worker,
)
from repro.runner.cache import QuarantineStore, ResultCache
from repro.runner.parallel import ParallelRunner
from repro.runner.point_store import PointStore


@pytest.fixture(scope="module")
def micro_scale():
    """A sub-smoke scale keeping the end-to-end chaos runs fast."""
    return SCALES["smoke"].with_updates(
        payload_bits=56,
        num_packets=4,
        num_fault_maps=2,
        turbo_iterations=3,
        snr_points_db=(16.0, 26.0),
        defect_rates=(0.0, 0.10),
    )


@pytest.fixture(autouse=True)
def _chaos_off():
    """Every test starts and ends with no active plan."""
    chaos.activate(None)
    yield
    chaos.activate(None)


def _start_worker_thread(address, **kwargs):
    """Run a worker daemon in-process (shares the active chaos plan)."""
    kwargs.setdefault("connect_retries", 40)
    kwargs.setdefault("retry_delay", 0.05)
    kwargs.setdefault("once", False)
    kwargs.setdefault("log", lambda _line: None)
    thread = threading.Thread(
        target=run_worker, args=(address,), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


def _boom(_value):
    raise ValueError("boom: deliberate task failure")


def _square(value):
    return value * value


# --------------------------------------------------------------------------- #
class TestFaultPlanParsing:
    def test_full_spec_round_trip(self):
        plan = chaos.FaultPlan.parse(
            "seed=7;drop-send=4, truncate-send=6;delay-send=2:0.25;"
            "drop-recv=3;kill-task=1;tear-write=2"
        )
        assert plan.seed == 7
        assert plan.drop_send == 4
        assert plan.truncate_send == 6
        assert plan.delay_send == (2, 0.25)
        assert plan.drop_recv == 3
        assert plan.kill_task == 1
        assert plan.tear_write == 2

    @pytest.mark.parametrize(
        "spec",
        [
            "explode=1",  # unknown directive
            "drop-send",  # missing value
            "drop-send=zero",  # non-integer ordinal
            "drop-send=0",  # ordinal below 1
            "delay-send=3",  # missing the :SECONDS half
            "delay-send=3:-1",  # negative delay
        ],
    )
    def test_malformed_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            chaos.FaultPlan.parse(spec)

    def test_directives_fire_exactly_once(self):
        plan = chaos.FaultPlan.parse("tear-write=2")
        assert [plan.take_tear_write() for _ in range(4)] == [
            False,
            True,
            False,
            False,
        ]

    def test_activate_export_reaches_environment(self, monkeypatch):
        import os

        monkeypatch.delenv(chaos.CHAOS_ENV_VAR, raising=False)
        chaos.activate("kill-task=1", export=True)
        assert os.environ[chaos.CHAOS_ENV_VAR] == "kill-task=1"
        chaos.activate(None, export=True)
        assert chaos.CHAOS_ENV_VAR not in os.environ

    def test_env_spec_self_arms_lazily(self, monkeypatch):
        """Worker daemons inherit REPRO_CHAOS with zero explicit plumbing."""
        monkeypatch.setenv(chaos.CHAOS_ENV_VAR, "drop-send=9")
        chaos.reset()
        plan = chaos.active_plan()
        assert plan is not None and plan.drop_send == 9


# --------------------------------------------------------------------------- #
class TestTornWriteQuarantine:
    def test_cache_write_torn_then_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "ab" * 10
        chaos.activate("tear-write=1")
        cache.store("figx", digest, identity={"x": 1}, tables={})
        path = cache.path_for("figx", digest)
        assert path.exists()  # torn bytes landed at the *final* path
        with pytest.warns(RuntimeWarning, match="corrupt JSON"):
            payload, status = cache.load_with_status("figx", digest)
        assert payload is None and status == "corrupt"
        assert path.with_name(path.name + ".corrupt").exists()
        # The directive already fired: the re-store heals the entry.
        cache.store("figx", digest, identity={"x": 1}, tables={})
        payload, status = cache.load_with_status("figx", digest)
        assert status == "ok" and payload["identity"] == {"x": 1}

    def test_point_store_write_torn_then_quarantined(self, tmp_path, micro_scale):
        reference = fig6_throughput_vs_defects.run(micro_scale, seed=2012).to_json()
        chaos.activate("tear-write=1")  # tears the first stored grid point
        first = fig6_throughput_vs_defects.run(
            micro_scale, seed=2012, point_store=PointStore(tmp_path)
        )
        assert first.to_json() == reference  # in-memory results unaffected
        chaos.activate(None)
        # The torn entry reads as corrupt, is quarantined with a warning and
        # recomputed; every other point loads from the store.
        with pytest.warns(RuntimeWarning, match="corrupt JSON"):
            second = fig6_throughput_vs_defects.run(
                micro_scale, seed=2012, point_store=PointStore(tmp_path)
            )
        assert second.to_json() == reference
        assert list(tmp_path.glob("*.corrupt"))

    def test_cache_tear_during_run_is_absorbed(self, tmp_path):
        """A torn cache write is quarantined and recomputed, never served."""
        from repro.runner.cli import experiment_payload

        cache = ResultCache(tmp_path)
        chaos.activate("tear-write=1")
        first = experiment_payload("fig6", "smoke", 2012, cache=cache)
        chaos.activate(None)
        with pytest.warns(RuntimeWarning, match="corrupt JSON"):
            second = experiment_payload("fig6", "smoke", 2012, cache=cache)
        assert first == second


# --------------------------------------------------------------------------- #
class TestChaosConformance:
    """Faults on every wire/worker layer; results byte-identical to serial."""

    def test_fig6_byte_identical_under_wire_and_worker_faults(self, micro_scale):
        reference = fig6_throughput_vs_defects.run(micro_scale, seed=2012).to_json()
        plan = chaos.activate(
            "seed=3;drop-send=2;truncate-send=5;delay-send=1:0.02;"
            "drop-recv=4;kill-task=1"
        )
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=120.0)
        for _ in range(2):
            _start_worker_thread(backend.address)
        with ParallelRunner(2, backend=backend) as runner:
            table = fig6_throughput_vs_defects.run(
                micro_scale, seed=2012, runner=runner
            )
        assert table.to_json() == reference
        # The schedule really ran: early-ordinal faults fired somewhere.
        assert plan._fired.get("kill-task") and plan._fired.get("drop-send")

    def test_adaptive_rounds_survive_mid_round_worker_kill(self, micro_scale):
        """A chaos kill abandons a half-executed round; the redo is exact."""
        reference = fig6_throughput_vs_defects.run(
            micro_scale, seed=2012, adaptive=True
        ).to_json()
        plan = chaos.activate("kill-task=1;drop-send=2")
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=120.0)
        for _ in range(2):
            _start_worker_thread(backend.address)
        with ParallelRunner(2, backend=backend) as runner:
            table = fig6_throughput_vs_defects.run(
                micro_scale, seed=2012, adaptive=True, runner=runner
            )
        assert table.to_json() == reference
        assert plan._fired.get("kill-task")


# --------------------------------------------------------------------------- #
class TestPoisonTaskQuarantine:
    @pytest.mark.parametrize("backend_name", ["serial", "process"])
    def test_local_backends_quarantine_instead_of_aborting(self, backend_name):
        backend = create_execution_backend(
            backend_name, workers=2, on_task_error="quarantine"
        )
        with ParallelRunner(2, backend=backend) as runner:
            results = runner.map(_boom, [1, 2], allow_quarantined=True)
        assert all(isinstance(r, TaskQuarantined) for r in results)
        assert [r.index for r in results] == [0, 1]
        assert "deliberate task failure" in results[0].error
        assert runner.task_failures == list(results)

    def test_map_raises_unless_caller_opts_in(self):
        runner = ParallelRunner(1, backend=SerialBackend(on_task_error="quarantine"))
        with pytest.raises(RuntimeError, match="quarantined"):
            runner.map(_boom, [1])
        assert len(runner.task_failures) == 1  # recorded even when raising

    def test_quarantine_store_records_task_identity(self, tmp_path):
        store = QuarantineStore(tmp_path)
        runner = ParallelRunner(
            1,
            backend=SerialBackend(on_task_error="quarantine"),
            quarantine_store=store,
        )
        runner.map(_boom, [41, 42], allow_quarantined=True)
        records = store.entries()
        assert len(records) == 2
        payload = json.loads(records[0].read_text())
        assert payload["quarantine_format"] == 1
        assert "deliberate task failure" in payload["error"]
        assert payload["task"] in (41, 42)
        # Re-running the same poison overwrites records, never accumulates.
        runner.map(_boom, [41, 42], allow_quarantined=True)
        assert len(store.entries()) == 2

    def test_socket_retry_budget_prefers_distinct_workers(self):
        backend = SocketDistributedBackend(
            local_workers=0,
            worker_timeout=120.0,
            on_task_error="quarantine",
            task_attempts=2,
        )
        try:
            _start_worker_thread(backend.address)
            _start_worker_thread(backend.address)
            runner = ParallelRunner(2, backend=backend)
            [sentinel] = runner.map(_boom, [1], allow_quarantined=True)
            assert isinstance(sentinel, TaskQuarantined)
            assert sentinel.attempts == 2
            assert len(set(sentinel.workers)) == 2  # two *distinct* workers
            # The round completed; the backend is still usable.
            assert runner.map(_square, [3]) == [9]
        finally:
            backend.close()

    def test_socket_default_policy_still_fails_fast(self):
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=120.0)
        try:
            _start_worker_thread(backend.address)
            runner = ParallelRunner(1, backend=backend)
            with pytest.raises(RuntimeError, match="deliberate task failure"):
                runner.map(_boom, [1])
        finally:
            backend.close()

    def test_fault_grid_merges_survivors_from_quarantined_dies(
        self, tiny_config, monkeypatch
    ):
        """A quarantined die leaves the point mergeable from its survivors."""
        import repro.runner.tasks as tasks_module
        from repro.runner.tasks import GridPoint, run_fault_map_grid

        original = tasks_module.simulate_fault_map_batch
        calls = {"n": 0}

        def poisoned_batch(group):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("boom: deliberate task failure")
            return original(group)

        monkeypatch.setattr(tasks_module, "simulate_fault_map_batch", poisoned_batch)
        point = GridPoint(
            key_prefix=(0,),
            config=tiny_config,
            protection=NoProtection(bits_per_word=tiny_config.llr_bits),
            snr_db=16.0,
            defect_rate=0.1,
        )
        runner = ParallelRunner(1, backend=SerialBackend(on_task_error="quarantine"))
        # aggregate_packets=1 keeps one die per batch, so exactly one die is
        # quarantined and the other survives.
        [merged] = run_fault_map_grid(
            runner,
            [point],
            num_packets=4,
            num_fault_maps=2,
            entropy=2012,
            aggregate_packets=1,
        )
        assert merged is not None
        assert len(merged.per_map_throughput) == 1  # merged from the survivor
        assert len(runner.task_failures) == 1

    def test_fault_grid_raises_when_every_die_is_quarantined(
        self, tiny_config, monkeypatch
    ):
        import repro.runner.tasks as tasks_module
        from repro.runner.tasks import GridPoint, run_fault_map_grid

        def always_poisoned(_group):
            raise ValueError("boom: deliberate task failure")

        monkeypatch.setattr(
            tasks_module, "simulate_fault_map_batch", always_poisoned
        )
        point = GridPoint(
            key_prefix=(0,),
            config=tiny_config,
            protection=NoProtection(bits_per_word=tiny_config.llr_bits),
            snr_db=16.0,
            defect_rate=0.1,
        )
        runner = ParallelRunner(1, backend=SerialBackend(on_task_error="quarantine"))
        with pytest.raises(RuntimeError, match="every die"):
            run_fault_map_grid(
                runner,
                [point],
                num_packets=4,
                num_fault_maps=2,
                entropy=2012,
                aggregate_packets=1,
            )


# --------------------------------------------------------------------------- #
class TestGracefulDrain:
    def test_drained_worker_finishes_and_exits_cleanly(self):
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=120.0)
        try:
            drain = threading.Event()
            exit_code = {}

            def draining_worker():
                exit_code["value"] = run_worker(
                    backend.address,
                    connect_retries=40,
                    retry_delay=0.05,
                    once=False,
                    drain=drain,
                    log=lambda _line: None,
                )

            thread = threading.Thread(target=draining_worker, daemon=True)
            thread.start()
            runner = ParallelRunner(1, backend=backend)
            assert runner.map(_square, [2, 3]) == [4, 9]
            drain.set()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert exit_code["value"] == WORKER_EXIT_OK
            # A drained (goodbye) worker retires cleanly: a replacement
            # serves the next round without redelivery noise.
            _start_worker_thread(backend.address)
            assert runner.map(_square, [5]) == [25]
        finally:
            backend.close()

    def test_reconnect_backoff_is_exponential_capped_and_deterministic(
        self, monkeypatch
    ):
        import socket as socket_module
        import time as real_time
        import types

        from repro.runner.backends import socket_backend

        # An address nothing listens on: bind, learn the port, close.
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        sleeps = []
        # Patch the module's `time` binding (not the global module) so the
        # capture never leaks into unrelated worker threads.
        stub = types.SimpleNamespace(
            monotonic=real_time.monotonic, sleep=sleeps.append
        )
        monkeypatch.setattr(socket_backend, "time", stub)

        def capture_schedule():
            sleeps.clear()
            sock = socket_backend._connect_with_retry(
                "127.0.0.1", port, retries=12, delay=0.5, log=lambda _line: None
            )
            assert sock is None
            return list(sleeps)

        first = capture_schedule()
        assert len(first) == 11  # no sleep after the final attempt
        cap = socket_backend.RECONNECT_BACKOFF_CAP
        for attempt, slept in enumerate(first):
            base = min(0.5 * (2.0 ** attempt), cap)
            assert 0.5 * base <= slept <= 1.5 * base
        # Deep attempts saturate at the cap (times jitter), never beyond.
        assert max(first) <= 1.5 * cap
        assert min(first[4:]) >= 0.5 * cap
        # Same address + same process => identical jitter schedule.
        assert capture_schedule() == first
