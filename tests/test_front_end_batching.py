"""Byte-identity property tests for the batched link front end.

The front end's batch axis is a pure throughput optimisation: every batched
kernel (CRC, turbo encode, rate matching, interleaving, spreading, channel,
both equalizers, demapping) must produce byte-identical results to its
serial counterpart, and pooling packets into wider front-end rounds must not
change any packet's outcome.  These tests pin that contract with hypothesis
sweeps over batch sizes and compositions, plus a cross-check against the
verbatim pre-batching serial front end preserved in ``repro.runner.bench``.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.fading import JakesFadingProcess, jakes_gains_batch
from repro.channel.multipath import ITU_PEDESTRIAN_A, MultipathChannel
from repro.equalizer.mmse import MmseEqualizer
from repro.equalizer.rake import RakeReceiver
from repro.link import HspaLikeLink, LinkConfig
from repro.link.system import PacketGroup, simulate_packet_groups
from repro.phy.crc import CRC_16
from repro.phy.interleaving import random_interleaver
from repro.phy.rate_matching import RateMatcher
from repro.phy.spreading import Spreader
from repro.phy.turbo import TurboCode
from repro.runner.bench import (
    _batched_front_end_pass,
    _prepare_inputs,
    _seed_front_end_pass,
)

BATCHES = st.integers(min_value=1, max_value=7)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


# --------------------------------------------------------------------------- #
# bit-domain kernels
# --------------------------------------------------------------------------- #
class TestBitKernels:
    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_crc_batch_matches_serial(self, batch, seed):
        crc = CRC_16
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, (batch, 40), dtype=np.int8)
        attached = crc.attach_batch(data)
        for row in range(batch):
            expected = crc.attach(data[row])
            assert attached[row].tobytes() == expected.tobytes()
            assert bool(crc.check_batch(attached[row : row + 1])[0]) == bool(
                crc.check(attached[row])
            )
        corrupted = attached.copy()
        corrupted[:, 3] ^= 1
        for row in range(batch):
            assert bool(crc.check_batch(corrupted[row : row + 1])[0]) == bool(
                crc.check(corrupted[row])
            )

    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_turbo_encode_batch_matches_serial(self, batch, seed):
        code = TurboCode(40)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, (batch, 40), dtype=np.int8)
        encoded = code.encode_batch(data)
        for row in range(batch):
            assert encoded[row].tobytes() == code.encode(data[row]).tobytes()

    @given(batch=BATCHES, seed=SEEDS, rv=st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_rate_matching_batch_matches_serial(self, batch, seed, rv):
        rng = np.random.default_rng(seed)
        for num_output in (30, 72):  # puncturing and repetition regimes
            matcher = RateMatcher(num_coded_bits=48, num_output_bits=num_output)
            bits = rng.integers(0, 2, (batch, 48), dtype=np.int8)
            selected = matcher.rate_match_batch(bits, rv)
            llrs = rng.normal(0.0, 2.0, (batch, num_output))
            # Include negative zeros: the serial scatter folds them to +0.0.
            llrs[:, 0] = -0.0
            combined = matcher.derate_match_batch(llrs, rv)
            for row in range(batch):
                assert (
                    selected[row].tobytes()
                    == matcher.rate_match(bits[row], rv).tobytes()
                )
                assert (
                    combined[row].tobytes()
                    == matcher.derate_match(llrs[row], rv).tobytes()
                )

    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_interleaver_batch_matches_serial(self, batch, seed):
        interleaver = random_interleaver(36, seed=seed)
        rng = np.random.default_rng(seed)
        values = rng.normal(0.0, 1.0, (batch, 36))
        forward = interleaver.interleave_batch(values)
        backward = interleaver.deinterleave_batch(values)
        for row in range(batch):
            assert forward[row].tobytes() == interleaver.interleave(values[row]).tobytes()
            assert (
                backward[row].tobytes() == interleaver.deinterleave(values[row]).tobytes()
            )


# --------------------------------------------------------------------------- #
# sample-domain kernels
# --------------------------------------------------------------------------- #
class TestSampleKernels:
    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_spreader_batch_matches_serial(self, batch, seed):
        spreader = Spreader(spreading_factor=4, code_index=1)
        rng = np.random.default_rng(seed)
        symbols = rng.normal(size=(batch, 12)) + 1j * rng.normal(size=(batch, 12))
        chips = spreader.spread_batch(symbols)
        recovered = spreader.despread_batch(chips)
        for row in range(batch):
            assert chips[row].tobytes() == spreader.spread(symbols[row]).tobytes()
            assert (
                recovered[row].tobytes() == spreader.despread(chips[row]).tobytes()
            )

    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_channel_batch_matches_serial(self, batch, seed):
        channel = MultipathChannel(ITU_PEDESTRIAN_A, 260.417)
        rng = np.random.default_rng(seed)
        signals = rng.normal(size=(batch, 48)) + 1j * rng.normal(size=(batch, 48))
        snrs = rng.uniform(5.0, 25.0, batch)
        received, responses, variances = channel.apply_batch(
            signals,
            snrs,
            [np.random.default_rng(seed + 1 + i) for i in range(batch)],
        )
        serial = MultipathChannel(ITU_PEDESTRIAN_A, 260.417)
        for row in range(batch):
            r, h, nv = serial.apply(
                signals[row], float(snrs[row]), np.random.default_rng(seed + 1 + row)
            )
            assert received[row].tobytes() == r.tobytes()
            assert responses[row].tobytes() == h.tobytes()
            assert float(variances[row]) == nv

    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_jakes_batch_matches_serial(self, batch, seed):
        process = JakesFadingProcess(doppler_hz=80.0, sample_rate_hz=1e4)
        realizations = [
            process.realization(np.random.default_rng(seed + i)) for i in range(batch)
        ]
        gains = jakes_gains_batch(realizations, 3, 25)
        for row in range(batch):
            assert gains[row].tobytes() == realizations[row].gains(3, 25).tobytes()

    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_mmse_equalize_batch_matches_serial(self, batch, seed):
        rng = np.random.default_rng(seed)
        num_symbols = 20
        channel_length = 3
        responses = rng.normal(size=(batch, channel_length)) + 1j * rng.normal(
            size=(batch, channel_length)
        )
        received = rng.normal(
            size=(batch, num_symbols + channel_length - 1)
        ) + 1j * rng.normal(size=(batch, num_symbols + channel_length - 1))
        variances = rng.uniform(0.01, 1.0, batch)
        equalizer = MmseEqualizer(num_taps=8)
        # Two passes: the second is served from the design cache and must
        # still match the fresh serial design exactly.
        for _ in range(2):
            symbols, noise = equalizer.equalize_batch(
                received, responses, variances, num_symbols
            )
            serial = MmseEqualizer(num_taps=8)
            for row in range(batch):
                output = serial.equalize(
                    received[row], responses[row], float(variances[row]), num_symbols
                )
                assert symbols[row].tobytes() == output.symbols.tobytes()
                assert float(noise[row]) == output.effective_noise_variance

    @given(batch=BATCHES, seed=SEEDS, zero_tap=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_rake_combine_batch_matches_serial(self, batch, seed, zero_tap):
        rng = np.random.default_rng(seed)
        num_symbols = 16
        channel_length = 4
        responses = rng.normal(size=(batch, channel_length)) + 1j * rng.normal(
            size=(batch, channel_length)
        )
        if zero_tap:
            # Ragged finger counts: first packet loses a tap, exercising the
            # per-packet fallback.
            responses[0, -1] = 0.0
        received = rng.normal(
            size=(batch, num_symbols + channel_length - 1)
        ) + 1j * rng.normal(size=(batch, num_symbols + channel_length - 1))
        variances = rng.uniform(0.01, 1.0, batch)
        rake = RakeReceiver(max_fingers=3)
        symbols, noise = rake.combine_batch(received, responses, variances, num_symbols)
        for row in range(batch):
            expected, expected_noise = rake.combine(
                received[row], responses[row], float(variances[row]), num_symbols
            )
            assert symbols[row].tobytes() == expected.tobytes()
            assert float(noise[row]) == expected_noise


# --------------------------------------------------------------------------- #
# transmitter and full-link composition
# --------------------------------------------------------------------------- #
class TestLinkComposition:
    @given(batch=BATCHES, seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_transmit_batch_matches_serial(self, batch, seed):
        from repro.link.transmitter import Transmitter

        config = LinkConfig(
            payload_bits=56,
            crc_bits=16,
            modulation="16QAM",
            effective_code_rate=0.6,
            turbo_iterations=3,
            max_transmissions=3,
            spreading_factor=4,
        )
        transmitter = Transmitter(config)
        rng = np.random.default_rng(seed)
        payloads = [transmitter.random_payload(rng) for _ in range(batch)]
        packets = transmitter.encode_batch(payloads)
        for rv in (0, 1):
            samples = transmitter.transmit_batch(packets, rv)
            for row in range(batch):
                expected = transmitter.transmit(transmitter.encode(payloads[row]), rv)
                assert samples[row].tobytes() == expected.tobytes()

    @given(seed=SEEDS)
    @settings(max_examples=5, deadline=None)
    def test_seed_serial_front_end_cross_check(self, seed):
        """Batched front end == verbatim pre-batching serial front end."""
        config = LinkConfig(
            payload_bits=56,
            crc_bits=16,
            modulation="16QAM",
            effective_code_rate=0.6,
            turbo_iterations=3,
            max_transmissions=3,
        )
        link = HspaLikeLink(config)
        reference = _seed_front_end_pass(
            link, _prepare_inputs(link, 5, 12.0, seed), 12.0
        )
        candidate = _batched_front_end_pass(
            link, _prepare_inputs(link, 5, 12.0, seed), 12.0
        )
        assert reference.tobytes() == candidate.tobytes()

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"buffer_architecture": "combined"},
            {"fading": "jakes:120"},
            {"fading": "jakes:120", "buffer_architecture": "combined"},
        ],
        ids=["per-transmission", "combined", "jakes-fading", "jakes-combined"],
    )
    def test_batch_one_fast_path_matches_general_round(self, overrides):
        """The serial batch-1 front-end fast path is byte-identical to the
        general batched round.

        A width-3 round takes the general batched path; running each of the
        same packets alone takes the ``_front_end_single`` shortcut (the
        batch-1 regression fix).  Row independence means the rows must match
        byte for byte — in both buffer architectures, with and without
        fading.
        """
        from repro.link.system import _PacketState
        from repro.utils.rng import child_rngs

        config = LinkConfig(
            payload_bits=56,
            crc_bits=16,
            modulation="16QAM",
            effective_code_rate=0.6,
            turbo_iterations=3,
            max_transmissions=3,
            **overrides,
        )

        def rows(indices):
            link = HspaLikeLink(config)
            rngs = child_rngs(777, 3)
            payloads = [link.transmitter.random_payload(r) for r in rngs]
            packets = link.transmitter.encode_batch([payloads[i] for i in indices])
            states = [
                _PacketState(
                    rng=rngs[i],
                    packet=packets[j],
                    buffer=link.make_buffer(),
                    snr_db=10.0,
                )
                for j, i in enumerate(indices)
            ]
            return link._front_end_round(
                states, 0, config.combining.redundancy_version(0)
            )

        wide = rows([0, 1, 2])
        for i in range(3):
            solo = rows([i])
            assert solo[0].tobytes() == wide[i].tobytes(), i

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"buffer_architecture": "combined"},
            {"fading": "jakes:120"},
            {"spreading_factor": 4},
        ],
        ids=["per-transmission", "combined", "jakes-fading", "spread"],
    )
    def test_group_pooling_is_result_neutral(self, overrides):
        """Pooling groups into wider front-end rounds changes nothing.

        The pooled run processes both groups' packets in shared batched
        rounds (different batch widths than the isolated runs), so equality
        here pins "batching is result-neutral" end to end.
        """
        config = LinkConfig(
            payload_bits=56,
            crc_bits=16,
            modulation="16QAM",
            effective_code_rate=0.6,
            turbo_iterations=3,
            max_transmissions=3,
            **overrides,
        )
        link = HspaLikeLink(config)
        groups = [
            PacketGroup(num_packets=3, snr_db=8.0, rng=11),
            PacketGroup(num_packets=2, snr_db=14.0, rng=22),
        ]
        pooled = simulate_packet_groups(link, groups)
        isolated = [
            HspaLikeLink(config).simulate_packets(3, 8.0, rng=11),
            HspaLikeLink(config).simulate_packets(2, 14.0, rng=22),
        ]
        for pooled_result, isolated_result in zip(pooled, isolated):
            assert (
                pooled_result.statistics.num_successful
                == isolated_result.statistics.num_successful
            )
            assert (
                pooled_result.statistics.total_transmissions
                == isolated_result.statistics.total_transmissions
            )
            for a, b in zip(
                pooled_result.packet_results, isolated_result.packet_results
            ):
                assert a.success == b.success
                assert a.num_transmissions == b.num_transmissions
                assert a.failure_history == b.failure_history
                assert np.array_equal(a.decoded_bits, b.decoded_bits)

    def test_rake_link_pooling_is_result_neutral(self):
        config = LinkConfig(
            payload_bits=56,
            crc_bits=16,
            modulation="16QAM",
            effective_code_rate=0.6,
            turbo_iterations=3,
            max_transmissions=3,
        )
        link = HspaLikeLink(config, use_rake=True)
        pooled = simulate_packet_groups(
            link,
            [
                PacketGroup(num_packets=3, snr_db=10.0, rng=7),
                PacketGroup(num_packets=2, snr_db=16.0, rng=9),
            ],
        )
        isolated = [
            HspaLikeLink(config, use_rake=True).simulate_packets(3, 10.0, rng=7),
            HspaLikeLink(config, use_rake=True).simulate_packets(2, 16.0, rng=9),
        ]
        for pooled_result, isolated_result in zip(pooled, isolated):
            for a, b in zip(
                pooled_result.packet_results, isolated_result.packet_results
            ):
                assert a.success == b.success
                assert a.failure_history == b.failure_history
