"""Property-based tests for the fault samplers and injection semantics.

Pins the contracts the clustered-fault and soft-error physics rely on:

* both exact-count samplers (uniform and clustered) hit the requested
  marginal defect rate exactly and never touch protected columns;
* bit-flip injection is an involution and stuck-at injection is idempotent,
  so repeated buffer reads through a persistent map are stable;
* the soft-error rate is voltage-insensitive in exactly the paper's sense
  (3x per 500 mV) while the parametric mechanism explodes, and per-read
  transient upsets are seed-deterministic and compose with persistent maps.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.array import MemoryArray
from repro.memory.cells import CELL_6T, SoftErrorModel
from repro.memory.faults import (
    FaultMap,
    FaultModel,
    FaultModelSpec,
    coerce_fault_model,
)

ARRAY_SHAPES = st.tuples(
    st.integers(min_value=2, max_value=120),  # num_words
    st.integers(min_value=2, max_value=14),  # bits_per_word
)
SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _random_bits(shape, seed):
    return np.random.default_rng(seed).integers(0, 2, size=shape, dtype=np.int8)


class TestExactCountSamplers:
    @given(shape=ARRAY_SHAPES, fill=st.floats(min_value=0.0, max_value=1.0), seed=SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_uniform_marginal_rate_is_exact(self, shape, fill, seed):
        num_words, bits = shape
        num_faults = int(fill * num_words * bits)
        fault_map = FaultMap.with_exact_fault_count(
            num_words, bits, num_faults, rng=np.random.default_rng(seed)
        )
        assert fault_map.num_faults == num_faults
        assert fault_map.defect_rate == pytest.approx(num_faults / (num_words * bits))

    @given(
        shape=ARRAY_SHAPES,
        fill=st.floats(min_value=0.0, max_value=1.0),
        radius=st.integers(min_value=1, max_value=6),
        seed=SEEDS,
    )
    @settings(max_examples=60, deadline=None)
    def test_clustered_marginal_rate_is_exact(self, shape, fill, radius, seed):
        num_words, bits = shape
        num_faults = int(fill * num_words * bits)
        fault_map = FaultMap.with_clustered_fault_count(
            num_words, bits, num_faults, radius, rng=np.random.default_rng(seed)
        )
        assert fault_map.num_faults == num_faults

    @given(
        shape=ARRAY_SHAPES,
        radius=st.integers(min_value=1, max_value=4),
        protected_msbs=st.integers(min_value=1, max_value=6),
        seed=SEEDS,
    )
    @settings(max_examples=60, deadline=None)
    def test_samplers_respect_protected_columns(self, shape, radius, protected_msbs, seed):
        num_words, bits = shape
        protected_msbs = min(protected_msbs, bits - 1)
        protected = np.zeros(bits, dtype=bool)
        protected[:protected_msbs] = True
        num_faults = num_words * (bits - protected_msbs) // 2
        for sampler in ("uniform", "clustered"):
            if sampler == "uniform":
                fault_map = FaultMap.with_exact_fault_count(
                    num_words,
                    bits,
                    num_faults,
                    rng=np.random.default_rng(seed),
                    protected_columns=protected,
                )
            else:
                fault_map = FaultMap.with_clustered_fault_count(
                    num_words,
                    bits,
                    num_faults,
                    radius,
                    rng=np.random.default_rng(seed),
                    protected_columns=protected,
                )
            assert fault_map.num_faults == num_faults, sampler
            assert fault_map.fault_mask[:, protected].sum() == 0, sampler

    @given(shape=ARRAY_SHAPES, radius=st.integers(min_value=1, max_value=4), seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_clustered_sampler_is_seed_deterministic(self, shape, radius, seed):
        num_words, bits = shape
        num_faults = num_words * bits // 3
        a = FaultMap.with_clustered_fault_count(
            num_words, bits, num_faults, radius, rng=np.random.default_rng(seed)
        )
        b = FaultMap.with_clustered_fault_count(
            num_words, bits, num_faults, radius, rng=np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(a.fault_mask, b.fault_mask)

    def test_clustered_faults_are_more_concentrated_than_uniform(self):
        # Spatial-correlation sanity: with the same budget, clustered faults
        # touch far fewer distinct words than uniform placement.
        rng = np.random.default_rng(2012)
        clustered = FaultMap.with_clustered_fault_count(500, 10, 200, 3, rng=rng)
        uniform = FaultMap.with_exact_fault_count(500, 10, 200, rng=rng)
        assert (
            np.count_nonzero(clustered.fault_mask.any(axis=1))
            < np.count_nonzero(uniform.fault_mask.any(axis=1)) / 2
        )

    def test_sampler_rejects_overfull_budget(self):
        with pytest.raises(ValueError, match="cannot place"):
            FaultMap.with_clustered_fault_count(4, 4, 17, 1)


class TestInjectionSemantics:
    @given(shape=ARRAY_SHAPES, seed=SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_bit_flip_is_an_involution(self, shape, seed):
        num_words, bits = shape
        fault_map = FaultMap.with_exact_fault_count(
            num_words, bits, num_words * bits // 3, rng=np.random.default_rng(seed)
        )
        stored = _random_bits((num_words, bits), seed)
        np.testing.assert_array_equal(
            fault_map.apply_to_bits(fault_map.apply_to_bits(stored)), stored
        )

    @given(
        shape=ARRAY_SHAPES,
        seed=SEEDS,
        model=st.sampled_from(
            [FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1, FaultModel.STUCK_AT_RANDOM]
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_stuck_at_is_idempotent(self, shape, seed, model):
        num_words, bits = shape
        fault_map = FaultMap.with_exact_fault_count(
            num_words,
            bits,
            num_words * bits // 3,
            rng=np.random.default_rng(seed),
            fault_model=model,
        )
        stored = _random_bits((num_words, bits), seed)
        once = fault_map.apply_to_bits(stored)
        np.testing.assert_array_equal(fault_map.apply_to_bits(once), once)


class TestFaultModelTokens:
    @pytest.mark.parametrize("token", [m.value for m in FaultModel])
    def test_uniform_tokens_round_trip(self, token):
        spec = FaultModelSpec.parse(token)
        assert spec.placement == "uniform"
        assert spec.token == token
        assert coerce_fault_model(token) is spec.model

    def test_clustered_token_round_trips(self):
        spec = FaultModelSpec.parse("clustered:3")
        assert spec == FaultModelSpec(placement="clustered", cluster_radius=3)
        assert spec.token == "clustered:3"
        assert coerce_fault_model("clustered:3") == spec

    @pytest.mark.parametrize(
        "token", ["clustered", "clustered:", "clustered:x", "clustered:0", "melted"]
    )
    def test_bad_tokens_rejected(self, token):
        with pytest.raises(ValueError):
            FaultModelSpec.parse(token)

    def test_spec_instances_pass_through(self):
        spec = FaultModelSpec(placement="clustered", cluster_radius=2)
        assert FaultModelSpec.parse(spec) is spec
        assert FaultModelSpec.parse(FaultModel.STUCK_AT_0).model is FaultModel.STUCK_AT_0


class TestSoftErrors:
    @given(vdd=st.floats(min_value=0.8, max_value=1.3))
    @settings(max_examples=60, deadline=None)
    def test_soft_error_rate_is_voltage_insensitive(self, vdd):
        """Per memory/cells.py: 3x per 500 mV, dwarfed by the parametric curve."""
        model = SoftErrorModel()
        soft_growth = model.rate(vdd - 0.5) / model.rate(vdd)
        assert soft_growth == pytest.approx(model.scaling_factor_per_500mv)
        parametric_growth = CELL_6T.failure_probability(
            vdd - 0.5
        ) / CELL_6T.failure_probability(vdd)
        assert parametric_growth > 1_000 * soft_growth

    def test_rate_one_flips_every_cell_per_read(self):
        array = MemoryArray(8, 6, soft_error_rate=1.0, soft_error_rng=0)
        stored = _random_bits((8, 6), 3)
        array.write_words(None, word_bits=stored)
        np.testing.assert_array_equal(array.read_word_bits(), stored ^ 1)

    def test_rate_zero_never_flips_and_draws_nothing(self):
        array = MemoryArray(8, 6)
        stored = _random_bits((8, 6), 3)
        array.write_words(None, word_bits=stored)
        np.testing.assert_array_equal(array.read_word_bits(), stored)
        assert array.soft_error_rng is None

    def test_upsets_are_redrawn_per_read(self):
        array = MemoryArray(64, 10, soft_error_rate=0.2, soft_error_rng=7)
        array.write_words(np.zeros(64, dtype=np.int64))
        first, second = array.read_word_bits(), array.read_word_bits()
        assert first.sum() > 0 and second.sum() > 0
        assert not np.array_equal(first, second)

    def test_upsets_are_seed_deterministic(self):
        reads = []
        for _ in range(2):
            array = MemoryArray(64, 10, soft_error_rate=0.2, soft_error_rng=7)
            array.write_words(np.zeros(64, dtype=np.int64))
            reads.append([array.read_word_bits() for _ in range(3)])
        for a, b in zip(*reads):
            np.testing.assert_array_equal(a, b)

    def test_upsets_compose_with_persistent_faults(self):
        # rate 1.0 on top of a full bit-flip map flips twice: reads restore
        # the stored value — the two mechanisms are literal XORs.
        fault_map = FaultMap(8, 6, np.ones((8, 6), dtype=bool))
        array = MemoryArray(8, 6, fault_map=fault_map, soft_error_rate=1.0, soft_error_rng=0)
        stored = _random_bits((8, 6), 3)
        array.write_words(None, word_bits=stored)
        np.testing.assert_array_equal(array.read_word_bits(), stored)

    def test_rate_is_validated(self):
        with pytest.raises(ValueError):
            MemoryArray(8, 6, soft_error_rate=1.5)
        with pytest.raises(ValueError):
            MemoryArray(8, 6, soft_error_rate=-0.1)
