"""Property-based tests for the Monte-Carlo statistics helpers."""

import math

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.montecarlo import (
    mean_confidence_interval,
    proportion_confidence_interval,
    required_packets_for_bler,
)

CONFIDENCES = st.floats(min_value=0.5, max_value=0.999)


class TestProportionInterval:
    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        ratio=st.floats(min_value=0.0, max_value=1.0),
        confidence=CONFIDENCES,
    )
    @settings(max_examples=200, deadline=None)
    def test_bounds_stay_in_unit_interval(self, trials, ratio, confidence):
        successes = min(trials, int(round(ratio * trials)))
        estimate = proportion_confidence_interval(successes, trials, confidence)
        assert 0.0 <= estimate.lower <= estimate.upper <= 1.0
        assert estimate.half_width >= 0.0
        assert estimate.num_samples == trials

    @given(
        successes=st.integers(min_value=0, max_value=50),
        trials=st.integers(min_value=1, max_value=50),
        factor=st.integers(min_value=2, max_value=40),
        confidence=CONFIDENCES,
    )
    @settings(max_examples=200, deadline=None)
    def test_half_width_shrinks_with_n(self, successes, trials, factor, confidence):
        successes = min(successes, trials)
        small = proportion_confidence_interval(successes, trials, confidence)
        large = proportion_confidence_interval(successes * factor, trials * factor, confidence)
        assert large.half_width <= small.half_width + 1e-12

    def test_extreme_counts_clamped(self):
        # Exactly the cases where centre ± half-width used to leak outside
        # [0, 1] through floating-point rounding.
        for successes, trials in [(0, 1), (1, 1), (0, 10**6), (10**6, 10**6)]:
            estimate = proportion_confidence_interval(successes, trials, 0.999)
            assert 0.0 <= estimate.lower <= estimate.upper <= 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            proportion_confidence_interval(5, 0)
        with pytest.raises(ValueError):
            proportion_confidence_interval(-1, 10)
        with pytest.raises(ValueError):
            proportion_confidence_interval(11, 10)


class TestMeanInterval:
    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=64
        ),
        repeats=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_half_width_shrinks_when_replicating_samples(self, samples, repeats):
        small = mean_confidence_interval(samples)
        large = mean_confidence_interval(samples * repeats)
        assert large.half_width <= small.half_width + 1e-9
        assert math.isclose(large.value, small.value, rel_tol=0, abs_tol=1e-6)

    def test_single_sample_has_infinite_interval(self):
        estimate = mean_confidence_interval([1.0])
        assert math.isinf(estimate.half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestRequiredPackets:
    @given(
        target=st.floats(min_value=1e-6, max_value=1.0, exclude_max=True),
        relative_error=st.floats(min_value=1e-3, max_value=2.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_positive_and_sufficient(self, target, relative_error):
        needed = required_packets_for_bler(target, relative_error)
        assert isinstance(needed, int)
        assert needed >= 1
        # The rule of thumb: with `needed` packets, the binomial standard
        # error is at most relative_error * target.
        standard_error = math.sqrt(target * (1.0 - target) / needed)
        assert standard_error <= relative_error * target * (1.0 + 1e-9)

    @given(
        target=st.floats(min_value=1e-5, max_value=0.5),
        factor=st.floats(min_value=1.1, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_target(self, target, factor):
        rarer = required_packets_for_bler(target / factor)
        commoner = required_packets_for_bler(min(target, 1.0 - 1e-9))
        assert rarer >= commoner

    @pytest.mark.parametrize("bad_target", [0.0, 1.0, -0.1, 1.5, float("nan")])
    def test_degenerate_targets_rejected(self, bad_target):
        with pytest.raises(ValueError):
            required_packets_for_bler(bad_target)

    @pytest.mark.parametrize("bad_rel", [0.0, -0.5, float("nan")])
    def test_degenerate_relative_error_rejected(self, bad_rel):
        with pytest.raises(ValueError):
            required_packets_for_bler(0.1, bad_rel)
