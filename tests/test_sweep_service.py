"""Sweep-service layer: capacity dispatch, point store, serve, and fixes.

Covers the distributed-path hardening introduced together:

* torn cache writes — atomic stores, quarantine of corrupt entries;
* address parsing — IPv6 bracket syntax round-trips;
* worker exit codes — 0 is reserved for a coordinator-acknowledged
  shutdown, a lost coordinator is distinct from never having connected;
* mixed-fleet liveness — local-daemon death no longer aborts a run that
  has (or had) external workers;
* capacity-weighted dispatch — a worker advertising N slots holds up to N
  unanswered items, dies safely holding several, and never changes results;
* the content-addressed point store — exact round-trips, golden parity,
  and zero computed points on a warm store;
* the read-only query front end — cached payloads byte-identical over HTTP.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import fig6_throughput_vs_defects
from repro.experiments.scales import SCALES
from repro.harq.metrics import HarqStatistics
from repro.core.fault_simulator import FaultSimulationPoint
from repro.runner.backends import (
    SocketDistributedBackend,
    WORKER_EXIT_FAILURE,
    WORKER_EXIT_LOST_COORDINATOR,
    WORKER_EXIT_OK,
    run_worker,
)
from repro.runner.backends.wire import (
    format_address,
    parse_address,
    recv_message,
    send_message,
)
from repro.runner.cache import ResultCache, atomic_write_text
from repro.runner.cli import experiment_payload
from repro.runner.parallel import ParallelRunner
from repro.runner.point_store import (
    PointStore,
    fault_point_from_json,
    fault_point_to_json,
    statistics_from_json,
    statistics_to_json,
)
from repro.runner.serve import build_server

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def micro_scale():
    """A sub-smoke scale so end-to-end dispatch tests stay fast."""
    return SCALES["smoke"].with_updates(
        payload_bits=56,
        num_packets=4,
        num_fault_maps=2,
        turbo_iterations=3,
        snr_points_db=(16.0, 26.0),
        defect_rates=(0.0, 0.10),
    )


# Module-level task function so the socket backend can pickle it by reference.
def _square(value):
    return value * value


# --------------------------------------------------------------------------- #
# address parsing (IPv6 bracket syntax)
# --------------------------------------------------------------------------- #
class TestAddressRoundTrip:
    def test_ipv4_and_hostname_parse(self):
        assert parse_address("127.0.0.1:5555") == ("127.0.0.1", 5555)
        assert parse_address("coordinator-host:0") == ("coordinator-host", 0)

    def test_ipv6_brackets_are_stripped(self):
        # socket.bind/create_connection want the bare literal, not "[::1]".
        assert parse_address("[::1]:8000") == ("::1", 8000)
        assert parse_address("[fe80::1]:5555") == ("fe80::1", 5555)

    def test_format_brackets_ipv6_only(self):
        assert format_address("127.0.0.1", 80) == "127.0.0.1:80"
        assert format_address("::1", 8000) == "[::1]:8000"

    @pytest.mark.parametrize("host", ["127.0.0.1", "::1", "fe80::1%eth0", "a.b.c"])
    def test_round_trip(self, host):
        assert parse_address(format_address(host, 4242)) == (host, 4242)

    @pytest.mark.parametrize(
        "bad",
        [
            "no-port-here",  # no separator at all
            "::1:8000",  # unbracketed IPv6 would mis-split the port
            "[]:8000",  # empty literal
            "host:http",  # non-numeric port
            ":8000",  # empty host
        ],
    )
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_coordinator_binds_ipv6_loopback(self):
        try:
            backend = SocketDistributedBackend(local_workers=0, bind="[::1]:0")
            address = backend.address
        except OSError:
            pytest.skip("IPv6 loopback unavailable in this environment")
        try:
            assert address.startswith("[::1]:")
            host, port = parse_address(address)
            assert host == "::1" and port > 0
        finally:
            backend.close()


# --------------------------------------------------------------------------- #
# cache atomicity and quarantine
# --------------------------------------------------------------------------- #
class TestCacheAtomicity:
    def test_corrupt_entry_is_quarantined_with_warning(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("fig6", "deadbeefdeadbeefdead")
        path.parent.mkdir(parents=True)
        path.write_text('{"cache_format": 1, "tables": {tor')  # torn tail
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.load("fig6", "deadbeefdeadbeefdead") is None
        # The evidence is preserved, and the slot is free for a re-store.
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_text().endswith("tor")

    def test_store_leaves_no_temporary_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("fig6", "feedface" * 2, identity={"seed": 1}, tables={})
        leftovers = [
            p for p in (tmp_path / "fig6").iterdir() if p.suffix != ".json"
        ]
        assert leftovers == []

    def test_failed_replace_keeps_old_content_and_cleans_tmp(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "entry.json"
        target.write_text("old payload")

        def refuse(_src, _dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.runner.cache.os.replace", refuse)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(target, "new payload")
        # A reader can never have observed a torn file: the target still
        # holds the previous bytes and the temp file is gone.
        assert target.read_text() == "old payload"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["entry.json"]


# --------------------------------------------------------------------------- #
# worker exit codes
# --------------------------------------------------------------------------- #
def _one_shot_coordinator(script):
    """Accept one worker connection and run *script(conn)* against it."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]

    def serve():
        conn, _peer = listener.accept()
        try:
            script(conn)
        finally:
            conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return f"{host}:{port}", listener, thread


class TestWorkerExitCodes:
    def test_codes_are_distinct_and_zero_means_clean(self):
        codes = {WORKER_EXIT_OK, WORKER_EXIT_FAILURE, WORKER_EXIT_LOST_COORDINATOR}
        assert len(codes) == 3
        assert WORKER_EXIT_OK == 0

    def test_shutdown_frame_exits_zero(self):
        def script(conn):
            assert recv_message(conn)[0] == "hello"
            send_message(conn, ("shutdown",))

        address, listener, thread = _one_shot_coordinator(script)
        code = run_worker(
            address, connect_retries=5, retry_delay=0.05, log=lambda _line: None
        )
        thread.join(timeout=10.0)
        listener.close()
        assert code == WORKER_EXIT_OK

    def test_lost_coordinator_is_not_a_clean_exit(self):
        """once-mode + dropped connection must NOT masquerade as success.

        A supervisor keying restart policy off the exit status needs to tell
        "the run finished" (0) apart from "the coordinator vanished" — the
        latter exits 2 even though the daemon served items first.
        """

        def script(conn):
            assert recv_message(conn)[0] == "hello"
            message = recv_message(conn)  # one heartbeat or nothing of note
            assert message[0] in ("heartbeat",)
            # ... then vanish without a shutdown frame.

        address, listener, thread = _one_shot_coordinator(script)
        code = run_worker(
            address,
            connect_retries=5,
            retry_delay=0.05,
            once=True,
            heartbeat_interval=0.05,
            log=lambda _line: None,
        )
        thread.join(timeout=10.0)
        listener.close()
        assert code == WORKER_EXIT_LOST_COORDINATOR


# --------------------------------------------------------------------------- #
# mixed-fleet liveness
# --------------------------------------------------------------------------- #
class _DeadProc:
    """A local worker subprocess that has already exited."""

    pid = 999_999_999

    @staticmethod
    def poll():
        return 1


class TestMixedFleetLiveness:
    def test_local_fleet_death_aborts_a_purely_local_run(self):
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            backend._ensure_started()
            backend._local_procs = [_DeadProc()]
            with pytest.raises(RuntimeError, match="local worker daemons exited"):
                backend._check_liveness()
        finally:
            backend._local_procs = []
            backend.close()

    def test_external_worker_suppresses_the_local_death_abort(self):
        """Local helpers dying must not strand a healthy external fleet.

        Once any external worker has connected, its reconnect window is
        worker_timeout — the run may only fail on that timeout, never
        immediately on local-daemon death.
        """
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            backend._ensure_started()
            backend._local_procs = [_DeadProc()]
            backend._external_seen = True
            backend._check_liveness()  # must not raise
        finally:
            backend._local_procs = []
            backend.close()

    def test_timeout_message_carries_local_diagnostics(self):
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            backend._ensure_started()
            backend._local_procs = [_DeadProc()]
            backend._external_seen = True
            backend._last_activity = time.monotonic() - 61.0
            with pytest.raises(RuntimeError) as excinfo:
                backend._check_liveness()
            assert "no worker connected" in str(excinfo.value)
            assert "local worker daemons also exited" in str(excinfo.value)
        finally:
            backend._local_procs = []
            backend.close()

    def test_external_fleet_can_finish_after_local_death(self, micro_scale):
        """End to end: dead "local" procs + a live external worker completes."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            address = backend.address
            backend._local_procs = [_DeadProc()]
            thread = threading.Thread(
                target=run_worker,
                args=(address,),
                kwargs=dict(
                    connect_retries=40,
                    retry_delay=0.05,
                    once=True,
                    log=lambda _line: None,
                ),
                daemon=True,
            )
            thread.start()
            runner = ParallelRunner(2, backend=backend)
            assert runner.map(_square, [2, 3, 4]) == [4, 9, 16]
        finally:
            backend._local_procs = []
            backend.close()


# --------------------------------------------------------------------------- #
# capacity-weighted dispatch
# --------------------------------------------------------------------------- #
class TestCapacityWeightedDispatch:
    def test_multislot_worker_holds_multiple_items_in_flight(self):
        """A slots=2 hello earns two unanswered task frames (pipelining)."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            host, port = parse_address(backend.address)

            def worker():
                sock = socket.create_connection((host, port))
                sock.settimeout(30.0)
                send_message(sock, ("hello", 0, {"slots": 2}))
                # Both frames must arrive BEFORE any reply is sent — with a
                # single credit the second recv would block until timeout.
                first = recv_message(sock)
                second = recv_message(sock)
                assert first[0] == second[0] == "task"
                for message in (first, second):
                    _kind, round_id, index, fn, task = message
                    send_message(sock, ("result", round_id, index, fn(task)))
                while True:
                    message = recv_message(sock)
                    if message[0] == "shutdown":
                        sock.close()
                        return
                    _kind, round_id, index, fn, task = message
                    send_message(sock, ("result", round_id, index, fn(task)))

            threading.Thread(target=worker, daemon=True).start()
            runner = ParallelRunner(2, backend=backend)
            assert runner.map(_square, [2, 3, 4]) == [4, 9, 16]
        finally:
            backend.close()

    def test_single_slot_worker_is_capped_at_one_item(self):
        """A legacy (or slots=1) worker never sees a second unanswered task."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            host, port = parse_address(backend.address)
            saw_premature_task = threading.Event()

            def worker():
                sock = socket.create_connection((host, port))
                send_message(sock, ("hello", 0))  # legacy hello: one credit
                sock.settimeout(30.0)
                first = recv_message(sock)
                assert first[0] == "task"
                sock.settimeout(1.0)
                try:
                    recv_message(sock)
                    saw_premature_task.set()  # a second frame leaked through
                except socket.timeout:
                    pass
                sock.settimeout(30.0)
                _kind, round_id, index, fn, task = first
                send_message(sock, ("result", round_id, index, fn(task)))
                while True:
                    message = recv_message(sock)
                    if message[0] == "shutdown":
                        sock.close()
                        return
                    _kind, round_id, index, fn, task = message
                    send_message(sock, ("result", round_id, index, fn(task)))

            threading.Thread(target=worker, daemon=True).start()
            runner = ParallelRunner(2, backend=backend)
            assert runner.map(_square, [5, 6]) == [25, 36]
            assert not saw_premature_task.is_set()
        finally:
            backend.close()

    def test_multislot_worker_death_requeues_every_outstanding_item(self):
        """Dying while holding several items redelivers all of them."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            host, port = parse_address(backend.address)
            took_both = threading.Event()

            def greedy_then_dead():
                sock = socket.create_connection((host, port))
                sock.settimeout(30.0)
                send_message(sock, ("hello", 0, {"slots": 2}))
                assert recv_message(sock)[0] == "task"
                assert recv_message(sock)[0] == "task"
                took_both.set()
                sock.close()  # die holding two unanswered items

            threading.Thread(target=greedy_then_dead, daemon=True).start()

            def healthy_after_death():
                assert took_both.wait(timeout=30.0)
                run_worker(
                    f"{host}:{port}",
                    connect_retries=40,
                    retry_delay=0.05,
                    once=True,
                    log=lambda _line: None,
                )

            threading.Thread(target=healthy_after_death, daemon=True).start()
            runner = ParallelRunner(2, backend=backend)
            assert runner.map(_square, [2, 3, 4]) == [4, 9, 16]
        finally:
            backend.close()

    def test_fig6_bit_identical_under_multislot_execution(self, micro_scale):
        """Capacity weighting is topology: a slots=4 daemon changes nothing."""
        serial = fig6_throughput_vs_defects.run(micro_scale, seed=2012).to_json()
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            address = backend.address
            thread = threading.Thread(
                target=run_worker,
                args=(address,),
                kwargs=dict(
                    connect_retries=40,
                    retry_delay=0.05,
                    once=True,
                    slots=4,
                    log=lambda _line: None,
                ),
                daemon=True,
            )
            thread.start()
            runner = ParallelRunner(2, backend=backend)
            table = fig6_throughput_vs_defects.run(
                micro_scale, seed=2012, runner=runner
            )
            assert table.to_json() == serial
        finally:
            backend.close()

    def test_slots_zero_autosizes_and_negative_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            run_worker("127.0.0.1:1", slots=-1, log=lambda _line: None)
        with pytest.raises(ValueError, match="worker_slots"):
            SocketDistributedBackend(local_workers=0, worker_slots=-1)


# --------------------------------------------------------------------------- #
# point store
# --------------------------------------------------------------------------- #
def _sample_statistics() -> HarqStatistics:
    return HarqStatistics(
        num_packets=8,
        num_successful=7,
        total_transmissions=13,
        info_bits_per_packet=120,
        attempts_per_transmission=np.array([8, 3, 2], dtype=np.int64),
        failures_per_transmission=np.array([4, 1, 1], dtype=np.int64),
    )


def _assert_statistics_equal(left: HarqStatistics, right: HarqStatistics) -> None:
    assert left.num_packets == right.num_packets
    assert left.num_successful == right.num_successful
    assert left.total_transmissions == right.total_transmissions
    assert left.info_bits_per_packet == right.info_bits_per_packet
    assert np.array_equal(left.attempts_per_transmission, right.attempts_per_transmission)
    assert np.array_equal(left.failures_per_transmission, right.failures_per_transmission)
    assert right.attempts_per_transmission.dtype == np.int64
    assert right.failures_per_transmission.dtype == np.int64


class TestPointStore:
    def test_statistics_round_trip_is_exact(self):
        stats = _sample_statistics()
        # Through real JSON text, not just the dict, to catch coercions.
        rebuilt = statistics_from_json(json.loads(json.dumps(statistics_to_json(stats))))
        _assert_statistics_equal(stats, rebuilt)

    def test_fault_point_round_trip_is_exact(self, tmp_path):
        point = FaultSimulationPoint(
            snr_db=16.2,
            num_faults=3,
            defect_rate=0.01,
            statistics=_sample_statistics(),
            per_map_throughput=[0.5, 0.3333333333333333],
            protection_name="msb-protected-3",
        )
        store = PointStore(tmp_path)
        digest = store.digest({"probe": 1})
        store.store_fault_point(digest, point, identity={"probe": 1})
        loaded = store.load_fault_point(digest)
        assert loaded is not None
        assert loaded.snr_db == point.snr_db
        assert loaded.num_faults == point.num_faults
        assert loaded.defect_rate == point.defect_rate
        assert loaded.per_map_throughput == point.per_map_throughput
        assert loaded.protection_name == point.protection_name
        _assert_statistics_equal(point.statistics, loaded.statistics)
        assert store.writes == 1 and store.hits == 1

    def test_fault_point_json_round_trip(self):
        point = FaultSimulationPoint(
            snr_db=26.0,
            num_faults=0,
            defect_rate=0.0,
            statistics=_sample_statistics(),
            per_map_throughput=[1.0],
            protection_name="unprotected-6T",
        )
        data = json.loads(json.dumps(fault_point_to_json(point)))
        rebuilt = fault_point_from_json(data)
        assert fault_point_to_json(rebuilt) == fault_point_to_json(point)

    @pytest.mark.parametrize(
        "bad", ["../../etc/passwd", "DEADBEEF", "short", "", "deadbeef.json", "a b"]
    )
    def test_malformed_digests_never_touch_the_filesystem(self, tmp_path, bad):
        store = PointStore(tmp_path)
        with pytest.raises(ValueError, match="malformed point digest"):
            store.path_for(bad)

    def test_kind_mismatch_is_a_miss(self, tmp_path):
        store = PointStore(tmp_path)
        digest = store.digest({"cross": "kind"})
        store.store_statistics(digest, _sample_statistics(), identity={"cross": "kind"})
        assert store.load_fault_point(digest) is None
        assert store.misses == 1

    def test_corrupt_or_stale_entries_miss(self, tmp_path):
        store = PointStore(tmp_path)
        digest = "ab" * 10
        store.path_for(digest).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(digest).write_text("{ not json")
        assert store.load_payload(digest) is None
        store.path_for(digest).write_text(
            json.dumps({"point_store_format": -1, "kind": "fault"})
        )
        assert store.load_payload(digest) is None


@pytest.fixture(scope="module")
def fig6_smoke_store(tmp_path_factory):
    """One cold fig6 smoke run shared by parity, warm-store and serve tests."""
    root = tmp_path_factory.mktemp("sweep-service")
    cache = ResultCache(root / "cache")
    store = PointStore(root / "points")
    payload = experiment_payload("fig6", "smoke", 2012, cache=cache, point_store=store)
    return root, store, payload


class TestPointStoreEndToEnd:
    def test_cold_store_run_matches_golden_bytes(self, fig6_smoke_store):
        _root, store, payload = fig6_smoke_store
        assert payload == (GOLDEN_DIR / "fig6.json").read_text()
        assert store.writes == len(store) > 0
        assert store.hits == 0

    def test_warm_store_computes_zero_points(self, fig6_smoke_store):
        """A second coordinator sharing the store schedules zero known work."""
        root, _cold, payload = fig6_smoke_store
        warm = PointStore(root / "points")
        again = experiment_payload(
            "fig6", "smoke", 2012, cache=None, point_store=warm
        )
        assert again == payload  # byte-identical to the cold run
        assert warm.writes == 0
        assert warm.hits == len(warm) > 0
        assert "computed 0 point(s)" in warm.summary()

    def test_store_never_enters_the_run_identity(self, fig6_smoke_store):
        root, _store, payload = fig6_smoke_store
        bare = experiment_payload("fig6", "smoke", 2012, cache=None)
        assert bare == payload  # same digest, same bytes, store or not
        identity = json.loads(payload)["identity"]
        assert "point_store" not in json.dumps(identity)


# --------------------------------------------------------------------------- #
# the read-only query front end
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def query_server(fig6_smoke_store):
    root, _store, _payload = fig6_smoke_store
    server = build_server(
        root / "cache", point_store_dir=root / "points", bind="127.0.0.1:0"
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield server
    server.shutdown()
    server.server_close()


def _get(server, path):
    """GET a route; return (status, decoded JSON body) even for errors."""
    try:
        with urllib.request.urlopen(f"http://{server.address}{path}") as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestQueryFrontEnd:
    def test_index_lists_routes_and_counts(self, query_server, fig6_smoke_store):
        _root, store, _payload = fig6_smoke_store
        status, index = _get(query_server, "/")
        assert status == 200
        assert index["service"] == "repro-query"
        assert index["experiments"] == {"fig6": 1}
        assert index["points"] == len(store)

    def test_experiment_payload_is_byte_identical_over_http(
        self, query_server, fig6_smoke_store
    ):
        _root, _store, payload = fig6_smoke_store
        status, listing = _get(query_server, "/experiments")
        assert status == 200 and list(listing) == ["fig6"]
        (digest,) = listing["fig6"]
        status, served = _get(query_server, f"/experiments/fig6/{digest}")
        assert status == 200
        assert json.dumps(served, sort_keys=True, indent=2) + "\n" == payload

    def test_point_payloads_served(self, query_server, fig6_smoke_store):
        _root, store, _payload = fig6_smoke_store
        status, body = _get(query_server, "/points")
        assert status == 200
        assert body["points"] == list(store.iter_digests())
        status, point = _get(query_server, f"/points/{body['points'][0]}")
        assert status == 200
        assert point["point_store_format"] == 1
        assert point["kind"] == "fault"

    @pytest.mark.parametrize(
        "path",
        [
            "/nope",
            "/experiments/unknown-experiment",
            "/experiments/fig6/0000000000deadbeef00",
            "/experiments/fig6/extra/deep",
            "/experiments/..%2f..%2fetc",
            "/points/not-a-digest",
            "/points/" + "a" * 70,
        ],
    )
    def test_unknown_and_malformed_paths_are_json_404s(self, query_server, path):
        status, body = _get(query_server, path)
        assert status == 404
        assert "error" in body

    def test_non_get_methods_are_405(self, query_server):
        request = urllib.request.Request(
            f"http://{query_server.address}/experiments", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 405

    def test_server_without_point_store(self, fig6_smoke_store):
        root, _store, _payload = fig6_smoke_store
        server = build_server(root / "cache", bind="127.0.0.1:0")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            status, index = _get(server, "/")
            assert status == 200 and index["points"] == 0
            status, body = _get(server, "/points")
            assert status == 404
        finally:
            server.shutdown()
            server.server_close()

    def test_serve_cli_wiring(self):
        from repro.runner.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.cache == Path(".repro-cache")
        assert args.point_store is None
        assert parse_address(args.bind) == ("127.0.0.1", 8000)
