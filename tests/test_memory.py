"""Tests for the unreliable-silicon substrate (cells, faults, arrays, ECC, yield)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.array import MemoryArray
from repro.memory.cells import (
    CELL_6T,
    CELL_6T_UPSIZED,
    CELL_8T,
    BitCellType,
    SoftErrorModel,
    get_cell_type,
)
from repro.memory.ecc import HammingCode
from repro.memory.failure_model import FailureModel, failure_probability_with_margin
from repro.memory.faults import FaultMap, FaultModel
from repro.memory.hybrid import HybridArrayConfig
from repro.memory.power import AreaModel, PowerModel
from repro.memory.redundancy import RedundancyRepair
from repro.memory.yield_model import (
    acceptance_yield,
    acceptance_yield_curve,
    defect_free_yield,
    expected_faulty_cells,
    max_cell_failure_probability,
    min_defects_for_yield,
    yield_with_redundancy,
)


class TestCells:
    def test_failure_probability_decreases_with_voltage(self):
        assert CELL_6T.failure_probability(1.0) < CELL_6T.failure_probability(0.7)

    def test_robustness_ordering(self):
        for vdd in (0.6, 0.8, 1.0):
            assert (
                CELL_8T.failure_probability(vdd)
                < CELL_6T_UPSIZED.failure_probability(vdd)
                < CELL_6T.failure_probability(vdd)
            )

    def test_6t_nominal_voltage_anchor(self):
        assert CELL_6T.failure_probability(1.0) < 1e-8

    def test_6t_billion_fold_increase_over_500mv(self):
        ratio = CELL_6T.failure_probability(0.5) / CELL_6T.failure_probability(1.0)
        assert ratio > 1e6

    def test_min_voltage_inverse(self):
        voltage = CELL_6T.min_voltage_for_failure_probability(1e-3)
        assert CELL_6T.failure_probability(voltage) == pytest.approx(1e-3, rel=1e-6)

    def test_vectorised_matches_scalar(self):
        voltages = np.array([0.6, 0.8, 1.0])
        vector = CELL_6T.failure_probabilities(voltages)
        scalar = [CELL_6T.failure_probability(v) for v in voltages]
        assert np.allclose(vector, scalar)

    def test_area_ordering(self):
        assert CELL_6T.relative_area < CELL_6T_UPSIZED.relative_area < CELL_8T.relative_area

    def test_registry(self):
        assert get_cell_type("8T") is CELL_8T
        with pytest.raises(ValueError):
            get_cell_type("12T")

    def test_soft_error_scaling(self):
        model = SoftErrorModel()
        assert model.rate(0.5) / model.rate(1.0) == pytest.approx(3.0)
        assert model.rate(0.75) / model.rate(1.0) == pytest.approx(np.sqrt(3.0), rel=1e-6)

    def test_voltage_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CELL_6T.failure_probability(0.1)


class TestFailureModel:
    def test_total_combines_mechanisms(self):
        model = FailureModel()
        total = model.total_failure_probability(0.8)
        assert total >= model.parametric_failure_probability(0.8)
        assert total <= model.parametric_failure_probability(0.8) + model.soft_error_probability(0.8)

    def test_breakdown_sums_to_parametric(self):
        model = FailureModel()
        breakdown = model.mechanism_breakdown(0.7)
        assert sum(breakdown.values()) == pytest.approx(
            model.parametric_failure_probability(0.7)
        )

    def test_voltage_sweep_keys(self):
        sweep = FailureModel().voltage_sweep(np.array([0.7, 0.9]))
        assert set(sweep) == {"parametric", "soft", "total"}

    def test_expected_defects(self):
        model = FailureModel(soft_errors=None)
        assert model.expected_defects(0.8, 10_000) == pytest.approx(
            CELL_6T.failure_probability(0.8) * 10_000
        )

    def test_margin_reduces_probability(self):
        assert failure_probability_with_margin(1e-3, 1.0) < 1e-3
        assert failure_probability_with_margin(0.0, 1.0) == 0.0


class TestFaultMap:
    def test_exact_count(self, rng):
        fault_map = FaultMap.with_exact_fault_count(500, 10, 37, rng)
        assert fault_map.num_faults == 37
        assert fault_map.defect_rate == pytest.approx(37 / 5000)

    def test_exact_count_zero(self):
        fault_map = FaultMap.with_exact_fault_count(100, 10, 0)
        assert fault_map.num_faults == 0

    def test_exact_count_too_many(self):
        with pytest.raises(ValueError):
            FaultMap.with_exact_fault_count(10, 2, 21)

    def test_protected_columns_untouched(self, rng):
        protected = np.zeros(10, dtype=bool)
        protected[:4] = True
        fault_map = FaultMap.with_exact_fault_count(
            200, 10, 150, rng, protected_columns=protected
        )
        assert fault_map.faults_per_column()[:4].sum() == 0
        assert fault_map.num_faults == 150

    def test_bernoulli_rate(self, rng):
        fault_map = FaultMap.from_cell_failure_probability(2000, 10, 0.05, rng)
        assert fault_map.defect_rate == pytest.approx(0.05, abs=0.01)

    def test_column_probabilities(self, rng):
        probabilities = np.array([0.0, 0.0, 0.5, 0.5])
        fault_map = FaultMap.from_cell_failure_probability(
            4000, 4, 0.0, rng, column_failure_probabilities=probabilities
        )
        per_column = fault_map.faults_per_column()
        assert per_column[0] == 0 and per_column[1] == 0
        assert per_column[2] > 1500

    def test_bit_flip_semantics(self, rng):
        fault_map = FaultMap.with_exact_fault_count(50, 8, 30, rng)
        stored = np.zeros((50, 8), dtype=np.int8)
        read = fault_map.apply_to_bits(stored)
        assert read.sum() == 30

    def test_stuck_at_zero_semantics(self, rng):
        fault_map = FaultMap.with_exact_fault_count(
            50, 8, 30, rng, fault_model=FaultModel.STUCK_AT_0
        )
        stored = np.ones((50, 8), dtype=np.int8)
        read = fault_map.apply_to_bits(stored)
        assert (read == 0).sum() == 30

    def test_stuck_at_one_semantics(self, rng):
        fault_map = FaultMap.with_exact_fault_count(
            50, 8, 30, rng, fault_model=FaultModel.STUCK_AT_1
        )
        stored = np.zeros((50, 8), dtype=np.int8)
        assert fault_map.apply_to_bits(stored).sum() == 30

    def test_clustered_faults(self, rng):
        fault_map = FaultMap.clustered(1000, 10, num_clusters=5, cluster_size=20, rng=rng)
        assert 0 < fault_map.num_faults <= 100

    def test_row_slice(self, rng):
        fault_map = FaultMap.with_exact_fault_count(100, 4, 40, rng)
        top = fault_map.row_slice(0, 50)
        bottom = fault_map.row_slice(50, 100)
        assert top.num_faults + bottom.num_faults == 40

    def test_row_slice_invalid(self):
        fault_map = FaultMap.empty(10, 4)
        with pytest.raises(ValueError):
            fault_map.row_slice(5, 20)

    def test_restrict_to_columns(self, rng):
        fault_map = FaultMap.with_exact_fault_count(100, 10, 80, rng)
        restricted = fault_map.restrict_to_columns(np.array([0, 1]))
        assert restricted.num_faults == fault_map.faults_per_column()[:2].sum()

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_exact_count_property(self, num_faults):
        fault_map = FaultMap.with_exact_fault_count(50, 8, num_faults, rng=num_faults)
        assert fault_map.num_faults == num_faults


class TestMemoryArray:
    def test_defect_free_roundtrip(self, rng):
        array = MemoryArray(200, 10)
        words = rng.integers(0, 1024, 200)
        array.write_words(words)
        assert np.array_equal(array.read_words(), words)

    def test_faulty_reads_corrupt_words(self, rng):
        fault_map = FaultMap.with_exact_fault_count(200, 10, 100, rng)
        array = MemoryArray(200, 10, fault_map=fault_map)
        words = rng.integers(0, 1024, 200)
        array.write_words(words)
        corrupted = array.read_words()
        assert np.any(corrupted != words)
        assert array.corrupted_word_count() > 0

    def test_faults_are_deterministic(self, rng):
        fault_map = FaultMap.with_exact_fault_count(100, 8, 50, rng)
        array = MemoryArray(100, 8, fault_map=fault_map)
        words = rng.integers(0, 256, 100)
        array.write_words(words)
        assert np.array_equal(array.read_words(), array.read_words())

    def test_ecc_corrects_single_faults(self, rng):
        ecc = HammingCode(10)
        # One fault per word at most: place faults in distinct rows.
        mask = np.zeros((100, ecc.codeword_bits), dtype=bool)
        rows = rng.choice(100, size=60, replace=False)
        mask[rows, rng.integers(0, ecc.codeword_bits, 60)] = True
        fault_map = FaultMap(100, ecc.codeword_bits, mask)
        array = MemoryArray(100, 10, fault_map=fault_map, ecc=ecc)
        words = rng.integers(0, 1024, 100)
        array.write_words(words)
        assert np.array_equal(array.read_words(), words)

    def test_ecc_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryArray(10, 8, ecc=HammingCode(10))

    def test_fault_map_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryArray(10, 8, fault_map=FaultMap.empty(10, 10))

    def test_write_bits_interface(self, rng):
        array = MemoryArray(50, 6)
        bits = rng.integers(0, 2, (50, 6)).astype(np.int8)
        array.write_words(None, word_bits=bits)
        assert np.array_equal(array.read_word_bits(), bits)

    def test_clear(self, rng):
        array = MemoryArray(20, 4)
        array.write_words(rng.integers(0, 16, 20))
        array.clear()
        assert array.read_words().sum() == 0


class TestHammingCode:
    @pytest.mark.parametrize("data_bits", [4, 8, 10, 11, 12, 16])
    def test_roundtrip(self, data_bits, rng):
        code = HammingCode(data_bits)
        data = rng.integers(0, 2, (64, data_bits)).astype(np.int8)
        decoded, corrected, uncorrectable = code.decode(code.encode(data))
        assert np.array_equal(decoded, data)
        assert not corrected.any()
        assert not uncorrectable.any()

    @pytest.mark.parametrize("data_bits", [8, 10, 12])
    def test_single_error_correction(self, data_bits, rng):
        code = HammingCode(data_bits)
        data = rng.integers(0, 2, (128, data_bits)).astype(np.int8)
        codewords = code.encode(data)
        for i in range(codewords.shape[0]):
            codewords[i, rng.integers(0, code.codeword_bits)] ^= 1
        decoded, corrected, _ = code.decode(codewords)
        assert np.array_equal(decoded, data)
        assert corrected.all()

    def test_ten_bit_code_uses_four_parity_bits(self):
        code = HammingCode(10)
        assert code.num_parity_bits == 4
        assert code.overhead == pytest.approx(0.4)

    def test_extended_detects_double_errors(self, rng):
        code = HammingCode(10, extended=True)
        data = rng.integers(0, 2, (64, 10)).astype(np.int8)
        codewords = code.encode(data)
        for i in range(codewords.shape[0]):
            positions = rng.choice(code.codeword_bits - 1, size=2, replace=False)
            codewords[i, positions] ^= 1
        _, _, uncorrectable = code.decode(codewords)
        assert uncorrectable.mean() > 0.9

    def test_word_failure_probability(self):
        code = HammingCode(10)
        assert code.word_failure_probability(1e-3) < 14 * 1e-3
        assert code.word_failure_probability(0.0) == 0.0

    def test_invalid_shapes_rejected(self):
        code = HammingCode(10)
        with pytest.raises(ValueError):
            code.encode(np.zeros((4, 9), dtype=np.int8))
        with pytest.raises(ValueError):
            code.decode(np.zeros((4, 10), dtype=np.int8))


class TestYieldModel:
    def test_eq1_matches_eq2_at_zero_defects(self):
        assert defect_free_yield(1e-4, 10_000) == pytest.approx(
            acceptance_yield(1e-4, 10_000, 0), rel=1e-9
        )

    def test_yield_increases_with_accepted_defects(self):
        values = acceptance_yield_curve(1e-3, 50_000, np.array([0, 10, 50, 100]))
        assert np.all(np.diff(values) >= 0)

    def test_paper_anchor_pcell_1e3(self):
        """Pcell=1e-3 on a 200 Kb array needs ~0.1% accepted defects for 95% yield."""
        array_size = 200 * 1024
        needed = min_defects_for_yield(1e-3, array_size, 0.95)
        assert 0.0008 < needed / array_size < 0.0015

    def test_min_defects_consistent_with_yield(self):
        needed = min_defects_for_yield(1e-3, 10_000, 0.9)
        assert acceptance_yield(1e-3, 10_000, needed) >= 0.9
        if needed > 0:
            assert acceptance_yield(1e-3, 10_000, needed - 1) < 0.9

    def test_max_pcell_inverse(self):
        pcell = max_cell_failure_probability(10_000, 50, 0.95)
        assert acceptance_yield(pcell, 10_000, 50) == pytest.approx(0.95, rel=1e-3)

    def test_max_pcell_monotone_in_defect_budget(self):
        small = max_cell_failure_probability(10_000, 10, 0.95)
        large = max_cell_failure_probability(10_000, 100, 0.95)
        assert large > small

    def test_expected_faults(self):
        assert expected_faulty_cells(0.01, 1000) == pytest.approx(10.0)

    def test_redundancy_yield_improves_with_spares(self):
        no_spares = yield_with_redundancy(1e-4, 256, 10, 0)
        with_spares = yield_with_redundancy(1e-4, 256, 10, 4)
        assert with_spares > no_spares

    def test_acceptance_yield_bounds(self):
        assert acceptance_yield(0.5, 100, 100) == 1.0
        assert 0.0 <= acceptance_yield(0.5, 100, 10) <= 1.0

    @given(
        st.floats(min_value=1e-6, max_value=0.1),
        st.integers(min_value=10, max_value=5000),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_yield_is_probability_property(self, pcell, size, defects):
        value = acceptance_yield(pcell, size, defects)
        assert 0.0 <= value <= 1.0
        assert value >= defect_free_yield(pcell, size) - 1e-12


class TestRedundancyRepair:
    def test_repairs_single_fault(self):
        mask = np.zeros((10, 4), dtype=bool)
        mask[3, 2] = True
        repaired, complete = RedundancyRepair(spare_rows=1).repair(FaultMap(10, 4, mask))
        assert complete
        assert repaired.num_faults == 0

    def test_insufficient_spares(self):
        mask = np.zeros((10, 4), dtype=bool)
        mask[1, 1] = mask[5, 2] = mask[8, 0] = True
        _, complete = RedundancyRepair(spare_rows=1).repair(FaultMap(10, 4, mask))
        assert not complete

    def test_column_repair(self):
        mask = np.zeros((10, 4), dtype=bool)
        mask[:, 3] = True
        repaired, complete = RedundancyRepair(spare_columns=1).repair(FaultMap(10, 4, mask))
        assert complete

    def test_repair_yield_monotone_in_spares(self):
        base = RedundancyRepair(0, 0).repair_yield(5e-4, 64, 10, num_trials=60, rng=1)
        better = RedundancyRepair(4, 1).repair_yield(5e-4, 64, 10, num_trials=60, rng=1)
        assert better >= base


class TestHybridAndPower:
    def test_hybrid_protected_columns(self):
        config = HybridArrayConfig(bits_per_word=10, protected_msbs=4)
        assert config.protected_columns.sum() == 4
        assert config.cell_for_column(0) is CELL_8T
        assert config.cell_for_column(9) is CELL_6T

    def test_hybrid_column_probabilities(self):
        config = HybridArrayConfig(bits_per_word=10, protected_msbs=3)
        probabilities = config.column_failure_probabilities(0.7)
        assert probabilities[:3].max() < probabilities[3:].min()

    def test_hybrid_fault_map_respects_protection(self, rng):
        config = HybridArrayConfig(bits_per_word=10, protected_msbs=4)
        fault_map = config.fault_map_with_exact_faults(300, 200, rng)
        assert fault_map.faults_per_column()[:4].sum() == 0

    def test_hybrid_area_overhead_anchor(self):
        """4 of 10 bits in 8T cells costs ~12% extra area (paper: ~13%)."""
        config = HybridArrayConfig(bits_per_word=10, protected_msbs=4)
        assert 0.10 <= config.area_overhead() <= 0.14

    def test_hybrid_describe(self):
        assert "8T" in HybridArrayConfig(protected_msbs=2).describe()
        assert "unprotected" in HybridArrayConfig(protected_msbs=0).describe()

    def test_area_model_orderings(self):
        model = AreaModel()
        assert model.robust_array_area(100, 10) > model.plain_array_area(100, 10)
        assert model.hybrid_overhead(10, 0) == pytest.approx(0.0)
        assert model.hybrid_overhead(10, 10) == pytest.approx(0.30, abs=0.01)
        assert model.ecc_overhead(10, 14) > 0.35

    def test_power_scales_with_voltage_squared(self):
        model = PowerModel(dynamic_fraction=1.0)
        assert model.relative_power(0.5) == pytest.approx(0.25)

    def test_power_saving_at_08v(self):
        model = PowerModel()
        saving = model.power_saving(0.8)
        assert 0.25 <= saving <= 0.45

    def test_hybrid_power_between_pure_arrays(self):
        model = PowerModel()
        hybrid = model.hybrid_relative_power(0.8, 10, 4)
        all_6t = model.relative_power(0.8, CELL_6T)
        all_8t = model.relative_power(0.8, CELL_8T)
        assert all_6t <= hybrid <= all_8t

    def test_invalid_power_model(self):
        with pytest.raises(ValueError):
            PowerModel(dynamic_fraction=1.5)
