"""Conformance suite for the pluggable execution backends.

The contract under test: serial, process-pool and socket-distributed
execution of the same plan are **byte-identical** — including the adaptive
stopping points — because work items are seeded by their sweep coordinates,
never by the executing worker.  Plus the socket backend's failure semantics:
at-least-once redelivery after a dead worker, de-duplication of late or
duplicate deliveries, and remote-error propagation.
"""

import socket
import threading
import time

import pytest

from repro.experiments import fig2_bler_vs_harq, fig6_throughput_vs_defects
from repro.experiments.scales import SCALES
from repro.runner.backends import (
    ProcessPoolBackend,
    SerialBackend,
    SocketDistributedBackend,
    create_execution_backend,
    execution_backend_names,
    register_execution_backend,
    run_worker,
)
from repro.runner.backends.wire import parse_address, recv_message, send_message
from repro.runner.parallel import ParallelRunner, resolve_runner, runner_scope


@pytest.fixture(scope="module")
def micro_scale():
    """A sub-smoke scale so end-to-end conformance runs stay fast."""
    return SCALES["smoke"].with_updates(
        payload_bits=56,
        num_packets=4,
        num_fault_maps=2,
        turbo_iterations=3,
        snr_points_db=(16.0, 26.0),
        defect_rates=(0.0, 0.10),
    )


def _runner_for(backend_name: str) -> ParallelRunner:
    """A two-worker runner on the named backend (socket: 2 local daemons)."""
    if backend_name == "serial":
        return ParallelRunner.serial()
    backend = create_execution_backend(backend_name, workers=2)
    return ParallelRunner(2, backend=backend)


# Module-level task functions so every backend can pickle them by reference.
def _square(value):
    return value * value


def _boom(_value):
    raise ValueError("boom: deliberate task failure")


def _one_error_in_ten(_chunk_index):
    return (1, 10)


def _identity_task(chunk_index):
    return chunk_index


def _slow_square(value):
    time.sleep(0.5)
    return value * value


class TestRegistry:
    def test_builtin_families_registered(self):
        assert set(execution_backend_names()) >= {"serial", "process", "socket"}

    def test_unknown_backend_is_helpful(self):
        with pytest.raises(ValueError, match="serial"):
            create_execution_backend("teleport")

    def test_duplicate_family_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_execution_backend("serial", lambda *a, **k: SerialBackend())

    def test_serial_rejects_socket_options(self):
        with pytest.raises(TypeError, match="bind"):
            create_execution_backend("serial", bind="127.0.0.1:0")

    def test_instances_pass_through(self):
        backend = SerialBackend()
        assert create_execution_backend(backend) is backend

    def test_resolve_runner_accepts_names_and_instances(self):
        assert resolve_runner(None).is_serial
        assert resolve_runner("serial").is_serial
        runner = ParallelRunner(2)
        assert resolve_runner(runner) is runner
        with pytest.raises(TypeError):
            resolve_runner(3.14)

    def test_resolve_runner_scales_named_backends_to_cpus(self):
        from repro.runner.backends import default_workers

        # Naming a parallel backend means "use it": one worker per CPU, not
        # the inline-serial shortcut a workers=1 pool would take.
        assert resolve_runner("process").workers == default_workers()

    def test_runner_scope_closes_only_what_it_built(self):
        closed = []

        class Probe(SerialBackend):
            def close(self):
                closed.append(True)

        owned = ParallelRunner(backend=Probe())
        with runner_scope(owned) as resolved:
            assert resolved is owned
        assert not closed  # caller-provided runner stays open

        with runner_scope(None) as resolved:
            assert resolved.is_serial  # built here; closed (a no-op) on exit

    def test_drivers_close_runners_built_from_backend_names(self, monkeypatch):
        """runner=\"socket\" in a driver must not leak coordinator daemons."""
        from repro.runner import parallel

        closes = []
        original_close = ParallelRunner.close

        def counting_close(self):
            closes.append(self)
            original_close(self)

        monkeypatch.setattr(parallel.ParallelRunner, "close", counting_close)
        fig2_bler_vs_harq.run("smoke", seed=7, runner="serial")
        assert len(closes) == 1


class TestStreamScheduler:
    def test_collect_in_order_reorders_stream(self):
        stream = [(2, "c"), (0, "a"), (1, "b")]
        assert ParallelRunner.collect_in_order(stream, 3) == ["a", "b", "c"]

    def test_collect_in_order_detects_missing_results(self):
        with pytest.raises(RuntimeError, match=r"\[1\]"):
            ParallelRunner.collect_in_order([(0, "a")], 2)

    @pytest.mark.parametrize("backend_name", ["serial", "process"])
    def test_map_order_and_values(self, backend_name):
        runner = _runner_for(backend_name)
        with runner:
            assert runner.map(_square, list(range(10))) == [i * i for i in range(10)]

    def test_process_backend_streams_out_of_order_safely(self):
        backend = ProcessPoolBackend(workers=2)
        pairs = list(backend.submit(_square, [3, 1, 4, 1, 5]))
        assert sorted(index for index, _ in pairs) == [0, 1, 2, 3, 4]
        assert dict(pairs) == {0: 9, 1: 1, 2: 16, 3: 1, 4: 25}


class TestBackendConformance:
    """serial == process(2) == socket(2 local workers), byte for byte."""

    @pytest.fixture(scope="class")
    def reference_fig6(self, micro_scale):
        return fig6_throughput_vs_defects.run(micro_scale, seed=2012).to_json()

    @pytest.mark.parametrize("backend_name", ["process", "socket"])
    def test_fig6_bit_identical(self, micro_scale, reference_fig6, backend_name):
        with _runner_for(backend_name) as runner:
            table = fig6_throughput_vs_defects.run(micro_scale, seed=2012, runner=runner)
        assert table.to_json() == reference_fig6

    @pytest.mark.parametrize("backend_name", ["process", "socket"])
    def test_fig2_bit_identical(self, micro_scale, backend_name):
        serial = fig2_bler_vs_harq.run(micro_scale, seed=3, snr_regimes_db=(12.0, 24.0))
        with _runner_for(backend_name) as runner:
            parallel = fig2_bler_vs_harq.run(
                micro_scale, seed=3, snr_regimes_db=(12.0, 24.0), runner=runner
            )
        assert serial.to_json() == parallel.to_json()

    @pytest.mark.parametrize("backend_name", ["process", "socket"])
    def test_adaptive_fig6_stopping_points_identical(
        self, micro_scale, backend_name
    ):
        serial = fig6_throughput_vs_defects.run(micro_scale, seed=2012, adaptive=True)
        with _runner_for(backend_name) as runner:
            parallel = fig6_throughput_vs_defects.run(
                micro_scale, seed=2012, adaptive=True, runner=runner
            )
        # Identical stopping points imply identical simulated dies, hence
        # identical tables — the strongest equality there is.
        assert serial.to_json() == parallel.to_json()

    @pytest.mark.parametrize("backend_name", ["process", "socket"])
    def test_adaptive_proportion_stop_identical(self, backend_name):
        serial = ParallelRunner.serial().run_adaptive_proportion(
            _identity_task, _one_error_in_ten, relative_error=0.5, min_trials=20
        )
        with _runner_for(backend_name) as runner:
            other = runner.run_adaptive_proportion(
                _identity_task, _one_error_in_ten, relative_error=0.5, min_trials=20
            )
        assert serial == other  # estimate, counts, num_chunks and stop reason


# --------------------------------------------------------------------------- #
# socket backend failure semantics
# --------------------------------------------------------------------------- #
def _start_worker_thread(address, **kwargs):
    """Run a worker daemon in-process (it only talks over the socket)."""
    kwargs.setdefault("connect_retries", 40)
    kwargs.setdefault("retry_delay", 0.05)
    kwargs.setdefault("once", True)
    kwargs.setdefault("log", lambda _line: None)
    thread = threading.Thread(
        target=run_worker, args=(address,), kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


class TestSocketFailureSemantics:
    def test_requeue_after_worker_death(self):
        """A task taken by a dying worker is redelivered (at-least-once)."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            host, port = parse_address(backend.address)
            took_task = threading.Event()

            def flaky_worker():
                sock = socket.create_connection((host, port))
                send_message(sock, ("hello", 0))
                message = recv_message(sock)  # take exactly one task ...
                assert message[0] == "task"
                took_task.set()
                sock.close()  # ... and die without answering it

            flaky = threading.Thread(target=flaky_worker, daemon=True)
            flaky.start()

            def healthy_after_flaky():
                assert took_task.wait(timeout=30.0)
                run_worker(
                    f"{host}:{port}",
                    connect_retries=40,
                    retry_delay=0.05,
                    once=True,
                    log=lambda _line: None,
                )

            healthy = threading.Thread(target=healthy_after_flaky, daemon=True)
            healthy.start()

            runner = ParallelRunner(2, backend=backend)
            assert runner.map(_square, [2, 3, 4]) == [4, 9, 16]
            flaky.join(timeout=10.0)
        finally:
            backend.close()

    def test_duplicate_and_stale_deliveries_are_discarded(self):
        """Results are de-duplicated by (round, index); stale rounds dropped."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            host, port = parse_address(backend.address)

            def duplicating_worker():
                sock = socket.create_connection((host, port))
                send_message(sock, ("hello", 0))
                while True:
                    message = recv_message(sock)
                    if message[0] == "shutdown":
                        sock.close()
                        return
                    _kind, round_id, index, fn, task = message
                    value = fn(task)
                    send_message(sock, ("result", 999_999, index, "stale-round"))
                    send_message(sock, ("result", round_id, index, value))
                    send_message(sock, ("result", round_id, index, "duplicate"))

            thread = threading.Thread(target=duplicating_worker, daemon=True)
            thread.start()

            runner = ParallelRunner(2, backend=backend)
            assert runner.map(_square, [5, 6]) == [25, 36]
            # A second round must not be confused by round-1 leftovers.
            assert runner.map(_square, [7]) == [49]
        finally:
            backend.close()

    def test_remote_error_propagates_and_round_is_invalidated(self):
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            _start_worker_thread(backend.address)
            runner = ParallelRunner(2, backend=backend)
            with pytest.raises(RuntimeError, match="deliberate task failure"):
                runner.map(_boom, [1, 2, 3])
            # The failed round's leftovers (queued tasks, late replies) must
            # not disturb the next round.
            assert runner.map(_square, [3]) == [9]
        finally:
            backend.close()

    def test_worker_gives_up_without_coordinator(self):
        # Grab a port nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = run_worker(
            f"127.0.0.1:{port}",
            connect_retries=2,
            retry_delay=0.01,
            log=lambda _line: None,
        )
        assert code == 1

    def test_no_worker_timeout_raises(self):
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=0.5)
        try:
            runner = ParallelRunner(2, backend=backend)
            started = time.monotonic()
            with pytest.raises(RuntimeError, match="no worker connected"):
                runner.map(_square, [1, 2])
            assert time.monotonic() - started < 30.0
        finally:
            backend.close()

    def test_closed_backend_rejects_new_rounds(self):
        backend = SocketDistributedBackend(local_workers=0)
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(backend.submit(_square, [1]))

    def test_overlapping_rounds_are_refused(self):
        """Consuming a second round while one is live would strand it — raise."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            _start_worker_thread(backend.address)
            first = backend.submit(_square, [1, 2])
            assert next(first) is not None  # round 1 partially collected
            with pytest.raises(RuntimeError, match="one round at a time"):
                next(backend.submit(_square, [3]))
            first.close()
            # A closed (abandoned) stream releases the slot for a new round.
            assert ParallelRunner.collect_in_order(
                backend.submit(_square, [4]), 1
            ) == [16]
        finally:
            backend.close()

    def test_never_started_stream_cannot_wedge_the_backend(self):
        """A round is all-lazy: dropping an unconsumed stream holds no state."""
        backend = SocketDistributedBackend(local_workers=0, worker_timeout=60.0)
        try:
            _start_worker_thread(backend.address)
            abandoned = backend.submit(_square, [1, 2, 3])  # never iterated
            assert ParallelRunner.collect_in_order(
                backend.submit(_square, [5]), 1
            ) == [25]
            del abandoned
        finally:
            backend.close()

    def test_task_timeout_requeues_hung_worker_task(self):
        """A worker that heartbeats but never answers its task is preempted.

        The per-task deadline must requeue the item to a healthy worker long
        before the coordinator-level worker_timeout would give up — that is
        the whole point of the hardening.
        """
        backend = SocketDistributedBackend(
            local_workers=0, worker_timeout=120.0, task_timeout=1.0
        )
        try:
            host, port = parse_address(backend.address)
            took_task = threading.Event()

            def hung_worker():
                sock = socket.create_connection((host, port))
                send_message(sock, ("hello", 0, {"heartbeat_interval": 0.1}))
                message = recv_message(sock)  # take a task ...
                assert message[0] == "task"
                took_task.set()
                # ... and never answer it, but keep heartbeating so only the
                # per-task deadline (not heartbeat staleness) can fire.
                try:
                    while True:
                        send_message(sock, ("heartbeat",))
                        time.sleep(0.1)
                except OSError:
                    pass  # coordinator retired us

            threading.Thread(target=hung_worker, daemon=True).start()

            def healthy_after_hang():
                assert took_task.wait(timeout=30.0)
                run_worker(
                    f"{host}:{port}",
                    connect_retries=40,
                    retry_delay=0.05,
                    once=True,
                    log=lambda _line: None,
                )

            threading.Thread(target=healthy_after_hang, daemon=True).start()
            runner = ParallelRunner(2, backend=backend)
            started = time.monotonic()
            assert runner.map(_square, [2, 3, 4]) == [4, 9, 16]
            # Far below worker_timeout: the requeue was preemptive.
            assert time.monotonic() - started < 60.0
        finally:
            backend.close()

    def test_heartbeat_staleness_requeues_silent_worker_task(self):
        """A worker that advertised heartbeats and went silent is retired."""
        backend = SocketDistributedBackend(
            local_workers=0, worker_timeout=120.0, heartbeat_timeout=0.5
        )
        try:
            host, port = parse_address(backend.address)
            took_task = threading.Event()

            def silent_worker():
                sock = socket.create_connection((host, port))
                send_message(sock, ("hello", 0, {"heartbeat_interval": 0.1}))
                message = recv_message(sock)  # take a task ...
                assert message[0] == "task"
                took_task.set()
                time.sleep(60.0)  # ... then fall silent without closing

            threading.Thread(target=silent_worker, daemon=True).start()

            def healthy_after_silence():
                assert took_task.wait(timeout=30.0)
                run_worker(
                    f"{host}:{port}",
                    connect_retries=40,
                    retry_delay=0.05,
                    once=True,
                    log=lambda _line: None,
                )

            threading.Thread(target=healthy_after_silence, daemon=True).start()
            runner = ParallelRunner(2, backend=backend)
            started = time.monotonic()
            assert runner.map(_square, [5, 6]) == [25, 36]
            assert time.monotonic() - started < 60.0
        finally:
            backend.close()

    def test_legacy_worker_without_heartbeats_is_not_preempted(self):
        """No heartbeat advertisement -> no staleness enforcement.

        A legacy daemon (bare ``("hello", pid)``) that computes a slow task
        must not be killed by the heartbeat detector mid-compute.
        """
        backend = SocketDistributedBackend(
            local_workers=0, worker_timeout=120.0, heartbeat_timeout=0.2
        )
        try:
            host, port = parse_address(backend.address)

            def legacy_worker():
                sock = socket.create_connection((host, port))
                send_message(sock, ("hello", 0))  # legacy hello, no info dict
                while True:
                    message = recv_message(sock)
                    if message[0] == "shutdown":
                        sock.close()
                        return
                    _kind, round_id, index, fn, task = message
                    time.sleep(0.8)  # slower than heartbeat_timeout
                    send_message(sock, ("result", round_id, index, fn(task)))

            threading.Thread(target=legacy_worker, daemon=True).start()
            runner = ParallelRunner(1, backend=backend)
            assert runner.map(_square, [7]) == [49]
        finally:
            backend.close()

    def test_worker_heartbeats_flow_while_computing(self):
        """The daemon's beats come from a background thread, not the task loop."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        heartbeats = []

        def coordinator():
            conn, _peer = listener.accept()
            hello = recv_message(conn)
            assert hello[0] == "hello"
            assert hello[2]["heartbeat_interval"] == pytest.approx(0.05)
            send_message(conn, ("task", 1, 0, _slow_square, 3))
            while True:
                message = recv_message(conn)
                if message[0] == "heartbeat":
                    heartbeats.append(time.monotonic())
                    continue
                assert message == ("result", 1, 0, 9)
                break
            send_message(conn, ("shutdown",))

        thread = threading.Thread(target=coordinator, daemon=True)
        thread.start()
        code = run_worker(
            f"{host}:{port}",
            connect_retries=5,
            retry_delay=0.05,
            heartbeat_interval=0.05,
            log=lambda _line: None,
        )
        thread.join(timeout=10.0)
        listener.close()
        assert code == 0
        # The 0.5 s task must have been bridged by several 0.05 s beats.
        assert len(heartbeats) >= 3

    def test_backend_rejects_bad_hardening_options(self):
        with pytest.raises(ValueError, match="task_timeout"):
            SocketDistributedBackend(local_workers=0, task_timeout=0.0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            SocketDistributedBackend(local_workers=0, heartbeat_timeout=-1.0)

    def test_worker_exits_nonzero_on_unpicklable_frame(self):
        """A frame the worker cannot decode is fatal, not an uncaught crash."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        logs = []

        def poison_coordinator():
            conn, _peer = listener.accept()
            recv_message(conn)  # the worker's hello
            # A syntactically valid frame whose pickle cannot resolve here.
            import pickle
            import struct

            payload = pickle.dumps(("task", 1, 0, _square, None))
            # Same length, so the pickle stays structurally valid but the
            # module reference no longer resolves on the worker.
            assert b"test_execution_backends" in payload
            payload = payload.replace(b"test_execution_backends", b"no_such_module_xyzzy123")
            conn.sendall(struct.pack(">Q", len(payload)) + payload)
            conn.recv(1)  # hold the socket open until the worker reacts

        thread = threading.Thread(target=poison_coordinator, daemon=True)
        thread.start()
        code = run_worker(
            f"{host}:{port}",
            connect_retries=5,
            retry_delay=0.05,
            log=logs.append,
        )
        listener.close()
        assert code == 1
        assert any("fatal protocol error" in line for line in logs)
