"""Statistical validation of the Jakes time-correlated fading process.

The sum-of-sinusoids waveform must actually *be* what the intra-packet
fading mode claims: unit-power complex Rayleigh with autocorrelation
J0(2*pi*fD*tau).  The moments and the autocorrelation are validated against
theory on a fixed-seed ensemble (deterministic — no flaky statistical
sampling), and the realization API is pinned to be seed-deterministic and
chunk-boundary invariant, the property that makes streamed generation safe.
The link-level tests pin how the mode composes with the existing machinery:
block mode consumes no extra randomness, jakes mode is deterministic and
distinct.
"""

import numpy as np
import pytest
from scipy.special import j0

from repro.channel.fading import JakesFadingProcess
from repro.link.config import LinkConfig, parse_fading_token
from repro.link.system import HspaLikeLink

#: Fixed ensemble used by the moment/autocorrelation checks.
NUM_REALIZATIONS = 400
SAMPLES_PER_REALIZATION = 128
ENSEMBLE_SEED = 2012


@pytest.fixture(scope="module")
def process():
    return JakesFadingProcess(doppler_hz=100.0, sample_rate_hz=10_000.0, num_sinusoids=32)


@pytest.fixture(scope="module")
def ensemble(process):
    """A fixed-seed ensemble of waveforms, one row per realization."""
    rng = np.random.default_rng(ENSEMBLE_SEED)
    return np.stack(
        [
            process.realization(rng).gains(0, SAMPLES_PER_REALIZATION)
            for _ in range(NUM_REALIZATIONS)
        ]
    )


class TestRayleighStatistics:
    def test_mean_power_is_unity(self, ensemble):
        assert np.mean(np.abs(ensemble) ** 2) == pytest.approx(1.0, abs=0.05)

    def test_envelope_mean_matches_rayleigh(self, ensemble):
        # Unit-power complex Rayleigh: E|g| = sqrt(pi)/2.
        assert np.mean(np.abs(ensemble)) == pytest.approx(np.sqrt(np.pi) / 2, abs=0.03)

    def test_components_are_zero_mean_and_balanced(self, ensemble):
        assert np.mean(ensemble.real) == pytest.approx(0.0, abs=0.05)
        assert np.mean(ensemble.imag) == pytest.approx(0.0, abs=0.05)
        # I and Q each carry half the power.
        assert np.mean(ensemble.real**2) == pytest.approx(0.5, abs=0.05)
        assert np.mean(ensemble.imag**2) == pytest.approx(0.5, abs=0.05)

    def test_autocorrelation_matches_bessel(self, process, ensemble):
        # Clarke's model: R(tau) = J0(2*pi*fD*tau), real-valued.
        lags = np.array([0, 4, 8, 16, 32, 64])
        tau = lags / process.sample_rate_hz
        expected = j0(2 * np.pi * process.doppler_hz * tau)
        for lag, theory in zip(lags, expected):
            head = ensemble[:, : SAMPLES_PER_REALIZATION - lag]
            shifted = ensemble[:, lag:]
            empirical = np.mean(head * np.conj(shifted))
            assert empirical.real == pytest.approx(theory, abs=0.08), f"lag {lag}"
            assert abs(empirical.imag) < 0.08, f"lag {lag}"

    def test_waveform_is_time_correlated(self, ensemble):
        # Adjacent samples at fD/fs = 0.01 are nearly identical — the whole
        # point of the model versus independent per-sample draws.
        adjacent = np.mean(ensemble[:, :-1] * np.conj(ensemble[:, 1:]))
        assert adjacent.real > 0.95


class TestRealizationDeterminism:
    def test_same_seed_same_waveform(self, process):
        a = process.realization(np.random.default_rng(7)).gains(0, 64)
        b = process.realization(np.random.default_rng(7)).gains(0, 64)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, process):
        a = process.realization(np.random.default_rng(7)).gains(0, 64)
        b = process.realization(np.random.default_rng(8)).gains(0, 64)
        assert not np.allclose(a, b)

    def test_chunked_generation_is_boundary_invariant(self, process):
        realization = process.realization(np.random.default_rng(7))
        whole = realization.gains(0, 100)
        for split in (1, 13, 50, 99):
            chunked = np.concatenate(
                [realization.gains(0, split), realization.gains(split, 100 - split)]
            )
            np.testing.assert_array_equal(chunked, whole)

    def test_generate_delegates_to_realization(self, process):
        direct = process.generate(64, np.random.default_rng(7))
        via_realization = process.realization(np.random.default_rng(7)).gains(0, 64)
        np.testing.assert_array_equal(direct, via_realization)

    def test_gains_rejects_bad_windows(self, process):
        realization = process.realization(np.random.default_rng(7))
        with pytest.raises(ValueError):
            realization.gains(-1, 10)
        with pytest.raises(ValueError):
            realization.gains(0, 0)


class TestFadingTokens:
    def test_block_token(self):
        assert parse_fading_token("block") is None

    def test_jakes_token(self):
        assert parse_fading_token("jakes:40000") == pytest.approx(40000.0)
        assert parse_fading_token("JAKES:1e4") == pytest.approx(10000.0)

    @pytest.mark.parametrize("token", ["jakes", "jakes:", "jakes:abc", "jakes:-5", "rician:3"])
    def test_bad_tokens(self, token):
        with pytest.raises(ValueError):
            parse_fading_token(token)

    def test_config_validates_and_describes(self):
        config = LinkConfig(fading="jakes:40000")
        assert "fading jakes:40000" in config.describe()
        assert config.fading_doppler_hz == pytest.approx(40000.0)
        with pytest.raises(ValueError):
            LinkConfig(fading="fast")

    def test_default_describe_omits_fading(self):
        assert "fading" not in LinkConfig().describe()
        assert LinkConfig().fading_process() is None


class TestLinkLevelFading:
    @pytest.fixture(scope="class")
    def config(self):
        return LinkConfig(payload_bits=56, turbo_iterations=2)

    def test_jakes_link_is_deterministic(self, config):
        link = HspaLikeLink(config.with_updates(fading="jakes:40000"))
        a = link.simulate_packets(3, 18.0, np.random.default_rng(5))
        b = link.simulate_packets(3, 18.0, np.random.default_rng(5))
        assert a.statistics.normalized_throughput == b.statistics.normalized_throughput
        assert [r.num_transmissions for r in a.packet_results] == [
            r.num_transmissions for r in b.packet_results
        ]

    def test_jakes_differs_from_block(self, config):
        block = HspaLikeLink(config).simulate_packets(4, 18.0, np.random.default_rng(5))
        jakes = HspaLikeLink(config.with_updates(fading="jakes:120000")).simulate_packets(
            4, 18.0, np.random.default_rng(5)
        )
        block_bits = np.concatenate([r.decoded_bits for r in block.packet_results])
        jakes_bits = np.concatenate([r.decoded_bits for r in jakes.packet_results])
        assert not np.array_equal(block_bits, jakes_bits) or (
            [r.num_transmissions for r in block.packet_results]
            != [r.num_transmissions for r in jakes.packet_results]
        )

    def test_jakes_composes_with_rake_and_spreading(self, config):
        rake = HspaLikeLink(config.with_updates(fading="jakes:40000"), use_rake=True)
        result = rake.simulate_packets(2, 18.0, np.random.default_rng(5))
        assert 0.0 <= result.statistics.normalized_throughput <= 1.0
        spread = HspaLikeLink(
            config.with_updates(fading="jakes:40000", spreading_factor=4)
        )
        result = spread.simulate_packets(2, 18.0, np.random.default_rng(5))
        assert 0.0 <= result.statistics.normalized_throughput <= 1.0

    def test_block_mode_streams_untouched(self, config):
        """The fading field's existence must not perturb seeded block runs."""
        a = HspaLikeLink(config).simulate_packets(3, 18.0, np.random.default_rng(5))
        b = HspaLikeLink(config.with_updates(fading="block")).simulate_packets(
            3, 18.0, np.random.default_rng(5)
        )
        np.testing.assert_array_equal(
            np.concatenate([r.decoded_bits for r in a.packet_results]),
            np.concatenate([r.decoded_bits for r in b.packet_results]),
        )
