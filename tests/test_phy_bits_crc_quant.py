"""Tests for bit utilities, CRC codes and the LLR quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.bits import (
    bit_error_rate,
    bits_to_int,
    bits_to_symbols_matrix,
    gray_code,
    gray_to_binary,
    hamming_distance,
    int_to_bits,
    pack_bits,
    random_bits,
    unpack_bits,
)
from repro.phy.crc import CRC_8, CRC_16, CRC_24A, Crc
from repro.phy.quantization import LlrQuantizer


class TestBits:
    def test_random_bits_are_binary(self, rng):
        bits = random_bits(1000, rng)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_random_bits_reproducible(self):
        assert np.array_equal(random_bits(64, 3), random_bits(64, 3))

    @pytest.mark.parametrize("value,width", [(0, 1), (5, 3), (255, 8), (1023, 10)])
    def test_int_bits_roundtrip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    def test_int_to_bits_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_int_to_bits_lsb_first(self):
        assert int_to_bits(4, 3, msb_first=False).tolist() == [0, 0, 1]

    def test_pack_unpack_roundtrip(self, rng):
        bits = random_bits(120, rng)
        assert np.array_equal(unpack_bits(pack_bits(bits, 10), 10), bits)

    def test_pack_bits_wrong_length(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(7, dtype=np.int8), 4)

    def test_symbols_matrix_pads(self):
        matrix = bits_to_symbols_matrix(np.ones(5, dtype=np.int8), 4)
        assert matrix.shape == (2, 4)
        assert matrix[1, -1] == 0

    def test_hamming_distance(self):
        assert hamming_distance([0, 1, 1], [1, 1, 0]) == 2

    def test_hamming_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([0, 1], [0, 1, 1])

    def test_bit_error_rate(self):
        assert bit_error_rate([0, 0, 0, 0], [1, 0, 0, 1]) == 0.5

    def test_gray_code_adjacent_differ_by_one_bit(self):
        code = gray_code(4)
        for a, b in zip(code, code[1:]):
            assert bin(int(a) ^ int(b)).count("1") == 1

    def test_gray_roundtrip(self):
        values = np.arange(16)
        assert np.array_equal(gray_to_binary(values ^ (values >> 1), 4), values)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_int_bits_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value


class TestCrc:
    @pytest.mark.parametrize("crc", [CRC_8, CRC_16, CRC_24A])
    def test_attach_check_roundtrip(self, crc, rng):
        data = random_bits(100, rng)
        assert crc.check(crc.attach(data))

    @pytest.mark.parametrize("crc", [CRC_8, CRC_16, CRC_24A])
    def test_single_bit_error_detected(self, crc, rng):
        codeword = crc.attach(random_bits(64, rng))
        for position in [0, codeword.size // 2, codeword.size - 1]:
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            assert not crc.check(corrupted)

    def test_burst_error_detected(self, rng):
        codeword = CRC_16.attach(random_bits(200, rng))
        corrupted = codeword.copy()
        corrupted[10:14] ^= 1
        assert not CRC_16.check(corrupted)

    def test_num_check_bits(self):
        assert CRC_24A.num_check_bits == 24
        assert CRC_16.num_check_bits == 16
        assert CRC_8.num_check_bits == 8

    def test_strip_recovers_payload(self, rng):
        data = random_bits(50, rng)
        assert np.array_equal(CRC_8.strip(CRC_8.attach(data)), data)

    def test_invalid_polynomial_rejected(self):
        with pytest.raises(ValueError):
            Crc((0, 1, 1))

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_random_flip_detected_property(self, bits):
        codeword = CRC_16.attach(np.array(bits, dtype=np.int8))
        corrupted = codeword.copy()
        corrupted[len(bits) // 2] ^= 1
        assert not CRC_16.check(corrupted)


class TestLlrQuantizer:
    def test_roundtrip_within_step(self):
        quantizer = LlrQuantizer(num_bits=10, max_abs=32.0)
        llrs = np.linspace(-30, 30, 257)
        error = np.abs(quantizer.quantize(llrs) - llrs)
        assert error.max() <= quantizer.step / 2 + 1e-12

    def test_saturation(self):
        quantizer = LlrQuantizer(num_bits=8, max_abs=8.0)
        assert quantizer.quantize(np.array([100.0]))[0] == pytest.approx(8.0)
        assert quantizer.quantize(np.array([-100.0]))[0] == pytest.approx(-8.0)

    def test_sign_preserved(self, rng):
        quantizer = LlrQuantizer(num_bits=10)
        llrs = rng.normal(0, 10, 500)
        quantized = quantizer.quantize(llrs)
        big = np.abs(llrs) > quantizer.step
        assert np.all(np.sign(quantized[big]) == np.sign(llrs[big]))

    @pytest.mark.parametrize("word_format", ["sign-magnitude", "twos-complement"])
    def test_word_roundtrip(self, word_format, rng):
        quantizer = LlrQuantizer(num_bits=10, word_format=word_format)
        llrs = rng.normal(0, 10, 300)
        words = quantizer.llrs_to_words(llrs)
        assert words.min() >= 0 and words.max() < 2**10
        assert np.allclose(quantizer.words_to_llrs(words), quantizer.quantize(llrs))

    @pytest.mark.parametrize("word_format", ["sign-magnitude", "twos-complement"])
    def test_bit_matrix_roundtrip(self, word_format, rng):
        quantizer = LlrQuantizer(num_bits=9, word_format=word_format)
        words = quantizer.llrs_to_words(rng.normal(0, 5, 100))
        bits = quantizer.words_to_bits(words)
        assert bits.shape == (100, 9)
        assert np.array_equal(quantizer.bits_to_words(bits), words)

    def test_msb_is_sign_for_sign_magnitude(self):
        quantizer = LlrQuantizer(num_bits=6, word_format="sign-magnitude")
        words = quantizer.llrs_to_words(np.array([-3.0, 3.0]))
        bits = quantizer.words_to_bits(words)
        assert bits[0, 0] == 1  # negative -> sign bit set
        assert bits[1, 0] == 0

    def test_sign_bit_flip_changes_llr_sign(self):
        quantizer = LlrQuantizer(num_bits=10)
        words = quantizer.llrs_to_words(np.array([20.0]))
        bits = quantizer.words_to_bits(words)
        bits[0, 0] ^= 1
        flipped = quantizer.words_to_llrs(quantizer.bits_to_words(bits))
        assert flipped[0] == pytest.approx(-quantizer.quantize(np.array([20.0]))[0])

    def test_monotonicity(self):
        quantizer = LlrQuantizer(num_bits=8, max_abs=16.0)
        llrs = np.linspace(-16, 16, 101)
        quantized = quantizer.quantize(llrs)
        assert np.all(np.diff(quantized) >= -1e-12)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            LlrQuantizer(num_bits=1)
        with pytest.raises(ValueError):
            LlrQuantizer(max_abs=0.0)
        with pytest.raises(ValueError):
            LlrQuantizer(word_format="bogus")

    def test_quantization_noise_power(self):
        quantizer = LlrQuantizer(num_bits=10, max_abs=32.0)
        assert quantizer.quantization_noise_power() == pytest.approx(
            quantizer.step**2 / 12.0
        )

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_word_roundtrip_property(self, llr):
        quantizer = LlrQuantizer(num_bits=10, max_abs=32.0)
        words = quantizer.llrs_to_words(np.array([llr]))
        recovered = quantizer.words_to_llrs(words)[0]
        clipped = np.clip(llr, -32.0, 32.0)
        assert abs(recovered - clipped) <= quantizer.step / 2 + 1e-9
