"""Process telemetry: registry semantics, zero effect on results, surfacing.

The telemetry layer extends the determinism contract: a registry records
*how* a sweep executed without ever touching *what* it computed.  Pinned
here:

* **Registry semantics** — counters are monotonic and exact under
  concurrent writers, histograms stay bounded, the event log drops oldest
  entries, snapshots round-trip through ``--metrics-out`` files.
* **Pure topology** — a golden smoke run with a busy registry is
  byte-identical to the golden snapshot; telemetry never enters a run
  identity.
* **Surfacing** — after a socket-backed sweep over a shared point store,
  ``GET /metrics`` reports non-zero dispatch and store-hit counters (JSON
  and Prometheus text), and chaos injections show up as
  ``chaos_injected_total`` counters.
* **Corruption bugfix regression** — store entries and journal tails torn
  into *invalid UTF-8 bytes* (not just invalid JSON) are quarantined or
  truncated and recomputed, never a coordinator crash: both
  ``UnicodeDecodeError`` and ``JSONDecodeError`` are ``ValueError``\\ s and
  both must hit the same recovery path.
"""

import json
import threading
from pathlib import Path

import pytest

from repro.runner import chaos, telemetry
from repro.runner.cache import ResultCache, atomic_write_text
from repro.runner.chaos import ChaosInjected, FaultPlan
from repro.runner.cli import experiment_payload, main
from repro.runner.journal import SweepJournal
from repro.runner.parallel import ParallelRunner
from repro.runner.point_store import POINT_STORE_FORMAT_VERSION, PointStore
from repro.runner.serve import build_server
from repro.runner.telemetry import (
    EVENT_LOG_LIMIT,
    METRICS_FORMAT_VERSION,
    MetricsRegistry,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Bytes that are invalid UTF-8 (0xFF/0xFE can never appear in UTF-8) — the
#: shape of a torn entry whose tail landed mid-multibyte-sequence.
_NOT_UTF8 = b'\xff\xfe{"cache_format": 1, "torn": \x80\x81'


@pytest.fixture()
def fresh_registry():
    """Opt-in isolation from counters left by earlier tests/modules.

    Deliberately *not* autouse: the sweep-fixture tests below assert on the
    counters the (module-scoped) instrumented smoke run left in the live
    process registry, exactly as ``GET /metrics`` would see them.
    """
    telemetry.reset()
    yield


# --------------------------------------------------------------------------- #
@pytest.mark.usefixtures("fresh_registry")
class TestRegistrySemantics:
    def test_counters_gauges_histograms_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", store="cache")
        registry.inc("hits_total", 2, store="cache")
        registry.inc("hits_total", store="point-store")
        registry.set_gauge("workers", 3)
        registry.set_gauge("workers", 2)  # last write wins
        registry.observe("round_seconds", 0.003)
        registry.observe("round_seconds", 1e9)  # lands in the +Inf slot

        assert registry.counter_value("hits_total", store="cache") == 3
        assert registry.counter_total("hits_total") == 4
        assert registry.counter_value("never_fired_total") == 0

        snapshot = registry.snapshot()
        assert snapshot["metrics_format"] == METRICS_FORMAT_VERSION
        assert {"name": "workers", "labels": {}, "value": 2.0} in snapshot["gauges"]
        [histogram] = snapshot["histograms"]
        assert histogram["count"] == 2
        assert histogram["buckets"][-1]["le"] == "+Inf"
        assert histogram["buckets"][-1]["count"] == 1  # the 1e9 sample
        assert sum(b["count"] for b in histogram["buckets"]) == 2

    def test_counters_are_monotonic(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.inc("hits_total", -1)

    def test_event_log_is_bounded(self):
        registry = MetricsRegistry(event_limit=4)
        for i in range(10):
            registry.event("tick", ordinal=i)
        events = registry.snapshot()["events"]
        assert len(events) == 4
        assert [e["ordinal"] for e in events] == [6, 7, 8, 9]  # oldest dropped

    def test_concurrent_writers_lose_nothing(self):
        """N threads hammering one counter/histogram produce exact totals."""
        registry = MetricsRegistry()
        threads, per_thread = 8, 2000

        def writer(worker: int) -> None:
            for _ in range(per_thread):
                registry.inc("writes_total", worker=worker % 2)
                registry.observe("latency_seconds", 0.01)
            registry.event("writer-done", worker=worker)

        pool = [threading.Thread(target=writer, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert registry.counter_total("writes_total") == threads * per_thread
        assert registry.counter_value("writes_total", worker=0) == (
            threads // 2 * per_thread
        )
        [histogram] = registry.snapshot()["histograms"]
        assert histogram["count"] == threads * per_thread
        assert len(registry.snapshot()["events"]) == threads <= EVENT_LOG_LIMIT

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", 3, store="cache")
        registry.set_gauge("workers", 2)
        registry.observe("round_seconds", 0.002)
        text = registry.render_prometheus()
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{store="cache"} 3' in text
        assert "# TYPE workers gauge" in text
        assert "# TYPE round_seconds histogram" in text
        # Buckets are cumulative and capped by +Inf == _count.
        assert 'round_seconds_bucket{le="+Inf"} 1' in text
        assert "round_seconds_count 1" in text

    def test_snapshot_file_round_trip(self, tmp_path):
        telemetry.inc("demo_total", 5, kind="x")
        path = telemetry.write_snapshot(tmp_path / "deep" / "metrics.json")
        snapshot = telemetry.load_snapshot(path)
        assert telemetry.snapshot_counter_total(snapshot, "demo_total") == 5
        assert telemetry.snapshot_counter_total(snapshot, "demo_total", kind="x") == 5
        assert telemetry.snapshot_counter_total(snapshot, "demo_total", kind="y") == 0

        (tmp_path / "foreign.json").write_text('{"metrics_format": 99}')
        with pytest.raises(ValueError, match="metrics_format"):
            telemetry.load_snapshot(tmp_path / "foreign.json")

    def test_summarize_snapshot(self):
        assert telemetry.summarize_snapshot({"counters": []}) == "no metrics recorded"
        telemetry.inc("demo_total", 2, kind="x")
        telemetry.observe("round_seconds", 0.5)
        telemetry.event("demo-event", detail="hello")
        text = telemetry.summarize_snapshot(telemetry.registry().snapshot())
        assert "demo_total{kind=x} = 2" in text
        assert "round_seconds: 1 sample(s)" in text
        assert "demo-event: detail=hello" in text


# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def instrumented_smoke(tmp_path_factory):
    """One cold fig6 smoke sweep over the socket backend, then a warm rerun.

    The first coordinator populates a shared point store (dispatch and
    store-write counters fire); the second coordinator has a cold result
    cache but the warm shared store, so every grid point is a store hit and
    no simulation work is scheduled — the two-coordinator smoke the
    acceptance criteria describe.  Returns the store root and both payloads.
    """
    telemetry.reset()
    root = tmp_path_factory.mktemp("telemetry-smoke")
    store = PointStore(root / "points")
    with ParallelRunner(2, backend="socket") as runner:
        cold = experiment_payload(
            "fig6", "smoke", 2012,
            runner=runner, cache=ResultCache(root / "cache"), point_store=store,
        )
    warm = experiment_payload(
        "fig6", "smoke", 2012,
        runner=ParallelRunner.serial(),
        cache=ResultCache(root / "cache-second-coordinator"),
        point_store=store,
    )
    return root, cold, warm


class TestTelemetryIsPureTopology:
    def test_golden_smoke_is_byte_identical_with_telemetry_busy(
        self, instrumented_smoke
    ):
        """A busy registry changes no payload byte: both runs == the golden."""
        _root, cold, warm = instrumented_smoke
        golden = (GOLDEN_DIR / "fig6.json").read_text()
        assert telemetry.registry().counter_total("runner_tasks_total") > 0
        assert cold == golden
        assert warm == golden

    def test_sweep_counters_recorded(self, instrumented_smoke):
        registry = telemetry.registry()
        # The cold run dispatched real work over the socket backend ...
        assert registry.counter_total("backend_dispatch_total") > 0
        assert registry.counter_total("backend_worker_connects_total") >= 2
        assert registry.counter_value("backend_tasks_total", backend="socket") > 0
        assert registry.counter_value("store_writes_total", store="point-store") > 0
        # ... and the warm rerun answered every point from the shared store.
        assert registry.counter_value("store_hits_total", store="point-store") > 0
        [histogram] = [
            h for h in registry.snapshot()["histograms"]
            if h["name"] == "runner_round_seconds"
        ]
        assert histogram["count"] > 0


# --------------------------------------------------------------------------- #
def _get(server, path):
    import http.client

    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


@pytest.fixture()
def metrics_server(instrumented_smoke):
    root, _cold, _warm = instrumented_smoke
    server = build_server(
        root / "cache", point_store_dir=root / "points", bind="127.0.0.1:0"
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestMetricsEndpoint:
    def test_metrics_json_reports_dispatch_and_store_hits(self, metrics_server):
        status, body = _get(metrics_server, "/metrics")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["metrics_format"] == METRICS_FORMAT_VERSION
        assert telemetry.snapshot_counter_total(snapshot, "backend_dispatch_total") > 0
        assert (
            telemetry.snapshot_counter_total(
                snapshot, "store_hits_total", store="point-store"
            )
            > 0
        )

    def test_metrics_prometheus_exposition(self, metrics_server):
        status, body = _get(metrics_server, "/metrics?format=prometheus")
        assert status == 200
        text = body.decode("utf-8")
        assert text.startswith("# TYPE")
        assert "backend_dispatch_total{" in text
        assert "runner_round_seconds_bucket{" in text

    def test_metrics_rejects_extra_segments(self, metrics_server):
        status, _body = _get(metrics_server, "/metrics/extra")
        assert status == 404

    def test_percent_encoded_paths_are_decoded_before_routing(self, metrics_server):
        """Standards-compliant clients may URL-encode freely (the unquote fix)."""
        status, body = _get(metrics_server, "/%68ealthz")  # %68 == 'h'
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, body = _get(metrics_server, "/experiments/fig%36")  # %36 == '6'
        assert status == 200
        assert "fig6" in json.loads(body)
        # Decoding never widens what reaches the filesystem: a separator
        # smuggled through %2f decodes inside one segment and stays a 404.
        status, _body = _get(metrics_server, "/experiments/..%2f..%2fetc")
        assert status == 404


@pytest.mark.usefixtures("fresh_registry")
class TestClientDisconnect:
    def test_client_disconnect_mid_response_is_quiet(self):
        """BrokenPipeError on the response path never becomes a 500/traceback."""
        from repro.runner.serve import _QueryHandler

        class _DeadSocketFile:
            def write(self, _data):
                raise BrokenPipeError("client went away")

            def flush(self):
                pass

        handler = object.__new__(_QueryHandler)
        handler.requestline = "GET /healthz HTTP/1.1"
        handler.request_version = "HTTP/1.1"
        handler.client_address = ("127.0.0.1", 0)
        handler.close_connection = False
        handler.wfile = _DeadSocketFile()
        handler._respond(200, {"status": "ok"})  # must not raise
        assert handler.close_connection is True
        registry = telemetry.registry()
        assert registry.counter_total("serve_client_disconnects_total") == 1
        assert registry.counter_total("serve_requests_total") == 0


# --------------------------------------------------------------------------- #
@pytest.mark.usefixtures("fresh_registry")
class TestChaosCounters:
    def test_tear_write_injection_is_counted(self, tmp_path):
        chaos.activate("seed=7;tear-write=1")
        try:
            atomic_write_text(tmp_path / "entry.json", '{"cache_format": 1}')
            atomic_write_text(tmp_path / "other.json", '{"cache_format": 1}')
        finally:
            chaos.activate(None)
        registry = telemetry.registry()
        assert (
            registry.counter_value("chaos_injected_total", directive="tear-write") == 1
        )
        # The first write was torn mid-payload; the second is intact.
        with pytest.raises(ValueError):
            json.loads((tmp_path / "entry.json").read_text())
        assert json.loads((tmp_path / "other.json").read_text())

    def test_wire_injections_are_counted(self):
        plan = FaultPlan.parse("seed=1;drop-send=1;drop-recv=1")

        class _Sock:
            def close(self):
                pass

        with pytest.raises(ChaosInjected):
            plan.filter_send(_Sock(), ("task", 0, 0, None, None), b"frame")
        with pytest.raises(ChaosInjected):
            plan.filter_recv(_Sock(), ("result", 0, 0, None))
        registry = telemetry.registry()
        assert (
            registry.counter_value("chaos_injected_total", directive="drop-send") == 1
        )
        assert (
            registry.counter_value("chaos_injected_total", directive="drop-recv") == 1
        )
        kinds = [e["kind"] for e in registry.snapshot()["events"]]
        assert kinds.count("chaos-injected") == 2


# --------------------------------------------------------------------------- #
@pytest.mark.usefixtures("fresh_registry")
class TestInvalidUtf8Quarantine:
    """Torn entries with invalid UTF-8 bytes recover exactly like bad JSON."""

    def test_cache_entry_quarantined_and_run_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = experiment_payload("fig3", "smoke", 2012, cache=cache)
        [(experiment, digest, path)] = list(cache.iter_entries())
        path.write_bytes(_NOT_UTF8)

        with pytest.warns(RuntimeWarning, match="corrupt JSON"):
            payload, status = cache.load_with_status(experiment, digest)
        assert payload is None and status == "corrupt"
        assert path.with_name(path.name + ".corrupt").read_bytes() == _NOT_UTF8
        assert not path.exists()

        # The same request recomputes byte-identically and restores the slot
        # (the quarantined sibling already marks the miss, so no re-warning).
        second = experiment_payload("fig3", "smoke", 2012, cache=cache)
        assert second == first
        assert cache.load_with_status(experiment, digest)[1] == "ok"
        registry = telemetry.registry()
        assert registry.counter_value("store_quarantines_total", store="cache") == 1

    def test_point_store_entry_quarantined_and_restorable(self, tmp_path):
        store = PointStore(tmp_path / "points")
        digest = "ab" * 20
        good = json.dumps(
            {
                "point_store_format": POINT_STORE_FORMAT_VERSION,
                "kind": "fault",
                "identity": {},
                "result": {},
            }
        )
        atomic_write_text(store.path_for(digest), good)
        assert store.load_payload_with_status(digest)[1] == "ok"

        store.path_for(digest).write_bytes(_NOT_UTF8)
        with pytest.warns(RuntimeWarning, match="corrupt JSON"):
            payload, status = store.load_payload_with_status(digest)
        assert payload is None and status == "corrupt"
        quarantine = store.path_for(digest).with_name(
            store.path_for(digest).name + ".corrupt"
        )
        assert quarantine.read_bytes() == _NOT_UTF8

        # A recomputed entry re-occupies the slot cleanly.
        atomic_write_text(store.path_for(digest), good)
        assert store.load_payload_with_status(digest)[1] == "ok"
        registry = telemetry.registry()
        assert (
            registry.counter_value("store_quarantines_total", store="point-store") == 1
        )

    def test_journal_tail_with_invalid_utf8_is_truncated(self, tmp_path):
        journal = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef")
        journal.close()
        header_size = journal.path.stat().st_size
        with open(journal.path, "ab") as handle:
            # Newline-terminated, so it is a *malformed line* (the
            # UnicodeDecodeError path inside json.loads), not a torn tail.
            handle.write(b'{"type": "fault_point", "ind\xff\xfe\x80"}\n')

        resumed = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        assert resumed.recovered_truncation
        assert resumed.replayed_entries == 0
        assert resumed.path.stat().st_size == header_size  # tail gone on disk
        resumed.close()

        again = SweepJournal.open_for_run(tmp_path, "figx", "deadbeef", resume=True)
        assert not again.recovered_truncation
        again.close()
        registry = telemetry.registry()
        assert registry.counter_total("journal_truncations_total") == 1


# --------------------------------------------------------------------------- #
@pytest.mark.usefixtures("fresh_registry")
class TestMetricsCli:
    def test_metrics_out_then_metrics_summary(self, tmp_path, capsys):
        snapshot_path = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "fig2",
                "--scale",
                "smoke",
                "--out",
                str(tmp_path / "fig2.json"),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics-out",
                str(snapshot_path),
            ]
        )
        assert code == 0
        snapshot = telemetry.load_snapshot(snapshot_path)
        assert telemetry.snapshot_counter_total(snapshot, "runner_tasks_total") > 0
        assert (
            telemetry.snapshot_counter_total(
                snapshot, "store_writes_total", store="cache"
            )
            > 0
        )
        capsys.readouterr()

        assert main(["metrics", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "runner_tasks_total" in out

        assert main(["metrics", str(snapshot_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["metrics_format"] == (
            METRICS_FORMAT_VERSION
        )

    def test_metrics_command_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"metrics_format": 99}')
        assert main(["metrics", str(bogus)]) == 2
        assert "metrics_format" in capsys.readouterr().err
        assert main(["metrics", str(tmp_path / "missing.json")]) == 2
        assert "no metrics snapshot" in capsys.readouterr().err
