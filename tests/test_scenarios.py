"""Tests for the declarative scenario layer.

Covers the spec/axis resolution, the third (scenario) registry, grid
expansion and spawn-key layout, golden byte-parity of the figure scenarios,
cache-identity separation of overridden runs, the CLI surface — and, via
the new scenario specs, the previously under-exercised end-to-end channel /
equalizer paths (flat Rayleigh fading, ITU-PedB/VehA multipath, the RAKE
baseline next to the MMSE default).  All Monte-Carlo assertions are
deterministic: fixed seeds, structural checks and run-to-run equality, no
statistical tolerances.
"""

import json

import pytest

from repro.experiments.scales import SCALES
from repro.link.config import LinkConfig
from repro.link.system import HspaLikeLink
from repro.memory.faults import FaultModel
from repro.runner.cache import config_digest
from repro.runner.cli import (
    experiment_payload,
    main,
    parse_overrides,
    scenario_payload,
    scenario_run_identity,
)
from repro.scenarios import (
    ScenarioSpec,
    SweepAxis,
    default_tables,
    expand_grid,
    get_scenario,
    register_scenario,
    resolved_scenario_fields,
    run_scenario,
    run_scenario_grid,
    scenario_names,
    voltage_defect_rate,
)
from repro.scenarios.spec import (
    parse_combining,
    resolve_link_config,
    resolve_protection,
    scenario_listing,
)

#: The paper's figures, all of which must be registered as scenarios.
FIGURE_SCENARIOS = ("fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "power_savings")
#: Compositions the paper never ran (the layer's raison d'etre).
NEW_SCENARIOS = (
    "rayleigh-harq",
    "pedb-rake-defects",
    "veha-qpsk-defects",
    "stuckat-vs-bitflip",
    "ecc-low-voltage",
    "float32-llr",
    "chase-vs-ir",
    "jakes-doppler-sweep",
    "jakes-harq-gain",
    "clustered-vs-uniform",
    "soft-vs-hard-faults",
    "clustered-interleaver-depth",
)


@pytest.fixture(scope="module")
def micro_scale():
    """A sub-smoke scale so end-to-end scenario runs stay fast."""
    return SCALES["smoke"].with_updates(
        payload_bits=56,
        num_packets=4,
        num_fault_maps=2,
        turbo_iterations=3,
        snr_points_db=(16.0, 26.0),
        defect_rates=(0.0, 0.10),
    )


# --------------------------------------------------------------------------- #
class TestSpecAndTokens:
    def test_axis_rejects_unsweepable_field(self):
        with pytest.raises(ValueError, match="not sweepable"):
            SweepAxis("equalizer", ("mmse", "rake"))

    def test_axis_rejects_empty_values(self):
        with pytest.raises(ValueError, match="at least one value"):
            SweepAxis("snr_db", ())

    def test_scale_default_axis_resolution(self, micro_scale):
        assert SweepAxis("snr_db").resolve_values(micro_scale) == (16.0, 26.0)
        assert SweepAxis("defect_rate").resolve_values(micro_scale) == (0.0, 0.10)
        with pytest.raises(ValueError, match="explicit values"):
            SweepAxis("llr_bits").resolve_values(micro_scale)

    @pytest.mark.parametrize(
        "token, name",
        [
            ("none", "unprotected-6T"),
            ("msb:4", "msb-4-of-10"),
            ("msb:0", "unprotected-6T"),
            ("all-8T", "all-8T"),
            ("ecc", "full-ECC"),
            ("ecc-ded", "full-ECC-DED"),
        ],
    )
    def test_protection_tokens(self, token, name):
        assert resolve_protection(token, 10).name == name

    def test_bad_protection_token(self):
        with pytest.raises(ValueError, match="protection token"):
            resolve_protection("msb:x", 10)
        with pytest.raises(ValueError, match="protection token"):
            resolve_protection("bronze", 10)

    def test_combining_tokens(self):
        assert parse_combining("chase").value == "chase"
        assert parse_combining("ir").value == "ir"
        with pytest.raises(ValueError, match="combining"):
            parse_combining("majority-vote")

    def test_voltage_defect_rate_monotonic(self):
        rates = [voltage_defect_rate(v) for v in (0.6, 0.7, 0.8, 0.9, 1.0)]
        assert all(a > b for a, b in zip(rates, rates[1:]))
        assert 0.0 < rates[-1] < rates[0] < 1.0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(name="x", title="", summary="", kind="quantum")
        with pytest.raises(ValueError, match="equalizer"):
            ScenarioSpec(name="x", title="", summary="", equalizer="zf")
        with pytest.raises(ValueError, match="duplicate sweep axis"):
            ScenarioSpec(
                name="x", title="", summary="",
                axes=(SweepAxis("snr_db", (1.0,)), SweepAxis("snr_db", (2.0,))),
            )
        with pytest.raises(ValueError, match="exactly one sweep axis"):
            ScenarioSpec(name="x", title="", summary="", reference_point=True)
        with pytest.raises(ValueError, match="analytic"):
            ScenarioSpec(name="x", title="", summary="", kind="analytical")

    def test_apply_override_axis_and_scalar(self):
        spec = ScenarioSpec(
            name="x", title="", summary="",
            axes=(SweepAxis("snr_db", (10.0, 20.0)),),
        )
        overridden = spec.apply_override("snr_db", (12.0, 14.0))
        assert overridden.axes[0].values == (12.0, 14.0)
        assert spec.apply_override("defect_rate", 0.05).defect_rate == 0.05
        assert spec.apply_override("protected_bits", 3).protection == "msb:3"
        with pytest.raises(ValueError, match="unknown scenario field"):
            spec.apply_override("flux_capacitor", 1)
        with pytest.raises(ValueError, match="single value"):
            spec.apply_override("defect_rate", (0.1, 0.2))

    def test_with_axis_values_rejects_unknown_axis(self):
        spec = get_scenario("fig6")
        with pytest.raises(ValueError, match="no axes"):
            spec.with_axis_values(vdd=(0.7,))

    def test_resolved_fields_track_non_defaults(self, micro_scale):
        spec = get_scenario("pedb-rake-defects")
        fields = resolved_scenario_fields(spec, micro_scale)
        assert fields["channel_profile"] == "ITU-PedB"
        assert fields["equalizer"] == "rake"
        assert fields["axes"]["snr_db"] == [16.0, 26.0]
        default_fields = resolved_scenario_fields(get_scenario("fig6"), micro_scale)
        assert set(default_fields) == {"axes"}

    def test_parse_overrides(self):
        parsed = parse_overrides(["snr_db=10,20.5", "protection=msb:3", "llr_bits=12"])
        assert parsed == {"snr_db": (10, 20.5), "protection": "msb:3", "llr_bits": 12}
        with pytest.raises(ValueError, match="FIELD=VALUE"):
            parse_overrides(["snr_db"])
        with pytest.raises(ValueError, match="FIELD=VALUE"):
            parse_overrides(["snr_db=,"])  # commas only: no usable value
        with pytest.raises(ValueError, match="duplicate"):
            parse_overrides(["a=1", "a=2"])


# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_all_figures_and_new_scenarios_registered(self):
        names = scenario_names()
        assert list(FIGURE_SCENARIOS) == names[: len(FIGURE_SCENARIOS)]
        for name in NEW_SCENARIOS:
            assert name in names
        assert len(NEW_SCENARIOS) >= 6

    def test_duplicate_scenario_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_scenario(get_scenario("fig6"))

    def test_unknown_scenario_is_helpful(self):
        with pytest.raises(ValueError, match="fig6"):
            get_scenario("fig666")

    def test_figure_scenarios_alias_their_experiments(self):
        for name in FIGURE_SCENARIOS:
            assert get_scenario(name).experiment == name
        for name in NEW_SCENARIOS:
            assert get_scenario(name).experiment is None

    def test_listing_is_jsonable(self):
        for name in scenario_names():
            json.dumps(scenario_listing(get_scenario(name)))  # must not raise


# --------------------------------------------------------------------------- #
class TestExpansion:
    def test_two_axis_grid_is_point_major(self, micro_scale):
        cells = expand_grid(get_scenario("fig6"), micro_scale)
        assert [cell.key for cell in cells] == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert cells[0].values == {"defect_rate": 0.0, "snr_db": 16.0}
        assert cells[3].values == {"defect_rate": 0.10, "snr_db": 26.0}

    def test_reference_point_offsets_keys(self, micro_scale):
        cells = expand_grid(get_scenario("fig8"), micro_scale)
        assert cells[0].is_reference and cells[0].key == (0,)
        assert cells[0].spec.defect_rate == 0.0
        assert cells[0].spec.protection == "none"
        assert [cell.key for cell in cells[1:]] == [(i,) for i in range(1, 8)]
        assert cells[1].spec.protection == "msb:1"

    def test_protected_bits_axis_is_protection_sugar(self, micro_scale):
        cells = expand_grid(get_scenario("fig7"), micro_scale)
        assert cells[0].spec.protection == "msb:0"
        assert cells[-1].spec.protection == "msb:10"

    def test_fault_model_axis(self, micro_scale):
        cells = expand_grid(get_scenario("stuckat-vs-bitflip"), micro_scale)
        models = {cell.spec.fault_model for cell in cells}
        assert models == {"bit-flip", "stuck-at-0", "stuck-at-1", "stuck-at-random"}
        for cell in cells:
            FaultModel(cell.spec.fault_model)  # every token resolves

    def test_analytical_has_no_grid(self, micro_scale):
        with pytest.raises(ValueError, match="analytical"):
            expand_grid(get_scenario("fig3"), micro_scale)


# --------------------------------------------------------------------------- #
class TestGoldenParity:
    """Default figure scenarios must resolve to the figures' own bytes."""

    def test_fig2_scenario_payload_matches_golden_bytes(self):
        payload = scenario_payload("fig2", "smoke", 2012)
        golden = (
            __import__("pathlib").Path(__file__).parent / "golden" / "fig2.json"
        ).read_text()
        assert payload == golden

    def test_fig3_scenario_payload_matches_golden_bytes(self):
        payload = scenario_payload("fig3", "smoke", 2012)
        golden = (
            __import__("pathlib").Path(__file__).parent / "golden" / "fig3.json"
        ).read_text()
        assert payload == golden

    def test_fig6_scenario_equals_driver_at_micro_scale(self, micro_scale):
        from repro.experiments import fig6_throughput_vs_defects

        driver_table = fig6_throughput_vs_defects.run(micro_scale, seed=7)
        scenario_table = run_scenario(get_scenario("fig6"), micro_scale, seed=7)
        assert scenario_table.to_json() == driver_table.to_json()

    def test_fig8_scenario_equals_driver_at_micro_scale(self, micro_scale):
        from repro.experiments import fig8_efficiency

        driver = fig8_efficiency.run(micro_scale, seed=7, protected_bit_counts=(2, 4))
        spec = get_scenario("fig8").with_axis_values(protected_bits=(2, 4))
        scenario = run_scenario(spec, micro_scale, seed=7)
        assert scenario["table"].to_json() == driver["table"].to_json()
        assert scenario["optimum_bits"] == driver["optimum_bits"]


# --------------------------------------------------------------------------- #
class TestIdentity:
    def test_override_keys_distinct_identity(self, tmp_path):
        spec = get_scenario("fig6")
        base = scenario_run_identity(spec, "smoke", 2012, {})
        overridden = scenario_run_identity(
            spec.apply_override("snr_db", (10.0, 20.0)), "smoke", 2012, {}
        )
        assert config_digest(base) != config_digest(overridden)
        other_scenario = scenario_run_identity(
            get_scenario("pedb-rake-defects"), "smoke", 2012, {}
        )
        assert config_digest(base) != config_digest(other_scenario)

    def test_default_figure_scenario_shares_figure_cache(self, tmp_path):
        from repro.runner.cache import ResultCache

        cache = ResultCache(tmp_path)
        via_experiment = experiment_payload("fig3", "smoke", 0, cache=cache)
        via_scenario = scenario_payload("fig3", "smoke", 0, cache=cache)
        assert via_experiment == via_scenario
        assert cache.entries() == {"fig3": 1}  # one shared entry, no duplicate

    def test_overridden_run_caches_under_scenario_name(self, tmp_path, micro_scale):
        from repro.runner.cache import ResultCache

        cache = ResultCache(tmp_path)
        payload = scenario_payload(
            "fig6", micro_scale, 7, cache=cache, overrides={"snr_db": (18.0,)}
        )
        assert cache.entries() == {"scenario-fig6": 1}
        decoded = json.loads(payload)
        assert decoded["experiment"] == "scenario-fig6"
        assert decoded["identity"]["fields"]["axes"]["snr_db"] == [18.0]
        again = scenario_payload(
            "fig6", micro_scale, 7, cache=cache, overrides={"snr_db": (18.0,)}
        )
        assert again == payload  # cache hit is byte-identical

    def test_analytical_scenario_rejects_overrides(self):
        with pytest.raises(ValueError, match="analytical"):
            scenario_payload("fig3", "smoke", 0, overrides={"snr_db": (1.0,)})


# --------------------------------------------------------------------------- #
class TestChannelEqualizerScenarios:
    """End-to-end coverage of fading/multipath/rake/mmse via scenario specs."""

    def _run(self, name, micro_scale, seed=11, **kwargs):
        return run_scenario(get_scenario(name), micro_scale, seed, **kwargs)

    def test_rayleigh_harq_runs_and_is_deterministic(self, micro_scale):
        first = self._run("rayleigh-harq", micro_scale)
        second = self._run("rayleigh-harq", micro_scale)
        assert first.to_json() == second.to_json()
        # One row per attempted HARQ transmission per SNR cell (cells where
        # every packet decodes early stop emitting rows), all probabilities
        # valid.
        assert set(first.column("snr_db")) == {16.0, 26.0}
        assert 2 <= len(first.rows) <= 2 * 4
        assert all(0.0 <= row["failure_probability"] <= 1.0 for row in first.rows)
        assert "SinglePath" in first.metadata["config"]

    def test_pedb_rake_defects_exercises_rake_on_multipath(self, micro_scale):
        table = self._run("pedb-rake-defects", micro_scale)
        assert table.metadata["equalizer"] == "rake"
        assert "ITU-PedB" in table.metadata["config"]
        assert len(table.rows) == 4  # 2 defect rates x 2 SNR points
        assert all(0.0 <= row["throughput"] <= 1.0 for row in table.rows)
        # The MMSE default is a genuinely different receive path: overriding
        # the equalizer must change the numbers (same seeds everywhere else).
        spec = get_scenario("pedb-rake-defects").apply_override("equalizer", "mmse")
        mmse_table = run_scenario(spec, micro_scale, 11)
        assert mmse_table.to_json() != table.to_json()

    def test_veha_qpsk_defects_runs(self, micro_scale):
        table = self._run("veha-qpsk-defects", micro_scale)
        assert "QPSK" in table.metadata["config"]
        assert "ITU-VehA" in table.metadata["config"]
        assert len(table.rows) == 4
        assert all(row["bler"] <= 1.0 for row in table.rows)

    def test_stuckat_vs_bitflip_covers_all_fault_models(self, micro_scale):
        table = self._run("stuckat-vs-bitflip", micro_scale)
        assert len(table.rows) == 4 * 2  # 4 fault models x 2 SNR points
        assert set(table.column("fault_model")) == {
            "bit-flip", "stuck-at-0", "stuck-at-1", "stuck-at-random",
        }

    def test_ecc_low_voltage_derives_defects_from_vdd(self, micro_scale):
        table = self._run("ecc-low-voltage", micro_scale)
        rates = table.column("defect_rate")
        vdds = table.column("vdd")
        assert vdds == sorted(vdds)
        # Higher supply voltage -> fewer parametric failures, strictly.
        assert all(a > b for a, b in zip(rates, rates[1:]))
        assert table.metadata["protection"] == "ecc"

    def test_float32_llr_scenario_runs_in_single_precision(self, micro_scale):
        table = self._run("float32-llr", micro_scale)
        assert "llr dtype float32" in table.metadata["config"]
        assert len(table.rows) == 2
        second = self._run("float32-llr", micro_scale)
        assert second.to_json() == table.to_json()

    def test_chase_vs_ir_covers_both_combining_schemes(self, micro_scale):
        table = self._run("chase-vs-ir", micro_scale)
        assert set(table.column("combining")) == {"chase", "ir"}
        # At most schemes x SNR x transmissions rows (attempted ones only).
        assert 4 <= len(table.rows) <= 2 * 2 * 4


# --------------------------------------------------------------------------- #
class TestFloat32LinkMode:
    def test_llr_dtype_validation(self):
        with pytest.raises(ValueError, match="llr_dtype"):
            LinkConfig(llr_dtype="float16")

    def test_default_describe_omits_dtype(self):
        assert "llr dtype" not in LinkConfig().describe()
        assert "llr dtype float32" in LinkConfig(llr_dtype="float32").describe()

    def test_float32_link_runs_end_to_end(self):
        import numpy as np

        config = LinkConfig(
            payload_bits=56, crc_bits=16, turbo_iterations=3, llr_dtype="float32"
        )
        link = HspaLikeLink(config)
        result = link.simulate_single_packet(26.0, rng=3)
        assert result.num_transmissions >= 1
        assert result.decoded_bits is not None
        # The decoder consumed single-precision rows: demap output is f32.
        assert config.llr_numpy_dtype == np.float32


# --------------------------------------------------------------------------- #
class TestScenarioCli:
    def test_scenarios_ls(self, capsys):
        assert main(["scenarios", "ls"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "rayleigh-harq" in output

    def test_scenarios_ls_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        listings = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in listings} >= set(FIGURE_SCENARIOS)
        by_name = {entry["name"]: entry for entry in listings}
        assert by_name["fig6"]["experiment"] == "fig6"
        assert by_name["ecc-low-voltage"]["fields"]["protection"] == "ecc"

    def test_run_scenario_requires_name(self, capsys):
        assert main(["run", "scenario", "--no-cache"]) == 2
        assert "scenario name" in capsys.readouterr().err

    def test_run_rejects_name_for_experiments(self, capsys):
        assert main(["run", "fig3", "fig5", "--no-cache"]) == 2
        assert "run scenario" in capsys.readouterr().err

    def test_run_rejects_set_without_scenario(self, capsys):
        assert main(["run", "fig3", "--set", "snr_db=1", "--no-cache"]) == 2
        assert "--set" in capsys.readouterr().err

    def test_run_scenario_analytical(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        assert main(
            ["run", "scenario", "fig3", "--no-cache", "--out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "fig3"

    def test_run_scenario_adaptive_requires_fault_kind(self, capsys):
        assert main(["run", "scenario", "rayleigh-harq", "--adaptive", "--no-cache"]) == 2
        assert "fault-map scenarios" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
class TestDefaultTables:
    def test_generic_fault_table_includes_axis_columns(self, micro_scale):
        outcome = run_scenario_grid(
            get_scenario("stuckat-vs-bitflip"), micro_scale, seed=5
        )
        table = default_tables(outcome)
        assert table.columns[:2] == ["fault_model", "snr_db"]
        assert {"throughput", "avg_transmissions", "bler"} <= set(table.columns)

    def test_reference_point_needs_custom_presenter(self, micro_scale):
        spec = get_scenario("fig8").with_updates(presenter=None)
        outcome = run_scenario_grid(spec, micro_scale, seed=5)
        with pytest.raises(ValueError, match="presenter"):
            default_tables(outcome)

    def test_bler_scenario_rejects_adaptive(self, micro_scale):
        with pytest.raises(ValueError, match="fault-map"):
            run_scenario_grid(
                get_scenario("rayleigh-harq"), micro_scale, seed=5, adaptive=True
            )


# --------------------------------------------------------------------------- #
class TestNewPhysicsScenarios:
    """The PR-5 physics: intra-packet fading, clustered faults, soft errors."""

    def _run(self, name, micro_scale, seed=11, **kwargs):
        return run_scenario(get_scenario(name), micro_scale, seed, **kwargs)

    def test_jakes_doppler_sweep_covers_fading_axis(self, micro_scale):
        table = self._run("jakes-doppler-sweep", micro_scale)
        assert set(table.column("fading")) == {
            "block", "jakes:4000", "jakes:40000", "jakes:120000",
        }
        assert all(0.0 <= row["failure_probability"] <= 1.0 for row in table.rows)
        assert table.to_json() == self._run("jakes-doppler-sweep", micro_scale).to_json()

    def test_jakes_harq_gain_reports_fading_config(self, micro_scale):
        table = self._run("jakes-harq-gain", micro_scale)
        assert "fading jakes:40000" in table.metadata["config"]
        assert len(table.rows) == 4  # 2 defect rates x 2 SNR points
        assert all(0.0 <= row["throughput"] <= 1.0 for row in table.rows)

    def test_clustered_vs_uniform_covers_placements(self, micro_scale):
        table = self._run("clustered-vs-uniform", micro_scale)
        assert set(table.column("fault_model")) == {
            "bit-flip", "clustered:2", "clustered:6",
        }
        # Same exact fault budget per die on every placement.
        counts = {}
        for row in table.rows:
            counts.setdefault(row["snr_db"], set()).add(row["num_faults"])
        for faults in counts.values():
            assert len(faults) == 1

    def test_soft_vs_hard_faults_grid(self, micro_scale):
        table = self._run("soft-vs-hard-faults", micro_scale)
        assert set(table.column("soft_error_rate")) == {0.0, 1e-3, 1e-2}
        assert len(table.rows) == 3 * 2  # 3 upset rates x 2 defect rates
        # The zero-rate rows must be bit-identical when the soft axis is
        # sliced down to just 0.0 (same spawn keys, no sibling cells): cell
        # results depend only on (cell spec, keys), never on grid
        # composition.  (That rate 0.0 equals the mechanism-absent code
        # path is pinned separately by the pre-PR golden files, which would
        # move if the soft-error plumbing consumed any randomness when
        # disabled.)
        sliced_spec = get_scenario("soft-vs-hard-faults").with_axis_values(
            soft_error_rate=(0.0,)
        )
        sliced = run_scenario(sliced_spec, micro_scale, 11)
        zero_rows = [row for row in table.rows if row["soft_error_rate"] == 0.0]
        assert zero_rows == sliced.rows

    def test_clustered_interleaver_depth_sweeps_columns(self, micro_scale):
        table = self._run("clustered-interleaver-depth", micro_scale)
        assert set(table.column("interleaver_columns")) == {6, 30, 90}
        assert all(0.0 <= row["throughput"] <= 1.0 for row in table.rows)

    def test_soft_error_rate_rejected_on_bler_kind(self):
        with pytest.raises(ValueError, match="fault-kind"):
            ScenarioSpec(
                name="x", title="x", summary="x", kind="bler", soft_error_rate=0.01
            )

    def test_fading_token_validated_on_spec(self):
        with pytest.raises(ValueError, match="fading"):
            ScenarioSpec(name="x", title="x", summary="x", fading="warp:9")

    def test_new_fields_stay_out_of_default_identity(self, micro_scale):
        fields = resolved_scenario_fields(
            ScenarioSpec(name="x", title="x", summary="x", snr_db=20.0), micro_scale
        )
        assert set(fields) == {"snr_db", "axes"}
        loaded = resolved_scenario_fields(
            ScenarioSpec(
                name="x",
                title="x",
                summary="x",
                snr_db=20.0,
                fading="jakes:4000",
                soft_error_rate=0.01,
                fault_model="clustered:2",
                interleaver_columns=60,
            ),
            micro_scale,
        )
        assert {"fading", "soft_error_rate", "fault_model", "interleaver_columns"} <= set(
            loaded
        )

    def test_overrides_accept_new_fields(self, micro_scale):
        spec = get_scenario("fig6").apply_override("fading", "jakes:4000")
        spec = spec.apply_override("soft_error_rate", 0.001)
        spec = spec.apply_override("fault_model", "clustered:2")
        assert spec.fading == "jakes:4000"
        assert spec.soft_error_rate == 0.001
        assert spec.fault_model == "clustered:2"


# --------------------------------------------------------------------------- #
class TestScenarioBackendConformance:
    """Every registered scenario runs end to end on every execution backend.

    Extends the conformance contract of ``tests/test_execution_backends.py``
    to the full catalog: a grid scenario's serialized output must be
    byte-identical between serial and process-pool execution (work items are
    seeded by sweep coordinates, never by topology), and analytical
    scenarios must at least run.  Uses a sub-micro scale so the whole
    catalog stays fast.
    """

    @pytest.fixture(scope="class")
    def tiny_scale(self):
        return SCALES["smoke"].with_updates(
            payload_bits=56,
            num_packets=4,
            num_fault_maps=2,
            turbo_iterations=2,
            snr_points_db=(20.0,),
            defect_rates=(0.0, 0.10),
        )

    @pytest.fixture(scope="class")
    def process_runner(self):
        from repro.runner.parallel import ParallelRunner

        with ParallelRunner(2) as runner:
            yield runner

    @staticmethod
    def _canonical(result):
        from repro.runner.cache import serialize_payload
        from repro.runner.registry import _normalise

        tables, extras = _normalise(result)
        return serialize_payload("conformance", identity={}, tables=tables, extras=extras)

    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_scenario_is_backend_invariant(self, name, tiny_scale, process_runner):
        spec = get_scenario(name)
        if spec.kind == "analytical":
            # Closed form: no work items to distribute; just run it.
            run_scenario(spec, tiny_scale, 2012)
            return
        serial = self._canonical(run_scenario(spec, tiny_scale, 2012, runner="serial"))
        pooled = self._canonical(run_scenario(spec, tiny_scale, 2012, runner=process_runner))
        assert serial == pooled, f"{name}: serial != process-pool bytes"

    def test_new_physics_scenario_survives_the_socket_backend(self, tiny_scale):
        # One distributed run of a clustered+soft-error scenario: the
        # FaultModelSpec-carrying tasks must pickle across the wire and
        # reproduce the serial bytes (serial == socket, like fig6 in CI).
        from repro.runner.backends import create_execution_backend
        from repro.runner.parallel import ParallelRunner

        spec = get_scenario("clustered-vs-uniform").with_updates(
            soft_error_rate=0.001
        )
        serial = self._canonical(run_scenario(spec, tiny_scale, 2012, runner="serial"))
        backend = create_execution_backend("socket", workers=2)
        with ParallelRunner(2, backend=backend) as runner:
            distributed = self._canonical(
                run_scenario(spec, tiny_scale, 2012, runner=runner)
            )
        assert serial == distributed
