"""Tests for the ``python -m repro`` CLI and the on-disk result cache."""

import json

import pytest

from repro.core.results import SweepTable
from repro.runner.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    config_digest,
    deserialize_tables,
)
from repro.runner.cli import experiment_payload, main, run_identity
from repro.runner.registry import (
    EXPERIMENTS,
    get_experiment,
    run_experiment,
)


class TestRegistry:
    def test_all_nine_drivers_registered(self):
        assert list(EXPERIMENTS) == [
            "fig2",
            "fig3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "power_savings",
        ]

    def test_unknown_experiment_is_helpful(self):
        with pytest.raises(ValueError, match="fig6"):
            get_experiment("fig666")

    def test_run_experiment_normalises_single_table(self):
        outcome = run_experiment("fig3")
        assert set(outcome.tables) == {"table"}
        assert outcome.primary_table is outcome.tables["table"]

    def test_run_experiment_normalises_multi_table(self):
        outcome = run_experiment("fig5")
        assert set(outcome.tables) == {"curves", "targets"}
        assert outcome.primary_table is outcome.tables["curves"]

    def test_extras_are_jsonable(self):
        outcome = run_experiment(
            "fig8",
            "smoke",
            7,
            protected_bit_counts=(2, 4),
        )
        json.dumps(outcome.extras)  # must not raise
        assert "optimum_bits" in outcome.extras


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        identity = run_identity("fig3", "smoke", 0, {})
        digest = config_digest(identity)
        assert cache.load("fig3", digest) is None

        outcome = run_experiment("fig3")
        cache.store("fig3", digest, identity=identity, tables=outcome.tables)
        payload = cache.load("fig3", digest)
        assert payload is not None
        assert payload["cache_format"] == CACHE_FORMAT_VERSION
        tables = deserialize_tables(payload)
        assert tables["table"].to_json() == outcome.tables["table"].to_json()

    def test_digest_sensitive_to_identity(self):
        base = run_identity("fig6", "smoke", 2012, {})
        assert config_digest(base) != config_digest(run_identity("fig6", "smoke", 2013, {}))
        assert config_digest(base) != config_digest(run_identity("fig6", "default", 2012, {}))
        assert config_digest(base) != config_digest(run_identity("fig7", "smoke", 2012, {}))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("fig3", "deadbeef")
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.load("fig3", "deadbeef") is None

    def test_entries_counts_per_experiment(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.entries() == {}
        outcome = run_experiment("fig3")
        cache.store("fig3", "aaaa", identity={}, tables=outcome.tables)
        cache.store("fig3", "bbbb", identity={}, tables=outcome.tables)
        assert cache.entries() == {"fig3": 2}


class TestExperimentPayload:
    def test_cached_payload_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = experiment_payload("fig3", "smoke", 0, cache=cache)
        second = experiment_payload("fig3", "smoke", 0, cache=cache)
        assert first == second
        assert cache.entries() == {"fig3": 1}

    def test_force_recomputes_consistently(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = experiment_payload("fig3", "smoke", 0, cache=cache)
        forced = experiment_payload("fig3", "smoke", 0, cache=cache, force=True)
        assert first == forced

    def test_payload_round_trips_tables(self):
        payload = json.loads(experiment_payload("fig3", "smoke", 0))
        table = SweepTable.from_json_dict(payload["tables"]["table"])
        assert table.columns[0] == "vdd"
        assert len(table) > 0


class TestCliMain:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "power_savings" in output and "smoke" in output

    def test_backends_ls(self, capsys):
        assert main(["backends", "ls"]) == 0
        output = capsys.readouterr().out
        assert "decoder backends" in output
        assert "numpy" in output and "native" in output
        assert "execution backends" in output and "serial" in output
        assert "scenarios:" in output

    def test_backends_ls_json_reports_all_three_registries(self, capsys):
        from repro.phy.turbo.backends import available_backends

        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        families = {e["family"]: e for e in payload["decoder_backends"]}
        assert set(families) >= {"numpy", "numba", "native", "cupy"}
        assert families["numpy"]["available"] is True
        assert families["numpy"]["exact"] is True
        assert families["native"]["threaded"] is True
        for entry in families.values():
            # availability in the listing must agree with the live registry
            assert entry["available"] == (
                entry["tokens"][0] in available_backends()
            )
            assert isinstance(entry["reason"], str) and entry["reason"]
        execution = {e["name"] for e in payload["execution_backends"]}
        assert execution == {"serial", "process", "socket"}
        assert payload["scenarios"]  # non-empty name list

    def test_decoder_backend_flag_accepts_thread_tokens(self):
        parser_main_args = [
            "run",
            "fig6",
            "--decoder-backend",
            "native-f32@t4",
            "--help",
        ]
        # argparse validates --decoder-backend before --help exits: a bad
        # token raises SystemExit(2), a good one exits 0 via --help.
        with pytest.raises(SystemExit) as excinfo:
            main(parser_main_args)
        assert excinfo.value.code == 0
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig6", "--decoder-backend", "bogus", "--help"])
        assert excinfo.value.code == 2

    def test_run_writes_canonical_json(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        code = main(
            [
                "run",
                "fig3",
                "--scale",
                "smoke",
                "--out",
                str(out),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "fig3"
        assert payload["identity"]["scale"] == "smoke"

    def test_run_prints_markdown_without_out(self, tmp_path, capsys):
        assert main(["run", "fig3", "--no-cache"]) == 0
        assert "| vdd |" in capsys.readouterr().out

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "does-not-exist"])

    def test_golden_subcommand_writes_snapshots(self, tmp_path, capsys):
        code = main(
            [
                "golden",
                "--out-dir",
                str(tmp_path),
                "--experiments",
                "fig3",
                "power_savings",
            ]
        )
        assert code == 0
        assert (tmp_path / "fig3.json").exists()
        assert (tmp_path / "power_savings.json").exists()

    def test_bler_subcommand(self, capsys):
        code = main(
            [
                "bler",
                "--snr",
                "26",
                "--relative-error",
                "0.9",
                "--bler-floor",
                "0.2",
                "--chunk-packets",
                "2",
                "--max-packets",
                "8",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "BLER at 26.0 dB" in output
        assert "stop=" in output

    def test_cache_subcommand(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_run_execution_backend_is_byte_identical_and_not_in_identity(
        self, tmp_path, capsys
    ):
        serial_out = tmp_path / "serial.json"
        process_out = tmp_path / "process.json"
        args = ["run", "fig2", "--scale", "smoke", "--no-cache"]
        assert main(args + ["--out", str(serial_out)]) == 0
        assert (
            main(
                args
                + [
                    "--execution-backend",
                    "process",
                    "--workers",
                    "2",
                    "--out",
                    str(process_out),
                ]
            )
            == 0
        )
        payload = serial_out.read_bytes()
        assert payload == process_out.read_bytes()
        # Execution topology is not physics: nothing in the artefact may
        # record the backend or worker count.
        assert b"execution" not in payload and b"workers" not in payload

    def test_worker_subcommand_parses(self):
        from repro.runner.cli import build_parser

        args = build_parser().parse_args(
            ["worker", "--connect", "127.0.0.1:9", "--once"]
        )
        assert args.command == "worker"
        assert args.connect == "127.0.0.1:9"
        assert args.once

    def test_named_backend_scales_workers_to_cpus(self):
        from repro.runner.backends import default_workers
        from repro.runner.cli import build_parser, make_runner

        args = build_parser().parse_args(
            ["run", "fig2", "--execution-backend", "process"]
        )
        with make_runner(args) as runner:
            # Naming a backend means "use it" — not a degenerate 1-worker
            # pool that silently executes inline.
            assert runner.workers == default_workers()
            assert runner.backend.name == "process"

    def test_default_flags_still_mean_serial(self):
        from repro.runner.cli import build_parser, make_runner

        args = build_parser().parse_args(["run", "fig2"])
        with make_runner(args) as runner:
            assert runner.is_serial

    def test_workers_zero_still_means_parallel_auto(self):
        from repro.runner.backends import default_workers
        from repro.runner.cli import build_parser, make_runner

        args = build_parser().parse_args(["run", "fig2", "--workers", "0"])
        with make_runner(args) as runner:
            assert runner.backend.name == "process"
            assert runner.workers == default_workers()

    def test_socket_flags_without_socket_backend_are_rejected(self, capsys):
        assert (
            main(["run", "fig2", "--socket-workers", "4", "--no-cache"]) == 2
        )
        assert "--execution-backend socket" in capsys.readouterr().err

    def test_run_experiment_rejects_runner_plus_topology_kwargs(self):
        from repro.runner.parallel import ParallelRunner

        with pytest.raises(ValueError, match="not both"):
            run_experiment(
                "fig2", runner=ParallelRunner.serial(), execution_backend="socket"
            )


class TestCacheLsClear:
    @staticmethod
    def _populate(tmp_path):
        cache_dir = tmp_path / "cache"
        for experiment in ("fig3", "fig5"):
            assert main(["run", experiment, "--cache-dir", str(cache_dir)]) == 0
        return cache_dir

    def test_ls_lists_digests_and_identity(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "fig3" in output and "fig5" in output
        assert "scale=smoke" in output and "seed=2012" in output

    def test_ls_filters_by_experiment(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(
            ["cache", "ls", "--experiment", "fig3", "--cache-dir", str(cache_dir)]
        ) == 0
        output = capsys.readouterr().out
        assert "fig3" in output and "fig5" not in output

    def test_clear_one_experiment_keeps_the_rest(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(
            ["cache", "clear", "--experiment", "fig3", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "removed 1 cached run(s) for fig3" in capsys.readouterr().out
        assert ResultCache(cache_dir).entries() == {"fig5": 1}

    def test_clear_everything_prunes_directories(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 2 cached run(s)" in capsys.readouterr().out
        assert ResultCache(cache_dir).entries() == {}
        assert not any(cache_dir.iterdir())

    def test_resultcache_clear_api(self, tmp_path):
        cache = ResultCache(tmp_path)
        outcome = run_experiment("fig3")
        cache.store("fig3", "aaaa", identity={}, tables=outcome.tables)
        cache.store("fig6", "bbbb", identity={}, tables=outcome.tables)
        assert [(e, d) for e, d, _ in cache.iter_entries()] == [
            ("fig3", "aaaa"),
            ("fig6", "bbbb"),
        ]
        assert cache.clear("fig3") == 1
        assert cache.entries() == {"fig6": 1}
        assert cache.clear() == 1
        assert cache.entries() == {}


class TestExecutionBackendThreading:
    def test_run_experiment_accepts_backend_name(self):
        serial = run_experiment("fig2", "smoke", 7)
        threaded = run_experiment("fig2", "smoke", 7, workers=2, execution_backend="process")
        assert (
            serial.tables["table"].to_json() == threaded.tables["table"].to_json()
        )

    def test_driver_accepts_backend_name_as_runner(self):
        from repro.experiments import fig2_bler_vs_harq

        serial = fig2_bler_vs_harq.run("smoke", seed=7)
        named = fig2_bler_vs_harq.run("smoke", seed=7, runner="serial")
        assert serial.to_json() == named.to_json()
