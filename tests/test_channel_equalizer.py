"""Tests for the channel models and the receiver front end (MMSE / RAKE)."""

import numpy as np
import pytest

from repro.channel.awgn import (
    AwgnChannel,
    awgn_noise,
    ebn0_to_esn0_db,
    esn0_to_ebn0_db,
    noise_variance_to_snr_db,
    snr_db_to_noise_variance,
)
from repro.channel.fading import JakesFadingProcess, block_rayleigh_gains
from repro.channel.multipath import (
    ITU_PEDESTRIAN_A,
    ITU_PEDESTRIAN_B,
    ITU_VEHICULAR_A,
    MultipathChannel,
    PowerDelayProfile,
    SINGLE_PATH,
)
from repro.equalizer.estimation import estimate_channel_ls
from repro.equalizer.mmse import MmseEqualizer
from repro.equalizer.rake import RakeReceiver
from repro.phy.modulation import get_modulator


class TestAwgn:
    def test_snr_conversion_roundtrip(self):
        assert noise_variance_to_snr_db(snr_db_to_noise_variance(13.0)) == pytest.approx(13.0)

    def test_ebn0_esn0_roundtrip(self):
        esn0 = ebn0_to_esn0_db(5.0, 6, 0.75)
        assert esn0_to_ebn0_db(esn0, 6, 0.75) == pytest.approx(5.0)

    def test_ebn0_to_esn0_increases_with_bits(self):
        assert ebn0_to_esn0_db(3.0, 6, 0.5) > ebn0_to_esn0_db(3.0, 2, 0.5)

    def test_noise_variance_statistics(self, rng):
        noise = awgn_noise(200_000, 0.4, rng)
        assert np.var(noise) == pytest.approx(0.4, rel=0.03)
        assert np.abs(np.mean(noise)) < 0.01

    def test_awgn_channel_snr(self, rng):
        channel = AwgnChannel(snr_db=10.0)
        signal = np.ones(100_000, dtype=complex)
        received = channel.apply(signal, rng)
        measured_noise_power = np.var(received - signal)
        assert measured_noise_power == pytest.approx(0.1, rel=0.05)

    def test_invalid_noise_variance(self):
        with pytest.raises(ValueError):
            noise_variance_to_snr_db(0.0)


class TestFading:
    def test_block_rayleigh_unit_power(self, rng):
        gains = block_rayleigh_gains(50_000, 1, rng=rng)
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_block_rayleigh_tap_powers(self, rng):
        powers = np.array([0.7, 0.2, 0.1])
        gains = block_rayleigh_gains(100_000, 3, powers, rng)
        measured = np.mean(np.abs(gains) ** 2, axis=0)
        assert np.allclose(measured, powers, rtol=0.08)

    def test_block_rayleigh_validation(self):
        with pytest.raises(ValueError):
            block_rayleigh_gains(10, 2, np.array([1.0]))

    def test_jakes_unit_power(self, rng):
        process = JakesFadingProcess(doppler_hz=50.0, sample_rate_hz=10_000.0)
        waveform = process.generate(50_000, rng)
        assert np.mean(np.abs(waveform) ** 2) == pytest.approx(1.0, rel=0.15)

    def test_jakes_correlation_decays(self, rng):
        process = JakesFadingProcess(doppler_hz=100.0, sample_rate_hz=10_000.0)
        waveform = process.generate(20_000, rng)
        lag_short = np.abs(np.vdot(waveform[:-1], waveform[1:])) / (waveform.size - 1)
        lag_long = np.abs(np.vdot(waveform[:-400], waveform[400:])) / (waveform.size - 400)
        assert lag_short > lag_long

    def test_coherence_time(self):
        assert JakesFadingProcess(10.0, 1000.0).coherence_time() == pytest.approx(0.0423)
        assert JakesFadingProcess(0.0, 1000.0).coherence_time() == float("inf")


class TestMultipath:
    @pytest.mark.parametrize(
        "profile", [SINGLE_PATH, ITU_PEDESTRIAN_A, ITU_PEDESTRIAN_B, ITU_VEHICULAR_A]
    )
    def test_profile_powers_normalised(self, profile):
        assert profile.linear_powers().sum() == pytest.approx(1.0)

    def test_resample_merges_taps(self):
        profile = PowerDelayProfile("test", (0.0, 10.0, 500.0), (0.0, 0.0, -3.0))
        indices, powers = profile.resample(260.0)
        assert indices.tolist() == [0, 2]
        assert powers.sum() == pytest.approx(1.0)

    def test_single_path_is_flat(self, rng):
        channel = MultipathChannel(SINGLE_PATH)
        assert channel.impulse_response_length == 1

    def test_realizations_are_random(self):
        channel = MultipathChannel(ITU_PEDESTRIAN_A)
        h1 = channel.realize(rng=1)
        h2 = channel.realize(rng=2)
        assert not np.allclose(h1, h2)

    def test_apply_output_length_and_snr(self, rng):
        channel = MultipathChannel(ITU_PEDESTRIAN_A)
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 20_000))
        received, impulse_response, noise_variance = channel.apply(signal, 15.0, rng)
        assert received.size == signal.size + impulse_response.size - 1
        signal_power = np.mean(np.abs(signal) ** 2) * np.sum(np.abs(impulse_response) ** 2)
        assert signal_power / noise_variance == pytest.approx(10 ** 1.5, rel=1e-9)

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            PowerDelayProfile("bad", (0.0, 1.0), (0.0,))


class TestEqualizers:
    def _run_link(self, equalizer_output, modulator, bits):
        llrs = modulator.demodulate_soft(
            equalizer_output[0], equalizer_output[1]
        )
        hard = (llrs < 0).astype(np.int8)
        return np.mean(hard[: bits.size] != bits)

    def test_mmse_identity_channel(self, rng):
        modulator = get_modulator("16QAM")
        bits = rng.integers(0, 2, 4 * 500).astype(np.int8)
        symbols = modulator.modulate(bits)
        equalizer = MmseEqualizer(num_taps=8)
        output = equalizer.equalize(symbols, np.array([1.0]), 1e-6, symbols.size)
        assert np.allclose(output.symbols, symbols, atol=1e-3)

    def test_mmse_removes_isi(self, rng):
        modulator = get_modulator("16QAM")
        bits = rng.integers(0, 2, 4 * 1000).astype(np.int8)
        symbols = modulator.modulate(bits)
        impulse_response = np.array([0.9, 0.4 + 0.2j, 0.1])
        received = np.convolve(symbols, impulse_response)
        noise_variance = 1e-3
        received = received + np.sqrt(noise_variance / 2) * (
            rng.normal(size=received.shape) + 1j * rng.normal(size=received.shape)
        )
        equalizer = MmseEqualizer(num_taps=16)
        output = equalizer.equalize(received, impulse_response, noise_variance, symbols.size)
        ber = self._run_link((output.symbols, output.effective_noise_variance), modulator, bits)
        assert ber < 0.01
        assert output.sinr > 10.0

    def test_mmse_sinr_tracks_snr(self, rng):
        modulator = get_modulator("QPSK")
        bits = rng.integers(0, 2, 2 * 2000).astype(np.int8)
        symbols = modulator.modulate(bits)
        channel = MultipathChannel(ITU_PEDESTRIAN_A)
        sinrs = []
        for snr_db in (5.0, 20.0):
            received, impulse_response, noise_variance = channel.apply(symbols, snr_db, rng)
            output = MmseEqualizer(num_taps=12).equalize(
                received, impulse_response, noise_variance, symbols.size
            )
            sinrs.append(output.sinr)
        assert sinrs[1] > sinrs[0]

    def test_mmse_zero_channel_degenerate(self):
        equalizer = MmseEqualizer(num_taps=4)
        output = equalizer.equalize(np.zeros(50, dtype=complex), np.zeros(3), 0.1, 10)
        assert output.sinr == 0.0

    def test_rake_single_path(self, rng):
        modulator = get_modulator("QPSK")
        bits = rng.integers(0, 2, 2 * 500).astype(np.int8)
        symbols = modulator.modulate(bits)
        rake = RakeReceiver()
        recovered, noise = rake.combine(symbols * 0.7, np.array([0.7]), 0.01, symbols.size)
        assert np.allclose(recovered, symbols, atol=1e-9)
        assert noise == pytest.approx(0.01 / 0.49)

    def test_rake_selects_strongest_fingers(self):
        rake = RakeReceiver(max_fingers=2)
        impulse_response = np.array([0.1, 0.9, 0.0, 0.5])
        delays = rake.finger_delays(impulse_response)
        assert delays.tolist() == [1, 3]

    def test_mmse_outperforms_rake_on_dispersive_channel(self, rng):
        modulator = get_modulator("16QAM")
        bits = rng.integers(0, 2, 4 * 1500).astype(np.int8)
        symbols = modulator.modulate(bits)
        impulse_response = np.array([0.7, 0.6, 0.4])
        received = np.convolve(symbols, impulse_response)
        noise_variance = 10 ** (-18 / 10) * np.sum(np.abs(impulse_response) ** 2)
        received = received + np.sqrt(noise_variance / 2) * (
            rng.normal(size=received.shape) + 1j * rng.normal(size=received.shape)
        )
        mmse_out = MmseEqualizer(num_taps=16).equalize(
            received, impulse_response, noise_variance, symbols.size
        )
        rake_symbols, rake_noise = RakeReceiver().combine(
            received, impulse_response, noise_variance, symbols.size
        )
        mmse_ber = self._run_link(
            (mmse_out.symbols, mmse_out.effective_noise_variance), modulator, bits
        )
        rake_ber = self._run_link((rake_symbols, rake_noise), modulator, bits)
        assert mmse_ber < rake_ber

    def test_ls_channel_estimation(self, rng):
        impulse_response = np.array([0.8 + 0.1j, 0.3 - 0.2j, 0.1])
        pilots = (1 - 2 * rng.integers(0, 2, 200)) + 0j
        received = np.convolve(pilots, impulse_response)
        received = received + 0.01 * (
            rng.normal(size=received.shape) + 1j * rng.normal(size=received.shape)
        )
        estimate = estimate_channel_ls(received, pilots, 3)
        assert np.allclose(estimate, impulse_response, atol=0.02)

    def test_ls_estimation_validation(self):
        with pytest.raises(ValueError):
            estimate_channel_ls(np.zeros(5, dtype=complex), np.ones(4, dtype=complex), 3)
