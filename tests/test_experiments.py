"""Tests for the experiment drivers (figure regeneration) and scale presets."""

import numpy as np
import pytest

from repro.experiments import SCALES, get_scale
from repro.experiments import (
    fig2_bler_vs_harq,
    fig3_cell_failure,
    fig5_yield,
    fig6_throughput_vs_defects,
    fig7_msb_protection,
    fig8_efficiency,
    fig9_bitwidth,
    power_savings,
)
from repro.experiments.scales import Scale


class TestScales:
    def test_builtin_scales_present(self):
        assert {"smoke", "default", "paper"} <= set(SCALES)

    def test_get_scale_by_name_and_object(self):
        smoke = get_scale("smoke")
        assert isinstance(smoke, Scale)
        assert get_scale(smoke) is smoke

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_scales_order_by_effort(self):
        assert SCALES["smoke"].num_packets < SCALES["default"].num_packets <= SCALES["paper"].num_packets

    def test_link_config_override(self):
        config = SCALES["smoke"].link_config(llr_bits=11)
        assert config.llr_bits == 11
        assert config.payload_bits == SCALES["smoke"].payload_bits

    def test_with_updates(self):
        tweaked = SCALES["smoke"].with_updates(num_packets=3)
        assert tweaked.num_packets == 3
        assert SCALES["smoke"].num_packets != 3


@pytest.fixture(scope="module")
def micro_scale():
    """An even smaller scale than 'smoke' so every driver runs in seconds."""
    return SCALES["smoke"].with_updates(
        payload_bits=56,
        num_packets=4,
        num_fault_maps=1,
        turbo_iterations=3,
        snr_points_db=(16.0, 26.0),
        defect_rates=(0.0, 0.10),
    )


class TestFig2(object):
    def test_rows_and_monotonicity(self, micro_scale):
        table = fig2_bler_vs_harq.run(micro_scale, seed=1, snr_regimes_db=(10.0, 26.0))
        assert len(table) >= 2
        by_snr = {}
        for row in table.rows:
            by_snr.setdefault(row["snr_db"], []).append(row["failure_probability"])
        for probabilities in by_snr.values():
            assert all(b <= a + 1e-9 for a, b in zip(probabilities, probabilities[1:]))


class TestFig3:
    def test_orderings(self):
        table = fig3_cell_failure.run()
        for row in table.rows:
            assert row["p_8t"] <= row["p_6t"]
            assert 0.0 <= row["p_6t"] <= 1.0

    def test_custom_voltages(self):
        table = fig3_cell_failure.run(voltages=(0.7, 0.9))
        assert [row["vdd"] for row in table.rows] == [0.7, 0.9]


class TestFig5:
    def test_tables_present(self):
        output = fig5_yield.run()
        assert set(output) == {"curves", "targets"}
        assert len(output["targets"]) == len(fig5_yield.DEFAULT_PCELLS)

    def test_targets_monotone_in_pcell(self):
        targets = fig5_yield.run()["targets"]
        rows = sorted(targets.rows, key=lambda r: r["pcell"])
        needed = [r["defects_for_target"] for r in rows]
        assert all(b >= a for a, b in zip(needed, needed[1:]))


class TestFig6:
    def test_table_shape_and_requirement_check(self, micro_scale):
        table = fig6_throughput_vs_defects.run(micro_scale, seed=3)
        assert len(table) == len(micro_scale.snr_points_db) * len(micro_scale.defect_rates)
        check = fig6_throughput_vs_defects.throughput_requirement_check(table, requirement=0.0)
        assert len(check) == len(micro_scale.defect_rates)


class TestFig7:
    def test_protection_series_present(self, micro_scale):
        table = fig7_msb_protection.run(
            micro_scale, seed=4, defect_rate=0.10, protected_bit_counts=(0, 4)
        )
        protected_values = sorted(set(row["protected_bits"] for row in table.rows))
        assert protected_values == [0, 4]


class TestFig8:
    def test_outputs(self, micro_scale):
        output = fig8_efficiency.run(
            micro_scale, seed=5, snr_db=20.0, protected_bit_counts=(2, 4, 10)
        )
        assert set(output) == {"table", "optimum_bits", "ecc"}
        overheads = output["table"].column("area_overhead")
        assert overheads == sorted(overheads)
        assert output["ecc"]["ecc_overhead"] > output["ecc"]["msb4_overhead"]


class TestFig9:
    def test_storage_grows_with_width(self, micro_scale):
        output = fig9_bitwidth.run(
            micro_scale, seed=6, llr_widths=(10, 12), snr_points_db=(26.0,)
        )
        cells = {row["llr_bits"]: row["storage_cells"] for row in output["table"].rows}
        assert cells[12] > cells[10]


class TestPowerSavings:
    def test_table_contents(self):
        table = power_savings.run()
        schemes = table.column("scheme")
        assert "unprotected-6T" in schemes
        assert any(s.startswith("msb-") for s in schemes)
        rows = {row["scheme"]: row for row in table.rows}
        protected = next(v for k, v in rows.items() if k.startswith("msb-"))
        assert protected["min_vdd"] < rows["unprotected-6T"]["min_vdd"]
