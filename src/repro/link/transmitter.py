"""HSPA+-like baseband transmitter chain.

Implements the transmit side of the paper's Fig. 1(a): CRC attachment, turbo
encoding, rate matching with a redundancy version, channel interleaving,
QAM mapping and (optionally) OVSF spreading and RRC pulse shaping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.link.config import LinkConfig
from repro.phy.interleaving import ChannelInterleaver
from repro.phy.pulse_shaping import PulseShaper
from repro.phy.rate_matching import RateMatcher
from repro.phy.spreading import Spreader
from repro.phy.turbo import TurboCode
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_bit_array


@dataclass
class EncodedPacket:
    """A packet after CRC attachment and turbo encoding.

    The coded buffer is computed once per packet; each (re)transmission only
    re-runs the (cheap) rate matching, interleaving and mapping stages with
    its redundancy version.
    """

    payload: np.ndarray
    payload_with_crc: np.ndarray
    coded_buffer: np.ndarray


class Transmitter:
    """Transmit chain for one :class:`~repro.link.config.LinkConfig`.

    Parameters
    ----------
    config:
        Link operating mode.
    turbo:
        Optionally share a pre-built :class:`~repro.phy.turbo.TurboCode`
        (the receiver must use the same internal interleaver).
    """

    def __init__(self, config: LinkConfig, turbo: Optional[TurboCode] = None) -> None:
        self.config = config
        self.turbo = turbo or TurboCode(
            config.block_size,
            num_iterations=config.turbo_iterations,
            backend=config.decoder_backend,
        )
        self.rate_matcher = RateMatcher(
            num_coded_bits=config.num_coded_bits,
            num_output_bits=config.channel_bits_per_transmission,
        )
        self.channel_interleaver = ChannelInterleaver(config.interleaver_columns)
        self.spreader = (
            Spreader(config.spreading_factor) if config.spreading_factor > 1 else None
        )
        self.pulse_shaper: Optional[PulseShaper] = None

    # ------------------------------------------------------------------ #
    def random_payload(self, rng: RngLike = None) -> np.ndarray:
        """Generate a uniformly random payload of the configured size."""
        return as_rng(rng).integers(0, 2, self.config.payload_bits, dtype=np.int8)

    def encode(self, payload: np.ndarray) -> EncodedPacket:
        """CRC-attach and turbo-encode a payload."""
        bits = ensure_bit_array(payload, "payload")
        if bits.size != self.config.payload_bits:
            raise ValueError(
                f"expected {self.config.payload_bits} payload bits, got {bits.size}"
            )
        with_crc = self.config.crc.attach(bits)
        coded = self.turbo.encode(with_crc)
        return EncodedPacket(payload=bits, payload_with_crc=with_crc, coded_buffer=coded)

    def encode_batch(self, payloads) -> list[EncodedPacket]:
        """CRC-attach and turbo-encode a batch of payloads in one pass.

        Produces exactly the packets of ``[self.encode(p) for p in payloads]``
        (the CRC and encoder batch kernels are bit-exact), but runs the CRC as
        one GF(2) matrix product and the trellises column-wise across the
        whole batch.
        """
        rows = []
        for payload in payloads:
            bits = np.asarray(payload)
            if bits.ndim != 1:
                raise ValueError(
                    f"payload must be one-dimensional, got shape {bits.shape}"
                )
            if bits.size != self.config.payload_bits:
                raise ValueError(
                    f"expected {self.config.payload_bits} payload bits, got {bits.size}"
                )
            rows.append(bits)
        if not rows:
            return []
        stacked = np.stack(rows)
        if not ((stacked == 0) | (stacked == 1)).all():
            raise ValueError("payload must contain only 0s and 1s")
        stacked = stacked.astype(np.int8)
        rows = [stacked[i] for i in range(stacked.shape[0])]
        with_crc = self.config.crc.attach_batch(stacked)
        coded = self.turbo.encode_batch(with_crc)
        return [
            EncodedPacket(
                payload=rows[i],
                payload_with_crc=with_crc[i],
                coded_buffer=coded[i],
            )
            for i in range(len(rows))
        ]

    # ------------------------------------------------------------------ #
    def transmission_bits(self, packet: EncodedPacket, redundancy_version: int) -> np.ndarray:
        """Rate-matched and channel-interleaved bits of one transmission."""
        selected = self.rate_matcher.rate_match(packet.coded_buffer, redundancy_version)
        return self.channel_interleaver.interleave(selected)

    def modulate(self, channel_bits: np.ndarray) -> np.ndarray:
        """Map channel bits to (optionally spread) transmit samples."""
        symbols = self.config.modulator.modulate(channel_bits)
        if self.spreader is not None:
            symbols = self.spreader.spread(symbols)
        if self.pulse_shaper is not None:
            symbols = self.pulse_shaper.shape(symbols)
        return symbols

    def transmit(
        self, packet: EncodedPacket, redundancy_version: int
    ) -> np.ndarray:
        """Produce the transmit samples of one (re)transmission."""
        return self.modulate(self.transmission_bits(packet, redundancy_version))

    # ------------------------------------------------------------------ #
    def transmission_bits_batch(
        self, packets: list[EncodedPacket], redundancy_version: int
    ) -> np.ndarray:
        """Batched :meth:`transmission_bits` — one gather per stage."""
        coded = np.stack([p.coded_buffer for p in packets])
        selected = self.rate_matcher.rate_match_batch(coded, redundancy_version)
        return self.channel_interleaver.interleave_batch(selected)

    def modulate_batch(self, channel_bits: np.ndarray) -> np.ndarray:
        """Batched :meth:`modulate` for a ``(batch, num_bits)`` bit matrix.

        The QAM mapper is elementwise over bit groups, so mapping the
        flattened batch and reshaping is bit-identical to mapping each row.
        """
        bits = np.asarray(channel_bits)
        if bits.ndim != 2:
            raise ValueError(f"expected a 2-D bit matrix, got shape {bits.shape}")
        batch = bits.shape[0]
        symbols = self.config.modulator.modulate(bits.reshape(-1))
        symbols = symbols.reshape(batch, -1)
        if self.spreader is not None:
            symbols = self.spreader.spread_batch(symbols)
        if self.pulse_shaper is not None:
            symbols = np.stack([self.pulse_shaper.shape(row) for row in symbols])
        return symbols

    def transmit_batch(
        self, packets: list[EncodedPacket], redundancy_version: int
    ) -> np.ndarray:
        """Produce the transmit sample matrix of one batched (re)transmission."""
        return self.modulate_batch(self.transmission_bits_batch(packets, redundancy_version))
