"""HSPA+-like baseband receiver chain (front end).

Implements the receive side of the paper's Fig. 1(a) up to the HARQ buffer:
MMSE equalization (or RAKE combining), soft QAM demapping into LLRs,
channel de-interleaving and de-rate-matching into the mother-code domain.
Turbo decoding and CRC checking happen after HARQ combining and are driven
by :class:`repro.link.system.HspaLikeLink`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.equalizer.mmse import MmseEqualizer
from repro.equalizer.rake import RakeReceiver
from repro.link.config import LinkConfig
from repro.link.transmitter import Transmitter
from repro.phy.spreading import Spreader


class Receiver:
    """Receive chain for one :class:`~repro.link.config.LinkConfig`.

    Parameters
    ----------
    config:
        Link operating mode.
    transmitter:
        The matching transmitter — shared so that the rate matcher and
        channel interleaver permutations are identical on both sides.
    use_rake:
        Use the RAKE baseline instead of the MMSE equalizer.
    """

    def __init__(
        self,
        config: LinkConfig,
        transmitter: Transmitter,
        *,
        use_rake: bool = False,
    ) -> None:
        self.config = config
        self.transmitter = transmitter
        self.use_rake = use_rake
        self.equalizer = MmseEqualizer(num_taps=config.equalizer_taps)
        self.rake = RakeReceiver()
        self.spreader: Optional[Spreader] = transmitter.spreader

    # ------------------------------------------------------------------ #
    def equalize(
        self,
        received: np.ndarray,
        impulse_response: np.ndarray,
        noise_variance: float,
        fading_gains: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, "float | np.ndarray"]:
        """Recover transmitted symbols and the post-detection noise variance.

        With *fading_gains* (the per-sample intra-packet fading waveform the
        transmit samples were modulated with), the receiver compensates each
        recovered sample with perfect CSI: samples are divided by their gain
        and the effective noise variance becomes a per-symbol array — a deep
        fade yields near-zero LLRs rather than confidently wrong ones.
        """
        num_samples = self.config.symbols_per_transmission
        if self.spreader is not None:
            num_samples *= self.spreader.spreading_factor
        if self.use_rake:
            symbols, effective_noise = self.rake.combine(
                received, impulse_response, noise_variance, num_samples
            )
        else:
            output = self.equalizer.equalize(
                received, impulse_response, noise_variance, num_samples
            )
            symbols, effective_noise = output.symbols, output.effective_noise_variance
        if fading_gains is not None:
            gains = np.asarray(fading_gains, dtype=np.complex128).reshape(-1)
            if gains.size != symbols.size:
                raise ValueError(
                    f"fading_gains length {gains.size} does not match "
                    f"{symbols.size} recovered samples"
                )
            gain_power = np.maximum(np.abs(gains) ** 2, 1e-30)
            symbols = symbols * np.conj(gains) / gain_power
            effective_noise = effective_noise / gain_power
        if self.spreader is not None:
            symbols = self.spreader.despread(symbols)
            # Despreading averages SF chips, reducing the noise variance:
            # Var(mean of SF chips) = mean(per-chip variance) / SF.
            sf = self.spreader.spreading_factor
            if np.ndim(effective_noise):
                effective_noise = effective_noise.reshape(-1, sf).mean(axis=1) / sf
            else:
                effective_noise = effective_noise / sf
        return symbols, effective_noise

    def demap(
        self, symbols: np.ndarray, effective_noise_variance: "float | np.ndarray"
    ) -> np.ndarray:
        """Soft-demap equalized symbols into channel-bit LLRs.

        The output dtype follows :attr:`LinkConfig.llr_dtype`, so the opt-in
        float32 mode rounds the LLRs once here and keeps the rest of the
        receive chain in single precision.
        """
        llrs = self.config.modulator.demodulate_soft(symbols, effective_noise_variance)
        llrs = llrs[: self.config.channel_bits_per_transmission]
        dtype = self.config.llr_numpy_dtype
        if llrs.dtype != dtype:
            llrs = llrs.astype(dtype)
        return llrs

    def to_mother_domain(self, channel_llrs: np.ndarray, redundancy_version: int) -> np.ndarray:
        """De-interleave and de-rate-match one transmission's LLRs."""
        deinterleaved = self.transmitter.channel_interleaver.deinterleave(channel_llrs)
        return self.transmitter.rate_matcher.derate_match(deinterleaved, redundancy_version)

    # ------------------------------------------------------------------ #
    def equalize_batch(
        self,
        received: np.ndarray,
        impulse_responses: np.ndarray,
        noise_variances: np.ndarray,
        fading_gains: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise :meth:`equalize` across a batch of packets.

        Returns ``(symbols, effective_noise)`` where *symbols* is
        ``(batch, num_symbols)`` and *effective_noise* is per-packet
        ``(batch,)`` or per-symbol ``(batch, num_symbols)`` when fading
        compensation (or chip-rate despreading of a faded packet) makes the
        noise variance sample-dependent.
        """
        num_samples = self.config.symbols_per_transmission
        if self.spreader is not None:
            num_samples *= self.spreader.spreading_factor
        r2d = np.asarray(received, dtype=np.complex128)
        if r2d.ndim != 2:
            raise ValueError(f"expected a 2-D received matrix, got shape {r2d.shape}")
        nv = np.asarray(noise_variances, dtype=np.float64).reshape(-1)
        if self.use_rake:
            symbols, effective_noise = self.rake.combine_batch(
                r2d, impulse_responses, nv, num_samples
            )
        else:
            symbols, effective_noise = self.equalizer.equalize_batch(
                r2d, impulse_responses, nv, num_samples
            )
        if fading_gains is not None:
            gains = np.asarray(fading_gains, dtype=np.complex128)
            if gains.shape != symbols.shape:
                raise ValueError(
                    f"fading_gains shape {gains.shape} does not match "
                    f"recovered sample matrix {symbols.shape}"
                )
            gain_power = np.maximum(np.abs(gains) ** 2, 1e-30)
            symbols = symbols * np.conj(gains) / gain_power
            effective_noise = effective_noise[:, None] / gain_power
        if self.spreader is not None:
            symbols = self.spreader.despread_batch(symbols)
            sf = self.spreader.spreading_factor
            if effective_noise.ndim == 2:
                effective_noise = (
                    effective_noise.reshape(effective_noise.shape[0], -1, sf).mean(axis=2)
                    / sf
                )
            else:
                effective_noise = effective_noise / sf
        return symbols, effective_noise

    def demap_batch(
        self, symbols: np.ndarray, effective_noise_variances: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`demap` — one flattened soft-demapping pass.

        The max-log demapper is elementwise per symbol, so demapping the
        flattened batch and reshaping is bit-identical to demapping each row
        with its own noise variance.
        """
        sym = np.asarray(symbols, dtype=np.complex128)
        if sym.ndim != 2:
            raise ValueError(f"expected a 2-D symbol matrix, got shape {sym.shape}")
        noise = np.asarray(effective_noise_variances, dtype=np.float64)
        if noise.ndim == 1:
            noise = np.broadcast_to(noise[:, None], sym.shape)
        elif noise.shape != sym.shape:
            raise ValueError(
                f"noise variance shape {noise.shape} does not match symbols {sym.shape}"
            )
        flat = self.config.modulator.demodulate_soft(
            sym.reshape(-1), np.ascontiguousarray(noise).reshape(-1)
        )
        llrs = flat.reshape(sym.shape[0], -1)
        llrs = llrs[:, : self.config.channel_bits_per_transmission]
        dtype = self.config.llr_numpy_dtype
        if llrs.dtype != dtype:
            llrs = llrs.astype(dtype)
        return llrs

    def to_mother_domain_batch(
        self, channel_llrs: np.ndarray, redundancy_version: int
    ) -> np.ndarray:
        """Batched :meth:`to_mother_domain` (gather + scatter per batch)."""
        deinterleaved = self.transmitter.channel_interleaver.deinterleave_batch(channel_llrs)
        return self.transmitter.rate_matcher.derate_match_batch(
            deinterleaved, redundancy_version
        )

    # ------------------------------------------------------------------ #
    def front_end(
        self,
        received: np.ndarray,
        impulse_response: np.ndarray,
        noise_variance: float,
        fading_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Equalize and demap one transmission into channel-bit LLRs.

        These are the LLRs the HARQ memory stores in the per-transmission
        buffer organisation (before de-interleaving / de-rate-matching).
        """
        symbols, effective_noise = self.equalize(
            received, impulse_response, noise_variance, fading_gains=fading_gains
        )
        return self.demap(symbols, effective_noise)

    def process_transmission(
        self,
        received: np.ndarray,
        impulse_response: np.ndarray,
        noise_variance: float,
        redundancy_version: int,
        fading_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Full front-end processing of one (re)transmission.

        Returns the mother-code-domain LLRs ready for HARQ combining.
        """
        channel_llrs = self.front_end(
            received, impulse_response, noise_variance, fading_gains=fading_gains
        )
        return self.to_mother_domain(channel_llrs, redundancy_version)

    def front_end_batch(
        self,
        received: np.ndarray,
        impulse_responses: np.ndarray,
        noise_variances: np.ndarray,
        fading_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched :meth:`front_end`: equalize and demap a whole round."""
        symbols, effective_noise = self.equalize_batch(
            received, impulse_responses, noise_variances, fading_gains=fading_gains
        )
        return self.demap_batch(symbols, effective_noise)

    def process_transmission_batch(
        self,
        received: np.ndarray,
        impulse_responses: np.ndarray,
        noise_variances: np.ndarray,
        redundancy_version: int,
        fading_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched :meth:`process_transmission` for one HARQ round."""
        channel_llrs = self.front_end_batch(
            received, impulse_responses, noise_variances, fading_gains=fading_gains
        )
        return self.to_mother_domain_batch(channel_llrs, redundancy_version)

    def decode(self, combined_mother_llrs: np.ndarray):
        """Turbo-decode combined LLRs and check the CRC.

        Returns
        -------
        tuple
            ``(payload_bits, crc_ok, decoder_result)``.
        """
        result = self.transmitter.turbo.decode_buffer(combined_mother_llrs)
        decoded = result.decoded_bits[0]
        crc_ok = self.config.crc.check(decoded)
        payload = decoded[: self.config.payload_bits]
        return payload, bool(crc_ok), result

    def decode_batch(self, combined_rows: np.ndarray):
        """Turbo-decode a batch of combined LLR rows and CRC-check each.

        This is the aggregation point of the receive chain: the link layer
        pools the active packets of *many* simulation groups (work-item
        chunks, HARQ attempts at the same combining state) into one call, so
        the decoder runs at the widest batch available.  Because the decoder
        processes rows independently, the result for each packet is
        identical to decoding it alone.

        Returns
        -------
        tuple
            ``(decoded_blocks, crc_ok, decoder_result)`` where
            ``decoded_blocks`` has shape ``(batch, block_size)`` and
            ``crc_ok`` is a boolean array of per-row CRC outcomes.
        """
        result = self.transmitter.turbo.decode_buffer(combined_rows)
        decoded = result.decoded_bits
        crc_ok = self.config.crc.check_batch(np.asarray(decoded))
        return decoded, crc_ok, result
