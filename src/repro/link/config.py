"""Configuration of the HSPA+-like downlink used by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.channel.multipath import PROFILES, PowerDelayProfile
from repro.harq.combining import CombiningScheme
from repro.phy.crc import CRC_BY_LENGTH, Crc
from repro.phy.modulation import Modulator, get_modulator
from repro.phy.quantization import LlrQuantizer
from repro.utils.validation import ensure_positive_int


def parse_fading_token(token: str) -> Optional[float]:
    """Validate a fading-mode token, returning the Doppler frequency.

    ``"block"`` (the quasi-static default) maps to ``None``;
    ``"jakes:<doppler_hz>"`` maps to the positive maximum Doppler frequency
    in Hz.
    """
    value = str(token).strip().lower()
    if value == "block":
        return None
    if value.startswith("jakes:"):
        try:
            doppler_hz = float(value[6:])
        except ValueError:
            raise ValueError(
                f"bad fading token {token!r}: jakes:<doppler_hz> needs a number"
            ) from None
        if doppler_hz <= 0:
            raise ValueError("jakes Doppler frequency must be positive")
        return doppler_hz
    raise ValueError(
        f"unknown fading token {token!r}; use 'block' or 'jakes:<doppler_hz>'"
    )


@dataclass(frozen=True)
class LinkConfig:
    """All parameters of one link-level operating mode.

    The defaults reproduce the paper's evaluation setting: 64QAM (the most
    noise-sensitive, high-throughput mode), 10-bit LLR quantization, a
    maximum of three retransmissions (four transmissions total) with
    incremental-redundancy combining, an MMSE equalizer and a
    standard-compliant multipath profile.

    Parameters
    ----------
    modulation:
        ``"QPSK"``, ``"16QAM"`` or ``"64QAM"``.
    payload_bits:
        Information bits per packet, CRC excluded.
    crc_bits:
        CRC length appended to the payload (8, 16 or 24).
    effective_code_rate:
        Target code rate of a single transmission after rate matching
        (information+CRC bits over channel bits).
    turbo_iterations:
        Maximum turbo-decoder iterations.
    max_transmissions:
        HARQ transmission budget per packet (initial + retransmissions).
    combining:
        HARQ combining scheme (chase or incremental redundancy).
    llr_bits:
        HARQ soft-buffer quantization width (the paper's joint study uses
        10, 11 and 12).
    llr_max_abs:
        Quantizer saturation level.
    channel_profile:
        Name of a built-in power delay profile, or a custom profile object.
    sample_period_ns:
        Duration of one transmitted sample for resampling the delay profile
        (the UMTS chip period by default).
    equalizer_taps:
        MMSE equalizer filter length.
    spreading_factor:
        OVSF spreading factor; 1 bypasses spreading (the despread output is
        statistically identical, so experiments default to 1 for speed).
    interleaver_columns:
        Number of columns of the channel (2nd) interleaver.
    buffer_architecture:
        ``"per-transmission"`` (default) stores each transmission's received
        LLRs in its own region of the HARQ memory and combines them when the
        decoder reads the buffer — the organisation whose size matches the
        paper's LLR-storage numbers.  ``"combined"`` stores the running
        mother-domain sum instead (a virtual-IR-buffer organisation).
    decoder_backend:
        Turbo-decoder backend name (see :mod:`repro.phy.turbo.backends`).
        The default ``"numpy"`` is the deterministic float64 kernel whose
        output the golden-seed suite pins; ``"numba"``/``"auto"`` select the
        JIT backend when available, ``"numpy-f32"`` the float32 mode.
    llr_dtype:
        Floating-point dtype of the end-to-end link LLRs (``"float64"`` or
        ``"float32"``).  The opt-in float32 mode halves the LLR memory
        traffic between demapper, HARQ buffer and decoder; pair it with
        ``decoder_backend="numpy-f32"`` to keep the whole receive chain in
        single precision.  Non-default, so run identities and goldens are
        untouched by its existence.
    fading:
        Time-selectivity of the channel within one transmission.  The
        default ``"block"`` keeps the historical quasi-static model (one
        multipath realisation per transmission, constant over the packet);
        ``"jakes:<doppler_hz>"`` additionally modulates the transmit
        samples with a unit-power time-correlated Jakes waveform at the
        given maximum Doppler frequency, so the channel varies *inside*
        a packet.  The receiver tracks the waveform with perfect CSI
        (per-symbol gain compensation and per-symbol demapper noise
        variances).  Non-default, so run identities and goldens are
        untouched by its existence.
    """

    modulation: str = "64QAM"
    payload_bits: int = 488
    crc_bits: int = 16
    effective_code_rate: float = 0.75
    turbo_iterations: int = 5
    max_transmissions: int = 4
    combining: CombiningScheme = CombiningScheme.INCREMENTAL_REDUNDANCY
    llr_bits: int = 10
    llr_max_abs: float = 32.0
    channel_profile: str | PowerDelayProfile = "ITU-PedA"
    sample_period_ns: float = 260.417
    equalizer_taps: int = 12
    spreading_factor: int = 1
    interleaver_columns: int = 30
    buffer_architecture: str = "per-transmission"
    decoder_backend: str = "numpy"
    llr_dtype: str = "float64"
    fading: str = "block"

    def __post_init__(self) -> None:
        ensure_positive_int(self.payload_bits, "payload_bits")
        ensure_positive_int(self.turbo_iterations, "turbo_iterations")
        ensure_positive_int(self.max_transmissions, "max_transmissions")
        ensure_positive_int(self.llr_bits, "llr_bits")
        ensure_positive_int(self.equalizer_taps, "equalizer_taps")
        ensure_positive_int(self.spreading_factor, "spreading_factor")
        if self.crc_bits not in CRC_BY_LENGTH:
            raise ValueError(
                f"crc_bits must be one of {sorted(CRC_BY_LENGTH)}, got {self.crc_bits}"
            )
        if not 0.0 < self.effective_code_rate <= 1.0:
            raise ValueError("effective_code_rate must be in (0, 1]")
        get_modulator(self.modulation)  # validates
        if self.buffer_architecture not in ("per-transmission", "combined"):
            raise ValueError(
                "buffer_architecture must be 'per-transmission' or 'combined', "
                f"got {self.buffer_architecture!r}"
            )
        if isinstance(self.channel_profile, str) and self.channel_profile not in PROFILES:
            raise ValueError(
                f"unknown channel profile {self.channel_profile!r}; "
                f"choose from {sorted(PROFILES)}"
            )
        if self.llr_dtype not in ("float64", "float32"):
            raise ValueError(
                f"llr_dtype must be 'float64' or 'float32', got {self.llr_dtype!r}"
            )
        parse_fading_token(self.fading)  # validates
        # Validates the token (raises on typos); availability is resolved at
        # decoder construction time, falling back to numpy if necessary.
        from repro.phy.turbo.backends import parse_backend_name

        parse_backend_name(self.decoder_backend)

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def crc(self) -> Crc:
        """The CRC attached to every packet."""
        return CRC_BY_LENGTH[self.crc_bits]

    @property
    def block_size(self) -> int:
        """Turbo code-block size (payload + CRC bits)."""
        return self.payload_bits + self.crc_bits

    @property
    def num_coded_bits(self) -> int:
        """Mother-code output length (3 * block_size, untail-biased encoder)."""
        return 3 * self.block_size

    @property
    def modulator(self) -> Modulator:
        """The configured modulator instance."""
        return get_modulator(self.modulation)

    @property
    def bits_per_symbol(self) -> int:
        """Bits per modulation symbol."""
        return self.modulator.bits_per_symbol

    @property
    def channel_bits_per_transmission(self) -> int:
        """Channel bits per (re)transmission, rounded to a whole symbol count."""
        raw = int(round(self.block_size / self.effective_code_rate))
        bits_per_symbol = self.bits_per_symbol
        return int(-(-raw // bits_per_symbol) * bits_per_symbol)  # ceil to multiple

    @property
    def symbols_per_transmission(self) -> int:
        """Modulated symbols per (re)transmission."""
        return self.channel_bits_per_transmission // self.bits_per_symbol

    @property
    def quantizer(self) -> LlrQuantizer:
        """The HARQ soft-buffer quantizer."""
        return LlrQuantizer(num_bits=self.llr_bits, max_abs=self.llr_max_abs)

    @property
    def llr_storage_words(self) -> int:
        """Number of LLR words the HARQ soft buffer holds.

        For the per-transmission organisation this is the channel-bit count
        times the transmission budget; for the combined organisation it is
        the mother-code length (virtual IR buffer).
        """
        if self.buffer_architecture == "per-transmission":
            return self.channel_bits_per_transmission * self.max_transmissions
        return self.num_coded_bits

    @property
    def llr_storage_cells(self) -> int:
        """Number of SRAM bit cells in the HARQ soft buffer.

        This is the ``M`` of the yield analysis: every stored LLR occupies
        ``llr_bits`` cells.
        """
        return self.llr_storage_words * self.llr_bits

    @property
    def llr_numpy_dtype(self):
        """The numpy dtype of the end-to-end link LLRs."""
        import numpy as np

        return np.float32 if self.llr_dtype == "float32" else np.float64

    @property
    def fading_doppler_hz(self) -> Optional[float]:
        """Maximum Doppler of the intra-packet fading (``None`` for block fading)."""
        return parse_fading_token(self.fading)

    def fading_process(self):
        """The intra-packet :class:`~repro.channel.fading.JakesFadingProcess`.

        Returns ``None`` in the default block-fading mode.  The waveform is
        sampled at the transmit sample (chip) rate implied by
        :attr:`sample_period_ns`.
        """
        doppler_hz = self.fading_doppler_hz
        if doppler_hz is None:
            return None
        from repro.channel.fading import JakesFadingProcess

        return JakesFadingProcess(
            doppler_hz=doppler_hz, sample_rate_hz=1e9 / self.sample_period_ns
        )

    @property
    def profile(self) -> PowerDelayProfile:
        """The resolved power delay profile object."""
        if isinstance(self.channel_profile, PowerDelayProfile):
            return self.channel_profile
        return PROFILES[self.channel_profile]

    # ------------------------------------------------------------------ #
    def with_updates(self, **kwargs) -> "LinkConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Human-readable multi-line summary of the operating mode.

        The default decoder backend is omitted so that run identities (and
        the golden snapshots that pin them) are unchanged for default runs;
        any non-default backend is spelled out, which keys caches apart.
        """
        backend = (
            "" if self.decoder_backend == "numpy" else f", decoder {self.decoder_backend}"
        )
        dtype = "" if self.llr_dtype == "float64" else f", llr dtype {self.llr_dtype}"
        fading = "" if self.fading == "block" else f", fading {self.fading}"
        backend += dtype + fading
        return (
            f"{self.modulation}, K={self.block_size} bits "
            f"(payload {self.payload_bits} + CRC {self.crc_bits}), "
            f"rate {self.effective_code_rate:.2f}, "
            f"{self.max_transmissions} transmissions ({self.combining.value}), "
            f"{self.llr_bits}-bit LLRs, profile {self.profile.name}, "
            f"LLR storage {self.llr_storage_cells} cells{backend}"
        )
