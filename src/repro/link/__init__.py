"""Link layer: configuration, transmitter, receiver and the HSPA+-like system."""

from repro.link.config import LinkConfig
from repro.link.receiver import Receiver
from repro.link.system import HspaLikeLink, LinkSimulationResult
from repro.link.transmitter import EncodedPacket, Transmitter

__all__ = [
    "EncodedPacket",
    "HspaLikeLink",
    "LinkConfig",
    "LinkSimulationResult",
    "Receiver",
    "Transmitter",
]
