"""The end-to-end HSPA+-like link with HARQ over an unreliable LLR buffer.

:class:`HspaLikeLink` ties together the transmitter, the multipath channel,
the receiver front end, the HARQ soft buffer (optionally backed by a faulty
memory array) and the turbo decoder, and simulates complete packet lifetimes.

Two buffer organisations are supported (see
:class:`~repro.link.config.LinkConfig.buffer_architecture`):

* ``"per-transmission"`` — the HARQ memory stores each transmission's
  received channel LLRs in its own region; soft combining happens when the
  decoder reads the buffer.  This matches the LLR-storage sizing the paper
  quotes and is the default.
* ``"combined"`` — the memory stores the running mother-domain sum (a
  virtual-IR-buffer organisation); faults therefore corrupt the *combined*
  soft values.

Three simulation paths are provided:

* :meth:`HspaLikeLink.simulate_single_packet` — one packet at a time;
  convenient for tests and for tracing a packet's lifetime.
* :meth:`HspaLikeLink.simulate_packets` — many packets advance through
  their HARQ rounds in lock-step so that the turbo decoder (the dominant
  cost) runs on whole batches.
* :func:`simulate_packet_groups` — the Monte-Carlo workhorse behind
  cross-work-item batch aggregation: several independent packet groups
  (e.g. the chunks of different work items, each with its own seed stream,
  SNR point and fault map) advance in lock-step and share **one** decoder
  call per HARQ round.  Because the decoder treats batch rows
  independently, every group's results are bit-identical to simulating it
  alone — grouping is purely a throughput optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.fading import jakes_gains_batch
from repro.channel.multipath import MultipathChannel
from repro.harq.buffer import LlrSoftBuffer, TransmissionSoftBuffer
from repro.harq.controller import HarqPacketResult
from repro.harq.metrics import HarqStatistics, aggregate_results
from repro.link.config import LinkConfig
from repro.link.receiver import Receiver
from repro.link.transmitter import EncodedPacket, Transmitter
from repro.utils.rng import RngLike, child_rngs
from repro.utils.validation import ensure_positive_int

#: Either soft-buffer flavour.
SoftBuffer = Union[LlrSoftBuffer, TransmissionSoftBuffer]
#: Creates the soft buffer of packet ``i`` (carrying its fault map).
BufferFactory = Callable[[int], SoftBuffer]


@dataclass
class LinkSimulationResult:
    """Outcome of a Monte-Carlo link simulation at one operating point.

    Attributes
    ----------
    snr_db:
        Receive SNR of the simulated point.
    statistics:
        Aggregate HARQ statistics (throughput, BLER, transmissions).
    packet_results:
        Per-packet outcomes, in simulation order.
    """

    snr_db: float
    statistics: HarqStatistics
    packet_results: List[HarqPacketResult] = field(default_factory=list)


@dataclass
class PacketGroup:
    """One independent batch of packets at a single operating point.

    A group is the unit whose random stream, payloads and soft buffers are
    self-contained; :func:`simulate_packet_groups` may pool any number of
    groups into shared decoder calls without changing any group's outcome.
    """

    num_packets: int
    snr_db: float
    rng: RngLike = None
    buffer_factory: Optional[BufferFactory] = None
    payloads: Optional[List[np.ndarray]] = None


@dataclass
class _PacketState:
    """Mutable per-packet simulation state while HARQ rounds are running."""

    rng: np.random.Generator
    packet: EncodedPacket
    buffer: SoftBuffer
    snr_db: float
    transmissions: int = 0
    success: bool = False
    failure_history: List[bool] = field(default_factory=list)
    decoded: Optional[np.ndarray] = None


class HspaLikeLink:
    """End-to-end link simulator for one :class:`~repro.link.config.LinkConfig`.

    Parameters
    ----------
    config:
        Link operating mode.
    use_rake:
        Use the RAKE baseline instead of the MMSE equalizer.
    """

    def __init__(self, config: LinkConfig, *, use_rake: bool = False) -> None:
        self.config = config
        self.transmitter = Transmitter(config)
        self.receiver = Receiver(config, self.transmitter, use_rake=use_rake)
        self.channel = MultipathChannel(config.profile, config.sample_period_ns)
        #: Intra-packet fading waveform generator (None in block-fading mode).
        self.fading_process = config.fading_process()

    # ------------------------------------------------------------------ #
    # buffer construction
    # ------------------------------------------------------------------ #
    def make_buffer(
        self, fault_map=None, ecc=None, soft_error_rate=0.0, soft_error_rng=None
    ) -> SoftBuffer:
        """Create a soft buffer matching the configured architecture.

        The fault map (if given) must cover
        :attr:`~repro.link.config.LinkConfig.llr_storage_words` words of
        ``llr_bits`` columns (or the ECC codeword width when *ecc* is given).
        A positive *soft_error_rate* additionally flips each stored cell
        with that probability on every read (transient upsets, redrawn from
        *soft_error_rng* per read), composing with the persistent map.
        """
        if self.config.buffer_architecture == "per-transmission":
            return TransmissionSoftBuffer(
                words_per_transmission=self.config.channel_bits_per_transmission,
                num_slots=self.config.max_transmissions,
                quantizer=self.config.quantizer,
                fault_map=fault_map,
                ecc=ecc,
                soft_error_rate=soft_error_rate,
                soft_error_rng=soft_error_rng,
            )
        return LlrSoftBuffer(
            num_llrs=self.config.llr_storage_words,
            quantizer=self.config.quantizer,
            fault_map=fault_map,
            ecc=ecc,
            soft_error_rate=soft_error_rate,
            soft_error_rng=soft_error_rng,
        )

    # ------------------------------------------------------------------ #
    # single-packet path
    # ------------------------------------------------------------------ #
    def simulate_single_packet(
        self,
        snr_db: float,
        rng: RngLike = None,
        buffer: Optional[SoftBuffer] = None,
        payload: Optional[np.ndarray] = None,
    ) -> HarqPacketResult:
        """Simulate one packet's complete HARQ lifetime."""
        factory = None if buffer is None else (lambda _i: buffer)
        result = self.simulate_packets(
            1, snr_db, rng, buffer_factory=factory, payloads=None if payload is None else [payload]
        )
        return result.packet_results[0]

    # ------------------------------------------------------------------ #
    # batched Monte-Carlo path
    # ------------------------------------------------------------------ #
    def simulate_packets(
        self,
        num_packets: int,
        snr_db: float,
        rng: RngLike = None,
        buffer_factory: Optional[BufferFactory] = None,
        payloads: Optional[List[np.ndarray]] = None,
    ) -> LinkSimulationResult:
        """Simulate *num_packets* independent packets at one SNR point.

        Packets advance through HARQ rounds in lock-step so that turbo
        decoding is batched; every packet sees independent payloads, channel
        realisations and noise, and gets its own soft buffer from
        *buffer_factory* (defect-free buffers by default).
        """
        group = PacketGroup(
            num_packets=num_packets,
            snr_db=snr_db,
            rng=rng,
            buffer_factory=buffer_factory,
            payloads=payloads,
        )
        return simulate_packet_groups(self, [group])[0]

    # ------------------------------------------------------------------ #
    # group-simulation plumbing (shared with the batch-aggregation layer)
    # ------------------------------------------------------------------ #
    def _start_group(self, group: PacketGroup) -> List[_PacketState]:
        """Derive per-packet streams, payloads and buffers for one group.

        The derivation order (child rngs, then payloads, then buffers)
        matches the historical ``simulate_packets`` body exactly, so seeded
        runs reproduce bit-for-bit.
        """
        num_packets = ensure_positive_int(group.num_packets, "num_packets")
        packet_rngs = child_rngs(group.rng, num_packets)
        factory = group.buffer_factory or (lambda _index: self.make_buffer())

        payloads = group.payloads
        if payloads is None:
            payloads = [self.transmitter.random_payload(r) for r in packet_rngs]
        elif len(payloads) != num_packets:
            raise ValueError(f"expected {num_packets} payloads, got {len(payloads)}")
        packets = self.transmitter.encode_batch(payloads)
        states = []
        for index, packet_rng in enumerate(packet_rngs):
            soft_buffer = factory(index)
            soft_buffer.clear()
            states.append(
                _PacketState(
                    rng=packet_rng,
                    packet=packets[index],
                    buffer=soft_buffer,
                    snr_db=float(group.snr_db),
                )
            )
        return states

    def _front_end_round(
        self,
        states: Sequence[_PacketState],
        transmission_index: int,
        redundancy_version: int,
    ) -> np.ndarray:
        """Run one HARQ round's (re)transmissions through channel and front end.

        The whole active set is processed as a ``(num_packets, ...)`` batch:
        one vectorised transmit pass, one channel pass with per-packet
        generators, one stacked equalize/demap pass.  Every per-packet random
        draw comes from that packet's own stream in exactly the serial order
        (Jakes realisation, then channel realisation, then noise), so a round
        of N packets is byte-identical to N serial rounds — the serial path
        *is* a batch of one.

        Returns the combined mother-domain LLR matrix ready for decoding,
        already in the configured LLR dtype.
        """
        if len(states) == 1:
            return self._front_end_single(
                states[0], transmission_index, redundancy_version
            )
        samples = self.transmitter.transmit_batch(
            [state.packet for state in states], redundancy_version
        )
        fading_gains = None
        mean_signal_powers = None
        if self.fading_process is not None:
            mean_signal_powers = self.channel.mean_signal_powers(samples)
            realizations = [
                self.fading_process.realization(state.rng) for state in states
            ]
            fading_gains = jakes_gains_batch(realizations, 0, samples.shape[1])
            samples = samples * fading_gains
        received, impulse_responses, noise_variances = self.channel.apply_batch(
            samples,
            [state.snr_db for state in states],
            [state.rng for state in states],
            mean_signal_powers=mean_signal_powers,
        )
        if self.config.buffer_architecture == "per-transmission":
            channel_llrs = self.receiver.front_end_batch(
                received, impulse_responses, noise_variances, fading_gains=fading_gains
            )
            for row, state in enumerate(states):
                state.buffer.store_transmission(
                    transmission_index, channel_llrs[row], redundancy_version
                )
            combined = self._combined_mother_rows(states)
        else:
            mother_llrs = self.receiver.process_transmission_batch(
                received,
                impulse_responses,
                noise_variances,
                redundancy_version,
                fading_gains=fading_gains,
            )
            combined = np.stack(
                [
                    state.buffer.combine_and_store(mother_llrs[row])
                    for row, state in enumerate(states)
                ]
            )
        for state in states:
            state.transmissions += 1
        dtype = self.config.llr_numpy_dtype
        if combined.dtype != dtype:
            combined = combined.astype(dtype)
        return combined

    def _front_end_single(
        self,
        state: _PacketState,
        transmission_index: int,
        redundancy_version: int,
    ) -> np.ndarray:
        """One packet's front-end round through the serial kernels.

        A batch of one pays the full batch-assembly overhead (stacking,
        broadcasting, per-column fancy indexing) for no amortisation, which
        made single-packet simulation slower than the pre-batching code.
        This path runs the same round through the serial kernels instead.
        It is byte-identical to the batch path by the pinned kernel
        contracts: every ``*_batch`` kernel is bit-identical to its serial
        counterpart row by row (tests/test_front_end_batching.py), the
        per-packet rng draw order (fading realisation, channel realisation,
        noise) is the serial order already, and the buffer's own
        ``combined_mother_llrs`` is what ``_combined_mother_rows`` mirrors.
        The front-end benchmark asserts the equality at batch 1 on every
        run.
        """
        samples = self.transmitter.transmit(state.packet, redundancy_version)
        fading_gains = None
        mean_signal_power = None
        if self.fading_process is not None:
            mean_signal_power = float(
                self.channel.mean_signal_powers(samples.reshape(1, -1))[0]
            )
            realization = self.fading_process.realization(state.rng)
            fading_gains = jakes_gains_batch([realization], 0, samples.shape[0])[0]
            samples = samples * fading_gains
        received, impulse_response, noise_variance = self.channel.apply(
            samples,
            state.snr_db,
            state.rng,
            mean_signal_power=mean_signal_power,
        )
        if self.config.buffer_architecture == "per-transmission":
            channel_llrs = self.receiver.front_end(
                received, impulse_response, noise_variance, fading_gains=fading_gains
            )
            state.buffer.store_transmission(
                transmission_index, channel_llrs, redundancy_version
            )
            combined = state.buffer.combined_mother_llrs(
                self.receiver.to_mother_domain
            )
        else:
            mother_llrs = self.receiver.process_transmission(
                received,
                impulse_response,
                noise_variance,
                redundancy_version,
                fading_gains=fading_gains,
            )
            combined = state.buffer.combine_and_store(mother_llrs)
        state.transmissions += 1
        combined = combined.reshape(1, -1)
        dtype = self.config.llr_numpy_dtype
        if combined.dtype != dtype:
            combined = combined.astype(dtype)
        return combined

    def _combined_mother_rows(self, states: Sequence[_PacketState]) -> np.ndarray:
        """Batched HARQ read-combine across the per-transmission buffers.

        Mirrors :meth:`TransmissionSoftBuffer.combined_mother_llrs` exactly:
        slots are visited in ascending order (each buffer's transient-upset
        stream advances in the serial read order) and each packet's mother
        rows accumulate in ascending-slot order, so every row is
        bit-identical to the per-packet loop.  Rows with the same stored
        redundancy version share one de-interleave / de-rate-match gather.
        """
        batch = len(states)
        combined = np.empty((batch, self.config.num_coded_bits), dtype=np.float64)
        seen = np.zeros(batch, dtype=bool)
        for slot in range(self.config.max_transmissions):
            rows = [
                index
                for index, state in enumerate(states)
                if state.buffer.slot_occupied(slot)
            ]
            if not rows:
                continue
            loaded = []
            versions = []
            for index in rows:
                llrs, redundancy_version = states[index].buffer.load_transmission(slot)
                loaded.append(llrs)
                versions.append(redundancy_version)
            stacked = np.stack(loaded)
            mother = np.empty((len(rows), self.config.num_coded_bits), dtype=np.float64)
            for version in dict.fromkeys(versions):
                selector = [j for j, rv in enumerate(versions) if rv == version]
                mother[selector] = self.receiver.to_mother_domain_batch(
                    stacked[selector], version
                )
            row_indices = np.asarray(rows)
            first = ~seen[row_indices]
            if first.any():
                combined[row_indices[first]] = mother[first]
                seen[row_indices[first]] = True
            if (~first).any():
                combined[row_indices[~first]] += mother[~first]
        if not seen.all():
            raise ValueError("no transmissions stored yet")
        return combined

    def _finish_group(self, states: Sequence[_PacketState], snr_db: float) -> LinkSimulationResult:
        """Reduce a group's final per-packet states into its result."""
        packet_results = [
            HarqPacketResult(
                success=state.success,
                num_transmissions=state.transmissions,
                decoded_bits=state.decoded,
                failure_history=state.failure_history,
            )
            for state in states
        ]
        statistics = aggregate_results(packet_results, self.config.payload_bits)
        return LinkSimulationResult(
            snr_db=float(snr_db), statistics=statistics, packet_results=packet_results
        )

    # ------------------------------------------------------------------ #
    def snr_sweep(
        self,
        snr_points_db,
        num_packets: int,
        rng: RngLike = None,
        buffer_factory: Optional[BufferFactory] = None,
        payloads: Optional[List[np.ndarray]] = None,
    ) -> List[LinkSimulationResult]:
        """Run :meth:`simulate_packets` over a list of SNR points.

        When *payloads* is given, every SNR point transmits that same packet
        set (channel realisations and noise still vary per point).  An empty
        *snr_points_db* is a caller bug — it used to return ``[]`` silently —
        and now raises.
        """
        points = [float(s) for s in snr_points_db]
        if not points:
            raise ValueError("snr_points_db must not be empty")
        sweep_rngs = child_rngs(rng, len(points))
        results = []
        for point_rng, snr_db in zip(sweep_rngs, points):
            results.append(
                self.simulate_packets(
                    num_packets, snr_db, point_rng, buffer_factory, payloads=payloads
                )
            )
        return results


# --------------------------------------------------------------------------- #
def simulate_packet_groups(
    link: HspaLikeLink, groups: Sequence[PacketGroup]
) -> List[LinkSimulationResult]:
    """Simulate many independent packet groups with shared decoder calls.

    All groups run on the same *link* (one configuration); each group keeps
    its own seed stream, SNR point, payloads and soft buffers.  Every HARQ
    round gathers the still-active packets of **all** groups — i.e. all
    packets at the same combining state — into one turbo-decoder call, so
    the decode batch stays wide even when individual groups are small or
    mostly finished.

    Per-group results are bit-identical to ``link.simulate_packets(...)``
    run group by group: the decoder processes batch rows independently, and
    every other per-packet operation was already independent.
    """
    groups = list(groups)
    states_per_group = [link._start_group(group) for group in groups]

    for transmission_index in range(link.config.max_transmissions):
        active: List[Tuple[int, int]] = [
            (group_index, packet_index)
            for group_index, states in enumerate(states_per_group)
            for packet_index, state in enumerate(states)
            if not state.success
        ]
        if not active:
            break
        redundancy_version = link.config.combining.redundancy_version(transmission_index)
        active_states = [
            states_per_group[group_index][packet_index]
            for group_index, packet_index in active
        ]
        combined_rows = link._front_end_round(
            active_states, transmission_index, redundancy_version
        )
        decoded_blocks, crc_ok, _result = link.receiver.decode_batch(combined_rows)
        payload_bits = link.config.payload_bits
        for row_index, (group_index, packet_index) in enumerate(active):
            state = states_per_group[group_index][packet_index]
            ok = bool(crc_ok[row_index])
            state.failure_history.append(not ok)
            state.decoded = decoded_blocks[row_index][:payload_bits]
            if ok:
                state.success = True

    return [
        link._finish_group(states, group.snr_db)
        for group, states in zip(groups, states_per_group)
    ]
