"""The end-to-end HSPA+-like link with HARQ over an unreliable LLR buffer.

:class:`HspaLikeLink` ties together the transmitter, the multipath channel,
the receiver front end, the HARQ soft buffer (optionally backed by a faulty
memory array) and the turbo decoder, and simulates complete packet lifetimes.

Two buffer organisations are supported (see
:class:`~repro.link.config.LinkConfig.buffer_architecture`):

* ``"per-transmission"`` — the HARQ memory stores each transmission's
  received channel LLRs in its own region; soft combining happens when the
  decoder reads the buffer.  This matches the LLR-storage sizing the paper
  quotes and is the default.
* ``"combined"`` — the memory stores the running mother-domain sum (a
  virtual-IR-buffer organisation); faults therefore corrupt the *combined*
  soft values.

Two simulation paths are provided:

* :meth:`HspaLikeLink.simulate_single_packet` — one packet at a time;
  convenient for tests and for tracing a packet's lifetime.
* :meth:`HspaLikeLink.simulate_packets` — the Monte-Carlo workhorse: many
  packets advance through their HARQ rounds in lock-step so that the turbo
  decoder (the dominant cost) runs on whole batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.harq.buffer import LlrSoftBuffer, TransmissionSoftBuffer
from repro.harq.controller import HarqPacketResult
from repro.harq.metrics import HarqStatistics, aggregate_results
from repro.link.config import LinkConfig
from repro.link.receiver import Receiver
from repro.link.transmitter import Transmitter
from repro.utils.rng import RngLike, child_rngs
from repro.utils.validation import ensure_positive_int

#: Either soft-buffer flavour.
SoftBuffer = Union[LlrSoftBuffer, TransmissionSoftBuffer]
#: Creates the soft buffer of packet ``i`` (carrying its fault map).
BufferFactory = Callable[[int], SoftBuffer]


@dataclass
class LinkSimulationResult:
    """Outcome of a Monte-Carlo link simulation at one operating point.

    Attributes
    ----------
    snr_db:
        Receive SNR of the simulated point.
    statistics:
        Aggregate HARQ statistics (throughput, BLER, transmissions).
    packet_results:
        Per-packet outcomes, in simulation order.
    """

    snr_db: float
    statistics: HarqStatistics
    packet_results: List[HarqPacketResult] = field(default_factory=list)


class HspaLikeLink:
    """End-to-end link simulator for one :class:`~repro.link.config.LinkConfig`.

    Parameters
    ----------
    config:
        Link operating mode.
    use_rake:
        Use the RAKE baseline instead of the MMSE equalizer.
    """

    def __init__(self, config: LinkConfig, *, use_rake: bool = False) -> None:
        self.config = config
        self.transmitter = Transmitter(config)
        self.receiver = Receiver(config, self.transmitter, use_rake=use_rake)
        self.channel = MultipathChannel(config.profile, config.sample_period_ns)

    # ------------------------------------------------------------------ #
    # buffer construction
    # ------------------------------------------------------------------ #
    def make_buffer(self, fault_map=None, ecc=None) -> SoftBuffer:
        """Create a soft buffer matching the configured architecture.

        The fault map (if given) must cover
        :attr:`~repro.link.config.LinkConfig.llr_storage_words` words of
        ``llr_bits`` columns (or the ECC codeword width when *ecc* is given).
        """
        if self.config.buffer_architecture == "per-transmission":
            return TransmissionSoftBuffer(
                words_per_transmission=self.config.channel_bits_per_transmission,
                num_slots=self.config.max_transmissions,
                quantizer=self.config.quantizer,
                fault_map=fault_map,
                ecc=ecc,
            )
        return LlrSoftBuffer(
            num_llrs=self.config.llr_storage_words,
            quantizer=self.config.quantizer,
            fault_map=fault_map,
            ecc=ecc,
        )

    # ------------------------------------------------------------------ #
    # single-packet path
    # ------------------------------------------------------------------ #
    def simulate_single_packet(
        self,
        snr_db: float,
        rng: RngLike = None,
        buffer: Optional[SoftBuffer] = None,
        payload: Optional[np.ndarray] = None,
    ) -> HarqPacketResult:
        """Simulate one packet's complete HARQ lifetime."""
        factory = None if buffer is None else (lambda _i: buffer)
        result = self.simulate_packets(
            1, snr_db, rng, buffer_factory=factory, payloads=None if payload is None else [payload]
        )
        return result.packet_results[0]

    # ------------------------------------------------------------------ #
    # batched Monte-Carlo path
    # ------------------------------------------------------------------ #
    def simulate_packets(
        self,
        num_packets: int,
        snr_db: float,
        rng: RngLike = None,
        buffer_factory: Optional[BufferFactory] = None,
        payloads: Optional[List[np.ndarray]] = None,
    ) -> LinkSimulationResult:
        """Simulate *num_packets* independent packets at one SNR point.

        Packets advance through HARQ rounds in lock-step so that turbo
        decoding is batched; every packet sees independent payloads, channel
        realisations and noise, and gets its own soft buffer from
        *buffer_factory* (defect-free buffers by default).
        """
        num_packets = ensure_positive_int(num_packets, "num_packets")
        packet_rngs = child_rngs(rng, num_packets)
        factory = buffer_factory or (lambda _index: self.make_buffer())

        if payloads is None:
            payloads = [self.transmitter.random_payload(r) for r in packet_rngs]
        elif len(payloads) != num_packets:
            raise ValueError(f"expected {num_packets} payloads, got {len(payloads)}")
        packets = [self.transmitter.encode(p) for p in payloads]
        buffers = [factory(i) for i in range(num_packets)]
        for soft_buffer in buffers:
            soft_buffer.clear()

        transmissions_used = np.zeros(num_packets, dtype=np.int64)
        success = np.zeros(num_packets, dtype=bool)
        failure_history: List[List[bool]] = [[] for _ in range(num_packets)]
        final_decoded: List[Optional[np.ndarray]] = [None] * num_packets

        per_transmission = self.config.buffer_architecture == "per-transmission"
        active = list(range(num_packets))
        for transmission_index in range(self.config.max_transmissions):
            if not active:
                break
            redundancy_version = self.config.combining.redundancy_version(transmission_index)
            combined_rows = []
            for packet_index in active:
                generator = packet_rngs[packet_index]
                samples = self.transmitter.transmit(packets[packet_index], redundancy_version)
                received, impulse_response, noise_variance = self.channel.apply(
                    samples, snr_db, generator
                )
                soft_buffer = buffers[packet_index]
                if per_transmission:
                    channel_llrs = self.receiver.front_end(
                        received, impulse_response, noise_variance
                    )
                    soft_buffer.store_transmission(
                        transmission_index, channel_llrs, redundancy_version
                    )
                    combined = soft_buffer.combined_mother_llrs(
                        self.receiver.to_mother_domain
                    )
                else:
                    mother_llrs = self.receiver.process_transmission(
                        received, impulse_response, noise_variance, redundancy_version
                    )
                    combined = soft_buffer.combine_and_store(mother_llrs)
                combined_rows.append(combined)
                transmissions_used[packet_index] += 1

            decode_result = self.transmitter.turbo.decode_buffer(np.stack(combined_rows))
            still_active = []
            for row_index, packet_index in enumerate(active):
                decoded = decode_result.decoded_bits[row_index]
                crc_ok = self.config.crc.check(decoded)
                failure_history[packet_index].append(not crc_ok)
                final_decoded[packet_index] = decoded[: self.config.payload_bits]
                if crc_ok:
                    success[packet_index] = True
                else:
                    still_active.append(packet_index)
            active = still_active

        packet_results = [
            HarqPacketResult(
                success=bool(success[i]),
                num_transmissions=int(transmissions_used[i]),
                decoded_bits=final_decoded[i],
                failure_history=failure_history[i],
            )
            for i in range(num_packets)
        ]
        statistics = aggregate_results(packet_results, self.config.payload_bits)
        return LinkSimulationResult(
            snr_db=float(snr_db), statistics=statistics, packet_results=packet_results
        )

    # ------------------------------------------------------------------ #
    def snr_sweep(
        self,
        snr_points_db,
        num_packets: int,
        rng: RngLike = None,
        buffer_factory: Optional[BufferFactory] = None,
        payloads: Optional[List[np.ndarray]] = None,
    ) -> List[LinkSimulationResult]:
        """Run :meth:`simulate_packets` over a list of SNR points.

        When *payloads* is given, every SNR point transmits that same packet
        set (channel realisations and noise still vary per point).  An empty
        *snr_points_db* is a caller bug — it used to return ``[]`` silently —
        and now raises.
        """
        points = [float(s) for s in snr_points_db]
        if not points:
            raise ValueError("snr_points_db must not be empty")
        sweep_rngs = child_rngs(rng, len(points))
        results = []
        for point_rng, snr_db in zip(sweep_rngs, points):
            results.append(
                self.simulate_packets(
                    num_packets, snr_db, point_rng, buffer_factory, payloads=payloads
                )
            )
        return results
