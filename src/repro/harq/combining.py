"""HARQ soft-combining schemes.

Two standard schemes are modelled:

* **Chase combining** — every (re)transmission carries the same coded bits;
  the receiver adds the LLRs of matching positions, improving the effective
  SNR by roughly 3 dB per doubling of transmissions.
* **Incremental redundancy (IR)** — retransmissions carry different
  redundancy versions; LLR addition happens in the mother-code (virtual
  buffer) domain, so combining both improves SNR on repeated bits and lowers
  the effective code rate by filling in previously punctured bits.

Both reduce to the same primitive — element-wise addition in the mother-code
domain — because the rate matcher's :meth:`derate_match` already scatters a
transmission's LLRs onto mother-code positions.  They are kept as distinct
named entry points to make experiment configurations self-describing and to
allow scheme-specific bookkeeping.
"""

from __future__ import annotations

from enum import Enum

import numpy as np


class CombiningScheme(str, Enum):
    """Which redundancy-version schedule the HARQ transmitter follows."""

    #: All transmissions use redundancy version 0 (identical coded bits).
    CHASE = "chase"
    #: Transmissions cycle through redundancy versions 0, 1, 2, 3.
    INCREMENTAL_REDUNDANCY = "ir"

    def redundancy_version(self, transmission_index: int, num_versions: int = 4) -> int:
        """Redundancy version used for the given (0-based) transmission index."""
        if transmission_index < 0:
            raise ValueError("transmission_index must be non-negative")
        if self is CombiningScheme.CHASE:
            return 0
        return transmission_index % num_versions


def chase_combine(stored_llrs: np.ndarray, new_llrs: np.ndarray) -> np.ndarray:
    """Add the LLRs of a retransmission carrying identical coded bits."""
    stored = np.asarray(stored_llrs, dtype=np.float64)
    new = np.asarray(new_llrs, dtype=np.float64)
    if stored.shape != new.shape:
        raise ValueError(f"shape mismatch: {stored.shape} vs {new.shape}")
    return stored + new


def incremental_redundancy_combine(
    stored_mother_llrs: np.ndarray, new_mother_llrs: np.ndarray
) -> np.ndarray:
    """Combine in the mother-code domain (new positions fill in as erasure updates)."""
    stored = np.asarray(stored_mother_llrs, dtype=np.float64)
    new = np.asarray(new_mother_llrs, dtype=np.float64)
    if stored.shape != new.shape:
        raise ValueError(f"shape mismatch: {stored.shape} vs {new.shape}")
    return stored + new


def effective_snr_gain_db(num_transmissions: int) -> float:
    """Idealised chase-combining SNR gain after *num_transmissions* transmissions."""
    if num_transmissions <= 0:
        raise ValueError("num_transmissions must be positive")
    return float(10.0 * np.log10(num_transmissions))
