"""Stop-and-wait HARQ process controller.

Drives one packet's lifetime: initial transmission, CRC-based ACK/NACK,
soft combining of retransmissions in the LLR buffer, up to a configurable
maximum number of transmissions ("a maximum of three retransmissions per
data packet" in the paper's evaluation, i.e. four transmissions total).

The controller is deliberately agnostic of the PHY: it is handed a
``transmission_callback`` that produces the mother-code LLRs of one
(re)transmission, which keeps it reusable both by the full link simulator
(:mod:`repro.link.system`) and by lightweight tests that stub the PHY out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.harq.buffer import LlrSoftBuffer
from repro.harq.combining import CombiningScheme
from repro.utils.validation import ensure_positive_int

#: Signature of the PHY hook: (transmission_index, redundancy_version) -> mother LLRs.
TransmissionCallback = Callable[[int, int], np.ndarray]
#: Signature of the decoder hook: combined mother LLRs -> (decoded bits, crc_ok).
DecodeCallback = Callable[[np.ndarray], tuple]


@dataclass
class HarqPacketResult:
    """Outcome of one packet's HARQ lifetime.

    Attributes
    ----------
    success:
        Whether the CRC passed within the transmission budget.
    num_transmissions:
        Transmissions used (including the successful one).
    decoded_bits:
        Final decoder hard decisions (payload including CRC).
    failure_history:
        ``failure_history[t]`` is ``True`` when decoding still failed after
        transmission ``t + 1``.
    """

    success: bool
    num_transmissions: int
    decoded_bits: Optional[np.ndarray] = None
    failure_history: List[bool] = field(default_factory=list)


class HarqController:
    """Stop-and-wait HARQ for a single process.

    Parameters
    ----------
    buffer:
        LLR soft buffer (carries the unreliable-memory model).
    max_transmissions:
        Total transmission budget per packet (4 = initial + 3 retransmissions).
    combining:
        Chase or incremental-redundancy redundancy-version schedule.
    num_redundancy_versions:
        Size of the redundancy-version cycle for IR.
    """

    def __init__(
        self,
        buffer: LlrSoftBuffer,
        max_transmissions: int = 4,
        combining: CombiningScheme = CombiningScheme.INCREMENTAL_REDUNDANCY,
        num_redundancy_versions: int = 4,
    ) -> None:
        self.buffer = buffer
        self.max_transmissions = ensure_positive_int(max_transmissions, "max_transmissions")
        self.combining = CombiningScheme(combining)
        self.num_redundancy_versions = ensure_positive_int(
            num_redundancy_versions, "num_redundancy_versions"
        )

    # ------------------------------------------------------------------ #
    def run_packet(
        self,
        transmission_callback: TransmissionCallback,
        decode_callback: DecodeCallback,
    ) -> HarqPacketResult:
        """Run one packet through its HARQ lifetime.

        Parameters
        ----------
        transmission_callback:
            Produces the de-rate-matched (mother-domain) LLRs of transmission
            ``t`` given ``(t, redundancy_version)``; each call models an
            independent channel realisation.
        decode_callback:
            Decodes combined mother LLRs, returning ``(decoded_bits, crc_ok)``.
        """
        self.buffer.clear()
        failure_history: List[bool] = []
        decoded_bits: Optional[np.ndarray] = None

        for transmission_index in range(self.max_transmissions):
            redundancy_version = self.combining.redundancy_version(
                transmission_index, self.num_redundancy_versions
            )
            new_llrs = np.asarray(
                transmission_callback(transmission_index, redundancy_version),
                dtype=np.float64,
            )
            combined = self.buffer.combine_and_store(new_llrs)
            decoded_bits, crc_ok = decode_callback(combined)
            failure_history.append(not crc_ok)
            if crc_ok:
                return HarqPacketResult(
                    success=True,
                    num_transmissions=transmission_index + 1,
                    decoded_bits=decoded_bits,
                    failure_history=failure_history,
                )
        return HarqPacketResult(
            success=False,
            num_transmissions=self.max_transmissions,
            decoded_bits=decoded_bits,
            failure_history=failure_history,
        )
