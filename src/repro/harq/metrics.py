"""Throughput, BLER and retransmission statistics for HARQ simulations.

The paper's two headline system metrics are the *normalized throughput*
(Fig. 6a, 7, 9) and the *average number of transmissions* per data packet
(Fig. 6b), plus the per-transmission decoding-failure probability of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class HarqStatistics:
    """Aggregated statistics over a set of simulated HARQ packet lifetimes.

    Attributes
    ----------
    num_packets:
        Number of packets simulated.
    num_successful:
        Packets whose CRC eventually passed within the transmission budget.
    total_transmissions:
        Sum of transmissions used by all packets.
    info_bits_per_packet:
        Information payload per packet (CRC excluded).
    failures_per_transmission:
        ``failures_per_transmission[t]`` is the number of packets still
        undecoded after transmission ``t + 1`` (the Fig. 2 quantity), and
        ``attempts_per_transmission[t]`` the number of packets that attempted
        that transmission.
    """

    num_packets: int
    num_successful: int
    total_transmissions: int
    info_bits_per_packet: int
    attempts_per_transmission: np.ndarray
    failures_per_transmission: np.ndarray

    # ------------------------------------------------------------------ #
    @property
    def block_error_rate(self) -> float:
        """Residual BLER after the full HARQ budget."""
        if self.num_packets == 0:
            return 0.0
        return 1.0 - self.num_successful / self.num_packets

    @property
    def average_transmissions(self) -> float:
        """Average number of transmissions per packet (Fig. 6b)."""
        if self.num_packets == 0:
            return 0.0
        return self.total_transmissions / self.num_packets

    @property
    def normalized_throughput(self) -> float:
        """Successfully delivered information per transmission opportunity.

        Defined as (successful packets) / (total transmissions used), so a
        defect-free link that always succeeds on the first attempt scores 1.0
        and the value decreases both with retransmissions and with residual
        block errors — the "normalized throughput" the paper plots, with the
        0.53-at-18-dB requirement for 64QAM.
        """
        if self.total_transmissions == 0:
            return 0.0
        return self.num_successful / self.total_transmissions

    @property
    def throughput_bits_per_transmission(self) -> float:
        """Delivered information bits per transmission opportunity."""
        return self.normalized_throughput * self.info_bits_per_packet

    def failure_probability_per_transmission(self) -> np.ndarray:
        """Decoding-failure probability after each transmission (Fig. 2).

        Element ``t`` is P(packet still fails after transmission ``t+1``),
        conditioned on the packet having attempted that transmission.
        """
        attempts = self.attempts_per_transmission.astype(np.float64)
        failures = self.failures_per_transmission.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            probability = np.where(attempts > 0, failures / attempts, np.nan)
        return probability

    def as_dict(self) -> dict:
        """Plain-dict summary for tabulation / CSV export."""
        return {
            "num_packets": self.num_packets,
            "num_successful": self.num_successful,
            "block_error_rate": self.block_error_rate,
            "average_transmissions": self.average_transmissions,
            "normalized_throughput": self.normalized_throughput,
        }


def merge_statistics(parts: Sequence[HarqStatistics]) -> HarqStatistics:
    """Merge statistics computed over disjoint packet sets into one aggregate.

    This is the reduction the parallel runner uses: every shard aggregates
    its own packets with :func:`aggregate_results`, and the merged outcome is
    identical to aggregating all packets in one call (the counters are sums
    and the per-transmission arrays are padded to the longest budget seen).
    """
    parts = list(parts)
    if not parts:
        raise ValueError("parts must not be empty")
    info_bits = {p.info_bits_per_packet for p in parts}
    if len(info_bits) != 1:
        raise ValueError(f"cannot merge statistics with mixed info bits {sorted(info_bits)}")
    max_tx = max(p.attempts_per_transmission.size for p in parts)
    attempts = np.zeros(max_tx, dtype=np.int64)
    failures = np.zeros(max_tx, dtype=np.int64)
    for p in parts:
        attempts[: p.attempts_per_transmission.size] += p.attempts_per_transmission
        failures[: p.failures_per_transmission.size] += p.failures_per_transmission
    return HarqStatistics(
        num_packets=sum(p.num_packets for p in parts),
        num_successful=sum(p.num_successful for p in parts),
        total_transmissions=sum(p.total_transmissions for p in parts),
        info_bits_per_packet=parts[0].info_bits_per_packet,
        attempts_per_transmission=attempts,
        failures_per_transmission=failures,
    )


def aggregate_results(results: Sequence["HarqPacketResult"], info_bits_per_packet: int) -> HarqStatistics:
    """Build :class:`HarqStatistics` from individual packet results."""
    from repro.harq.controller import HarqPacketResult  # circular-safe import

    if not results:
        return HarqStatistics(
            num_packets=0,
            num_successful=0,
            total_transmissions=0,
            info_bits_per_packet=info_bits_per_packet,
            attempts_per_transmission=np.zeros(0, dtype=np.int64),
            failures_per_transmission=np.zeros(0, dtype=np.int64),
        )
    for result in results:
        if not isinstance(result, HarqPacketResult):
            raise TypeError(f"expected HarqPacketResult, got {type(result).__name__}")
    max_tx = max(r.num_transmissions for r in results)
    attempts = np.zeros(max_tx, dtype=np.int64)
    failures = np.zeros(max_tx, dtype=np.int64)
    for r in results:
        for t in range(r.num_transmissions):
            attempts[t] += 1
            # The packet counts as failed at transmission t if it had not yet
            # decoded successfully after that transmission.
            decoded_by_t = r.success and (t + 1 >= r.num_transmissions)
            failures[t] += int(not decoded_by_t)
    return HarqStatistics(
        num_packets=len(results),
        num_successful=sum(int(r.success) for r in results),
        total_transmissions=sum(r.num_transmissions for r in results),
        info_bits_per_packet=info_bits_per_packet,
        attempts_per_transmission=attempts,
        failures_per_transmission=failures,
    )
