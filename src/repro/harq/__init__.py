"""Hybrid automatic repeat request (HARQ) subsystem.

Implements the LLR soft buffer (backed by the unreliable-memory model), the
soft-combining schemes (chase and incremental redundancy), the stop-and-wait
HARQ process controller and the throughput/retransmission metrics the paper
evaluates.
"""

from repro.harq.buffer import LlrSoftBuffer, TransmissionSoftBuffer
from repro.harq.combining import CombiningScheme, chase_combine, incremental_redundancy_combine
from repro.harq.controller import HarqController, HarqPacketResult
from repro.harq.metrics import HarqStatistics, aggregate_results

__all__ = [
    "CombiningScheme",
    "HarqController",
    "HarqPacketResult",
    "HarqStatistics",
    "LlrSoftBuffer",
    "TransmissionSoftBuffer",
    "aggregate_results",
    "chase_combine",
    "incremental_redundancy_combine",
]
