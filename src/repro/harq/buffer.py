"""The HARQ LLR soft buffer backed by a (possibly faulty) memory array.

This is the component the whole paper revolves around: "The received data
packets are buffered in the LLR storage prior to decoding ... the HARQ
operation combines the retransmitted data packet with the (stored)
information (i.e., LLRs) of previous transmissions."

The buffer quantizes combined LLRs with the configured
:class:`~repro.phy.quantization.LlrQuantizer`, writes the resulting words
into a :class:`~repro.memory.array.MemoryArray`, and every read-back goes
through the array's fault map — so memory defects corrupt exactly the bits
the paper's fault simulator corrupts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.memory.array import MemoryArray
from repro.memory.ecc import HammingCode
from repro.memory.faults import FaultMap
from repro.phy.quantization import LlrQuantizer
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_positive_int


@dataclass
class LlrSoftBuffer:
    """Soft buffer holding the combined LLRs of one HARQ process.

    Parameters
    ----------
    num_llrs:
        Number of LLR words the buffer holds (the mother-code length for an
        incremental-redundancy virtual buffer).
    quantizer:
        Fixed-point format of the stored LLRs.
    fault_map:
        Fault locations of the underlying SRAM (defect-free by default).  The
        map must cover ``num_llrs`` words of ``quantizer.num_bits`` columns.
    ecc:
        Optional Hamming code protecting every stored word (conventional
        full-ECC alternative).
    soft_error_rate:
        Per-read transient upset probability per cell (composes with the
        persistent fault map; see :class:`~repro.memory.array.MemoryArray`).
    soft_error_rng:
        Seed or generator driving the transient upsets.
    """

    num_llrs: int
    quantizer: LlrQuantizer = field(default_factory=LlrQuantizer)
    fault_map: Optional[FaultMap] = None
    ecc: Optional[HammingCode] = None
    soft_error_rate: float = 0.0
    soft_error_rng: RngLike = None

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_llrs, "num_llrs")
        self._array = MemoryArray(
            num_words=self.num_llrs,
            bits_per_word=self.quantizer.num_bits,
            fault_map=self.fault_map,
            ecc=self.ecc,
            soft_error_rate=self.soft_error_rate,
            soft_error_rng=self.soft_error_rng,
        )
        self._occupied = False

    # ------------------------------------------------------------------ #
    @property
    def array(self) -> MemoryArray:
        """The underlying memory-array model."""
        return self._array

    @property
    def num_cells(self) -> int:
        """Number of bit cells the buffer occupies."""
        return self._array.num_cells

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no packet yet (start of a HARQ process)."""
        return not self._occupied

    # ------------------------------------------------------------------ #
    def store(self, llrs: np.ndarray) -> None:
        """Quantize and store *llrs* (length must equal ``num_llrs``)."""
        values = np.asarray(llrs, dtype=np.float64).reshape(-1)
        if values.size != self.num_llrs:
            raise ValueError(f"expected {self.num_llrs} LLRs, got {values.size}")
        words = self.quantizer.llrs_to_words(values)
        self._array.write_words(words)
        self._occupied = True

    def load(self) -> np.ndarray:
        """Read the stored LLRs back through the faulty memory.

        Returns zeros when the buffer is empty (first transmission).
        """
        if not self._occupied:
            return np.zeros(self.num_llrs, dtype=np.float64)
        words = self._array.read_words()
        return self.quantizer.words_to_llrs(words)

    def combine_and_store(self, new_llrs: np.ndarray) -> np.ndarray:
        """Add *new_llrs* to the stored soft values, store and return the result.

        The returned array is what the channel decoder sees: it is read back
        through the faulty memory *after* the combined value has been written,
        matching the hardware dataflow (decoder reads from the LLR SRAM).
        """
        combined = self.load() + np.asarray(new_llrs, dtype=np.float64).reshape(-1)
        self.store(combined)
        return self.load()

    def clear(self) -> None:
        """Flush the soft buffer (ACK received or process re-used)."""
        self._array.clear()
        self._occupied = False

    # ------------------------------------------------------------------ #
    def stored_bit_matrix(self) -> np.ndarray:
        """Raw stored data bits (before fault injection), for analyses."""
        return self._array._stored_bits.copy()

    def defect_rate(self) -> float:
        """Fraction of faulty cells in the underlying array."""
        return self._array.defect_rate


@dataclass
class TransmissionSoftBuffer:
    """Soft buffer storing each HARQ transmission's received LLRs separately.

    This models the alternative (and, for HSDPA terminals, common) buffer
    organisation in which the LLR memory is sized for the channel bits of up
    to ``num_slots`` transmissions and the soft combining is performed when
    the decoder reads the buffer: every stored transmission is read back
    (through the fault map), de-rate-matched with its redundancy version and
    summed in the mother-code domain.

    Compared with :class:`LlrSoftBuffer` (which stores the already-combined
    mother-domain values), a faulty cell here corrupts only *one*
    transmission's contribution, so retransmissions dilute the damage — the
    behaviour responsible for the paper's finding that the system still meets
    its throughput requirement at surprisingly high defect rates.

    Parameters
    ----------
    words_per_transmission:
        Stored LLR words per transmission (the channel-bit count).
    num_slots:
        Maximum number of transmissions retained (the HARQ budget).
    quantizer:
        Fixed-point format of the stored LLRs.
    fault_map:
        Die-wide fault map covering ``num_slots * words_per_transmission``
        words; it is partitioned row-wise among the slots.
    ecc:
        Optional Hamming code protecting every stored word.
    soft_error_rate:
        Per-read transient upset probability per cell (composes with the
        persistent fault map; see :class:`~repro.memory.array.MemoryArray`).
    soft_error_rng:
        Seed or generator driving the transient upsets; one stream is
        shared by all slots (reads visit slots in a fixed order).
    """

    words_per_transmission: int
    num_slots: int
    quantizer: LlrQuantizer = field(default_factory=LlrQuantizer)
    fault_map: Optional[FaultMap] = None
    ecc: Optional[HammingCode] = None
    soft_error_rate: float = 0.0
    soft_error_rng: RngLike = None

    def __post_init__(self) -> None:
        ensure_positive_int(self.words_per_transmission, "words_per_transmission")
        ensure_positive_int(self.num_slots, "num_slots")
        total_words = self.words_per_transmission * self.num_slots
        stored_bits = (
            self.ecc.codeword_bits if self.ecc is not None else self.quantizer.num_bits
        )
        if self.fault_map is None:
            die_map = FaultMap.empty(total_words, stored_bits)
        else:
            die_map = self.fault_map
        if die_map.num_words != total_words:
            raise ValueError(
                f"fault map covers {die_map.num_words} words, buffer needs {total_words}"
            )
        soft_rng = as_rng(self.soft_error_rng) if self.soft_error_rate > 0.0 else None
        self._slot_arrays = []
        for slot in range(self.num_slots):
            start = slot * self.words_per_transmission
            stop = start + self.words_per_transmission
            self._slot_arrays.append(
                MemoryArray(
                    num_words=self.words_per_transmission,
                    bits_per_word=self.quantizer.num_bits,
                    fault_map=die_map.row_slice(start, stop),
                    ecc=self.ecc,
                    soft_error_rate=self.soft_error_rate,
                    soft_error_rng=soft_rng,
                )
            )
        self._slot_redundancy_versions: list[Optional[int]] = [None] * self.num_slots
        self._occupied = [False] * self.num_slots

    # ------------------------------------------------------------------ #
    @property
    def num_words(self) -> int:
        """Total stored LLR words across all slots."""
        return self.words_per_transmission * self.num_slots

    @property
    def num_cells(self) -> int:
        """Total number of bit cells in the buffer."""
        return sum(array.num_cells for array in self._slot_arrays)

    @property
    def num_stored_transmissions(self) -> int:
        """How many transmissions are currently buffered."""
        return sum(self._occupied)

    def slot_occupied(self, slot: int) -> bool:
        """Whether *slot* currently holds a transmission."""
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot must be in [0, {self.num_slots})")
        return bool(self._occupied[slot])

    def slot_redundancy_version(self, slot: int) -> int:
        """Redundancy version stored in *slot* (which must be occupied)."""
        if not self._occupied[slot]:
            raise ValueError(f"slot {slot} is empty")
        return int(self._slot_redundancy_versions[slot])

    # ------------------------------------------------------------------ #
    def store_transmission(
        self, slot: int, llrs: np.ndarray, redundancy_version: int
    ) -> None:
        """Quantize and store one transmission's channel LLRs into *slot*."""
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot must be in [0, {self.num_slots})")
        values = np.asarray(llrs, dtype=np.float64).reshape(-1)
        if values.size != self.words_per_transmission:
            raise ValueError(
                f"expected {self.words_per_transmission} LLRs, got {values.size}"
            )
        words = self.quantizer.llrs_to_words(values)
        self._slot_arrays[slot].write_words(words)
        self._slot_redundancy_versions[slot] = int(redundancy_version)
        self._occupied[slot] = True

    def load_transmission(self, slot: int) -> tuple[np.ndarray, int]:
        """Read one stored transmission back (fault injection applied).

        Returns ``(llrs, redundancy_version)``.
        """
        if not self._occupied[slot]:
            raise ValueError(f"slot {slot} is empty")
        words = self._slot_arrays[slot].read_words()
        return self.quantizer.words_to_llrs(words), self._slot_redundancy_versions[slot]

    def combined_mother_llrs(self, derate_match) -> np.ndarray:
        """Sum all stored transmissions in the mother-code domain.

        Parameters
        ----------
        derate_match:
            Callable ``(channel_llrs, redundancy_version) -> mother_llrs``
            (typically the receiver's de-interleave + de-rate-match stage).
        """
        combined: Optional[np.ndarray] = None
        for slot in range(self.num_slots):
            if not self._occupied[slot]:
                continue
            llrs, redundancy_version = self.load_transmission(slot)
            mother = np.asarray(derate_match(llrs, redundancy_version), dtype=np.float64)
            combined = mother if combined is None else combined + mother
        if combined is None:
            raise ValueError("no transmissions stored yet")
        return combined

    def clear(self) -> None:
        """Flush all slots (ACK received or process re-used)."""
        for array in self._slot_arrays:
            array.clear()
        self._slot_redundancy_versions = [None] * self.num_slots
        self._occupied = [False] * self.num_slots

    def defect_rate(self) -> float:
        """Fraction of faulty cells across the whole buffer."""
        total_faults = sum(a.fault_map.num_faults for a in self._slot_arrays)
        return total_faults / self.num_cells
