"""Per-bit-position sensitivity analysis of the stored LLR words.

Section 6.1 motivates preferential storage with the observation that "not
all bits are of equal weight (e.g., the sign information is of higher
importance than the rest bits for the channel decoder)".  This module makes
that statement quantitative in two complementary ways:

* an **analytical** measure — the LLR perturbation a single bit flip causes
  at each position of the quantizer word (sign flips invert a potentially
  saturated LLR, magnitude-MSB flips shift it by half the full scale, LSB
  flips barely move it); and
* a **simulation** measure — the throughput obtained when all injected
  faults are concentrated in one bit position, using the same system-level
  fault simulator as every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.fault_simulator import SystemLevelFaultSimulator
from repro.core.results import SweepTable
from repro.memory.faults import FaultMap, FaultModel
from repro.phy.quantization import LlrQuantizer
from repro.utils.rng import RngLike, as_rng, child_rngs
from repro.utils.validation import ensure_positive_int


@dataclass
class BitSensitivity:
    """Sensitivity of one stored-bit position.

    Attributes
    ----------
    bit_position:
        0 is the stored MSB (the sign bit for sign-magnitude words).
    mean_llr_perturbation:
        Average absolute LLR change a flip of this bit causes (analytical,
        for LLRs uniformly distributed over the quantizer range).
    worst_llr_perturbation:
        Maximum absolute LLR change a flip can cause.
    throughput:
        Normalized throughput when all injected faults sit in this position
        (``nan`` unless the simulation-based analysis was run).
    """

    bit_position: int
    mean_llr_perturbation: float
    worst_llr_perturbation: float
    throughput: float = float("nan")


class BitSensitivityAnalysis:
    """Ranks LLR bit positions by how much their corruption hurts the system."""

    def __init__(self, quantizer: LlrQuantizer) -> None:
        self.quantizer = quantizer

    # ------------------------------------------------------------------ #
    # analytical part
    # ------------------------------------------------------------------ #
    def analytical_perturbations(self, num_samples: int = 4096) -> List[BitSensitivity]:
        """LLR perturbation statistics of a single flip at each bit position.

        A dense grid of representable LLR values is pushed through the
        quantizer, each stored bit is flipped in turn, and the decoded-back
        LLR difference is recorded.
        """
        ensure_positive_int(num_samples, "num_samples")
        quantizer = self.quantizer
        llrs = np.linspace(-quantizer.max_abs, quantizer.max_abs, num_samples)
        words = quantizer.llrs_to_words(llrs)
        bits = quantizer.words_to_bits(words)
        reference = quantizer.words_to_llrs(words)

        sensitivities: List[BitSensitivity] = []
        for position in range(quantizer.num_bits):
            flipped_bits = bits.copy()
            flipped_bits[:, position] ^= 1
            flipped_words = quantizer.bits_to_words(flipped_bits)
            flipped_llrs = quantizer.words_to_llrs(flipped_words)
            delta = np.abs(flipped_llrs - reference)
            sensitivities.append(
                BitSensitivity(
                    bit_position=position,
                    mean_llr_perturbation=float(delta.mean()),
                    worst_llr_perturbation=float(delta.max()),
                )
            )
        return sensitivities

    # ------------------------------------------------------------------ #
    # simulation part
    # ------------------------------------------------------------------ #
    def simulated_sensitivity(
        self,
        simulator: SystemLevelFaultSimulator,
        snr_db: float,
        faults_per_position: int,
        num_packets: int = 16,
        rng: RngLike = None,
        bit_positions: Sequence[int] | None = None,
    ) -> List[BitSensitivity]:
        """Throughput when faults are confined to a single bit position.

        Parameters
        ----------
        simulator:
            Fault simulator configured with the target link and (usually)
            :class:`~repro.core.protection.NoProtection`.
        snr_db:
            Operating SNR.
        faults_per_position:
            Number of faulty cells, all placed in the column under test.
        num_packets:
            Monte-Carlo packets per position.
        bit_positions:
            Positions to evaluate (all by default).
        """
        quantizer = self.quantizer
        positions = (
            list(bit_positions) if bit_positions is not None else list(range(quantizer.num_bits))
        )
        analytical = {s.bit_position: s for s in self.analytical_perturbations()}
        results: List[BitSensitivity] = []
        position_rngs = child_rngs(rng, len(positions))
        num_words = simulator.config.llr_storage_words

        for position, position_rng in zip(positions, position_rngs):
            generator = as_rng(position_rng)
            faults = min(faults_per_position, num_words)
            rows = generator.choice(num_words, size=faults, replace=False)
            mask = np.zeros((num_words, simulator.protection.stored_bits_per_word), dtype=bool)
            mask[rows, position] = True
            fault_map = FaultMap(
                num_words,
                simulator.protection.stored_bits_per_word,
                mask,
                FaultModel.BIT_FLIP,
            )

            def buffer_factory(_index: int, _fault_map=fault_map):
                return simulator.link.make_buffer(
                    fault_map=_fault_map, ecc=simulator.protection.ecc
                )

            outcome = simulator.link.simulate_packets(
                num_packets, snr_db, generator, buffer_factory=buffer_factory
            )
            base = analytical[position]
            results.append(
                BitSensitivity(
                    bit_position=position,
                    mean_llr_perturbation=base.mean_llr_perturbation,
                    worst_llr_perturbation=base.worst_llr_perturbation,
                    throughput=outcome.statistics.normalized_throughput,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def to_table(self, sensitivities: Sequence[BitSensitivity], title: str) -> SweepTable:
        """Render a sensitivity list as a :class:`SweepTable`."""
        table = SweepTable(
            title=title,
            columns=[
                "bit_position",
                "mean_llr_perturbation",
                "worst_llr_perturbation",
                "throughput",
            ],
        )
        for sensitivity in sensitivities:
            table.add_row(
                bit_position=sensitivity.bit_position,
                mean_llr_perturbation=sensitivity.mean_llr_perturbation,
                worst_llr_perturbation=sensitivity.worst_llr_perturbation,
                throughput=sensitivity.throughput,
            )
        return table

    def recommended_protection_depth(self, relative_threshold: float = 0.1) -> int:
        """Number of MSBs whose flip perturbation exceeds a fraction of the worst case.

        A cheap analytical heuristic for choosing the preferential-storage
        depth: protect every bit whose worst-case perturbation is at least
        ``relative_threshold`` times the sign bit's.
        """
        sensitivities = self.analytical_perturbations()
        worst = max(s.worst_llr_perturbation for s in sensitivities)
        count = sum(
            1 for s in sensitivities if s.worst_llr_perturbation >= relative_threshold * worst
        )
        return count
