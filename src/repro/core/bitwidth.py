"""Joint bit-width / defect analysis (paper Section 6.4, Fig. 9).

Traditionally the LLR quantization width is chosen to make quantization noise
negligible (more bits = better).  Under hardware defects the trade-off flips:
wider words mean a physically larger memory, hence *more faulty cells at the
same defect rate* and more opportunities for damaging MSB flips — so the
10-bit quantization ends up outperforming 11 and 12 bits at a 10 % defect
rate.  This module sweeps the LLR width with and without defects to
reproduce that crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.fault_simulator import SystemLevelFaultSimulator
from repro.core.protection import NoProtection
from repro.core.results import SweepTable
from repro.link.config import LinkConfig
from repro.utils.rng import RngLike, child_rngs
from repro.utils.validation import ensure_positive_int


@dataclass
class BitWidthPoint:
    """Result for one (LLR width, SNR) combination.

    Attributes
    ----------
    llr_bits:
        Quantizer word width.
    snr_db:
        Evaluated SNR point.
    defect_rate:
        Injected defect rate (fraction of the storage cells).
    storage_cells:
        Physical size of the LLR storage at this width.
    num_faults:
        Number of faulty cells injected (grows with the width at a fixed
        defect rate — the effect driving the paper's conclusion).
    throughput:
        Normalized throughput.
    average_transmissions:
        Average number of transmissions per packet.
    """

    llr_bits: int
    snr_db: float
    defect_rate: float
    storage_cells: int
    num_faults: int
    throughput: float
    average_transmissions: float


class BitWidthAnalysis:
    """Throughput versus LLR quantization width under memory defects.

    Parameters
    ----------
    base_config:
        Link operating mode; the analysis clones it with different
        ``llr_bits`` values.
    num_fault_maps:
        Dies per operating point.
    """

    def __init__(self, base_config: LinkConfig, *, num_fault_maps: int = 2) -> None:
        self.base_config = base_config
        self.num_fault_maps = ensure_positive_int(num_fault_maps, "num_fault_maps")

    # ------------------------------------------------------------------ #
    def _simulator_for_width(self, llr_bits: int) -> SystemLevelFaultSimulator:
        config = self.base_config.with_updates(llr_bits=llr_bits)
        protection = NoProtection(bits_per_word=llr_bits)
        return SystemLevelFaultSimulator(
            config, protection, num_fault_maps=self.num_fault_maps
        )

    def sweep(
        self,
        llr_widths: Sequence[int],
        snr_points_db: Sequence[float],
        defect_rate: float,
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> List[BitWidthPoint]:
        """Evaluate every (width, SNR) combination at one defect rate."""
        widths = [int(w) for w in llr_widths]
        width_rngs = child_rngs(rng, len(widths))
        points: List[BitWidthPoint] = []
        for width, width_rng in zip(widths, width_rngs):
            simulator = self._simulator_for_width(width)
            for outcome in simulator.snr_sweep(snr_points_db, defect_rate, num_packets, width_rng):
                points.append(
                    BitWidthPoint(
                        llr_bits=width,
                        snr_db=outcome.snr_db,
                        defect_rate=defect_rate,
                        storage_cells=simulator.total_cells,
                        num_faults=outcome.num_faults,
                        throughput=outcome.normalized_throughput,
                        average_transmissions=outcome.average_transmissions,
                    )
                )
        return points

    def sweep_table(
        self,
        llr_widths: Sequence[int],
        snr_points_db: Sequence[float],
        defect_rate: float,
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> SweepTable:
        """Same as :meth:`sweep`, rendered as a table (Fig. 9 data)."""
        table = SweepTable(
            title=f"Throughput vs LLR bit-width at {defect_rate:.0%} defects (no protection)",
            columns=[
                "llr_bits",
                "snr_db",
                "storage_cells",
                "num_faults",
                "throughput",
                "avg_transmissions",
            ],
            metadata={"defect_rate": defect_rate},
        )
        for point in self.sweep(llr_widths, snr_points_db, defect_rate, num_packets, rng):
            table.add_row(
                llr_bits=point.llr_bits,
                snr_db=point.snr_db,
                storage_cells=point.storage_cells,
                num_faults=point.num_faults,
                throughput=point.throughput,
                avg_transmissions=point.average_transmissions,
            )
        return table

    # ------------------------------------------------------------------ #
    def best_width_per_snr(self, points: Sequence[BitWidthPoint]) -> dict:
        """For each SNR, the width with the highest throughput (Fig. 9 reading)."""
        best: dict = {}
        for point in points:
            current = best.get(point.snr_db)
            if current is None or point.throughput > current.throughput:
                best[point.snr_db] = point
        return {snr: point.llr_bits for snr, point in best.items()}
