"""Result containers and tabulation helpers for experiments and benchmarks."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class SweepTable:
    """A small column-oriented table of experiment results.

    Used by every experiment driver to return its figure data in a uniform,
    easily printable / exportable form.

    Attributes
    ----------
    title:
        Table caption (usually the figure it reproduces).
    columns:
        Column names, in display order.
    rows:
        One dict per row, keyed by column name.
    metadata:
        Free-form experiment parameters (scale, seeds, configuration).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def add_row(self, **values: Any) -> None:
        """Append a row; values for unknown columns raise immediately."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """Extract one column as a list."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ #
    def to_markdown(self, float_format: str = "{:.4g}") -> str:
        """Render the table as GitHub-flavoured markdown."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in self.columns) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the table as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return buffer.getvalue()

    def print(self) -> None:
        """Print the markdown rendering (used by example scripts and benches)."""
        print(self.to_markdown())


def summarize_series(name: str, values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max summary of a numeric series (for quick reporting)."""
    data = [float(v) for v in values]
    if not data:
        return {"name": name, "mean": float("nan"), "min": float("nan"), "max": float("nan")}
    return {
        "name": name,
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
    }
