"""Result containers and tabulation helpers for experiments and benchmarks."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class SweepTable:
    """A small column-oriented table of experiment results.

    Used by every experiment driver to return its figure data in a uniform,
    easily printable / exportable form.

    Attributes
    ----------
    title:
        Table caption (usually the figure it reproduces).
    columns:
        Column names, in display order.
    rows:
        One dict per row, keyed by column name.
    metadata:
        Free-form experiment parameters (scale, seeds, configuration).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def add_row(self, **values: Any) -> None:
        """Append a row; values for unknown columns raise immediately."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """Extract one column as a list."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ #
    def to_markdown(self, float_format: str = "{:.4g}") -> str:
        """Render the table as GitHub-flavoured markdown."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in self.columns) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the table as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return buffer.getvalue()

    def print(self) -> None:
        """Print the markdown rendering (used by example scripts and benches)."""
        print(self.to_markdown())

    # ------------------------------------------------------------------ #
    # JSON (de)serialisation — the result-cache / golden-file format
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form with only JSON-representable values."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [{c: _jsonable(row.get(c)) for c in self.columns if c in row} for row in self.rows],
            "metadata": {k: _jsonable(v) for k, v in sorted(self.metadata.items())},
        }

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys, stable float repr).

        Two tables with bit-identical contents serialise to byte-identical
        text — the property the determinism tests and the golden-seed
        regression suite assert on.
        """
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "SweepTable":
        """Rebuild a table from :meth:`to_json_dict` output."""
        table = cls(
            title=payload["title"],
            columns=list(payload["columns"]),
            metadata=dict(payload.get("metadata", {})),
        )
        for row in payload.get("rows", []):
            table.add_row(**row)
        return table

    @classmethod
    def from_json(cls, text: str) -> "SweepTable":
        """Rebuild a table from :meth:`to_json` output."""
        return cls.from_json_dict(json.loads(text))


def _jsonable(value: Any):
    """Coerce numpy scalars (and sequences thereof) to plain JSON types."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def summarize_series(name: str, values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max summary of a numeric series (for quick reporting)."""
    data = [float(v) for v in values]
    if not data:
        return {"name": name, "mean": float("nan"), "min": float("nan"), "max": float("nan")}
    return {
        "name": name,
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
    }
