"""The system-level fault simulator (paper Section 4 / Fig. 4).

:class:`SystemLevelFaultSimulator` orchestrates the complete methodology:

1. take a link operating mode (:class:`~repro.link.config.LinkConfig`) and a
   storage :class:`~repro.core.protection.ProtectionScheme`;
2. for a chosen number of tolerated defects ``Nf`` (the die-acceptance
   criterion), generate random fault-location maps over the LLR-storage
   cells that are allowed to fail;
3. run Monte-Carlo link simulations (random payloads, random channel
   realisations, AWGN) with the fault maps installed in the HARQ soft
   buffer, corrupting stored LLR bits exactly as the paper prescribes; and
4. report the system-level metrics — normalized throughput, average number
   of transmissions, residual BLER — together with the yield implications of
   accepting ``Nf`` defects at a given cell failure probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.montecarlo import mean_confidence_interval
from repro.core.protection import NoProtection, ProtectionScheme
from repro.core.results import SweepTable
from repro.harq.metrics import HarqStatistics, aggregate_results
from repro.link.config import LinkConfig
from repro.link.system import HspaLikeLink
from repro.memory.faults import FaultModel, FaultModelSpec
from repro.memory.yield_model import acceptance_yield
from repro.utils.rng import RngLike, as_rng, child_rngs
from repro.utils.validation import ensure_non_negative_int, ensure_positive_int


@dataclass
class FaultSimulationPoint:
    """Result of evaluating one (SNR, defect, protection) operating point.

    Attributes
    ----------
    snr_db:
        Receive SNR of the point.
    num_faults:
        Number of faulty cells injected per die (the acceptance criterion).
    defect_rate:
        ``num_faults`` over the number of fallible LLR-storage cells.
    statistics:
        Aggregate HARQ statistics over all packets and fault maps.
    per_map_throughput:
        Normalized throughput of each individual fault map (die), exposing
        die-to-die variation.
    protection_name:
        Name of the evaluated protection scheme.
    """

    snr_db: float
    num_faults: int
    defect_rate: float
    statistics: HarqStatistics
    per_map_throughput: List[float] = field(default_factory=list)
    protection_name: str = "unprotected-6T"

    @property
    def normalized_throughput(self) -> float:
        """Normalized throughput aggregated over all simulated dies."""
        return self.statistics.normalized_throughput

    @property
    def average_transmissions(self) -> float:
        """Average number of transmissions per packet."""
        return self.statistics.average_transmissions

    @property
    def block_error_rate(self) -> float:
        """Residual BLER after the HARQ budget."""
        return self.statistics.block_error_rate


class SystemLevelFaultSimulator:
    """Joint circuit/system simulator for the HARQ LLR storage.

    Parameters
    ----------
    config:
        Link operating mode (modulation, code rate, LLR width, HARQ budget).
    protection:
        Storage protection scheme; defaults to the unprotected all-6T array.
    num_fault_maps:
        Number of independent fault-location maps (dies) evaluated per
        operating point.  Packets are split evenly across the maps.
    use_rake:
        Use the RAKE baseline instead of the MMSE equalizer.
    fault_model:
        Read-out semantics and placement of the injected persistent faults
        (a :class:`~repro.memory.faults.FaultModel`, a
        :class:`~repro.memory.faults.FaultModelSpec` or a token such as
        ``"stuck-at-0"`` / ``"clustered:<r>"``).
    soft_error_rate:
        Per-read transient upset probability per cell, composing with the
        persistent fault maps (0.0 disables the mechanism and consumes no
        randomness).
    """

    def __init__(
        self,
        config: LinkConfig,
        protection: Optional[ProtectionScheme] = None,
        *,
        num_fault_maps: int = 2,
        use_rake: bool = False,
        fault_model: "FaultModel | str" = FaultModel.BIT_FLIP,
        soft_error_rate: float = 0.0,
    ) -> None:
        self.config = config
        self.protection = protection or NoProtection(bits_per_word=config.llr_bits)
        if self.protection.bits_per_word != config.llr_bits:
            raise ValueError(
                f"protection word width {self.protection.bits_per_word} does not match "
                f"the link's llr_bits {config.llr_bits}"
            )
        self.num_fault_maps = ensure_positive_int(num_fault_maps, "num_fault_maps")
        self.fault_model = FaultModelSpec.parse(fault_model)
        if soft_error_rate < 0 or soft_error_rate > 1:
            raise ValueError("soft_error_rate must be a probability")
        self.soft_error_rate = float(soft_error_rate)
        self.link = HspaLikeLink(config, use_rake=use_rake)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def fallible_cells(self) -> int:
        """Number of LLR-storage cells that the protection scheme leaves fallible."""
        return self.protection.unprotected_cells(self.config.llr_storage_words)

    @property
    def total_cells(self) -> int:
        """Total number of LLR-storage cells (fallible + protected + parity)."""
        return self.config.llr_storage_words * self.protection.stored_bits_per_word

    def faults_for_defect_rate(self, defect_rate: float) -> int:
        """Convert a defect rate (fraction of fallible cells) into a fault count."""
        if defect_rate < 0:
            raise ValueError("defect_rate must be non-negative")
        return int(round(defect_rate * self.fallible_cells))

    def yield_for_acceptance(self, cell_failure_probability: float, num_faults: int) -> float:
        """Yield (Eq. 2) when dies with at most *num_faults* fallible-cell defects pass."""
        return acceptance_yield(cell_failure_probability, self.fallible_cells, num_faults)

    # ------------------------------------------------------------------ #
    # core evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        snr_db: float,
        num_faults: int = 0,
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> FaultSimulationPoint:
        """Evaluate one operating point.

        Parameters
        ----------
        snr_db:
            Receive SNR.
        num_faults:
            Exact number of faulty cells per die (``Nf`` of the acceptance
            criterion), placed uniformly at random in the fallible cells.
        num_packets:
            Total packets simulated (split across the fault maps).
        rng:
            Seed or generator controlling payloads, channels and fault maps.
        """
        num_faults = ensure_non_negative_int(num_faults, "num_faults")
        num_packets = ensure_positive_int(num_packets, "num_packets")
        generator = as_rng(rng)
        map_rngs = child_rngs(generator, self.num_fault_maps)
        packets_per_map = max(1, num_packets // self.num_fault_maps)

        all_results = []
        per_map_throughput: List[float] = []
        for map_rng in map_rngs:
            fault_map = self.protection.make_fault_map(
                self.config.llr_storage_words,
                num_faults,
                rng=map_rng,
                fault_model=self.fault_model,
            )
            ecc = self.protection.ecc
            # Transient upsets draw from their own child stream; when the
            # mechanism is off, nothing is drawn and the historical streams
            # are untouched.
            soft_rng = (
                np.random.default_rng(int(map_rng.integers(0, 2**63 - 1)))
                if self.soft_error_rate > 0.0
                else None
            )

            def buffer_factory(
                _index: int, _fault_map=fault_map, _ecc=ecc, _soft_rng=soft_rng
            ):
                return self.link.make_buffer(
                    fault_map=_fault_map,
                    ecc=_ecc,
                    soft_error_rate=self.soft_error_rate,
                    soft_error_rng=_soft_rng,
                )

            result = self.link.simulate_packets(
                packets_per_map, snr_db, map_rng, buffer_factory=buffer_factory
            )
            all_results.extend(result.packet_results)
            per_map_throughput.append(result.statistics.normalized_throughput)

        statistics = aggregate_results(all_results, self.config.payload_bits)
        defect_rate = num_faults / self.fallible_cells if self.fallible_cells else 0.0
        return FaultSimulationPoint(
            snr_db=float(snr_db),
            num_faults=num_faults,
            defect_rate=defect_rate,
            statistics=statistics,
            per_map_throughput=per_map_throughput,
            protection_name=self.protection.name,
        )

    def evaluate_defect_rate(
        self,
        snr_db: float,
        defect_rate: float,
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> FaultSimulationPoint:
        """Like :meth:`evaluate` but specifying the defect rate instead of a count."""
        return self.evaluate(
            snr_db, self.faults_for_defect_rate(defect_rate), num_packets, rng
        )

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #
    def snr_sweep(
        self,
        snr_points_db: Sequence[float],
        defect_rate: float,
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> List[FaultSimulationPoint]:
        """Evaluate a list of SNR points at a fixed defect rate."""
        points = [float(s) for s in snr_points_db]
        rngs = child_rngs(rng, len(points))
        return [
            self.evaluate_defect_rate(snr, defect_rate, num_packets, point_rng)
            for snr, point_rng in zip(points, rngs)
        ]

    def defect_sweep(
        self,
        snr_db: float,
        defect_rates: Sequence[float],
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> List[FaultSimulationPoint]:
        """Evaluate a list of defect rates at a fixed SNR."""
        rates = [float(r) for r in defect_rates]
        rngs = child_rngs(rng, len(rates))
        return [
            self.evaluate_defect_rate(snr_db, rate, num_packets, point_rng)
            for rate, point_rng in zip(rates, rngs)
        ]

    def throughput_table(
        self,
        snr_points_db: Sequence[float],
        defect_rates: Sequence[float],
        num_packets: int = 32,
        rng: RngLike = None,
        title: str = "Normalized throughput vs SNR and defect rate",
    ) -> SweepTable:
        """Full (SNR x defect-rate) sweep rendered as a :class:`SweepTable`."""
        table = SweepTable(
            title=title,
            columns=["defect_rate", "snr_db", "throughput", "avg_transmissions", "bler"],
            metadata={
                "protection": self.protection.name,
                "config": self.config.describe(),
                "num_packets": num_packets,
                "num_fault_maps": self.num_fault_maps,
            },
        )
        sweep_rngs = child_rngs(rng, len(list(defect_rates)))
        for rate_rng, defect_rate in zip(sweep_rngs, defect_rates):
            for point in self.snr_sweep(snr_points_db, float(defect_rate), num_packets, rate_rng):
                table.add_row(
                    defect_rate=float(defect_rate),
                    snr_db=point.snr_db,
                    throughput=point.normalized_throughput,
                    avg_transmissions=point.average_transmissions,
                    bler=point.block_error_rate,
                )
        return table

    # ------------------------------------------------------------------ #
    def throughput_with_confidence(
        self,
        snr_db: float,
        defect_rate: float,
        num_packets: int = 32,
        num_repeats: int = 4,
        rng: RngLike = None,
    ):
        """Repeat an operating point and return a confidence interval on throughput."""
        ensure_positive_int(num_repeats, "num_repeats")
        rngs = child_rngs(rng, num_repeats)
        throughputs = [
            self.evaluate_defect_rate(snr_db, defect_rate, num_packets, r).normalized_throughput
            for r in rngs
        ]
        return mean_confidence_interval(throughputs)
