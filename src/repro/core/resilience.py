"""Resilience-limit exploration (paper Section 5).

Answers the question the paper poses after Fig. 6: *up to how many defects
can the LLR storage tolerate before the system no longer meets its
throughput requirement?*  The analysis sweeps the number of tolerated
defects ``Nf`` at fixed SNR, finds the largest defect rate that keeps the
normalized throughput above a requirement (0.53 for the 64QAM mode at its
reference SNR), and translates that defect budget into yield and minimum
supply voltage via the memory models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.fault_simulator import FaultSimulationPoint, SystemLevelFaultSimulator
from repro.core.results import SweepTable
from repro.memory.cells import BitCellType, CELL_6T
from repro.memory.yield_model import acceptance_yield, max_cell_failure_probability
from repro.utils.rng import RngLike, child_rngs


@dataclass
class ResilienceLimit:
    """The resilience limit found for one (SNR, requirement) combination.

    Attributes
    ----------
    snr_db:
        SNR at which the limit was determined.
    throughput_requirement:
        Normalized-throughput requirement that must be met.
    max_defect_rate:
        Largest evaluated defect rate still meeting the requirement
        (0.0 when even the defect-free system misses it).
    max_faults:
        The corresponding number of faulty cells.
    throughput_at_limit:
        Measured normalized throughput at that defect rate.
    admissible_cell_failure_probability:
        Largest ``Pcell`` for which accepting ``max_faults`` defects still
        reaches the yield target.
    min_supply_voltage:
        Lowest supply voltage (for the baseline cell) whose ``Pcell`` stays
        below that admissible value.
    yield_target:
        Yield target used for the voltage translation.
    """

    snr_db: float
    throughput_requirement: float
    max_defect_rate: float
    max_faults: int
    throughput_at_limit: float
    admissible_cell_failure_probability: float
    min_supply_voltage: float
    yield_target: float


class ResilienceAnalysis:
    """Throughput-versus-defect-rate study on top of the fault simulator.

    Parameters
    ----------
    simulator:
        A configured :class:`~repro.core.fault_simulator.SystemLevelFaultSimulator`.
    """

    def __init__(self, simulator: SystemLevelFaultSimulator) -> None:
        self.simulator = simulator

    # ------------------------------------------------------------------ #
    def defect_rate_sweep(
        self,
        snr_db: float,
        defect_rates: Sequence[float],
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> List[FaultSimulationPoint]:
        """Throughput at a fixed SNR for each defect rate."""
        return self.simulator.defect_sweep(snr_db, defect_rates, num_packets, rng)

    def sweep_table(
        self,
        snr_db: float,
        defect_rates: Sequence[float],
        num_packets: int = 32,
        rng: RngLike = None,
        cell: BitCellType = CELL_6T,
        yield_target: float = 0.95,
    ) -> SweepTable:
        """Defect-rate sweep with yield and voltage columns attached."""
        table = SweepTable(
            title=f"Resilience at {snr_db:.1f} dB ({self.simulator.protection.name})",
            columns=[
                "defect_rate",
                "num_faults",
                "throughput",
                "avg_transmissions",
                "bler",
                "admissible_pcell",
                "min_vdd",
            ],
            metadata={"snr_db": snr_db, "yield_target": yield_target},
        )
        points = self.defect_rate_sweep(snr_db, defect_rates, num_packets, rng)
        for point in points:
            admissible = max_cell_failure_probability(
                max(self.simulator.fallible_cells, 1), point.num_faults, yield_target
            )
            min_vdd = (
                cell.min_voltage_for_failure_probability(admissible)
                if 0.0 < admissible < 1.0
                else cell.zero_margin_voltage
            )
            table.add_row(
                defect_rate=point.defect_rate,
                num_faults=point.num_faults,
                throughput=point.normalized_throughput,
                avg_transmissions=point.average_transmissions,
                bler=point.block_error_rate,
                admissible_pcell=admissible,
                min_vdd=min_vdd,
            )
        return table

    # ------------------------------------------------------------------ #
    def find_limit(
        self,
        snr_db: float,
        defect_rates: Sequence[float],
        throughput_requirement: float,
        num_packets: int = 32,
        rng: RngLike = None,
        yield_target: float = 0.95,
        cell: BitCellType = CELL_6T,
    ) -> ResilienceLimit:
        """Largest evaluated defect rate still meeting the throughput requirement."""
        rates = sorted(float(r) for r in defect_rates)
        rngs = child_rngs(rng, len(rates))
        best_rate = 0.0
        best_faults = 0
        best_throughput = 0.0
        for rate, point_rng in zip(rates, rngs):
            point = self.simulator.evaluate_defect_rate(snr_db, rate, num_packets, point_rng)
            if point.normalized_throughput >= throughput_requirement:
                best_rate = rate
                best_faults = point.num_faults
                best_throughput = point.normalized_throughput
            else:
                break
        admissible = max_cell_failure_probability(
            max(self.simulator.fallible_cells, 1), best_faults, yield_target
        )
        if 0.0 < admissible < 1.0:
            min_vdd = cell.min_voltage_for_failure_probability(admissible)
        else:
            min_vdd = cell.zero_margin_voltage
        return ResilienceLimit(
            snr_db=float(snr_db),
            throughput_requirement=float(throughput_requirement),
            max_defect_rate=best_rate,
            max_faults=best_faults,
            throughput_at_limit=best_throughput,
            admissible_cell_failure_probability=admissible,
            min_supply_voltage=min_vdd,
            yield_target=float(yield_target),
        )

    # ------------------------------------------------------------------ #
    def yield_improvement(
        self,
        cell_failure_probability: float,
        accepted_defect_rate: float,
    ) -> dict:
        """Yield with and without accepting defects, for the simulator's storage."""
        cells = self.simulator.fallible_cells
        accepted_faults = self.simulator.faults_for_defect_rate(accepted_defect_rate)
        strict = acceptance_yield(cell_failure_probability, cells, 0)
        relaxed = acceptance_yield(cell_failure_probability, cells, accepted_faults)
        return {
            "cell_failure_probability": cell_failure_probability,
            "array_cells": cells,
            "accepted_faults": accepted_faults,
            "yield_zero_defects": strict,
            "yield_accepting_defects": relaxed,
            "yield_gain": relaxed - strict,
        }
