"""Monte-Carlo bookkeeping: trial scheduling and confidence intervals.

The paper's Section 4 stresses that "meaningful throughput evaluation
requires a vast amount of Monte-Carlo simulations averaging over various
wireless channel conditions"; this module centralises the statistics side of
that averaging so that experiment drivers can report uncertainty alongside
their point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Sequence

import numpy as np
from scipy import stats

from repro.utils.validation import ensure_positive_int


@dataclass(frozen=True)
class EstimateWithConfidence:
    """A Monte-Carlo estimate with a symmetric confidence interval.

    Attributes
    ----------
    value:
        Point estimate (sample mean).
    half_width:
        Half-width of the confidence interval.
    confidence:
        Confidence level of the interval (e.g. 0.95).
    num_samples:
        Number of independent samples behind the estimate.
    """

    value: float
    half_width: float
    confidence: float
    num_samples: int

    @property
    def lower(self) -> float:
        """Lower confidence bound."""
        return self.value - self.half_width

    @property
    def upper(self) -> float:
        """Upper confidence bound."""
        return self.value + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.4f} ± {self.half_width:.4f} ({self.confidence:.0%})"


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> EstimateWithConfidence:
    """Student-t confidence interval of a sample mean."""
    data = np.asarray(list(samples), dtype=np.float64)
    n = data.size
    if n == 0:
        raise ValueError("samples must not be empty")
    mean = float(data.mean())
    if n == 1:
        return EstimateWithConfidence(mean, float("inf"), confidence, 1)
    sem = float(data.std(ddof=1) / sqrt(n))
    t_value = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return EstimateWithConfidence(mean, t_value * sem, confidence, n)


def proportion_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> EstimateWithConfidence:
    """Wilson-score confidence interval of a success probability (e.g. BLER)."""
    ensure_positive_int(trials, "trials")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be between 0 and trials")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denominator = 1.0 + z**2 / trials
    centre = (p_hat + z**2 / (2 * trials)) / denominator
    half_width = (
        z * sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2)) / denominator
    )
    # The Wilson bounds lie inside [0, 1] in exact arithmetic, but the
    # floating-point centre ± half-width can leak slightly outside (e.g. a
    # marginally negative lower bound at successes=0).  Clamp the bounds and
    # re-centre so the reported interval is always a valid probability range.
    lower = min(max(centre - half_width, 0.0), 1.0)
    upper = min(max(centre + half_width, 0.0), 1.0)
    return EstimateWithConfidence(
        (lower + upper) / 2.0, (upper - lower) / 2.0, confidence, trials
    )


def required_packets_for_bler(target_bler: float, relative_error: float = 0.3) -> int:
    """Rule-of-thumb packet count to estimate a BLER with given relative error.

    For a binomial proportion, ``var = p(1-p)/n``; requiring the standard
    error to be ``relative_error * p`` gives ``n ≈ (1-p) / (p * rel^2)``.
    """
    if not 0.0 < target_bler < 1.0:
        raise ValueError("target_bler must be in (0, 1)")
    if not relative_error > 0:  # rejects NaN as well as non-positive values
        raise ValueError("relative_error must be positive")
    return int(np.ceil((1.0 - target_bler) / (target_bler * relative_error**2)))
