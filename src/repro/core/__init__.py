"""The paper's primary contribution: the system-level fault-simulation
methodology and the analyses built on it.

The subpackage mirrors the flow of the paper's Fig. 4:

1. :mod:`repro.core.protection` — how the LLR storage is implemented
   (unprotected 6T, all-8T, full ECC, or the proposed preferential MSB
   protection), which determines per-bit-position failure probabilities,
   fault-map shapes and area/power cost.
2. :mod:`repro.core.fault_simulator` — the
   :class:`~repro.core.fault_simulator.SystemLevelFaultSimulator` that
   injects fault maps into the HARQ LLR buffer of the link simulator and
   measures throughput / retransmissions over Monte-Carlo channel draws.
3. :mod:`repro.core.resilience`, :mod:`repro.core.sensitivity`,
   :mod:`repro.core.efficiency`, :mod:`repro.core.bitwidth`,
   :mod:`repro.core.voltage` — the Section 5/6 analyses (resilience limits,
   bit-position sensitivity, protection efficiency, joint bit-width/defect
   optimisation, voltage scaling and power savings).
"""

from repro.core.fault_simulator import FaultSimulationPoint, SystemLevelFaultSimulator
from repro.core.protection import (
    EccProtection,
    FullCellProtection,
    MsbProtection,
    NoProtection,
    ProtectionScheme,
)
from repro.core.resilience import ResilienceAnalysis, ResilienceLimit
from repro.core.sensitivity import BitSensitivityAnalysis
from repro.core.efficiency import ProtectionEfficiencyAnalysis
from repro.core.bitwidth import BitWidthAnalysis
from repro.core.voltage import VoltageScalingAnalysis
from repro.core.results import SweepTable

__all__ = [
    "BitSensitivityAnalysis",
    "BitWidthAnalysis",
    "EccProtection",
    "FaultSimulationPoint",
    "FullCellProtection",
    "MsbProtection",
    "NoProtection",
    "ProtectionEfficiencyAnalysis",
    "ProtectionScheme",
    "ResilienceAnalysis",
    "ResilienceLimit",
    "SweepTable",
    "SystemLevelFaultSimulator",
    "VoltageScalingAnalysis",
]
