"""Voltage-scaling exploration: defects <-> yield <-> supply voltage <-> power.

Ties the circuit-level models to the system-level resilience results to
answer the paper's Sections 5/6.3 questions:

* given a yield target and a number of defects the *system* can tolerate,
  how far can the supply voltage of the HARQ LLR memory be lowered?
* what does that save in power, for the plain 6T array and for the hybrid
  (preferentially protected) array?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.protection import MsbProtection, NoProtection, ProtectionScheme
from repro.core.results import SweepTable
from repro.memory.cells import BitCellType, CELL_6T, CELL_8T
from repro.memory.power import PowerModel
from repro.memory.yield_model import acceptance_yield, min_defects_for_yield
from repro.utils.validation import ensure_positive_int


@dataclass
class VoltageOperatingPoint:
    """Circuit-level consequences of operating the LLR memory at one voltage.

    Attributes
    ----------
    vdd:
        Supply voltage.
    cell_failure_probability:
        Baseline (6T) cell failure probability at that voltage.
    expected_defects:
        Mean number of faulty cells in the fallible part of the array.
    defects_for_yield:
        Number of defects that must be tolerated to reach the yield target
        (Eq. 2 inverted).
    defect_rate_for_yield:
        The same, as a fraction of the fallible cells.
    yield_zero_defects:
        Conventional Eq. (1) yield at this voltage.
    relative_power:
        Array power relative to the nominal-voltage all-6T array.
    """

    vdd: float
    cell_failure_probability: float
    expected_defects: float
    defects_for_yield: int
    defect_rate_for_yield: float
    yield_zero_defects: float
    relative_power: float


class VoltageScalingAnalysis:
    """Voltage sweep for a given storage size and protection scheme.

    Parameters
    ----------
    num_storage_words:
        LLR words in the HARQ buffer (e.g. ``LinkConfig.llr_storage_words``).
    protection:
        Storage protection scheme (determines which cells can fail and the
        power blend of cell types).
    yield_target:
        Manufacturing yield target (95 % in the paper's example).
    power_model:
        Voltage-to-power model.
    """

    def __init__(
        self,
        num_storage_words: int,
        protection: Optional[ProtectionScheme] = None,
        *,
        yield_target: float = 0.95,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.num_storage_words = ensure_positive_int(num_storage_words, "num_storage_words")
        self.protection = protection or NoProtection()
        self.yield_target = float(yield_target)
        self.power_model = power_model or PowerModel()

    # ------------------------------------------------------------------ #
    @property
    def fallible_cells(self) -> int:
        """Cells of the array that can fail under the protection scheme."""
        return self.protection.unprotected_cells(self.num_storage_words)

    def operating_point(self, vdd: float) -> VoltageOperatingPoint:
        """Evaluate all circuit-level quantities at one supply voltage."""
        baseline_cell = self.protection.baseline_cell
        pcell = baseline_cell.failure_probability(vdd)
        cells = max(self.fallible_cells, 1)
        defects_needed = min_defects_for_yield(pcell, cells, self.yield_target)
        return VoltageOperatingPoint(
            vdd=float(vdd),
            cell_failure_probability=pcell,
            expected_defects=pcell * cells,
            defects_for_yield=defects_needed,
            defect_rate_for_yield=defects_needed / cells,
            yield_zero_defects=acceptance_yield(pcell, cells, 0),
            relative_power=self.protection.relative_power(vdd, self.power_model),
        )

    def voltage_sweep(self, voltages: Sequence[float]) -> List[VoltageOperatingPoint]:
        """Evaluate a list of supply voltages."""
        return [self.operating_point(float(v)) for v in voltages]

    def sweep_table(self, voltages: Sequence[float]) -> SweepTable:
        """Voltage sweep rendered as a table."""
        table = SweepTable(
            title=f"Voltage scaling ({self.protection.name}, yield target {self.yield_target:.0%})",
            columns=[
                "vdd",
                "pcell",
                "expected_defects",
                "defects_for_yield",
                "defect_rate_for_yield",
                "yield_zero_defects",
                "relative_power",
            ],
            metadata={"fallible_cells": self.fallible_cells},
        )
        for point in self.voltage_sweep(voltages):
            table.add_row(
                vdd=point.vdd,
                pcell=point.cell_failure_probability,
                expected_defects=point.expected_defects,
                defects_for_yield=point.defects_for_yield,
                defect_rate_for_yield=point.defect_rate_for_yield,
                yield_zero_defects=point.yield_zero_defects,
                relative_power=point.relative_power,
            )
        return table

    # ------------------------------------------------------------------ #
    def min_voltage_for_defect_budget(
        self,
        tolerable_defect_rate: float,
        voltages: Optional[Sequence[float]] = None,
    ) -> VoltageOperatingPoint:
        """Lowest voltage whose yield-target defect requirement fits the budget.

        Parameters
        ----------
        tolerable_defect_rate:
            Largest defect rate (fraction of fallible cells) the *system* can
            tolerate — the output of the resilience analysis.
        voltages:
            Candidate voltages, highest to lowest (default 1.0 V down to
            0.5 V in 25 mV steps).
        """
        candidates = (
            np.asarray(voltages, dtype=np.float64)
            if voltages is not None
            else np.arange(1.0, 0.499, -0.025)
        )
        best: Optional[VoltageOperatingPoint] = None
        for vdd in candidates:
            point = self.operating_point(float(vdd))
            if point.defect_rate_for_yield <= tolerable_defect_rate:
                best = point
            else:
                break
        if best is None:
            # Even the highest candidate voltage does not fit the budget.
            return self.operating_point(float(candidates[0]))
        return best

    def power_saving_versus_nominal(self, vdd: float) -> float:
        """Fractional power saving of running the protected array at *vdd*.

        The reference is the unprotected all-6T array at the nominal voltage,
        the same iso-area style of comparison the paper's "30 % power
        savings" figure uses.
        """
        reference = NoProtection(
            bits_per_word=self.protection.bits_per_word,
            baseline_cell=CELL_6T,
            robust_cell=CELL_8T,
        ).relative_power(self.power_model.nominal_vdd, self.power_model)
        actual = self.protection.relative_power(vdd, self.power_model)
        return 1.0 - actual / reference


def compare_protection_power(
    num_storage_words: int,
    tolerable_defect_rate_unprotected: float,
    tolerable_defect_rate_protected: float,
    protected_msbs: int = 4,
    llr_bits: int = 10,
    yield_target: float = 0.95,
) -> dict:
    """Side-by-side voltage/power comparison of unprotected vs MSB-protected storage.

    Reproduces the Section 6.3 argument: the protected array tolerates a much
    higher defect rate in its 6T cells, so it can run at a lower voltage for
    the same yield target, which translates into power savings.
    """
    unprotected = VoltageScalingAnalysis(
        num_storage_words, NoProtection(bits_per_word=llr_bits), yield_target=yield_target
    )
    protected = VoltageScalingAnalysis(
        num_storage_words,
        MsbProtection(bits_per_word=llr_bits, protected_msbs=protected_msbs),
        yield_target=yield_target,
    )
    unprotected_point = unprotected.min_voltage_for_defect_budget(
        tolerable_defect_rate_unprotected
    )
    protected_point = protected.min_voltage_for_defect_budget(tolerable_defect_rate_protected)
    return {
        "unprotected_min_vdd": unprotected_point.vdd,
        "protected_min_vdd": protected_point.vdd,
        "unprotected_power_saving": unprotected.power_saving_versus_nominal(
            unprotected_point.vdd
        ),
        "protected_power_saving": protected.power_saving_versus_nominal(protected_point.vdd),
        "unprotected_defect_rate_for_yield": unprotected_point.defect_rate_for_yield,
        "protected_defect_rate_for_yield": protected_point.defect_rate_for_yield,
    }
