"""Protection-efficiency analysis (paper Fig. 8 and Section 6.2).

For a fixed defect rate in the unprotected cells, the analysis sweeps the
number of protected MSBs, measures the throughput recovered, and divides the
throughput gain by the area overhead of the hybrid array — reproducing the
paper's conclusion that protecting ~4 of 10 bits is the sweet spot and that
protecting more bits (or using full ECC) adds area without commensurate
throughput benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.fault_simulator import SystemLevelFaultSimulator
from repro.core.protection import EccProtection, MsbProtection, NoProtection
from repro.core.results import SweepTable
from repro.link.config import LinkConfig
from repro.memory.power import AreaModel
from repro.utils.rng import RngLike, child_rngs
from repro.utils.validation import ensure_positive_int


@dataclass
class ProtectionEfficiencyPoint:
    """Outcome for one number of protected MSBs.

    Attributes
    ----------
    protected_bits:
        Number of MSBs stored in robust cells.
    throughput:
        Normalized throughput at the evaluated (SNR, defect-rate) point.
    throughput_gain:
        Throughput relative to the defect-free reference (<= 1 in practice).
    area_overhead:
        Hybrid-array area overhead over the all-6T array.
    efficiency:
        ``throughput_gain / area_overhead`` (the paper's Fig. 8 y-axis);
        infinite for zero overhead, reported as ``nan`` there.
    """

    protected_bits: int
    throughput: float
    throughput_gain: float
    area_overhead: float
    efficiency: float


class ProtectionEfficiencyAnalysis:
    """Throughput-gain-per-area study over the number of protected MSBs.

    Parameters
    ----------
    config:
        Link operating mode.
    num_fault_maps:
        Dies per operating point (passed to the fault simulator).
    area_model:
        Area model used for the overhead axis.
    """

    def __init__(
        self,
        config: LinkConfig,
        *,
        num_fault_maps: int = 2,
        area_model: Optional[AreaModel] = None,
    ) -> None:
        self.config = config
        self.num_fault_maps = ensure_positive_int(num_fault_maps, "num_fault_maps")
        self.area_model = area_model or AreaModel()

    # ------------------------------------------------------------------ #
    def _simulator(self, protected_bits: int) -> SystemLevelFaultSimulator:
        if protected_bits == 0:
            protection = NoProtection(bits_per_word=self.config.llr_bits)
        else:
            protection = MsbProtection(
                bits_per_word=self.config.llr_bits, protected_msbs=protected_bits
            )
        return SystemLevelFaultSimulator(
            self.config, protection, num_fault_maps=self.num_fault_maps
        )

    def defect_free_reference(
        self, snr_db: float, num_packets: int, rng: RngLike = None
    ) -> float:
        """Normalized throughput of the defect-free system at *snr_db*."""
        simulator = self._simulator(0)
        return simulator.evaluate(snr_db, 0, num_packets, rng).normalized_throughput

    # ------------------------------------------------------------------ #
    def sweep(
        self,
        snr_db: float,
        defect_rate: float,
        protected_bit_counts: Sequence[int],
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> List[ProtectionEfficiencyPoint]:
        """Evaluate each protection depth at one (SNR, defect-rate) point.

        The defect rate refers to the *unprotected* cells of each
        configuration, mirroring the paper's acceptance criterion
        (``Nf_6T`` of Section 6.1).
        """
        counts = [int(c) for c in protected_bit_counts]
        rngs = child_rngs(rng, len(counts) + 1)
        reference = self.defect_free_reference(snr_db, num_packets, rngs[-1])
        points: List[ProtectionEfficiencyPoint] = []
        for count, count_rng in zip(counts, rngs[: len(counts)]):
            simulator = self._simulator(count)
            outcome = simulator.evaluate_defect_rate(snr_db, defect_rate, num_packets, count_rng)
            overhead = self.area_model.hybrid_overhead(self.config.llr_bits, count)
            gain = (
                outcome.normalized_throughput / reference if reference > 0 else float("nan")
            )
            efficiency = gain / overhead if overhead > 0 else float("nan")
            points.append(
                ProtectionEfficiencyPoint(
                    protected_bits=count,
                    throughput=outcome.normalized_throughput,
                    throughput_gain=gain,
                    area_overhead=overhead,
                    efficiency=efficiency,
                )
            )
        return points

    def sweep_table(
        self,
        snr_db: float,
        defect_rate: float,
        protected_bit_counts: Sequence[int],
        num_packets: int = 32,
        rng: RngLike = None,
    ) -> SweepTable:
        """Same as :meth:`sweep`, rendered as a table (Fig. 8 data)."""
        table = SweepTable(
            title=(
                f"Protection efficiency at {snr_db:.1f} dB, "
                f"defect rate {defect_rate:.1%} in unprotected cells"
            ),
            columns=[
                "protected_bits",
                "throughput",
                "throughput_gain",
                "area_overhead",
                "efficiency",
            ],
            metadata={"snr_db": snr_db, "defect_rate": defect_rate},
        )
        for point in self.sweep(snr_db, defect_rate, protected_bit_counts, num_packets, rng):
            table.add_row(
                protected_bits=point.protected_bits,
                throughput=point.throughput,
                throughput_gain=point.throughput_gain,
                area_overhead=point.area_overhead,
                efficiency=point.efficiency,
            )
        return table

    # ------------------------------------------------------------------ #
    def optimum_protection_depth(
        self, points: Sequence[ProtectionEfficiencyPoint], gain_tolerance: float = 0.05
    ) -> int:
        """Smallest protection depth within *gain_tolerance* of the best gain.

        The paper's reading of Fig. 8: once throughput has (essentially)
        recovered, adding more protected bits only adds area.
        """
        if not points:
            raise ValueError("points must not be empty")
        best_gain = max(p.throughput_gain for p in points)
        eligible = [p for p in points if p.throughput_gain >= best_gain - gain_tolerance]
        return min(p.protected_bits for p in eligible)

    def ecc_comparison(self) -> dict:
        """Area overhead of full-word ECC versus MSB protection (Section 6.2)."""
        ecc = EccProtection(bits_per_word=self.config.llr_bits)
        msb4 = MsbProtection(bits_per_word=self.config.llr_bits, protected_msbs=4)
        return {
            "ecc_overhead": ecc.area_overhead(self.area_model),
            "msb4_overhead": msb4.area_overhead(self.area_model),
            "ecc_parity_bits": ecc.ecc.num_parity_bits,
        }
