"""Protection schemes for the HARQ LLR storage.

Section 6 of the paper compares four ways of implementing the LLR memory:

* **No protection** — dense 6T cells everywhere; cheapest, every cell can fail.
* **Preferential (MSB) protection** — the paper's proposal: only the few most
  significant bits of each stored LLR use robust 8T cells, the rest stay 6T.
* **Full cell protection** — every bit in 8T cells (the conventional circuit
  fix the paper argues is overkill).
* **Full ECC protection** — Hamming SEC over the whole word stored in 6T
  cells (~35-40 % overhead for a 10-bit word, Section 6.2).

Every scheme knows how to build the fault maps the system-level fault
simulator needs (worst-case accepted die with exactly ``Nf`` faults in the
cells that *can* fail, or a population draw at a supply voltage), what ECC to
attach to the soft buffer, and what it costs in area and power.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.memory.cells import BitCellType, CELL_6T, CELL_8T
from repro.memory.ecc import HammingCode
from repro.memory.faults import FaultMap, FaultModel, FaultModelSpec
from repro.memory.hybrid import HybridArrayConfig
from repro.memory.power import AreaModel, PowerModel
from repro.utils.rng import RngLike
from repro.utils.validation import ensure_non_negative_int, ensure_positive_int


@dataclass(frozen=True)
class ProtectionScheme(ABC):
    """Base class: how the LLR words of the HARQ buffer are physically stored.

    Parameters
    ----------
    bits_per_word:
        Stored LLR width (the quantizer's ``num_bits``).
    baseline_cell, robust_cell:
        Cell types used for unprotected / protected bit positions.
    """

    bits_per_word: int = 10
    baseline_cell: BitCellType = CELL_6T
    robust_cell: BitCellType = CELL_8T

    def __post_init__(self) -> None:
        ensure_positive_int(self.bits_per_word, "bits_per_word")

    # -- interface ------------------------------------------------------ #
    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment tables."""

    @property
    def ecc(self) -> Optional[HammingCode]:
        """ECC attached to every stored word (``None`` for cell-level schemes)."""
        return None

    @property
    def stored_bits_per_word(self) -> int:
        """Physical columns per word (data + parity bits)."""
        return self.ecc.codeword_bits if self.ecc is not None else self.bits_per_word

    @abstractmethod
    def protected_columns(self) -> np.ndarray:
        """Boolean mask (length ``stored_bits_per_word``); ``True`` = robust cell."""

    @abstractmethod
    def area_overhead(self, area_model: Optional[AreaModel] = None) -> float:
        """Relative area overhead versus the unprotected all-6T array."""

    # -- shared behaviour ------------------------------------------------ #
    def unprotected_cells(self, num_words: int) -> int:
        """Number of cells that are allowed to fail in an array of *num_words* words."""
        return int(num_words * (~self.protected_columns()).sum())

    def make_fault_map(
        self,
        num_words: int,
        num_faults: int,
        rng: RngLike = None,
        fault_model: "FaultModel | FaultModelSpec | str" = FaultModel.BIT_FLIP,
    ) -> FaultMap:
        """Worst-case accepted die: exactly *num_faults* faults in fallible cells.

        *fault_model* accepts the read-out semantics (a :class:`FaultModel`
        or its token) optionally combined with a clustered placement via a
        :class:`FaultModelSpec` or the ``"clustered:<r>"`` token; either way
        the die carries exactly *num_faults* faulty cells.
        """
        ensure_non_negative_int(num_faults, "num_faults")
        spec = FaultModelSpec.parse(fault_model)
        protected = self.protected_columns()
        protected_columns = protected if protected.any() else None
        if spec.placement == "clustered":
            return FaultMap.with_clustered_fault_count(
                num_words,
                self.stored_bits_per_word,
                num_faults,
                cluster_radius=spec.cluster_radius,
                rng=rng,
                fault_model=spec.model,
                protected_columns=protected_columns,
            )
        return FaultMap.with_exact_fault_count(
            num_words,
            self.stored_bits_per_word,
            num_faults,
            rng=rng,
            fault_model=spec.model,
            protected_columns=protected_columns,
        )

    def make_fault_map_at_voltage(
        self,
        num_words: int,
        vdd: float,
        rng: RngLike = None,
        fault_model: FaultModel = FaultModel.BIT_FLIP,
    ) -> FaultMap:
        """Population draw: every cell fails with its cell type's ``Pcell(vdd)``."""
        return FaultMap.from_cell_failure_probability(
            num_words,
            self.stored_bits_per_word,
            0.0,
            rng=rng,
            fault_model=fault_model,
            column_failure_probabilities=self.column_failure_probabilities(vdd),
        )

    def column_failure_probabilities(self, vdd: float) -> np.ndarray:
        """Per-bit-position cell failure probability at supply voltage *vdd*."""
        protected = self.protected_columns()
        baseline_p = self.baseline_cell.failure_probability(vdd)
        robust_p = self.robust_cell.failure_probability(vdd)
        return np.where(protected, robust_p, baseline_p)

    def relative_power(self, vdd: float, power_model: Optional[PowerModel] = None) -> float:
        """Array power at *vdd* relative to the unprotected array at nominal Vdd."""
        model = power_model or PowerModel()
        protected = self.protected_columns()
        robust_fraction = float(protected.mean())
        stored_ratio = self.stored_bits_per_word / self.bits_per_word
        blended = (
            robust_fraction * model.relative_power(vdd, self.robust_cell)
            + (1.0 - robust_fraction) * model.relative_power(vdd, self.baseline_cell)
        )
        return blended * stored_ratio

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return f"{self.name} ({self.bits_per_word}-bit words)"


# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NoProtection(ProtectionScheme):
    """All bits in dense baseline (6T) cells — Section 5's setting."""

    @property
    def name(self) -> str:
        return "unprotected-6T"

    def protected_columns(self) -> np.ndarray:
        return np.zeros(self.bits_per_word, dtype=bool)

    def area_overhead(self, area_model: Optional[AreaModel] = None) -> float:
        return 0.0


@dataclass(frozen=True)
class MsbProtection(ProtectionScheme):
    """The paper's preferential storage: the *k* MSBs in robust (8T) cells.

    Parameters
    ----------
    protected_msbs:
        Number of most-significant stored bits implemented in robust cells
        (3-4 is the paper's sweet spot for 10-bit LLRs).
    """

    protected_msbs: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_non_negative_int(self.protected_msbs, "protected_msbs")
        if self.protected_msbs > self.bits_per_word:
            raise ValueError("protected_msbs cannot exceed bits_per_word")

    @property
    def name(self) -> str:
        return f"msb-{self.protected_msbs}-of-{self.bits_per_word}"

    @property
    def hybrid_config(self) -> HybridArrayConfig:
        """The equivalent :class:`~repro.memory.hybrid.HybridArrayConfig`."""
        return HybridArrayConfig(
            bits_per_word=self.bits_per_word,
            protected_msbs=self.protected_msbs,
            baseline_cell=self.baseline_cell,
            robust_cell=self.robust_cell,
        )

    def protected_columns(self) -> np.ndarray:
        mask = np.zeros(self.bits_per_word, dtype=bool)
        mask[: self.protected_msbs] = True
        return mask

    def area_overhead(self, area_model: Optional[AreaModel] = None) -> float:
        model = area_model or AreaModel(
            baseline_cell=self.baseline_cell, robust_cell=self.robust_cell
        )
        return model.hybrid_overhead(self.bits_per_word, self.protected_msbs)


def msb_protection_scheme(bits_per_word: int, protected_msbs: int) -> ProtectionScheme:
    """The scheme protecting *protected_msbs* MSBs (``0`` = unprotected array).

    The factory the protection-depth sweeps (Figs. 7 and 8) share: a depth of
    zero is the plain all-6T array rather than a degenerate hybrid.
    """
    if protected_msbs == 0:
        return NoProtection(bits_per_word=bits_per_word)
    return MsbProtection(bits_per_word=bits_per_word, protected_msbs=protected_msbs)


@dataclass(frozen=True)
class FullCellProtection(ProtectionScheme):
    """Every bit in robust (8T) cells — the conventional all-robust design."""

    @property
    def name(self) -> str:
        return "all-8T"

    def protected_columns(self) -> np.ndarray:
        return np.ones(self.bits_per_word, dtype=bool)

    def area_overhead(self, area_model: Optional[AreaModel] = None) -> float:
        model = area_model or AreaModel(
            baseline_cell=self.baseline_cell, robust_cell=self.robust_cell
        )
        return model.hybrid_overhead(self.bits_per_word, self.bits_per_word)


@dataclass(frozen=True)
class EccProtection(ProtectionScheme):
    """Hamming SEC(-DED) over every stored word, kept in baseline cells.

    The parity bits live in additional 6T columns of the same unreliable
    fabric, so double faults within one codeword still corrupt the LLR — the
    behaviour (and the ~35-40 % overhead) Section 6.2 uses to argue that full
    ECC is not the efficient answer.
    """

    extended: bool = False

    @property
    def name(self) -> str:
        return "full-ECC" + ("-DED" if self.extended else "")

    @property
    def ecc(self) -> Optional[HammingCode]:
        return HammingCode(self.bits_per_word, extended=self.extended)

    def protected_columns(self) -> np.ndarray:
        # Every physical cell can fail; protection comes from the code, not
        # from robust cells.
        return np.zeros(self.stored_bits_per_word, dtype=bool)

    def area_overhead(self, area_model: Optional[AreaModel] = None) -> float:
        model = area_model or AreaModel(
            baseline_cell=self.baseline_cell, robust_cell=self.robust_cell
        )
        return model.ecc_overhead(self.bits_per_word, self.stored_bits_per_word)
