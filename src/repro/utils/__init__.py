"""Small shared utilities: RNG handling and argument validation helpers."""

from repro.utils.rng import as_rng, child_rngs
from repro.utils.validation import (
    ensure_bit_array,
    ensure_in_range,
    ensure_positive_int,
    ensure_probability,
)

__all__ = [
    "as_rng",
    "child_rngs",
    "ensure_bit_array",
    "ensure_in_range",
    "ensure_positive_int",
    "ensure_probability",
]
