"""Argument-validation helpers shared across the library.

These raise early, informative errors instead of letting malformed inputs
propagate into NumPy broadcasting surprises deep inside the link simulator.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np


def ensure_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def ensure_non_negative_int(value: int, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def ensure_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def ensure_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that *value* lies within [low, high] (or (low, high))."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValueError(f"{name} must be in {bounds}, got {value}")
    return value


def ensure_bit_array(bits: Union[Sequence[int], np.ndarray], name: str = "bits") -> np.ndarray:
    """Coerce *bits* to a 1-D ``int8`` array and check all values are 0/1."""
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0s and 1s")
    return arr.astype(np.int8)


def ensure_choice(value: str, name: str, choices: Sequence[str]) -> str:
    """Validate that *value* is one of *choices* (case-sensitive)."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)}, got {value!r}")
    return value
