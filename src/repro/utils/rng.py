"""Random-number-generator helpers.

Every stochastic component in the library accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises the conversion so that experiments are reproducible when a
seed is given and independent streams can be derived for sub-components.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence`` or an
        already-constructed ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def child_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators from *rng*.

    Used by Monte-Carlo sweeps so that each trial / worker gets its own
    stream while the whole sweep stays reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = as_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_seeds(rng: RngLike, count: int) -> list[int]:
    """Return *count* integer seeds derived from *rng* (for serialisation)."""
    base = as_rng(rng)
    return [int(s) for s in base.integers(0, 2**63 - 1, size=count, dtype=np.int64)]


def iter_child_rngs(rng: RngLike) -> Iterable[np.random.Generator]:
    """Yield an unbounded stream of independent child generators."""
    base = as_rng(rng)
    while True:
        yield np.random.default_rng(int(base.integers(0, 2**63 - 1)))
