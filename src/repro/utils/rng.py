"""Random-number-generator helpers.

Every stochastic component in the library accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises the conversion so that experiments are reproducible when a
seed is given and independent streams can be derived for sub-components.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence`` or an
        already-constructed ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def child_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators from *rng*.

    Used by Monte-Carlo sweeps so that each trial / worker gets its own
    stream while the whole sweep stays reproducible from a single seed.

    When *rng* is a :class:`numpy.random.SeedSequence` the children are
    derived with :meth:`~numpy.random.SeedSequence.spawn`, whose spawn keys
    are unique by construction — the collision-free contract the parallel
    runner relies on.  Seeds and generators keep the legacy draw-based
    derivation so existing experiment streams are unchanged.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(rng, np.random.SeedSequence):
        return [np.random.default_rng(child) for child in rng.spawn(count)]
    base = as_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def keyed_seed_sequence(
    entropy: int, key: "tuple[int, ...]" = ()
) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` addressed by an explicit spawn key.

    Two calls collide only when both *entropy* and *key* are equal, so a
    sharded workload can address the stream of shard ``s`` of fault map ``m``
    of sweep point ``p`` as ``keyed_seed_sequence(seed, (p, m, s))`` and get
    the same stream no matter which worker process (or how many of them)
    executes the shard.
    """
    if entropy < 0:
        raise ValueError(f"entropy must be non-negative, got {entropy}")
    for part in key:
        if int(part) < 0:
            raise ValueError(f"key parts must be non-negative, got {key}")
    return np.random.SeedSequence(entropy, spawn_key=tuple(int(part) for part in key))


def resolve_entropy(rng: RngLike) -> int:
    """Reduce *rng* to a non-negative integer entropy value.

    Integer seeds pass through unchanged so that a user-visible seed (e.g.
    ``--seed 2012``) addresses the same keyed streams everywhere; anything
    else (``None``, a generator, a seed sequence) is reduced to one draw so
    the derived workload is still reproducible from the returned value.
    """
    if isinstance(rng, bool):
        raise TypeError("bool is not a valid seed")
    if isinstance(rng, (int, np.integer)):
        if int(rng) < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return int(rng)
    if isinstance(rng, np.random.SeedSequence):
        entropy = rng.entropy
        if isinstance(entropy, int) and not rng.spawn_key:
            return entropy
        return int(np.random.default_rng(rng).integers(0, 2**63 - 1))
    return int(as_rng(rng).integers(0, 2**63 - 1))


def spawn_seeds(rng: RngLike, count: int) -> list[int]:
    """Return *count* integer seeds derived from *rng* (for serialisation)."""
    base = as_rng(rng)
    return [int(s) for s in base.integers(0, 2**63 - 1, size=count, dtype=np.int64)]


def iter_child_rngs(rng: RngLike) -> Iterable[np.random.Generator]:
    """Yield an unbounded stream of independent child generators."""
    base = as_rng(rng)
    while True:
        yield np.random.default_rng(int(base.integers(0, 2**63 - 1)))
