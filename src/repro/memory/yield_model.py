"""Yield models: Eq. (1) and Eq. (2) of the paper.

Equation (1) is the conventional 100 %-correct criterion: an array of ``M``
cells is good only if *no* cell fails, so ``Y = (1 - Pcell)^M``.

Equation (2) redefines yield for the relaxed selection criterion where chips
with at most ``Nf`` faulty cells pass inspection:

    Y(Nf) = sum_{i=0}^{Nf} C(M, i) * Pcell^i * (1 - Pcell)^(M - i)

i.e. the binomial CDF of the number of faulty cells.  The helper functions
answer the two questions the paper asks of this model: *how many defects must
be accepted to reach a yield target* (Fig. 5) and *what cell failure
probability — hence what supply voltage — is admissible for a given defect
budget and yield target* (the voltage-scaling argument of Sections 5/6.3).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq
from scipy.stats import binom

from repro.utils.validation import (
    ensure_non_negative_int,
    ensure_positive_int,
    ensure_probability,
)


def defect_free_yield(cell_failure_probability: float, array_size: int) -> float:
    """Eq. (1): probability that an array of *array_size* cells has zero defects."""
    p = ensure_probability(cell_failure_probability, "cell_failure_probability")
    m = ensure_positive_int(array_size, "array_size")
    # Computed in log space to stay accurate for large arrays.
    if p >= 1.0:
        return 0.0
    return float(np.exp(m * np.log1p(-p)))


def acceptance_yield(
    cell_failure_probability: float, array_size: int, max_faulty_cells: int
) -> float:
    """Eq. (2): probability that an array has at most *max_faulty_cells* defects."""
    p = ensure_probability(cell_failure_probability, "cell_failure_probability")
    m = ensure_positive_int(array_size, "array_size")
    nf = ensure_non_negative_int(max_faulty_cells, "max_faulty_cells")
    if nf >= m:
        return 1.0
    return float(binom.cdf(nf, m, p))


def acceptance_yield_curve(
    cell_failure_probability: float, array_size: int, max_faulty_cells: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`acceptance_yield` over an array of ``Nf`` values."""
    p = ensure_probability(cell_failure_probability, "cell_failure_probability")
    m = ensure_positive_int(array_size, "array_size")
    nf = np.asarray(max_faulty_cells, dtype=np.int64)
    if (nf < 0).any():
        raise ValueError("max_faulty_cells must be non-negative")
    return binom.cdf(np.minimum(nf, m), m, p)


def min_defects_for_yield(
    cell_failure_probability: float, array_size: int, yield_target: float
) -> int:
    """Smallest ``Nf`` such that ``Y(Nf) >= yield_target``.

    This is the "number of defects that we need to accept for achieving the
    yield target" read off Fig. 5 (e.g. 0.1 % of a 200 Kb array for
    ``Pcell = 1e-3`` and a 95 % target).
    """
    p = ensure_probability(cell_failure_probability, "cell_failure_probability")
    m = ensure_positive_int(array_size, "array_size")
    target = ensure_probability(yield_target, "yield_target")
    return int(binom.ppf(target, m, p))


def max_cell_failure_probability(
    array_size: int, max_faulty_cells: int, yield_target: float
) -> float:
    """Largest ``Pcell`` for which ``Y(Nf) >= yield_target``.

    Inverts Eq. (2) in ``Pcell``: given a defect budget (set by the system's
    resilience limit) and a yield target, this is the worst admissible cell
    failure probability — which, through the cell model's
    ``min_voltage_for_failure_probability``, becomes the lowest admissible
    supply voltage.
    """
    m = ensure_positive_int(array_size, "array_size")
    nf = ensure_non_negative_int(max_faulty_cells, "max_faulty_cells")
    target = ensure_probability(yield_target, "yield_target")
    if target <= 0.0:
        return 1.0
    if nf >= m:
        return 1.0

    def gap(p: float) -> float:
        return binom.cdf(nf, m, p) - target

    # Y(Nf) is monotonically decreasing in p; bracket the root.
    low, high = 1e-15, 1.0 - 1e-15
    if gap(high) >= 0:
        return 1.0
    if gap(low) <= 0:
        return 0.0
    return float(brentq(gap, low, high, xtol=1e-15, rtol=1e-12))


def yield_with_redundancy(
    cell_failure_probability: float,
    num_rows: int,
    num_columns: int,
    spare_rows: int,
) -> float:
    """Yield of an array repaired with spare rows (conventional technique).

    A row is bad when any of its cells fails; the array is good when the
    number of bad rows does not exceed the number of spare rows.  Provided as
    the conventional-repair reference the paper contrasts with ("as the size
    of memory and the number of defects increases they are insufficient").
    """
    p = ensure_probability(cell_failure_probability, "cell_failure_probability")
    rows = ensure_positive_int(num_rows, "num_rows")
    cols = ensure_positive_int(num_columns, "num_columns")
    spares = ensure_non_negative_int(spare_rows, "spare_rows")
    row_fail = 1.0 - (1.0 - p) ** cols
    return float(binom.cdf(spares, rows, row_fail))


def expected_faulty_cells(cell_failure_probability: float, array_size: int) -> float:
    """Mean number of faulty cells in the array (binomial mean)."""
    p = ensure_probability(cell_failure_probability, "cell_failure_probability")
    m = ensure_positive_int(array_size, "array_size")
    return p * m
