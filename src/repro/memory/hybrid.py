"""Hybrid 6T/8T array configuration — the paper's preferential storage scheme.

Section 6.1 proposes to implement only the most significant LLR bits in
robust (8T) cells while keeping the remaining bits in dense 6T cells.  A
:class:`HybridArrayConfig` captures which bit positions are protected, derives
per-column failure probabilities at a given supply voltage, produces the
fault maps used by the system simulator (faults only in the unprotected
columns), and reports the area/power cost through the models in
:mod:`repro.memory.power`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memory.cells import BitCellType, CELL_6T, CELL_8T
from repro.memory.faults import FaultMap, FaultModel
from repro.memory.power import AreaModel, PowerModel
from repro.utils.rng import RngLike
from repro.utils.validation import ensure_non_negative_int, ensure_positive_int


@dataclass(frozen=True)
class HybridArrayConfig:
    """Per-bit-position cell assignment for the LLR storage array.

    Parameters
    ----------
    bits_per_word:
        LLR word width (bit position 0 is the stored MSB — the sign bit for
        the sign-magnitude quantizer).
    protected_msbs:
        Number of most-significant bit positions implemented in robust cells.
    baseline_cell, robust_cell:
        Cell types for unprotected and protected positions.
    """

    bits_per_word: int = 10
    protected_msbs: int = 0
    baseline_cell: BitCellType = CELL_6T
    robust_cell: BitCellType = CELL_8T

    def __post_init__(self) -> None:
        ensure_positive_int(self.bits_per_word, "bits_per_word")
        ensure_non_negative_int(self.protected_msbs, "protected_msbs")
        if self.protected_msbs > self.bits_per_word:
            raise ValueError("protected_msbs cannot exceed bits_per_word")

    # ------------------------------------------------------------------ #
    @property
    def protected_columns(self) -> np.ndarray:
        """Boolean mask over bit positions; ``True`` marks protected columns."""
        mask = np.zeros(self.bits_per_word, dtype=bool)
        mask[: self.protected_msbs] = True
        return mask

    @property
    def num_unprotected_bits(self) -> int:
        """Number of bit positions left in baseline cells."""
        return self.bits_per_word - self.protected_msbs

    def cell_for_column(self, column: int) -> BitCellType:
        """Cell type implementing a given bit position."""
        if not 0 <= column < self.bits_per_word:
            raise ValueError(f"column must be in [0, {self.bits_per_word})")
        return self.robust_cell if column < self.protected_msbs else self.baseline_cell

    # ------------------------------------------------------------------ #
    def column_failure_probabilities(self, vdd: float) -> np.ndarray:
        """Per-bit-position cell failure probability at supply voltage *vdd*."""
        baseline_p = self.baseline_cell.failure_probability(vdd)
        robust_p = self.robust_cell.failure_probability(vdd)
        probabilities = np.full(self.bits_per_word, baseline_p)
        probabilities[: self.protected_msbs] = robust_p
        return probabilities

    def fault_map_with_exact_faults(
        self,
        num_words: int,
        num_faults: int,
        rng: RngLike = None,
        fault_model: FaultModel = FaultModel.BIT_FLIP,
        faults_in_protected: int = 0,
    ) -> FaultMap:
        """Worst-case accepted die: *num_faults* faults in the unprotected columns.

        The selection criterion of Section 6.1 tolerates a high number of
        defects in the 6T columns (``Nf_6T``) and essentially none in the 8T
        columns; *faults_in_protected* allows the latter to be non-zero for
        sensitivity studies (``Nf_8T`` in the paper's notation).
        """
        base = FaultMap.with_exact_fault_count(
            num_words,
            self.bits_per_word,
            num_faults,
            rng=rng,
            fault_model=fault_model,
            protected_columns=self.protected_columns if self.protected_msbs else None,
        )
        if faults_in_protected and self.protected_msbs:
            protected_only = FaultMap.with_exact_fault_count(
                num_words,
                self.bits_per_word,
                faults_in_protected,
                rng=rng,
                fault_model=fault_model,
                protected_columns=~self.protected_columns,
            )
            mask = base.fault_mask | protected_only.fault_mask
            return FaultMap(num_words, self.bits_per_word, mask, fault_model, base.stuck_values)
        return base

    def fault_map_at_voltage(
        self,
        num_words: int,
        vdd: float,
        rng: RngLike = None,
        fault_model: FaultModel = FaultModel.BIT_FLIP,
    ) -> FaultMap:
        """Random die drawn from the population at supply voltage *vdd*."""
        return FaultMap.from_cell_failure_probability(
            num_words,
            self.bits_per_word,
            0.0,
            rng=rng,
            fault_model=fault_model,
            column_failure_probabilities=self.column_failure_probabilities(vdd),
        )

    # ------------------------------------------------------------------ #
    def area_overhead(self, area_model: AreaModel | None = None) -> float:
        """Area overhead relative to the all-baseline array (Fig. 8 x-axis)."""
        model = area_model or AreaModel(
            baseline_cell=self.baseline_cell, robust_cell=self.robust_cell
        )
        return model.hybrid_overhead(self.bits_per_word, self.protected_msbs)

    def relative_power(self, vdd: float, power_model: PowerModel | None = None) -> float:
        """Array power at *vdd* relative to the all-baseline array at nominal Vdd."""
        model = power_model or PowerModel()
        return model.hybrid_relative_power(
            vdd,
            self.bits_per_word,
            self.protected_msbs,
            baseline_cell=self.baseline_cell,
            robust_cell=self.robust_cell,
        )

    def describe(self) -> str:
        """Human-readable one-line summary."""
        if self.protected_msbs == 0:
            return f"unprotected {self.bits_per_word}-bit {self.baseline_cell.name} array"
        return (
            f"{self.protected_msbs} MSB(s) in {self.robust_cell.name}, "
            f"{self.num_unprotected_bits} LSB(s) in {self.baseline_cell.name}"
        )
