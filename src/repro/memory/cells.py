"""SRAM bit-cell models: parametric-failure probability versus supply voltage.

The paper's Fig. 3 plots the failure probability of a memory array built from
medium-sized 6T cells, 15 %-upsized 6T cells and 8T cells under voltage
scaling at the 65 nm slow-fast corner.  The authors obtained those curves
from Monte-Carlo circuit (SPICE) simulations; here the same quantity is
produced by a calibrated analytical model:

* A bit-cell fails when its static noise margin — degraded by random dopant
  fluctuation (RDF) induced threshold-voltage mismatch — becomes negative.
  With Gaussian Vth mismatch this yields ``Pcell = Q(margin / sigma)``, i.e. a
  Gaussian tail probability whose argument shrinks as the supply voltage is
  lowered.
* The model is calibrated to the published anchor points: roughly 1e-9
  failure probability for a 6T cell at the nominal 1.0 V, an increase of
  about nine orders of magnitude over a 500 mV down-scaling ("increase by
  billion times for such a voltage decrease"), upsized 6T cells buying a few
  tens of millivolts, and 8T cells remaining reliable down to ~0.6 V.
* Soft errors are voltage-insensitive by comparison: their rate grows only by
  3x per 500 mV of down-scaling (paper Section 3).

Only the scalar ``Pcell(Vdd)`` per cell type enters the system-level study,
so this calibrated model is a faithful substitute for the SPICE data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.utils.validation import ensure_in_range


@dataclass(frozen=True)
class BitCellType:
    """An SRAM bit-cell flavour characterised by its failure-vs-voltage curve.

    Parameters
    ----------
    name:
        Identifier (``"6T"``, ``"6T-upsized"``, ``"8T"``).
    margin_slope_per_volt:
        How many sigma of noise margin one volt of supply buys.  Larger is
        more robust.
    zero_margin_voltage:
        Supply voltage at which the mean noise margin hits zero (50 % cell
        failure probability).
    relative_area:
        Cell area normalised to the medium-sized 6T cell.
    relative_dynamic_power:
        Dynamic (access) power at equal voltage, normalised to the 6T cell.
    relative_leakage:
        Leakage power at equal voltage, normalised to the 6T cell.
    """

    name: str
    margin_slope_per_volt: float
    zero_margin_voltage: float
    relative_area: float = 1.0
    relative_dynamic_power: float = 1.0
    relative_leakage: float = 1.0

    def failure_probability(self, vdd: float) -> float:
        """Parametric (RDF-induced) failure probability of one cell at *vdd*.

        The slow-fast corner worst case of the paper's Fig. 3.
        """
        vdd = ensure_in_range(vdd, "vdd", 0.3, 1.4)
        margin_sigmas = self.margin_slope_per_volt * (vdd - self.zero_margin_voltage)
        return float(norm.sf(margin_sigmas))

    def failure_probabilities(self, vdd: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`failure_probability`."""
        voltages = np.asarray(vdd, dtype=np.float64)
        margins = self.margin_slope_per_volt * (voltages - self.zero_margin_voltage)
        return norm.sf(margins)

    def min_voltage_for_failure_probability(self, target_pcell: float) -> float:
        """Lowest supply voltage keeping the cell failure probability <= target."""
        if not 0.0 < target_pcell < 1.0:
            raise ValueError("target_pcell must be in (0, 1)")
        margin_sigmas = float(norm.isf(target_pcell))
        return self.zero_margin_voltage + margin_sigmas / self.margin_slope_per_volt


#: Medium-sized 6T cell: ~1e-9 at 1.0 V, ~50 % at 0.5 V (nine orders / 500 mV).
CELL_6T = BitCellType(
    name="6T",
    margin_slope_per_volt=12.0,
    zero_margin_voltage=0.50,
    relative_area=1.0,
    relative_dynamic_power=1.0,
    relative_leakage=1.0,
)

#: 15 %-upsized 6T cell: same slope, curve shifted ~50 mV lower.
CELL_6T_UPSIZED = BitCellType(
    name="6T-upsized",
    margin_slope_per_volt=12.0,
    zero_margin_voltage=0.45,
    relative_area=1.15,
    relative_dynamic_power=1.10,
    relative_leakage=1.12,
)

#: 8T cell: decoupled read port, reliable down to ~0.6 V; ~30 % larger.
CELL_8T = BitCellType(
    name="8T",
    margin_slope_per_volt=14.0,
    zero_margin_voltage=0.30,
    relative_area=1.30,
    relative_dynamic_power=1.15,
    relative_leakage=1.25,
)

#: Registry of the built-in cell types.
CELL_TYPES = {cell.name: cell for cell in (CELL_6T, CELL_6T_UPSIZED, CELL_8T)}


def get_cell_type(name: str) -> BitCellType:
    """Look up a built-in cell type by name."""
    try:
        return CELL_TYPES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown cell type {name!r}; choose from {sorted(CELL_TYPES)}"
        ) from exc


@dataclass(frozen=True)
class SoftErrorModel:
    """Radiation-induced (non-persistent) bit-flip rate model.

    The soft-error rate is "almost constant across technology generations" and
    "only increases by a factor of 3x for every 500 mV decrease in supply
    voltage" (paper Section 3) — negligible next to the billion-fold growth of
    parametric failures, but included for completeness.

    Parameters
    ----------
    rate_at_nominal:
        Upset probability per cell per exposure interval at ``nominal_vdd``.
    nominal_vdd:
        Reference supply voltage.
    scaling_factor_per_500mv:
        Multiplicative rate increase per 500 mV of down-scaling (3.0 in the
        paper).
    """

    rate_at_nominal: float = 1e-9
    nominal_vdd: float = 1.0
    scaling_factor_per_500mv: float = 3.0

    def rate(self, vdd: float) -> float:
        """Soft-error probability per cell per exposure interval at *vdd*."""
        vdd = ensure_in_range(vdd, "vdd", 0.3, 1.4)
        exponent = (self.nominal_vdd - vdd) / 0.5
        return float(self.rate_at_nominal * self.scaling_factor_per_500mv**exponent)

    def rates(self, vdd: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rate`."""
        voltages = np.asarray(vdd, dtype=np.float64)
        exponent = (self.nominal_vdd - voltages) / 0.5
        return self.rate_at_nominal * self.scaling_factor_per_500mv**exponent
