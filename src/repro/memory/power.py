"""Area and power models for (hybrid) SRAM arrays.

These models encode the published constants the paper's efficiency arguments
rest on:

* an 8T cell is ~30 % larger than the medium-sized 6T cell (so protecting 4
  of 10 LLR bits with 8T cells costs ~13 % array area — Fig. 8's annotation);
* Hamming SEC over a 10-bit word needs 4 parity bits, ~35-40 % overhead
  (Section 6.2), and higher-order ECC exceeds 50 %;
* dynamic power scales with ``Vdd^2`` (the "quadratic dependency" that makes
  voltage scaling attractive) and leakage roughly with ``Vdd^2`` as well over
  the narrow range considered, so operating the HARQ memory at 0.8 V instead
  of 1.0 V saves ~30-35 % of its power (Section 6.3's iso-area claim).

All quantities are normalised (area of one 6T cell = 1, power of the 6T array
at nominal voltage = 1), which is exactly how the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.cells import BitCellType, CELL_6T, CELL_8T
from repro.utils.validation import ensure_non_negative_int, ensure_positive_int


@dataclass(frozen=True)
class AreaModel:
    """Area accounting for plain, ECC-protected and hybrid 6T/8T arrays.

    Parameters
    ----------
    baseline_cell, robust_cell:
        Cell types used for unprotected and protected bit positions.
    peripheral_overhead:
        Fixed fraction of cell area spent on decoders/sense-amps, assumed
        proportional to the number of columns (cancels in most ratios but is
        exposed for completeness).
    ecc_logic_overhead:
        Area of the ECC encoder/corrector logic expressed as a fraction of
        the protected array's cell area.
    """

    baseline_cell: BitCellType = CELL_6T
    robust_cell: BitCellType = CELL_8T
    peripheral_overhead: float = 0.0
    ecc_logic_overhead: float = 0.05

    # ------------------------------------------------------------------ #
    def plain_array_area(self, num_words: int, bits_per_word: int) -> float:
        """Area of an all-baseline-cell array (6T reference)."""
        ensure_positive_int(num_words, "num_words")
        ensure_positive_int(bits_per_word, "bits_per_word")
        cells = num_words * bits_per_word
        return cells * self.baseline_cell.relative_area * (1.0 + self.peripheral_overhead)

    def robust_array_area(self, num_words: int, bits_per_word: int) -> float:
        """Area of an all-robust-cell (e.g. all-8T) array."""
        ensure_positive_int(num_words, "num_words")
        ensure_positive_int(bits_per_word, "bits_per_word")
        cells = num_words * bits_per_word
        return cells * self.robust_cell.relative_area * (1.0 + self.peripheral_overhead)

    def hybrid_array_area(
        self, num_words: int, bits_per_word: int, protected_bits: int
    ) -> float:
        """Area of a hybrid array protecting *protected_bits* MSB columns."""
        ensure_positive_int(num_words, "num_words")
        ensure_positive_int(bits_per_word, "bits_per_word")
        protected_bits = ensure_non_negative_int(protected_bits, "protected_bits")
        if protected_bits > bits_per_word:
            raise ValueError("protected_bits cannot exceed bits_per_word")
        protected_cells = num_words * protected_bits
        plain_cells = num_words * (bits_per_word - protected_bits)
        area = (
            protected_cells * self.robust_cell.relative_area
            + plain_cells * self.baseline_cell.relative_area
        )
        return area * (1.0 + self.peripheral_overhead)

    def ecc_array_area(
        self, num_words: int, bits_per_word: int, codeword_bits: int
    ) -> float:
        """Area of a baseline-cell array storing ECC codewords."""
        ensure_positive_int(codeword_bits, "codeword_bits")
        cell_area = (
            num_words * codeword_bits * self.baseline_cell.relative_area
        ) * (1.0 + self.peripheral_overhead)
        return cell_area * (1.0 + self.ecc_logic_overhead)

    # ------------------------------------------------------------------ #
    def hybrid_overhead(self, bits_per_word: int, protected_bits: int) -> float:
        """Relative area overhead of the hybrid array over the all-6T array.

        This is the x-axis of Fig. 8 — with the default cells, protecting 4
        of 10 bits costs ``4/10 * 0.30 = 12 %`` (the paper quotes ~13 %).
        """
        plain = self.plain_array_area(1, bits_per_word)
        hybrid = self.hybrid_array_area(1, bits_per_word, protected_bits)
        return (hybrid - plain) / plain

    def ecc_overhead(self, bits_per_word: int, codeword_bits: int) -> float:
        """Relative area overhead of full ECC protection over the all-6T array."""
        plain = self.plain_array_area(1, bits_per_word)
        ecc = self.ecc_array_area(1, bits_per_word, codeword_bits)
        return (ecc - plain) / plain


@dataclass(frozen=True)
class PowerModel:
    """Supply-voltage dependent power model for the HARQ LLR memory.

    Parameters
    ----------
    nominal_vdd:
        Reference supply voltage (1.0 V at 65 nm).
    dynamic_fraction:
        Fraction of the array's nominal power that is dynamic (switching);
        the rest is leakage.
    leakage_voltage_exponent:
        Exponent of the leakage dependence on Vdd (DIBL-dominated leakage in
        a narrow voltage range is commonly modelled with an exponent between
        1 and 2).
    """

    nominal_vdd: float = 1.0
    dynamic_fraction: float = 0.6
    leakage_voltage_exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ValueError("dynamic_fraction must be in [0, 1]")
        if self.nominal_vdd <= 0:
            raise ValueError("nominal_vdd must be positive")

    # ------------------------------------------------------------------ #
    def relative_power(self, vdd: float, cell: BitCellType = CELL_6T) -> float:
        """Array power at *vdd* relative to the 6T array at the nominal voltage.

        Dynamic power scales as ``Vdd^2`` (same access activity), leakage as
        ``Vdd^leakage_voltage_exponent``; the cell type contributes its
        relative dynamic/leakage factors.
        """
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        ratio = vdd / self.nominal_vdd
        dynamic = self.dynamic_fraction * ratio**2 * cell.relative_dynamic_power
        leakage = (
            (1.0 - self.dynamic_fraction)
            * ratio**self.leakage_voltage_exponent
            * cell.relative_leakage
        )
        return float(dynamic + leakage)

    def hybrid_relative_power(
        self,
        vdd: float,
        bits_per_word: int,
        protected_bits: int,
        baseline_cell: BitCellType = CELL_6T,
        robust_cell: BitCellType = CELL_8T,
    ) -> float:
        """Power of a hybrid array at *vdd*, relative to the all-6T array at nominal Vdd."""
        ensure_positive_int(bits_per_word, "bits_per_word")
        protected_bits = ensure_non_negative_int(protected_bits, "protected_bits")
        if protected_bits > bits_per_word:
            raise ValueError("protected_bits cannot exceed bits_per_word")
        fraction_protected = protected_bits / bits_per_word
        return float(
            fraction_protected * self.relative_power(vdd, robust_cell)
            + (1.0 - fraction_protected) * self.relative_power(vdd, baseline_cell)
        )

    def power_saving(self, vdd: float, cell: BitCellType = CELL_6T) -> float:
        """Fractional power saving of operating at *vdd* versus nominal voltage."""
        return 1.0 - self.relative_power(vdd, cell) / self.relative_power(
            self.nominal_vdd, CELL_6T
        )

    def voltage_sweep(self, voltages: np.ndarray, cell: BitCellType = CELL_6T) -> np.ndarray:
        """Vectorised :meth:`relative_power` over an array of voltages."""
        return np.array([self.relative_power(float(v), cell) for v in np.asarray(voltages)])
