"""Unreliable-silicon substrate: SRAM bit-cell failure models, fault maps,
memory arrays, ECC, redundancy repair, hybrid 6T/8T organisation, yield and
area/power models.

This package models everything Section 3 and 4 of the paper need: the
failure probability of 6T / upsized-6T / 8T bit-cells as a function of supply
voltage at the 65 nm slow-fast corner (parametric variations), the voltage
dependence of soft errors, the yield of an array accepting up to ``Nf``
faulty cells (Eq. 1 and 2), and the read-path behaviour of an array with an
explicit fault-location map (bit-flips on read) that the system-level fault
simulator injects into the HARQ LLR storage.
"""

from repro.memory.cells import (
    BitCellType,
    CELL_6T,
    CELL_6T_UPSIZED,
    CELL_8T,
    CELL_TYPES,
    SoftErrorModel,
)
from repro.memory.failure_model import FailureModel
from repro.memory.faults import FaultMap, FaultModel, FaultModelSpec, coerce_fault_model
from repro.memory.array import MemoryArray
from repro.memory.ecc import HammingCode
from repro.memory.redundancy import RedundancyRepair
from repro.memory.hybrid import HybridArrayConfig
from repro.memory.power import AreaModel, PowerModel
from repro.memory.yield_model import (
    acceptance_yield,
    defect_free_yield,
    max_cell_failure_probability,
    min_defects_for_yield,
)

__all__ = [
    "AreaModel",
    "BitCellType",
    "CELL_6T",
    "CELL_6T_UPSIZED",
    "CELL_8T",
    "CELL_TYPES",
    "FailureModel",
    "FaultMap",
    "FaultModel",
    "FaultModelSpec",
    "HammingCode",
    "HybridArrayConfig",
    "MemoryArray",
    "PowerModel",
    "RedundancyRepair",
    "SoftErrorModel",
    "acceptance_yield",
    "coerce_fault_model",
    "defect_free_yield",
    "max_cell_failure_probability",
    "min_defects_for_yield",
]
