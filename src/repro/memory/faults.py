"""Fault-location maps and fault models for memory arrays.

The system-level fault simulator (paper Section 4) creates, "for various
number of defects Nf, an array instance with random fault locations"; when a
stored bit maps to a faulty cell "the bit is inverted to indicate a
bit-error".  This module generates those fault maps (exactly-Nf, Bernoulli
per-cell, or clustered) and applies the chosen fault semantics (bit-flip,
stuck-at-0/1) to stored data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_non_negative_int, ensure_positive_int, ensure_probability


class FaultModel(str, Enum):
    """Semantics of a faulty cell on read-out."""

    #: The stored bit is inverted (the paper's model).
    BIT_FLIP = "bit-flip"
    #: The cell always reads 0 regardless of what was written.
    STUCK_AT_0 = "stuck-at-0"
    #: The cell always reads 1 regardless of what was written.
    STUCK_AT_1 = "stuck-at-1"
    #: Each faulty cell is independently assigned stuck-at-0 or stuck-at-1.
    STUCK_AT_RANDOM = "stuck-at-random"


@dataclass(frozen=True)
class FaultModelSpec:
    """A fault model plus the spatial placement of the faulty cells.

    The historical tokens (``"bit-flip"``, ``"stuck-at-0"``, ...) keep their
    uniform placement; ``"clustered:<r>"`` places the same exact fault count
    in spatially-correlated clusters of Chebyshev radius ``r`` on the
    ``(word, bit)`` grid (shared-well / multi-cell defects), with the
    paper's bit-flip read-out semantics.

    Attributes
    ----------
    model:
        Read-out semantics of faulty cells.
    placement:
        ``"uniform"`` (independent random locations) or ``"clustered"``.
    cluster_radius:
        Chebyshev radius of one cluster (``0`` for uniform placement).
    """

    model: FaultModel = FaultModel.BIT_FLIP
    placement: str = "uniform"
    cluster_radius: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "model", FaultModel(self.model))
        if self.placement not in ("uniform", "clustered"):
            raise ValueError(
                f"placement must be 'uniform' or 'clustered', got {self.placement!r}"
            )
        if self.placement == "clustered":
            ensure_positive_int(self.cluster_radius, "cluster_radius")
        elif self.cluster_radius != 0:
            raise ValueError("cluster_radius applies to clustered placement only")

    @property
    def token(self) -> str:
        """The canonical string token naming this spec."""
        if self.placement == "clustered":
            return f"clustered:{self.cluster_radius}"
        return self.model.value

    @classmethod
    def parse(cls, value: "FaultModelSpec | FaultModel | str") -> "FaultModelSpec":
        """Resolve a fault-model token (or instance) to a spec.

        Accepts an existing spec (returned unchanged), a :class:`FaultModel`
        and the string tokens ``"bit-flip"`` / ``"stuck-at-*"`` (uniform
        placement) or ``"clustered:<r>"`` (clustered bit-flips of radius
        *r*).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, FaultModel):
            return cls(model=value)
        token = str(value).strip().lower()
        if token.startswith("clustered:"):
            try:
                radius = int(token[10:])
            except ValueError:
                raise ValueError(
                    f"bad fault-model token {value!r}: clustered:<r> needs an integer"
                ) from None
            return cls(placement="clustered", cluster_radius=radius)
        try:
            return cls(model=FaultModel(token))
        except ValueError:
            raise ValueError(
                f"unknown fault-model token {value!r}; use one of "
                f"{[m.value for m in FaultModel]} or 'clustered:<r>'"
            ) from None


def coerce_fault_model(
    value: "FaultModelSpec | FaultModel | str",
) -> "FaultModel | FaultModelSpec":
    """Normalise a fault-model token for storage on a work item.

    Uniform placements reduce to the plain :class:`FaultModel` (keeping the
    historical task contents byte-for-byte); clustered placements keep the
    full :class:`FaultModelSpec`.
    """
    spec = FaultModelSpec.parse(value)
    return spec.model if spec.placement == "uniform" else spec


@dataclass
class FaultMap:
    """Fault locations of one memory-array instance (one manufactured die).

    Attributes
    ----------
    num_words, bits_per_word:
        Array organisation: one stored word per LLR, one column per LLR bit.
    fault_mask:
        Boolean array of shape ``(num_words, bits_per_word)``; ``True`` marks
        a faulty cell.
    fault_model:
        Read-out semantics of faulty cells.
    stuck_values:
        For stuck-at models, the value each faulty cell is stuck at (same
        shape as :attr:`fault_mask`; ignored for bit-flip faults).
    """

    num_words: int
    bits_per_word: int
    fault_mask: np.ndarray
    fault_model: FaultModel = FaultModel.BIT_FLIP
    stuck_values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_words, "num_words")
        ensure_positive_int(self.bits_per_word, "bits_per_word")
        mask = np.asarray(self.fault_mask, dtype=bool)
        if mask.shape != (self.num_words, self.bits_per_word):
            raise ValueError(
                f"fault_mask shape {mask.shape} does not match "
                f"({self.num_words}, {self.bits_per_word})"
            )
        self.fault_mask = mask
        self.fault_model = FaultModel(self.fault_model)
        if self.fault_model in (FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1):
            value = 0 if self.fault_model is FaultModel.STUCK_AT_0 else 1
            self.stuck_values = np.full(mask.shape, value, dtype=np.int8)
        elif self.fault_model is FaultModel.STUCK_AT_RANDOM and self.stuck_values is None:
            raise ValueError("stuck_values required for the stuck-at-random fault model")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_words: int, bits_per_word: int) -> "FaultMap":
        """A defect-free array instance."""
        mask = np.zeros((num_words, bits_per_word), dtype=bool)
        return cls(num_words, bits_per_word, mask)

    @classmethod
    def with_exact_fault_count(
        cls,
        num_words: int,
        bits_per_word: int,
        num_faults: int,
        rng: RngLike = None,
        fault_model: FaultModel = FaultModel.BIT_FLIP,
        protected_columns: Optional[np.ndarray] = None,
    ) -> "FaultMap":
        """Place exactly *num_faults* faults uniformly at random.

        This is the paper's selection-criterion model: the worst-case die that
        passes inspection has exactly ``Nf`` faulty cells at unknown random
        locations.

        Parameters
        ----------
        protected_columns:
            Optional boolean array of length *bits_per_word*; ``True`` marks
            bit positions implemented in robust cells that cannot fail.  The
            ``num_faults`` faults are then distributed over the unprotected
            columns only (the hybrid-array acceptance criterion of Section 6).
        """
        ensure_positive_int(num_words, "num_words")
        ensure_positive_int(bits_per_word, "bits_per_word")
        num_faults = ensure_non_negative_int(num_faults, "num_faults")
        generator = as_rng(rng)

        if protected_columns is None:
            eligible_columns = np.arange(bits_per_word)
        else:
            protected = np.asarray(protected_columns, dtype=bool)
            if protected.shape != (bits_per_word,):
                raise ValueError("protected_columns must have length bits_per_word")
            eligible_columns = np.nonzero(~protected)[0]

        num_eligible = num_words * eligible_columns.size
        if num_faults > num_eligible:
            raise ValueError(
                f"cannot place {num_faults} faults in {num_eligible} eligible cells"
            )
        mask = np.zeros((num_words, bits_per_word), dtype=bool)
        if num_faults and eligible_columns.size:
            flat_choice = generator.choice(num_eligible, size=num_faults, replace=False)
            rows = flat_choice // eligible_columns.size
            cols = eligible_columns[flat_choice % eligible_columns.size]
            mask[rows, cols] = True

        stuck = None
        if fault_model is FaultModel.STUCK_AT_RANDOM:
            stuck = generator.integers(0, 2, size=mask.shape, dtype=np.int8)
        return cls(num_words, bits_per_word, mask, fault_model, stuck)

    @classmethod
    def from_cell_failure_probability(
        cls,
        num_words: int,
        bits_per_word: int,
        cell_failure_probability: float,
        rng: RngLike = None,
        fault_model: FaultModel = FaultModel.BIT_FLIP,
        column_failure_probabilities: Optional[np.ndarray] = None,
    ) -> "FaultMap":
        """Draw each cell independently faulty with probability ``Pcell``.

        Models the population of manufactured dies at a given operating point
        (rather than the worst accepted die).

        Parameters
        ----------
        column_failure_probabilities:
            Optional per-bit-position probabilities overriding the scalar
            (used for hybrid 6T/8T arrays where columns differ).
        """
        ensure_positive_int(num_words, "num_words")
        ensure_positive_int(bits_per_word, "bits_per_word")
        generator = as_rng(rng)
        if column_failure_probabilities is None:
            p = ensure_probability(cell_failure_probability, "cell_failure_probability")
            probabilities = np.full(bits_per_word, p)
        else:
            probabilities = np.asarray(column_failure_probabilities, dtype=np.float64)
            if probabilities.shape != (bits_per_word,):
                raise ValueError(
                    "column_failure_probabilities must have length bits_per_word"
                )
        mask = generator.random((num_words, bits_per_word)) < probabilities[None, :]
        stuck = None
        if fault_model is FaultModel.STUCK_AT_RANDOM:
            stuck = generator.integers(0, 2, size=mask.shape, dtype=np.int8)
        return cls(num_words, bits_per_word, mask, fault_model, stuck)

    @classmethod
    def with_clustered_fault_count(
        cls,
        num_words: int,
        bits_per_word: int,
        num_faults: int,
        cluster_radius: int,
        rng: RngLike = None,
        fault_model: FaultModel = FaultModel.BIT_FLIP,
        protected_columns: Optional[np.ndarray] = None,
    ) -> "FaultMap":
        """Place exactly *num_faults* faults in spatially-correlated clusters.

        The clustered counterpart of :meth:`with_exact_fault_count` (same
        marginal defect rate by construction, same acceptance-criterion
        semantics): cluster centres are drawn uniformly over the eligible
        cells, and each cluster marks the eligible cells within Chebyshev
        radius *cluster_radius* of its centre on the ``(word, bit)`` grid —
        nearest first — until the fault budget is spent.  Models multi-cell
        defects (shared wells, supply droop) whose burst errors the channel
        interleaver is supposed to break up.

        Parameters
        ----------
        cluster_radius:
            Chebyshev radius of one cluster; radius ``r`` covers up to
            ``(2r + 1)^2`` cells.
        protected_columns:
            Optional boolean array of length *bits_per_word*; ``True`` marks
            robust bit positions that cannot fail (clusters flow around
            them).
        """
        ensure_positive_int(num_words, "num_words")
        ensure_positive_int(bits_per_word, "bits_per_word")
        num_faults = ensure_non_negative_int(num_faults, "num_faults")
        cluster_radius = ensure_positive_int(cluster_radius, "cluster_radius")
        generator = as_rng(rng)

        if protected_columns is None:
            eligible_columns = np.arange(bits_per_word)
        else:
            protected = np.asarray(protected_columns, dtype=bool)
            if protected.shape != (bits_per_word,):
                raise ValueError("protected_columns must have length bits_per_word")
            eligible_columns = np.nonzero(~protected)[0]

        num_eligible = num_words * eligible_columns.size
        if num_faults > num_eligible:
            raise ValueError(
                f"cannot place {num_faults} faults in {num_eligible} eligible cells"
            )
        mask = np.zeros((num_words, bits_per_word), dtype=bool)
        placed = 0
        while placed < num_faults:
            flat = int(generator.integers(0, num_eligible))
            centre_row = flat // eligible_columns.size
            centre_col = int(eligible_columns[flat % eligible_columns.size])
            rows = np.arange(
                max(0, centre_row - cluster_radius),
                min(num_words, centre_row + cluster_radius + 1),
            )
            cols = eligible_columns[
                np.abs(eligible_columns - centre_col) <= cluster_radius
            ]
            grid_rows, grid_cols = np.meshgrid(rows, cols, indexing="ij")
            grid_rows, grid_cols = grid_rows.ravel(), grid_cols.ravel()
            fresh = ~mask[grid_rows, grid_cols]
            grid_rows, grid_cols = grid_rows[fresh], grid_cols[fresh]
            if not grid_rows.size:
                continue  # the whole neighbourhood is already faulty
            distance = np.maximum(
                np.abs(grid_rows - centre_row), np.abs(grid_cols - centre_col)
            )
            order = np.lexsort((grid_cols, grid_rows, distance))
            take = order[: num_faults - placed]
            mask[grid_rows[take], grid_cols[take]] = True
            placed += take.size

        stuck = None
        if fault_model is FaultModel.STUCK_AT_RANDOM:
            stuck = generator.integers(0, 2, size=mask.shape, dtype=np.int8)
        return cls(num_words, bits_per_word, mask, fault_model, stuck)

    @classmethod
    def clustered(
        cls,
        num_words: int,
        bits_per_word: int,
        num_clusters: int,
        cluster_size: int,
        rng: RngLike = None,
        fault_model: FaultModel = FaultModel.BIT_FLIP,
    ) -> "FaultMap":
        """Faults grouped in word-adjacent clusters (e.g. shared-well defects).

        Each cluster corrupts ``cluster_size`` consecutive words in one random
        bit column.  Used to study whether spatial correlation of defects
        changes the resilience conclusions (it should not, thanks to the
        channel interleaver).
        """
        ensure_positive_int(num_words, "num_words")
        ensure_positive_int(bits_per_word, "bits_per_word")
        ensure_non_negative_int(num_clusters, "num_clusters")
        ensure_positive_int(cluster_size, "cluster_size")
        generator = as_rng(rng)
        mask = np.zeros((num_words, bits_per_word), dtype=bool)
        for _ in range(num_clusters):
            col = int(generator.integers(0, bits_per_word))
            start = int(generator.integers(0, max(num_words - cluster_size + 1, 1)))
            mask[start : start + cluster_size, col] = True
        stuck = None
        if fault_model is FaultModel.STUCK_AT_RANDOM:
            stuck = generator.integers(0, 2, size=mask.shape, dtype=np.int8)
        return cls(num_words, bits_per_word, mask, fault_model, stuck)

    # ------------------------------------------------------------------ #
    # properties and application
    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        """Total number of cells in the array."""
        return self.num_words * self.bits_per_word

    @property
    def num_faults(self) -> int:
        """Number of faulty cells."""
        return int(self.fault_mask.sum())

    @property
    def defect_rate(self) -> float:
        """Fraction of faulty cells."""
        return self.num_faults / self.num_cells

    def faults_per_column(self) -> np.ndarray:
        """Number of faulty cells in each bit position (column)."""
        return self.fault_mask.sum(axis=0)

    def apply_to_bits(self, stored_bits: np.ndarray) -> np.ndarray:
        """Return the bits as read out through the faulty cells.

        Parameters
        ----------
        stored_bits:
            Array of shape ``(num_words, bits_per_word)`` of written values.
        """
        bits = np.asarray(stored_bits, dtype=np.int8)
        if bits.shape != self.fault_mask.shape:
            raise ValueError(
                f"stored_bits shape {bits.shape} does not match fault map "
                f"{self.fault_mask.shape}"
            )
        out = bits.copy()
        if self.fault_model is FaultModel.BIT_FLIP:
            out[self.fault_mask] ^= 1
        else:
            out[self.fault_mask] = self.stuck_values[self.fault_mask]
        return out

    def row_slice(self, start: int, stop: int) -> "FaultMap":
        """Return the fault map of a contiguous word range ``[start, stop)``.

        Used to partition one physical array among regions (e.g. one region
        per stored HARQ transmission) while keeping a single die-wide fault
        map.
        """
        if not 0 <= start < stop <= self.num_words:
            raise ValueError(f"invalid row range [{start}, {stop}) for {self.num_words} words")
        mask = self.fault_mask[start:stop].copy()
        stuck = self.stuck_values[start:stop].copy() if self.stuck_values is not None else None
        return FaultMap(stop - start, self.bits_per_word, mask, self.fault_model, stuck)

    def restrict_to_columns(self, columns: np.ndarray) -> "FaultMap":
        """Return a copy with faults only in the selected bit positions."""
        cols = np.asarray(columns, dtype=np.int64)
        mask = np.zeros_like(self.fault_mask)
        mask[:, cols] = self.fault_mask[:, cols]
        return FaultMap(
            self.num_words, self.bits_per_word, mask, self.fault_model, self.stuck_values
        )
