"""Hamming error-correcting codes for memory words.

Section 6.2 of the paper argues that protecting all 10 LLR bits with a
single-error-correcting (SEC) Hamming code costs about 35 % area overhead
(4 redundant bits for 10 data bits) and that higher-order ECC exceeds 50 %.
This module implements SEC and SEC-DED Hamming codes over configurable data
widths so those overheads — and the actual error-correction behaviour — can
be reproduced rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ensure_positive_int


def _num_parity_bits(data_bits: int) -> int:
    """Minimum r with 2**r >= data_bits + r + 1 (Hamming bound for SEC)."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


@dataclass(frozen=True)
class HammingCode:
    """Systematic Hamming single-error-correcting code.

    Parameters
    ----------
    data_bits:
        Number of information bits per word (e.g. 10 for a 10-bit LLR).
    extended:
        If ``True``, add an overall parity bit for double-error detection
        (SEC-DED).

    Notes
    -----
    The code is built in systematic form: the generator matrix is
    ``[I | P]`` and codewords are ``[data | parity]``.  Decoding computes the
    syndrome, corrects at most one flipped bit and reports whether a
    correction was applied / an uncorrectable error was detected.
    """

    data_bits: int = 10
    extended: bool = False

    _parity_matrix: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        ensure_positive_int(self.data_bits, "data_bits")
        r = _num_parity_bits(self.data_bits)
        # Columns of the parity-check matrix for data positions: all r-bit
        # patterns with weight >= 2 (so they are distinct from the identity
        # columns used for the parity bits themselves).
        data_columns = []
        for value in range(3, 1 << r):
            if bin(value).count("1") >= 2:
                data_columns.append([(value >> (r - 1 - i)) & 1 for i in range(r)])
            if len(data_columns) == self.data_bits:
                break
        if len(data_columns) < self.data_bits:
            raise ValueError(f"data_bits={self.data_bits} too large for {r} parity bits")
        parity_matrix = np.array(data_columns, dtype=np.int8).T  # (r, data_bits)
        object.__setattr__(self, "_parity_matrix", parity_matrix)

    # ------------------------------------------------------------------ #
    @property
    def num_parity_bits(self) -> int:
        """Number of parity bits (excluding the DED bit)."""
        return int(self._parity_matrix.shape[0])

    @property
    def codeword_bits(self) -> int:
        """Total stored bits per word."""
        return self.data_bits + self.num_parity_bits + (1 if self.extended else 0)

    @property
    def overhead(self) -> float:
        """Storage overhead relative to the unprotected word."""
        return (self.codeword_bits - self.data_bits) / self.data_bits

    # ------------------------------------------------------------------ #
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data words.

        Parameters
        ----------
        data:
            Bit array of shape ``(num_words, data_bits)``.

        Returns
        -------
        numpy.ndarray
            Codeword bits of shape ``(num_words, codeword_bits)``.
        """
        bits = np.asarray(data, dtype=np.int8)
        if bits.ndim != 2 or bits.shape[1] != self.data_bits:
            raise ValueError(f"expected shape (n, {self.data_bits}), got {bits.shape}")
        parity = (bits @ self._parity_matrix.T) % 2
        codewords = np.concatenate([bits, parity], axis=1)
        if self.extended:
            overall = codewords.sum(axis=1, keepdims=True) % 2
            codewords = np.concatenate([codewords, overall], axis=1)
        return codewords.astype(np.int8)

    def decode(self, codewords: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode (possibly corrupted) codewords.

        Returns
        -------
        tuple
            ``(data, corrected, uncorrectable)`` — decoded data bits, a
            boolean flag per word indicating whether a single-bit correction
            was applied, and a boolean flag per word for detected-but-
            uncorrectable errors (always ``False`` for the plain SEC code,
            which miscorrects double errors instead).
        """
        received = np.asarray(codewords, dtype=np.int8)
        if received.ndim != 2 or received.shape[1] != self.codeword_bits:
            raise ValueError(
                f"expected shape (n, {self.codeword_bits}), got {received.shape}"
            )
        ded_bit = None
        body = received
        if self.extended:
            ded_bit = received[:, -1]
            body = received[:, :-1]

        data_part = body[:, : self.data_bits]
        parity_part = body[:, self.data_bits :]
        syndrome = (data_part @ self._parity_matrix.T + parity_part) % 2  # (n, r)

        corrected_data = data_part.copy()
        corrected = np.zeros(received.shape[0], dtype=bool)
        uncorrectable = np.zeros(received.shape[0], dtype=bool)

        nonzero = syndrome.any(axis=1)
        if nonzero.any():
            # Match each nonzero syndrome against the data columns first,
            # then against the parity identity columns.
            columns = self._parity_matrix.T  # (data_bits, r)
            for idx in np.nonzero(nonzero)[0]:
                s = syndrome[idx]
                matches = np.nonzero((columns == s).all(axis=1))[0]
                if matches.size:
                    corrected_data[idx, matches[0]] ^= 1
                    corrected[idx] = True
                else:
                    weight = int(s.sum())
                    if weight == 1:
                        # Error in a parity bit: data unaffected.
                        corrected[idx] = True
                    else:
                        uncorrectable[idx] = True

        if self.extended and ded_bit is not None:
            overall_parity = (body.sum(axis=1) + ded_bit) % 2
            # Even overall parity with nonzero syndrome indicates a double error.
            double_error = nonzero & (overall_parity == 0)
            uncorrectable |= double_error
            corrected &= ~double_error
        return corrected_data.astype(np.int8), corrected, uncorrectable

    # ------------------------------------------------------------------ #
    def word_failure_probability(self, cell_failure_probability: float) -> float:
        """Probability that a word is *not* fully corrected.

        With SEC protection a stored word fails only when two or more of its
        cells are faulty — the standard reliability-improvement computation
        the paper cites for ECC-protected arrays.
        """
        from scipy.stats import binom

        n = self.codeword_bits
        p = float(cell_failure_probability)
        return float(1.0 - binom.cdf(1, n, p))
