"""Redundant row/column repair — the conventional yield-recovery technique.

Section 3 of the paper notes that "the addition of redundant rows/columns
could help to recover from such defects, but as the size of memory and the
number of defects increases they are insufficient to avoid yield loss".  This
module models that technique so benchmarks can quantify exactly when it stops
being sufficient, as a baseline against the paper's accept-defects approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.faults import FaultMap
from repro.utils.validation import ensure_non_negative_int, ensure_positive_int


@dataclass(frozen=True)
class RedundancyRepair:
    """Spare-row / spare-column repair of a 2-D cell array.

    Parameters
    ----------
    spare_rows:
        Number of spare word rows available for remapping.
    spare_columns:
        Number of spare bit columns available for remapping.
    """

    spare_rows: int = 0
    spare_columns: int = 0

    def __post_init__(self) -> None:
        ensure_non_negative_int(self.spare_rows, "spare_rows")
        ensure_non_negative_int(self.spare_columns, "spare_columns")

    # ------------------------------------------------------------------ #
    def repair(self, fault_map: FaultMap) -> tuple[FaultMap, bool]:
        """Attempt to repair *fault_map* with the available spares.

        Uses the standard greedy must-repair heuristic: rows (columns) with
        more faults than the remaining column (row) spares must be replaced
        by a spare row (column); remaining single faults are covered by
        whichever spare type is still available.

        Returns
        -------
        tuple
            ``(repaired_map, fully_repaired)`` — a fault map with the
            repaired cells cleared, and a flag indicating whether every
            faulty cell was covered.
        """
        mask = fault_map.fault_mask.copy()
        rows_left = self.spare_rows
        cols_left = self.spare_columns

        # Must-repair phase.
        changed = True
        while changed:
            changed = False
            row_fault_counts = mask.sum(axis=1)
            must_rows = np.nonzero(row_fault_counts > cols_left)[0]
            for row in must_rows:
                if rows_left == 0:
                    break
                if mask[row].any():
                    mask[row, :] = False
                    rows_left -= 1
                    changed = True
            col_fault_counts = mask.sum(axis=0)
            must_cols = np.nonzero(col_fault_counts > rows_left)[0]
            for col in must_cols:
                if cols_left == 0:
                    break
                if mask[:, col].any():
                    mask[:, col] = False
                    cols_left -= 1
                    changed = True

        # Final greedy phase: cover remaining faults with whatever is left.
        while mask.any() and (rows_left > 0 or cols_left > 0):
            row_fault_counts = mask.sum(axis=1)
            col_fault_counts = mask.sum(axis=0)
            best_row = int(np.argmax(row_fault_counts))
            best_col = int(np.argmax(col_fault_counts))
            use_row = rows_left > 0 and (
                cols_left == 0 or row_fault_counts[best_row] >= col_fault_counts[best_col]
            )
            if use_row:
                mask[best_row, :] = False
                rows_left -= 1
            else:
                mask[:, best_col] = False
                cols_left -= 1

        repaired = FaultMap(
            fault_map.num_words,
            fault_map.bits_per_word,
            mask,
            fault_map.fault_model,
            fault_map.stuck_values,
        )
        return repaired, bool(not mask.any())

    # ------------------------------------------------------------------ #
    def repair_yield(
        self,
        cell_failure_probability: float,
        num_words: int,
        bits_per_word: int,
        num_trials: int = 200,
        rng=None,
    ) -> float:
        """Monte-Carlo estimate of the yield achieved with this repair scheme."""
        ensure_positive_int(num_trials, "num_trials")
        from repro.utils.rng import child_rngs

        successes = 0
        for trial_rng in child_rngs(rng, num_trials):
            fault_map = FaultMap.from_cell_failure_probability(
                num_words, bits_per_word, cell_failure_probability, trial_rng
            )
            _, fully_repaired = self.repair(fault_map)
            successes += int(fully_repaired)
        return successes / num_trials

    @property
    def area_overhead(self) -> float:
        """Storage overhead of the spares for a reference 256-row, 10-column array.

        Provided for quick comparisons; precise overheads depend on the array
        organisation and are computed by :class:`repro.memory.power.AreaModel`.
        """
        reference_rows, reference_cols = 256, 10
        extra = self.spare_rows * reference_cols + self.spare_columns * reference_rows
        return extra / (reference_rows * reference_cols)
