"""Behavioural model of an SRAM array with an explicit fault map.

The :class:`MemoryArray` is what the HARQ soft buffer is built on: it stores
fixed-width words (one per LLR), and reads them back through the array's
fault map, flipping (or forcing) the bits that land on faulty cells — exactly
the injection mechanism of the paper's system-level fault simulator.

Optionally the array can protect its words with a Hamming code
(:class:`~repro.memory.ecc.HammingCode`), modelling the conventional
full-ECC alternative of Section 6.2: the parity bits are stored in (and read
back through) additional columns of the same unreliable fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.memory.ecc import HammingCode
from repro.memory.faults import FaultMap
from repro.utils.rng import as_rng
from repro.utils.validation import ensure_positive_int, ensure_probability


@dataclass
class MemoryArray:
    """A word-organised SRAM array with fault injection on read.

    Parameters
    ----------
    num_words:
        Number of storage words (one per quantized LLR in the HARQ buffer).
    bits_per_word:
        Data bits per word (the LLR quantizer width).
    fault_map:
        Fault locations and semantics; defaults to a defect-free array.  The
        fault map must cover the *stored* word width, i.e.
        ``bits_per_word`` columns without ECC or ``ecc.codeword_bits``
        columns with ECC.
    ecc:
        Optional Hamming code protecting every word.
    soft_error_rate:
        Probability that any cell suffers a *transient* (non-persistent)
        upset per read — the paper's soft-error mechanism.  Unlike the
        persistent fault map, these flips are redrawn on every read and
        compose with the persistent faults (a flipped faulty cell flips the
        already-corrupted value).  The default 0.0 disables the mechanism
        and consumes no randomness.
    soft_error_rng:
        Seed or generator driving the per-read upsets (required for
        reproducible soft-error runs; fresh OS entropy when omitted).
    """

    num_words: int
    bits_per_word: int
    fault_map: Optional[FaultMap] = None
    ecc: Optional[HammingCode] = None
    soft_error_rate: float = 0.0
    soft_error_rng: object = None

    _stored_bits: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_words, "num_words")
        ensure_positive_int(self.bits_per_word, "bits_per_word")
        ensure_probability(self.soft_error_rate, "soft_error_rate")
        if self.soft_error_rate > 0.0:
            self.soft_error_rng = as_rng(self.soft_error_rng)
        if self.ecc is not None and self.ecc.data_bits != self.bits_per_word:
            raise ValueError(
                f"ECC data width {self.ecc.data_bits} does not match "
                f"bits_per_word {self.bits_per_word}"
            )
        if self.fault_map is None:
            self.fault_map = FaultMap.empty(self.num_words, self.stored_bits_per_word)
        if self.fault_map.num_words != self.num_words:
            raise ValueError(
                f"fault map covers {self.fault_map.num_words} words, array has {self.num_words}"
            )
        if self.fault_map.bits_per_word != self.stored_bits_per_word:
            raise ValueError(
                f"fault map covers {self.fault_map.bits_per_word} bit columns, "
                f"array stores {self.stored_bits_per_word}"
            )
        self._stored_bits = np.zeros(
            (self.num_words, self.stored_bits_per_word), dtype=np.int8
        )

    # ------------------------------------------------------------------ #
    @property
    def stored_bits_per_word(self) -> int:
        """Physical columns per word (data bits, plus parity bits with ECC)."""
        return self.ecc.codeword_bits if self.ecc is not None else self.bits_per_word

    @property
    def num_cells(self) -> int:
        """Total number of bit cells in the array."""
        return self.num_words * self.stored_bits_per_word

    @property
    def defect_rate(self) -> float:
        """Fraction of faulty cells in the array."""
        return self.fault_map.defect_rate

    # ------------------------------------------------------------------ #
    def write_words(self, words: np.ndarray, word_bits: np.ndarray | None = None) -> None:
        """Write unsigned word values into the array.

        Parameters
        ----------
        words:
            Integer array of length :attr:`num_words` (each fitting in
            ``bits_per_word`` bits).  Ignored when *word_bits* is given.
        word_bits:
            Alternative interface: a ``(num_words, bits_per_word)`` bit
            matrix (MSB first), avoiding a redundant pack/unpack round trip.
        """
        if word_bits is not None:
            bits = np.asarray(word_bits, dtype=np.int8)
            if bits.shape != (self.num_words, self.bits_per_word):
                raise ValueError(
                    f"expected shape ({self.num_words}, {self.bits_per_word}), got {bits.shape}"
                )
        else:
            values = np.asarray(words, dtype=np.int64)
            if values.shape != (self.num_words,):
                raise ValueError(f"expected {self.num_words} words, got {values.shape}")
            if values.size and (values.min() < 0 or values.max() >= (1 << self.bits_per_word)):
                raise ValueError(f"word values must fit in {self.bits_per_word} bits")
            shifts = np.arange(self.bits_per_word - 1, -1, -1, dtype=np.int64)
            bits = ((values[:, None] >> shifts[None, :]) & 1).astype(np.int8)
        if self.ecc is not None:
            bits = self.ecc.encode(bits)
        self._stored_bits = bits.astype(np.int8)

    def read_bits(self) -> np.ndarray:
        """Read the raw stored bits back through the fault map (no ECC decode).

        Transient soft errors (if enabled) are drawn independently on every
        read, *after* the persistent fault map is applied.
        """
        read = self.fault_map.apply_to_bits(self._stored_bits)
        if self.soft_error_rate > 0.0:
            upsets = self.soft_error_rng.random(read.shape) < self.soft_error_rate
            read[upsets] ^= 1
        return read

    def read_words(self) -> np.ndarray:
        """Read back word values, applying fault injection and ECC correction."""
        read = self.read_bits()
        if self.ecc is not None:
            data_bits, _, _ = self.ecc.decode(read)
        else:
            data_bits = read
        weights = 1 << np.arange(self.bits_per_word - 1, -1, -1, dtype=np.int64)
        return data_bits.astype(np.int64) @ weights

    def read_word_bits(self) -> np.ndarray:
        """Read back the data-bit matrix (fault injection + ECC correction applied)."""
        read = self.read_bits()
        if self.ecc is not None:
            data_bits, _, _ = self.ecc.decode(read)
            return data_bits
        return read

    # ------------------------------------------------------------------ #
    def corrupted_word_count(self) -> int:
        """Number of words whose read-back data differs from what was written."""
        written_data = (
            self._stored_bits[:, : self.bits_per_word]
            if self.ecc is not None
            else self._stored_bits
        )
        return int(np.any(self.read_word_bits() != written_data, axis=1).sum())

    def clear(self) -> None:
        """Reset the stored contents to all zeros (fault map unchanged)."""
        self._stored_bits = np.zeros_like(self._stored_bits)
