"""Combined cell-failure model: parametric variations + soft errors.

Section 3 of the paper distinguishes *persistent* failures (parametric, i.e.
RDF-induced read/write/access/hold failures that determine yield) and
*non-persistent* failures (soft errors).  This module combines the two into a
single per-cell failure probability for a given operating point, and breaks
the parametric component down into the four mechanisms listed in the paper so
that sensitivity studies can weight them separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.memory.cells import BitCellType, CELL_6T, SoftErrorModel
from repro.utils.validation import ensure_probability

#: Default split of the parametric failure probability across mechanisms.
#: Read-stability failures dominate for 6T cells under voltage scaling.
DEFAULT_MECHANISM_WEIGHTS: Dict[str, float] = {
    "read_upset": 0.45,
    "write_failure": 0.30,
    "access_time": 0.15,
    "hold_failure": 0.10,
}


@dataclass(frozen=True)
class FailureModel:
    """Per-cell failure probability at a given supply voltage.

    Parameters
    ----------
    cell:
        Bit-cell type providing the parametric failure curve.
    soft_errors:
        Soft-error model (``None`` disables the non-persistent component).
    mechanism_weights:
        Relative weights of the four parametric failure mechanisms; they are
        normalised to sum to one.
    """

    cell: BitCellType = CELL_6T
    soft_errors: SoftErrorModel | None = field(default_factory=SoftErrorModel)
    mechanism_weights: tuple = tuple(DEFAULT_MECHANISM_WEIGHTS.items())

    def __post_init__(self) -> None:
        weights = dict(self.mechanism_weights)
        if not weights:
            raise ValueError("mechanism_weights must not be empty")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("mechanism_weights must sum to a positive value")
        normalised = tuple((k, v / total) for k, v in weights.items())
        object.__setattr__(self, "mechanism_weights", normalised)

    # ------------------------------------------------------------------ #
    def parametric_failure_probability(self, vdd: float) -> float:
        """Persistent (yield-relevant) per-cell failure probability."""
        return self.cell.failure_probability(vdd)

    def soft_error_probability(self, vdd: float) -> float:
        """Non-persistent per-cell upset probability per exposure interval."""
        if self.soft_errors is None:
            return 0.0
        return self.soft_errors.rate(vdd)

    def total_failure_probability(self, vdd: float) -> float:
        """Probability that a cell is unreliable at *vdd* (either mechanism)."""
        p_param = self.parametric_failure_probability(vdd)
        p_soft = self.soft_error_probability(vdd)
        # Independent mechanisms: union bound made exact.
        return float(1.0 - (1.0 - p_param) * (1.0 - p_soft))

    def mechanism_breakdown(self, vdd: float) -> Dict[str, float]:
        """Split the parametric failure probability across mechanisms."""
        p_param = self.parametric_failure_probability(vdd)
        return {name: weight * p_param for name, weight in self.mechanism_weights}

    # ------------------------------------------------------------------ #
    def voltage_sweep(self, voltages: np.ndarray) -> Dict[str, np.ndarray]:
        """Evaluate the model over an array of supply voltages.

        Returns a dict with ``"parametric"``, ``"soft"`` and ``"total"``
        per-cell probabilities (arrays aligned with *voltages*).
        """
        volts = np.asarray(voltages, dtype=np.float64)
        parametric = self.cell.failure_probabilities(volts)
        soft = (
            self.soft_errors.rates(volts)
            if self.soft_errors is not None
            else np.zeros_like(volts)
        )
        total = 1.0 - (1.0 - parametric) * (1.0 - soft)
        return {"parametric": parametric, "soft": soft, "total": total}

    # ------------------------------------------------------------------ #
    def expected_defects(self, vdd: float, array_size: int) -> float:
        """Expected number of faulty cells in an array of *array_size* cells."""
        if array_size < 0:
            raise ValueError("array_size must be non-negative")
        return self.total_failure_probability(vdd) * array_size


def failure_probability_with_margin(base_probability: float, margin_sigma: float) -> float:
    """Scale a failure probability by an additional design margin (in sigma).

    Utility for what-if analyses: a positive margin reduces the failure
    probability as if the noise-margin distribution were shifted by
    ``margin_sigma`` standard deviations.
    """
    from scipy.stats import norm

    base_probability = ensure_probability(base_probability, "base_probability")
    if base_probability in (0.0, 1.0):
        return base_probability
    equivalent_sigma = norm.isf(base_probability)
    return float(norm.sf(equivalent_sigma + margin_sigma))
