"""``python -m repro`` — dispatch to the experiment runner CLI.

Subcommands include ``run`` (with ``--execution-backend
serial|process|socket``), ``worker`` (the socket-distributed worker
daemon), ``bler``, ``golden``, ``list`` and ``cache ls|clear``; see
:mod:`repro.runner.cli`.
"""

import sys

from repro.runner.cli import main

if __name__ == "__main__":
    sys.exit(main())
