"""Convenience wrapper bundling the turbo encoder and decoder."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy.rate_matching import split_systematic_priority_buffer_batch
from repro.phy.turbo.decoder import TurboDecoder, TurboDecoderResult
from repro.phy.turbo.encoder import TurboEncoder
from repro.phy.turbo.trellis import RscTrellis, UMTS_TRELLIS
from repro.utils.validation import ensure_positive_int


@dataclass
class TurboCode:
    """A matched turbo encoder/decoder pair sharing one internal interleaver.

    Parameters
    ----------
    block_size:
        Information bits per code block.
    num_iterations:
        Decoder iterations.
    interleaver_kind:
        Internal interleaver construction (``"qpp"`` or ``"random"``).
    backend:
        Decoder backend name (see :mod:`repro.phy.turbo.backends`).
    """

    block_size: int
    num_iterations: int = 6
    interleaver_kind: str = "qpp"
    trellis: RscTrellis = field(default_factory=lambda: UMTS_TRELLIS)
    extrinsic_scale: float = 0.75
    backend: str = "numpy"

    def __post_init__(self) -> None:
        ensure_positive_int(self.block_size, "block_size")
        self.encoder = TurboEncoder(
            self.block_size, self.interleaver_kind, trellis=self.trellis
        )
        self.decoder = TurboDecoder(
            self.block_size,
            self.num_iterations,
            trellis=self.trellis,
            interleaver=self.encoder.interleaver,
            extrinsic_scale=self.extrinsic_scale,
            backend=self.backend,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_coded_bits(self) -> int:
        """Total mother-code output length (3 * block_size)."""
        return self.encoder.num_coded_bits

    @property
    def rate(self) -> float:
        """Mother code rate."""
        return self.encoder.rate

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode information bits into the circular-buffer ordered sequence."""
        return self.encoder.encode(bits)

    def encode_batch(self, bits: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`encode` for a ``(batch, block_size)`` bit matrix."""
        return self.encoder.encode_batch(bits)

    def decode_buffer(self, buffer_llrs: np.ndarray) -> TurboDecoderResult:
        """Decode LLRs arranged in the circular-buffer order.

        Parameters
        ----------
        buffer_llrs:
            1-D array of ``3 * block_size`` LLRs (systematic first, then the
            interlaced parity streams), or a 2-D batch of such arrays.
        """
        arr = np.asarray(buffer_llrs)
        if arr.dtype != np.float32:
            # float32 rows stay in single precision end-to-end (the backend
            # casts to its own compute dtype); everything else keeps the
            # historical float64 path bit-for-bit (zero-copy when the input
            # is already float64).
            arr = np.asarray(arr, dtype=np.float64)
        single = arr.ndim == 1
        if single:
            arr = arr[None, :]
        if arr.shape[1] != self.num_coded_bits:
            raise ValueError(
                f"expected {self.num_coded_bits} LLRs per block, got {arr.shape[1]}"
            )
        sys_llrs, par1, par2 = split_systematic_priority_buffer_batch(
            arr, self.block_size
        )
        return self.decoder.decode(sys_llrs, par1, par2)
