"""Rate-1/3 parallel-concatenated (turbo) encoder."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy.turbo.interleaver import TurboInterleaver, make_turbo_interleaver
from repro.phy.turbo.trellis import RscTrellis, UMTS_TRELLIS
from repro.utils.validation import ensure_bit_array, ensure_positive_int


@dataclass(frozen=True)
class TurboEncoder:
    """UMTS-style rate-1/3 turbo encoder.

    Two identical RSC encoders operate on the information sequence and on its
    internally interleaved copy.  The output consists of three equal-length
    streams: the systematic bits, parity stream 1 (from the first encoder)
    and parity stream 2 (from the second encoder).

    The encoders are left unterminated (no tail bits).  The corresponding
    max-log-MAP decoders initialise the backward recursion uniformly, which
    costs a negligible fraction of a dB for the block lengths used here and
    keeps every stream exactly ``block_size`` bits long — which in turn keeps
    the HARQ circular buffer and the fault-injection address map simple.

    Parameters
    ----------
    block_size:
        Number of information bits per code block.
    interleaver_kind:
        ``"qpp"`` or ``"random"`` internal interleaver construction.
    trellis:
        Constituent-code trellis (UMTS (13, 15) by default).
    """

    block_size: int
    interleaver_kind: str = "qpp"
    trellis: RscTrellis = UMTS_TRELLIS
    interleaver: TurboInterleaver = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        ensure_positive_int(self.block_size, "block_size")
        object.__setattr__(
            self,
            "interleaver",
            make_turbo_interleaver(self.block_size, self.interleaver_kind),
        )

    @property
    def rate(self) -> float:
        """Mother code rate (1/3)."""
        return 1.0 / 3.0

    @property
    def num_coded_bits(self) -> int:
        """Total number of coded bits per block (3 * block_size)."""
        return 3 * self.block_size

    def encode_streams(self, bits: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode *bits*, returning (systematic, parity1, parity2) streams."""
        info = ensure_bit_array(bits)
        if info.size != self.block_size:
            raise ValueError(f"expected {self.block_size} bits, got {info.size}")
        parity1, _ = self.trellis.encode_bits(info)
        interleaved = self.interleaver.interleave(info)
        parity2, _ = self.trellis.encode_bits(interleaved)
        return info.copy(), parity1, parity2

    def encode_streams_batch(
        self, bits: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row-wise :meth:`encode_streams` for a ``(batch, block_size)`` matrix."""
        info = np.asarray(bits, dtype=np.int8)
        if info.ndim != 2 or info.shape[1] != self.block_size:
            raise ValueError(
                f"expected shape (batch, {self.block_size}), got {info.shape}"
            )
        parity1, _ = self.trellis.encode_bits_batch(info)
        interleaved = info[:, self.interleaver.permutation]
        parity2, _ = self.trellis.encode_bits_batch(interleaved)
        return info.copy(), parity1, parity2

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode *bits* into the multiplexed coded sequence.

        The output order is the circular-buffer order used by the rate
        matcher: all systematic bits first, then the two parity streams
        interlaced (see :func:`repro.phy.rate_matching.make_systematic_priority_buffer`).
        """
        from repro.phy.rate_matching import make_systematic_priority_buffer

        systematic, parity1, parity2 = self.encode_streams(bits)
        return make_systematic_priority_buffer(systematic, parity1, parity2)

    def encode_batch(self, bits: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`encode` for a ``(batch, block_size)`` bit matrix."""
        from repro.phy.rate_matching import make_systematic_priority_buffer_batch

        systematic, parity1, parity2 = self.encode_streams_batch(bits)
        return make_systematic_priority_buffer_batch(systematic, parity1, parity2)
