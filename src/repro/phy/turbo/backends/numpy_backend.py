"""Vectorised numpy max-log-MAP kernel with shared branch metrics.

This is the default backend.  Compared with the seed implementation it

* precomputes the branch metrics of **every** trellis step once per call and
  shares the table between the forward and the backward recursion (the seed
  kernel rebuilt them twice per step) — and builds only the backward-layout
  table with arithmetic: the forward-layout table contains exactly the same
  branch values in a different row order, so it is a single fused row-gather
  of the backward table instead of a second multiply/multiply/add pass,
* lays all state metrics out *batch-last* (``(num_states, batch)``), so the
  per-step max-reductions run over the trellis-state axis with a contiguous,
  SIMD-friendly inner loop over the batch,
* runs the trellis loop allocation-light with preallocated outputs and the
  minimum number of numpy calls per step, reusing one lazily-grown
  workspace across calls (Monte-Carlo decoding calls the kernel millions of
  times with a handful of distinct shapes), and
* supports a float32 mode for a smaller memory footprint.

In float64 mode every floating-point operation is performed on the same
operands in the same order as the seed kernel (max-reductions are exact, so
their grouping is free), making the decoder output bit-identical — the
property the golden-seed regression suite pins.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.phy.turbo.backends.base import NEG_INF, BackendSpec, SisoBackend
from repro.phy.turbo.trellis import RscTrellis


class _Workspace:
    """Lazily-grown flat buffer pools for one block size.

    Batches shrink as packets converge, so one call sees many distinct
    batch sizes; carving *contiguous* views out of flat pools keeps every
    per-step operand SIMD-friendly without reallocating per size.
    """

    _POOLS = {
        "combined": lambda b, k, s: b * k,
        "half_par": lambda b, k, s: b * k,
        "branch_fwd": lambda b, k, s: k * 2 * s * b,
        "branch_bwd": lambda b, k, s: k * 2 * s * b,
        "branch_tmp": lambda b, k, s: k * 2 * s * b,
        "alphas": lambda b, k, s: (k + 1) * s * b,
        "beta": lambda b, k, s: s * b,
        "metric": lambda b, k, s: 2 * s * b,
        "gsum": lambda b, k, s: 2 * s * b,
        "best": lambda b, k, s: 2 * b,
        "rowmax": lambda b, k, s: b,
        "app_t": lambda b, k, s: k * b,
    }

    def __init__(self, capacity: int, k: int, num_states: int, dtype: np.dtype) -> None:
        self.capacity = capacity
        self.k = k
        self.num_states = num_states
        self._buffers = {
            name: np.empty(size(capacity, k, num_states), dtype=dtype)
            for name, size in self._POOLS.items()
        }

    def view(self, name: str, shape: tuple) -> np.ndarray:
        """A contiguous view of the named pool with the requested shape."""
        length = 1
        for dim in shape:
            length *= dim
        return self._buffers[name][:length].reshape(shape)


class NumpySisoBackend(SisoBackend):
    """The rewritten vectorised numpy kernel (float64 or float32)."""

    def __init__(
        self,
        trellis: RscTrellis,
        block_size: int,
        spec: BackendSpec = BackendSpec("numpy", "float64"),
    ) -> None:
        super().__init__(trellis, block_size, spec)
        dtype = self.dtype
        num_states = trellis.num_states
        parity_sign = 1.0 - 2.0 * trellis.parity.astype(np.float64)  # (S, 2)
        input_sign = np.array([1.0, -1.0])
        prev_state = trellis.prev_state  # (S, 2)
        prev_input = trellis.prev_input  # (S, 2)
        next_state = trellis.next_state  # (S, 2)

        # Plane-major forward layout: flat row j * S + s' is the branch from
        # predecessor slot j into target state s', so the two predecessor
        # candidates of every state live in two contiguous planes and the
        # j-max is one contiguous pairwise maximum.
        self._prev_flat = prev_state.T.reshape(-1).astype(np.intp)

        # Plane-major backward layout: flat row u * S + s is the branch
        # leaving state s with input u.
        self._next_flat = next_state.T.reshape(-1).astype(np.intp)
        self._in_sign_bwd = np.repeat(input_sign, num_states).reshape(-1, 1).astype(dtype)
        self._par_sign_bwd = parity_sign.T.reshape(-1, 1).astype(dtype)

        # Fused branch-table build: forward row j * S + s' describes the same
        # trellis branch as backward row u * S + s with (s, u) =
        # (prev_state[s', j], prev_input[s', j]) — identical operands,
        # identical float operations — so the forward table is a pure row
        # gather of the backward table at this permutation.  One arithmetic
        # build (two multiplies + one add) serves both recursions, and the
        # gathered floats are bit-identical to what a second build would
        # produce, which is what keeps the golden suite pinned.
        self._fwd_from_bwd = (
            (prev_input.T * num_states + prev_state.T).reshape(-1).astype(np.intp)
        )

        self._num_states = num_states
        self._workspaces: Dict[int, _Workspace] = {}

    # ------------------------------------------------------------------ #
    def _workspace(self, batch: int, k: int) -> _Workspace:
        """The (grown-on-demand) scratch buffers for this block size."""
        ws = self._workspaces.get(k)
        if ws is None or ws.capacity < batch:
            capacity = batch if ws is None else max(batch, 2 * ws.capacity)
            ws = _Workspace(capacity, k, self._num_states, self.dtype)
            self._workspaces[k] = ws
        return ws

    # ------------------------------------------------------------------ #
    def siso(
        self,
        sys_llrs: np.ndarray,
        par_llrs: np.ndarray,
        apriori_llrs: np.ndarray,
        out: np.ndarray,
        *,
        terminated_start: bool = True,
    ) -> np.ndarray:
        batch, k = sys_llrs.shape
        num_states = self._num_states
        wide = 2 * num_states
        ws = self._workspace(batch, k)
        np_add, np_subtract, np_maximum = np.add, np.subtract, np.maximum
        max_reduce = np.maximum.reduce

        # gamma components: 0.5 * (Lsys + La) and 0.5 * Lpar, as in the seed.
        combined = ws.view("combined", (batch, k))
        np_add(sys_llrs, apriori_llrs, out=combined)
        combined *= 0.5
        half_par = np.multiply(par_llrs, 0.5, out=ws.view("half_par", (batch, k)))

        # Branch-metric tables for every step at once, shared by both
        # recursions: branch[t, m, b] = c[b, t] * in_sign[m] + p[b, t] * par_sign[m].
        # Only the backward layout is built arithmetically; the forward
        # layout holds the same branch values in permuted row order, so it
        # is one fused gather of the rows just computed (bit-identical to a
        # second multiply/multiply/add build, at a fraction of the cost).
        c_steps = combined.T[:, None, :]  # (k, 1, batch) view
        p_steps = half_par.T[:, None, :]
        branch_fwd = ws.view("branch_fwd", (k, wide, batch))
        branch_bwd = ws.view("branch_bwd", (k, wide, batch))
        branch_tmp = ws.view("branch_tmp", (k, wide, batch))
        np.multiply(c_steps, self._in_sign_bwd, out=branch_bwd)
        np.multiply(p_steps, self._par_sign_bwd, out=branch_tmp)
        branch_bwd += branch_tmp
        np.take(branch_bwd, self._fwd_from_bwd, axis=1, out=branch_fwd)

        # Forward recursion (all alphas stored, normalised per step).
        alphas = ws.view("alphas", (k + 1, num_states, batch))
        alpha = alphas[0]
        if terminated_start:
            alpha.fill(NEG_INF)
            alpha[0, :] = 0.0
        else:
            alpha.fill(0.0)
        prev_flat = self._prev_flat
        rowmax = ws.view("rowmax", (batch,))
        for t in range(k):
            cand = alpha.take(prev_flat, axis=0)
            cand += branch_fwd[t]
            nxt = alphas[t + 1]
            np_maximum(cand[:num_states], cand[num_states:], out=nxt)
            max_reduce(nxt, axis=0, out=rowmax)
            nxt -= rowmax
            alpha = nxt

        # Backward recursion with on-the-fly LLR computation; APP LLRs are
        # produced step-major and transposed once at the end.  The
        # (alpha + branch) part of every step's metric is hoisted out of the
        # loop into one vectorised add (branch_tmp is free again by now).
        absum = branch_tmp.reshape(k, 2, num_states, batch)
        np_add(alphas[:k, None], branch_bwd.reshape(k, 2, num_states, batch), out=absum)
        absum_flat = branch_tmp
        beta = ws.view("beta", (num_states, batch))
        beta.fill(0.0)
        metric = ws.view("metric", (wide, batch))
        metric3 = metric.reshape(2, num_states, batch)
        gsum = ws.view("gsum", (wide, batch))
        best = ws.view("best", (2, batch))
        app_t = ws.view("app_t", (k, batch))
        next_flat = self._next_flat
        for t in range(k - 1, -1, -1):
            bnext = beta.take(next_flat, axis=0)
            # metric = (alpha + branch) + beta_next, in the seed's add order.
            np_add(absum_flat[t], bnext, out=metric)
            max_reduce(metric3, axis=1, out=best)
            np_subtract(best[0], best[1], out=app_t[t])
            # beta update: max over inputs of (branch + beta_next), normalised.
            np_add(branch_bwd[t], bnext, out=gsum)
            np_maximum(gsum[:num_states], gsum[num_states:], out=beta)
            max_reduce(beta, axis=0, out=rowmax)
            beta -= rowmax

        np.copyto(out, app_t.T)
        return out
