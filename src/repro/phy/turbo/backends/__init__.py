"""Pluggable turbo-decoder backend registry with auto-detection.

Backends are selected by name:

``numpy`` / ``numpy-f32``
    The rewritten vectorised numpy kernel (float64 / float32).  ``numpy``
    is the default everywhere and is bit-identical to the seed decoder.
``numba`` / ``numba-f32``
    JIT-compiled trellis loops (:mod:`numba`), if the package is importable.
    Requesting it on a machine without numba **falls back to numpy** with a
    warning instead of failing — results stay correct, only slower.
``auto``
    The fastest available family (numba when importable, else numpy) at
    float64.

:func:`resolve_backend` reduces any of these names to the
:class:`~repro.phy.turbo.backends.base.BackendSpec` that will actually run,
which is what result caches must key on (see
:func:`repro.runner.cache.decoder_backend_identity`).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Tuple, Union

from repro.phy.turbo.backends.base import NEG_INF, BackendSpec, SisoBackend
from repro.phy.turbo.backends.numpy_backend import NumpySisoBackend
from repro.phy.turbo.trellis import RscTrellis

#: The backend used when nothing is requested — must stay deterministic and
#: dependency-free, because the golden-seed suite pins its exact output.
DEFAULT_BACKEND = "numpy"


def _numba_available() -> bool:
    try:  # pragma: no cover - depends on the environment
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _make_numba(trellis: RscTrellis, block_size: int, spec: BackendSpec) -> SisoBackend:
    from repro.phy.turbo.backends.numba_backend import NumbaSisoBackend

    return NumbaSisoBackend(trellis, block_size, spec)


#: family -> (factory, availability probe).
_FAMILIES: Dict[str, Tuple[Callable[..., SisoBackend], Callable[[], bool]]] = {
    "numpy": (NumpySisoBackend, lambda: True),
    "numba": (_make_numba, _numba_available),
}


def register_backend_family(
    family: str,
    factory: Callable[[RscTrellis, int, BackendSpec], SisoBackend],
    *,
    available: Callable[[], bool] = lambda: True,
) -> None:
    """Register an additional backend family (rejecting duplicates)."""
    if family in _FAMILIES:
        raise ValueError(f"duplicate backend family {family!r}")
    _FAMILIES[family] = (factory, available)


def backend_names() -> Tuple[str, ...]:
    """Every selectable backend token, including ``auto``."""
    names = ["auto"]
    for family in _FAMILIES:
        names.append(family)
        names.append(f"{family}-f32")
    return tuple(names)


def available_backends() -> Tuple[str, ...]:
    """Backend tokens whose family is importable on this machine."""
    names = []
    for family, (_factory, available) in _FAMILIES.items():
        if available():
            names.append(family)
            names.append(f"{family}-f32")
    return tuple(names)


def parse_backend_name(name: str) -> BackendSpec:
    """Split a backend token into (family, dtype) without availability checks."""
    token = str(name).strip().lower()
    if token == "auto":
        family, dtype_name = "auto", "float64"
    elif token.endswith("-f32"):
        family, dtype_name = token[: -len("-f32")], "float32"
    elif token.endswith("-f64"):
        family, dtype_name = token[: -len("-f64")], "float64"
    else:
        family, dtype_name = token, "float64"
    if family != "auto" and family not in _FAMILIES:
        raise ValueError(
            f"unknown decoder backend {name!r}; choose from {sorted(backend_names())}"
        )
    return BackendSpec(family, dtype_name)


def resolve_backend(name: Union[str, BackendSpec], *, warn: bool = True) -> BackendSpec:
    """Reduce a requested backend to the spec that will actually run.

    ``auto`` picks numba when importable and numpy otherwise; an unavailable
    family degrades to numpy at the same dtype (with a warning), so a config
    written on a numba machine still runs — and is cached under the backend
    that *really* produced the numbers.
    """
    spec = parse_backend_name(name) if isinstance(name, str) else name
    if spec.family == "auto":
        family = "numba" if _numba_available() else "numpy"
        return BackendSpec(family, spec.dtype_name)
    _factory, available = _FAMILIES[spec.family]
    if not available():
        if warn:
            warnings.warn(
                f"decoder backend {spec.name!r} is not available "
                f"(missing dependency); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        return BackendSpec("numpy", spec.dtype_name)
    return spec


def create_backend(
    name: Union[str, BackendSpec, SisoBackend],
    trellis: RscTrellis,
    block_size: int,
) -> SisoBackend:
    """Instantiate the (resolved) backend for one constituent decoder."""
    if isinstance(name, SisoBackend):
        return name
    spec = resolve_backend(name)
    factory, _available = _FAMILIES[spec.family]
    return factory(trellis, block_size, spec)


__all__ = [
    "BackendSpec",
    "DEFAULT_BACKEND",
    "NEG_INF",
    "NumpySisoBackend",
    "SisoBackend",
    "available_backends",
    "backend_names",
    "create_backend",
    "parse_backend_name",
    "register_backend_family",
    "resolve_backend",
]
