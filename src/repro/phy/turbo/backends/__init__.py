"""Pluggable turbo-decoder backend registry with auto-detection.

Backends are selected by name:

``numpy`` / ``numpy-f32``
    The rewritten vectorised numpy kernel (float64 / float32).  ``numpy``
    is the default everywhere and is bit-identical to the seed decoder.
``numba`` / ``numba-f32``
    JIT-compiled trellis loops (:mod:`numba`), if the package is importable.
``native`` / ``native-f32`` (optionally ``@t<N>``)
    The C-extension max-log-MAP kernel, if the compiled module was built
    (``pip install -e .`` with a C compiler).  The ``@t<N>`` suffix fans a
    batch out over N threads (the kernel releases the GIL); results are
    identical for any thread count, so the suffix never enters the cache
    identity.
``cupy`` / ``cupy-f32``
    GPU array-op kernel, if :mod:`cupy` is importable with a usable device.
``auto``
    The fastest available CPU family (``native`` > ``numba`` > ``numpy``)
    at float64.  ``cupy`` is never auto-selected — host/device transfer
    economics depend on the workload, so the GPU stays opt-in.

Requesting an unavailable family **falls back to numpy** at the same dtype
with a warning instead of failing — results stay correct, only slower — so
a config written on a machine with the extension still runs anywhere.

:func:`resolve_backend` reduces any of these names to the
:class:`~repro.phy.turbo.backends.base.BackendSpec` that will actually run,
which is what result caches must key on (see
:func:`repro.runner.cache.decoder_backend_identity`).

Exactness contract (pinned by the conformance tests): families with
``exact=True`` are bit-identical to the numpy/float64 golden reference at
float64; ``exact=False`` families (``native``, ``cupy``) evaluate the same
max-log equations in a different operation order and are held to
decision-level agreement plus a BLER-delta tolerance instead.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from repro.phy.turbo.backends.base import NEG_INF, BackendSpec, SisoBackend
from repro.phy.turbo.backends.numpy_backend import NumpySisoBackend
from repro.phy.turbo.trellis import RscTrellis

#: The backend used when nothing is requested — must stay deterministic and
#: dependency-free, because the golden-seed suite pins its exact output.
DEFAULT_BACKEND = "numpy"

#: ``auto`` preference order among CPU families (first available wins).
AUTO_PREFERENCE = ("native", "numba", "numpy")

_THREADS_RE = re.compile(r"^(?P<base>.+?)@t(?P<threads>\d+)$")


@dataclass(frozen=True)
class FamilyInfo:
    """Registry record of one backend family.

    Attributes
    ----------
    factory:
        ``factory(trellis, block_size, spec) -> SisoBackend``.
    probe:
        ``() -> (available, reason)``; the reason string is surfaced by
        ``repro backends ls`` so operators can audit heterogeneous fleets.
    exact:
        Whether the family is bit-identical to the numpy/float64 reference
        at float64 (max-log families with reordered float arithmetic are
        tolerance-gated instead).
    threaded:
        Whether the family honours ``BackendSpec.num_threads``.
    """

    factory: Callable[[RscTrellis, int, BackendSpec], SisoBackend]
    probe: Callable[[], Tuple[bool, str]]
    exact: bool = True
    threaded: bool = False


def _probe_numpy() -> Tuple[bool, str]:
    return True, "always available (pure-numpy reference kernel)"


def _probe_numba() -> Tuple[bool, str]:
    try:  # pragma: no cover - depends on the environment
        import numba
    except ImportError as exc:
        return False, f"numba not importable: {exc}"
    return True, f"numba {numba.__version__} importable"


def _probe_native() -> Tuple[bool, str]:
    from repro.phy.turbo.backends._native import load_kernel_module

    kernel, reason = load_kernel_module()
    return kernel is not None, reason


def _probe_cupy() -> Tuple[bool, str]:
    from repro.phy.turbo.backends import cupy_backend

    return cupy_backend.probe()


def _make_numba(trellis: RscTrellis, block_size: int, spec: BackendSpec) -> SisoBackend:
    from repro.phy.turbo.backends.numba_backend import NumbaSisoBackend

    return NumbaSisoBackend(trellis, block_size, spec)


def _make_native(trellis: RscTrellis, block_size: int, spec: BackendSpec) -> SisoBackend:
    from repro.phy.turbo.backends.native_backend import NativeSisoBackend

    return NativeSisoBackend(trellis, block_size, spec)


def _make_cupy(trellis: RscTrellis, block_size: int, spec: BackendSpec) -> SisoBackend:
    from repro.phy.turbo.backends.cupy_backend import CupySisoBackend

    return CupySisoBackend(trellis, block_size, spec)


_FAMILIES: Dict[str, FamilyInfo] = {
    "numpy": FamilyInfo(NumpySisoBackend, _probe_numpy, exact=True),
    "numba": FamilyInfo(_make_numba, _probe_numba, exact=True),
    "native": FamilyInfo(_make_native, _probe_native, exact=False, threaded=True),
    "cupy": FamilyInfo(_make_cupy, _probe_cupy, exact=False),
}

#: Memoised probe results — probes import packages, which is not free, and
#: the answer cannot change within one process.
_PROBE_CACHE: Dict[str, Tuple[bool, str]] = {}


def _probe(family: str) -> Tuple[bool, str]:
    cached = _PROBE_CACHE.get(family)
    if cached is None:
        cached = _FAMILIES[family].probe()
        _PROBE_CACHE[family] = cached
    return cached


def register_backend_family(
    family: str,
    factory: Callable[[RscTrellis, int, BackendSpec], SisoBackend],
    *,
    available: Union[Callable[[], bool], Callable[[], Tuple[bool, str]], None] = None,
    exact: bool = True,
    threaded: bool = False,
) -> None:
    """Register an additional backend family (rejecting duplicates).

    ``available`` may return a plain bool (legacy) or an
    ``(available, reason)`` tuple; omitted means always available.
    """
    if family in _FAMILIES:
        raise ValueError(f"duplicate backend family {family!r}")

    def probe() -> Tuple[bool, str]:
        if available is None:
            return True, "registered as always available"
        result = available()
        if isinstance(result, tuple):
            return result
        ok = bool(result)
        return ok, "availability probe returned " + ("True" if ok else "False")

    _FAMILIES[family] = FamilyInfo(factory, probe, exact=exact, threaded=threaded)
    _PROBE_CACHE.pop(family, None)


def backend_names() -> Tuple[str, ...]:
    """Every selectable backend token, including ``auto``."""
    names = ["auto"]
    for family in _FAMILIES:
        names.append(family)
        names.append(f"{family}-f32")
    return tuple(names)


def available_backends() -> Tuple[str, ...]:
    """Backend tokens whose family is importable on this machine."""
    names = []
    for family in _FAMILIES:
        if _probe(family)[0]:
            names.append(family)
            names.append(f"{family}-f32")
    return tuple(names)


def family_listing() -> List[Dict[str, object]]:
    """Availability report of every family, for ``repro backends ls``."""
    listing: List[Dict[str, object]] = []
    for family, info in _FAMILIES.items():
        ok, reason = _probe(family)
        listing.append(
            {
                "family": family,
                "tokens": [family, f"{family}-f32"],
                "available": ok,
                "reason": reason,
                "exact": info.exact,
                "threaded": info.threaded,
                "default": family == DEFAULT_BACKEND,
            }
        )
    return listing


def parse_backend_name(name: str) -> BackendSpec:
    """Split a backend token into (family, dtype, threads); no availability
    checks.

    Accepts an optional ``@t<N>`` thread suffix after the dtype suffix,
    e.g. ``native-f32@t4``.
    """
    token = str(name).strip().lower()
    num_threads = 1
    thread_match = _THREADS_RE.match(token)
    if thread_match is not None:
        token = thread_match.group("base")
        num_threads = int(thread_match.group("threads"))
        if num_threads < 1:
            raise ValueError(f"decoder backend {name!r} requests zero threads")
    if token == "auto":
        family, dtype_name = "auto", "float64"
    elif token.endswith("-f32"):
        family, dtype_name = token[: -len("-f32")], "float32"
    elif token.endswith("-f64"):
        family, dtype_name = token[: -len("-f64")], "float64"
    else:
        family, dtype_name = token, "float64"
    if family != "auto" and family not in _FAMILIES:
        raise ValueError(
            f"unknown decoder backend {name!r}; choose from {sorted(backend_names())}"
        )
    return BackendSpec(family, dtype_name, num_threads)


def resolve_backend(name: Union[str, BackendSpec], *, warn: bool = True) -> BackendSpec:
    """Reduce a requested backend to the spec that will actually run.

    ``auto`` picks the fastest available CPU family (native > numba >
    numpy); an unavailable family degrades to numpy at the same dtype
    (with a warning), so a config written on a machine with more backends
    still runs — and is cached under the backend that *really* produced
    the numbers.  A thread request on a family that cannot use it is
    normalised to 1.
    """
    spec = parse_backend_name(name) if isinstance(name, str) else name
    if spec.family == "auto":
        family = next((f for f in AUTO_PREFERENCE if _probe(f)[0]), "numpy")
        spec = BackendSpec(family, spec.dtype_name, spec.num_threads)
    elif not _probe(spec.family)[0]:
        if warn:
            warnings.warn(
                f"decoder backend {spec.name!r} is not available "
                f"({_probe(spec.family)[1]}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        spec = BackendSpec("numpy", spec.dtype_name, spec.num_threads)
    if spec.num_threads != 1 and not _FAMILIES[spec.family].threaded:
        if warn:
            warnings.warn(
                f"decoder backend family {spec.family!r} is single-threaded; "
                f"ignoring @t{spec.num_threads}",
                RuntimeWarning,
                stacklevel=2,
            )
        spec = BackendSpec(spec.family, spec.dtype_name, 1)
    return spec


def backend_is_exact(spec_or_name: Union[str, BackendSpec]) -> bool:
    """Whether the (resolved) backend is bit-exact at float64 against the
    numpy reference (as opposed to tolerance-gated max-log parity)."""
    spec = resolve_backend(spec_or_name, warn=False)
    return _FAMILIES[spec.family].exact


def create_backend(
    name: Union[str, BackendSpec, SisoBackend],
    trellis: RscTrellis,
    block_size: int,
) -> SisoBackend:
    """Instantiate the (resolved) backend for one constituent decoder."""
    if isinstance(name, SisoBackend):
        return name
    spec = resolve_backend(name)
    return _FAMILIES[spec.family].factory(trellis, block_size, spec)


__all__ = [
    "AUTO_PREFERENCE",
    "BackendSpec",
    "DEFAULT_BACKEND",
    "FamilyInfo",
    "NEG_INF",
    "NumpySisoBackend",
    "SisoBackend",
    "available_backends",
    "backend_is_exact",
    "backend_names",
    "create_backend",
    "family_listing",
    "parse_backend_name",
    "register_backend_family",
    "resolve_backend",
]
