"""Python wrapper around the native (C) max-log-MAP SISO kernel.

The compiled extension (:mod:`repro.phy.turbo.backends._native`) runs the
forward/backward recursion over a *column slice* of a step-major
``(block_size, batch)`` layout with the GIL released.  This wrapper owns

* the flat trellis tables (the same plane-major layout as the numpy
  backend, converted to the kernel's dtype once per instance),
* transposed scratch buffers — the decoder hands over ``(batch, block)``
  arrays, the kernel wants contiguous step-major planes so its inner loops
  run over the batch, and
* the ``num_threads`` fan-out: columns of one batch are split into
  contiguous slices and decoded concurrently on a shared thread pool.
  Rows are independent and slices touch disjoint memory, so the result is
  **identical for any thread count** — which is why ``num_threads`` is
  excluded from the backend's cache identity.

Exactness contract: ``native`` is a max-log family.  It evaluates the same
max-log-MAP equations as the numpy reference but in a different operation
order (fused per-step branch computation instead of shared tables), so its
LLRs may differ in the last float ulps; decisions agree on all confident
bits and BLER parity is tolerance-gated by the benchmark suite.  The
``numpy``/float64 family remains the bit-exact golden reference.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict

import numpy as np

from repro.phy.turbo.backends._native import load_kernel_module
from repro.phy.turbo.backends.base import BackendSpec, SisoBackend
from repro.phy.turbo.trellis import RscTrellis

#: Below this many batch rows the thread fan-out costs more than it saves.
MIN_ROWS_PER_THREAD = 8

#: Process-wide pools, keyed by worker count (decode calls are serialised
#: per decoder, so sharing pools across backend instances is safe and keeps
#: thread churn at zero in Monte-Carlo loops).
_POOLS: Dict[int, ThreadPoolExecutor] = {}


def _pool(num_threads: int) -> ThreadPoolExecutor:
    pool = _POOLS.get(num_threads)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=num_threads, thread_name_prefix="repro-siso"
        )
        _POOLS[num_threads] = pool
    return pool


class _Workspace:
    """Step-major transposed scratch for one block size (grown on demand)."""

    def __init__(self, capacity: int, k: int, dtype: np.dtype) -> None:
        self.capacity = capacity
        self.sys_t = np.empty((k, capacity), dtype=dtype)
        self.par_t = np.empty((k, capacity), dtype=dtype)
        self.ap_t = np.empty((k, capacity), dtype=dtype)
        self.app_t = np.empty((k, capacity), dtype=dtype)


class NativeSisoBackend(SisoBackend):
    """C-extension kernel with optional multi-threaded batch fan-out."""

    def __init__(
        self,
        trellis: RscTrellis,
        block_size: int,
        spec: BackendSpec = BackendSpec("native", "float32"),
    ) -> None:
        super().__init__(trellis, block_size, spec)
        kernel, reason = load_kernel_module()
        if kernel is None:
            raise RuntimeError(f"native decoder backend unavailable: {reason}")
        self._kernel = kernel
        dtype = self.dtype
        num_states = trellis.num_states
        if int(spec.num_threads) < 1:
            raise ValueError(f"num_threads must be >= 1, got {spec.num_threads}")
        self.num_threads = int(spec.num_threads)

        parity_sign = 1.0 - 2.0 * trellis.parity.astype(np.float64)  # (S, 2)
        input_sign = np.array([1.0, -1.0])
        prev_state = trellis.prev_state  # (S, 2)
        prev_input = trellis.prev_input  # (S, 2)

        # Flat plane-major tables, exactly as in the numpy backend: forward
        # row j * S + s' is the branch from predecessor slot j into state
        # s'; backward row u * S + s is the branch leaving s with input u.
        self._prev_flat = np.ascontiguousarray(
            prev_state.T.reshape(-1), dtype=np.int32
        )
        self._next_flat = np.ascontiguousarray(
            trellis.next_state.T.reshape(-1), dtype=np.int32
        )
        in_sign_bwd = np.repeat(input_sign, num_states)
        par_sign_bwd = parity_sign.T.reshape(-1)
        fwd_from_bwd = (prev_input.T * num_states + prev_state.T).reshape(-1)
        self._in_sign_fwd = np.ascontiguousarray(
            in_sign_bwd[fwd_from_bwd], dtype=dtype
        )
        self._par_sign_fwd = np.ascontiguousarray(
            par_sign_bwd[fwd_from_bwd], dtype=dtype
        )
        self._par_sign_bwd = np.ascontiguousarray(par_sign_bwd, dtype=dtype)
        self._num_states = num_states
        self._is_double = dtype == np.dtype("float64")
        self._workspaces: Dict[int, _Workspace] = {}

    # ------------------------------------------------------------------ #
    def _workspace(self, batch: int, k: int) -> _Workspace:
        ws = self._workspaces.get(k)
        if ws is None or ws.capacity < batch:
            capacity = batch if ws is None else max(batch, 2 * ws.capacity)
            ws = _Workspace(capacity, k, self.dtype)
            self._workspaces[k] = ws
        return ws

    def _column_slices(self, batch: int) -> list:
        """Contiguous ``(lo, hi)`` column slices, one per worker."""
        workers = min(self.num_threads, max(1, batch // MIN_ROWS_PER_THREAD))
        if workers <= 1:
            return [(0, batch)]
        base, extra = divmod(batch, workers)
        slices = []
        lo = 0
        for i in range(workers):
            hi = lo + base + (1 if i < extra else 0)
            slices.append((lo, hi))
            lo = hi
        return slices

    # ------------------------------------------------------------------ #
    def siso(
        self,
        sys_llrs: np.ndarray,
        par_llrs: np.ndarray,
        apriori_llrs: np.ndarray,
        out: np.ndarray,
        *,
        terminated_start: bool = True,
    ) -> np.ndarray:
        batch, k = sys_llrs.shape
        ws = self._workspace(batch, k)
        sys_t = ws.sys_t[:, :batch]
        par_t = ws.par_t[:, :batch]
        ap_t = ws.ap_t[:, :batch]
        app_t = ws.app_t[:, :batch]
        np.copyto(sys_t, sys_llrs.T)
        np.copyto(par_t, par_llrs.T)
        np.copyto(ap_t, apriori_llrs.T)

        # The scratch views are only contiguous when the batch fills the
        # workspace; hand the kernel the *backing* buffers plus the true
        # column stride (= capacity) instead of copying again.
        stride = ws.capacity
        slices = self._column_slices(batch)

        def run(lo: int, hi: int) -> None:
            self._kernel.siso(
                ws.sys_t,
                ws.par_t,
                ws.ap_t,
                ws.app_t,
                self._prev_flat,
                self._in_sign_fwd,
                self._par_sign_fwd,
                self._next_flat,
                self._par_sign_bwd,
                stride,
                k,
                self._num_states,
                bool(terminated_start),
                lo,
                hi,
                self._is_double,
            )

        if len(slices) == 1:
            run(0, batch)
        else:
            futures = [
                _pool(self.num_threads).submit(run, lo, hi) for lo, hi in slices
            ]
            for future in futures:
                future.result()

        np.copyto(out, app_t.T)
        return out


def probe() -> "tuple[bool, str]":
    """Availability probe for the backend registry (imports the extension)."""
    kernel, reason = load_kernel_module()
    return kernel is not None, reason
