"""Decoder-backend abstraction for the max-log-MAP SISO kernel.

A *backend* owns the hot inner loop of turbo decoding — the forward/backward
(BCJR) recursion of one soft-in/soft-out constituent decoder — while the
iteration control (extrinsic exchange, interleaving, early stopping) stays in
:class:`repro.phy.turbo.decoder.TurboDecoder`.  This split keeps every
backend trivially exchangeable: two backends that implement the same
``siso`` contract produce the same decoder, differing only in speed and
floating-point precision.

Backends are identified by a :class:`BackendSpec` — an implementation family
(``numpy``, ``numba``, ``native``, ``cupy``) plus a compute dtype — so result
caches can key on exactly what produced a number.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.phy.turbo.trellis import RscTrellis

#: Log-domain "impossible state" metric shared by all backends.
NEG_INF = -1e30


@dataclass(frozen=True)
class BackendSpec:
    """Identity of a decoder backend: implementation family plus dtype.

    Attributes
    ----------
    family:
        Implementation family (``"numpy"``, ``"numba"``, ``"native"``,
        ``"cupy"``).
    dtype_name:
        Compute dtype (``"float64"`` or ``"float32"``).
    num_threads:
        Worker threads the kernel may fan a batch out over (only honoured
        by families that release the GIL, e.g. ``native``).  Rows of a
        batch are decoded independently, so the thread count is pure
        execution topology: results are identical for any value.  It is
        therefore **excluded** from :attr:`name` — and hence from the
        result-cache identity — on purpose.
    """

    family: str
    dtype_name: str
    num_threads: int = 1

    @property
    def name(self) -> str:
        """Canonical user-facing token (``numpy``, ``numpy-f32``, ...).

        Deliberately thread-free: two specs differing only in
        ``num_threads`` produce bit-identical numbers and must share one
        cache identity.
        """
        if self.dtype_name == "float64":
            return self.family
        return f"{self.family}-f32"

    @property
    def display_name(self) -> str:
        """Human-facing token including the thread count (``native-f32@t4``)."""
        if self.num_threads > 1:
            return f"{self.name}@t{self.num_threads}"
        return self.name

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype state metrics and LLRs are computed in."""
        return np.dtype(self.dtype_name)


class SisoBackend(ABC):
    """One constituent-code soft-in/soft-out max-log-MAP decoder kernel.

    Parameters
    ----------
    trellis:
        Constituent RSC trellis (tables are precomputed per instance).
    block_size:
        Number of information bits per code block.
    spec:
        The backend's identity (family + dtype).

    Implementations may keep internal scratch buffers between calls; a
    backend instance is therefore *not* safe for concurrent use from
    multiple threads, matching the decoder's single-threaded use.
    """

    def __init__(self, trellis: RscTrellis, block_size: int, spec: BackendSpec) -> None:
        self.trellis = trellis
        self.block_size = int(block_size)
        self.spec = spec

    @property
    def dtype(self) -> np.dtype:
        """Compute dtype of this backend instance."""
        return self.spec.dtype

    @abstractmethod
    def siso(
        self,
        sys_llrs: np.ndarray,
        par_llrs: np.ndarray,
        apriori_llrs: np.ndarray,
        out: np.ndarray,
        *,
        terminated_start: bool = True,
    ) -> np.ndarray:
        """Write a-posteriori information-bit LLRs for one half-iteration.

        All inputs have shape ``(batch, block_size)`` and the backend's
        dtype; *out* receives the APP LLRs and is returned.  Rows are
        decoded independently: the result of any row never depends on which
        other rows share the batch (the property that makes cross-work-item
        batch aggregation and per-packet early stopping exact).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.spec.name!r}, K={self.block_size})"
