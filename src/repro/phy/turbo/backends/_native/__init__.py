"""Build-products package for the native (C) SISO kernel.

Holds ``sisokernel.c`` (compiled by ``setup.py`` into the
``_sisokernel`` extension module, declared *optional* so a missing C
compiler degrades the install instead of failing it) and the import probe
the backend registry uses to detect whether the extension was built.
"""

from __future__ import annotations

from typing import Optional, Tuple


def load_kernel_module() -> Tuple[Optional[object], str]:
    """Import the compiled kernel, returning ``(module_or_None, reason)``.

    The reason string feeds ``repro backends ls`` so operators can see *why*
    the family is (un)available on a given worker.
    """
    try:
        from repro.phy.turbo.backends._native import _sisokernel
    except ImportError as exc:
        return None, (
            "compiled extension not importable (build with "
            f"`python setup.py build_ext --inplace` and a C compiler): {exc}"
        )
    return _sisokernel, "compiled C extension importable"
