/* CPython extension module for the native max-log-MAP SISO kernel.
 *
 * Exposes one function, ``siso``, operating on step-major (block, batch)
 * float32/float64 buffers passed via the buffer protocol — no numpy C API,
 * so the module is insensitive to the numpy ABI it is run against.  The
 * hot loop releases the GIL, which is what lets the Python wrapper fan one
 * batch out over ``num_threads`` worker threads on disjoint column slices.
 *
 * See sisokernel_impl.h for the kernel body; the Python-side contract
 * (argument shapes, table layouts) lives in
 * repro/phy/turbo/backends/native_backend.py.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>

#define REAL float
#define KERNEL_NAME siso_kernel_f32
#include "sisokernel_impl.h"

#define REAL double
#define KERNEL_NAME siso_kernel_f64
#include "sisokernel_impl.h"

/* Release every acquired buffer (entries with buf == NULL are skipped). */
static void release_buffers(Py_buffer *views, int count)
{
    for (int i = 0; i < count; i++) {
        if (views[i].buf != NULL) {
            PyBuffer_Release(&views[i]);
        }
    }
}

static int check_len(Py_buffer *view, size_t expected, const char *name)
{
    if ((size_t)view->len < expected) {
        PyErr_Format(
            PyExc_ValueError,
            "buffer %s too small: %zd bytes, expected at least %zu",
            name, view->len, expected);
        return -1;
    }
    return 0;
}

static PyObject *siso(PyObject *self, PyObject *args)
{
    Py_buffer views[9];
    Py_ssize_t batch, k, lo, hi;
    int num_states, terminated_start, is_double;

    for (int i = 0; i < 9; i++) {
        views[i].buf = NULL;
    }
    /* sys, par, ap (read-only), app (writable), prev_flat, in_sign_fwd,
     * par_sign_fwd, next_flat, par_sign_bwd, then the scalar geometry.
     * The dtype flag is explicit because "y*" exports a PyBUF_SIMPLE view
     * whose itemsize is always 1 — it cannot be inferred from the buffer. */
    if (!PyArg_ParseTuple(
            args, "y*y*y*w*y*y*y*y*y*nnipnnp",
            &views[0], &views[1], &views[2], &views[3], &views[4],
            &views[5], &views[6], &views[7], &views[8],
            &batch, &k, &num_states, &terminated_start, &lo, &hi,
            &is_double)) {
        return NULL;
    }

    if (batch <= 0 || k <= 0 || num_states <= 0 || lo < 0 || hi > batch ||
        lo > hi) {
        release_buffers(views, 9);
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel geometry");
        return NULL;
    }
    const size_t real_size = is_double ? sizeof(double) : sizeof(float);
    const size_t matrix_bytes = (size_t)k * (size_t)batch * real_size;
    const size_t table_bytes = 2 * (size_t)num_states * real_size;
    const size_t index_bytes = 2 * (size_t)num_states * sizeof(int32_t);
    if (check_len(&views[0], matrix_bytes, "sys") < 0 ||
        check_len(&views[1], matrix_bytes, "par") < 0 ||
        check_len(&views[2], matrix_bytes, "apriori") < 0 ||
        check_len(&views[3], matrix_bytes, "app") < 0 ||
        check_len(&views[4], index_bytes, "prev_flat") < 0 ||
        check_len(&views[5], table_bytes, "in_sign_fwd") < 0 ||
        check_len(&views[6], table_bytes, "par_sign_fwd") < 0 ||
        check_len(&views[7], index_bytes, "next_flat") < 0 ||
        check_len(&views[8], table_bytes, "par_sign_bwd") < 0) {
        release_buffers(views, 9);
        return NULL;
    }

    int status;
    Py_BEGIN_ALLOW_THREADS
    if (is_double) {
        status = siso_kernel_f64(
            (const double *)views[0].buf, (const double *)views[1].buf,
            (const double *)views[2].buf, (double *)views[3].buf,
            (const int32_t *)views[4].buf, (const double *)views[5].buf,
            (const double *)views[6].buf, (const int32_t *)views[7].buf,
            (const double *)views[8].buf,
            batch, k, num_states, terminated_start, lo, hi);
    } else {
        status = siso_kernel_f32(
            (const float *)views[0].buf, (const float *)views[1].buf,
            (const float *)views[2].buf, (float *)views[3].buf,
            (const int32_t *)views[4].buf, (const float *)views[5].buf,
            (const float *)views[6].buf, (const int32_t *)views[7].buf,
            (const float *)views[8].buf,
            batch, k, num_states, terminated_start, lo, hi);
    }
    Py_END_ALLOW_THREADS

    release_buffers(views, 9);
    if (status != 0) {
        return PyErr_NoMemory();
    }
    Py_RETURN_NONE;
}

static PyMethodDef methods[] = {
    {"siso", siso, METH_VARARGS,
     "siso(sys, par, apriori, app, prev_flat, in_sign_fwd, par_sign_fwd, "
     "next_flat, par_sign_bwd, batch, k, num_states, terminated_start, lo, "
     "hi, is_double)\n\n"
     "Max-log-MAP SISO half-iteration over batch columns [lo, hi) of\n"
     "step-major (k, batch) LLR buffers.  All real-valued buffers must be\n"
     "float64 when is_double is true, float32 otherwise.  Releases the\n"
     "GIL while running."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef module = {
    PyModuleDef_HEAD_INIT,
    "_sisokernel",
    "Native (C) max-log-MAP SISO kernel for the turbo decoder.",
    -1,
    methods,
};

PyMODINIT_FUNC PyInit__sisokernel(void)
{
    return PyModule_Create(&module);
}
