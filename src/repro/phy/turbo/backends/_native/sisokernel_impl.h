/* Dtype-templated max-log-MAP SISO kernel body.
 *
 * Included twice by sisokernel.c with REAL / KERNEL_NAME defined to float /
 * double variants.  The algorithm mirrors the numpy reference backend
 * (repro/phy/turbo/backends/numpy_backend.py): plane-major flat branch
 * tables, batch-last (step-major, batch-inner) layout, per-step max
 * normalisation of the state metrics.  Every inner loop runs contiguously
 * over a column slice [lo, hi) of the batch so gcc -O3 auto-vectorises it,
 * and disjoint slices touch disjoint memory, which is what makes the
 * Python-level thread fan-out race-free.
 */

#ifndef SISO_NEG_INF
/* Log-domain "impossible state" metric; matches backends.base.NEG_INF. */
#define SISO_NEG_INF -1e30
#endif

static int KERNEL_NAME(
    const REAL *restrict sys_t,   /* (k, batch) step-major systematic LLRs */
    const REAL *restrict par_t,   /* (k, batch) step-major parity LLRs */
    const REAL *restrict ap_t,    /* (k, batch) step-major a-priori LLRs */
    REAL *restrict app_t,         /* (k, batch) step-major APP output */
    const int32_t *restrict prev_flat,    /* (2S) predecessor state per fwd row */
    const REAL *restrict in_sign_fwd,     /* (2S) input sign per fwd row */
    const REAL *restrict par_sign_fwd,    /* (2S) parity sign per fwd row */
    const int32_t *restrict next_flat,    /* (2S) successor state per bwd row */
    const REAL *restrict par_sign_bwd,    /* (2S) parity sign per bwd row */
    Py_ssize_t batch,
    Py_ssize_t k,
    int num_states,
    int terminated_start,
    Py_ssize_t lo,
    Py_ssize_t hi)
{
    const Py_ssize_t w = hi - lo;
    const int s_count = num_states;
    if (w <= 0 || k <= 0 || s_count <= 0) {
        return 0;
    }

    /* One malloc per call: alphas (k+1, S, w), beta (S, w), gb planes
     * (2, S, w), c/hp/rowmax/best0/best1 (w each). */
    const size_t alphas_len = (size_t)(k + 1) * (size_t)s_count * (size_t)w;
    const size_t plane_len = (size_t)s_count * (size_t)w;
    const size_t total =
        alphas_len + plane_len + 2 * plane_len + 5 * (size_t)w;
    REAL *scratch = (REAL *)malloc(total * sizeof(REAL));
    if (scratch == NULL) {
        return -1;
    }
    REAL *restrict alphas = scratch;
    REAL *restrict beta = alphas + alphas_len;
    REAL *restrict gb = beta + plane_len; /* (2, S, w) branch+beta planes */
    REAL *restrict c = gb + 2 * plane_len;
    REAL *restrict hp = c + w;
    REAL *restrict rowmax = hp + w;
    REAL *restrict best0 = rowmax + w;
    REAL *restrict best1 = best0 + w;

    /* ---------------- forward recursion ---------------- */
    {
        REAL *restrict alpha0 = alphas;
        for (int s = 0; s < s_count; s++) {
            const REAL fill =
                (terminated_start && s != 0) ? (REAL)SISO_NEG_INF : (REAL)0.0;
            for (Py_ssize_t b = 0; b < w; b++) {
                alpha0[(Py_ssize_t)s * w + b] = fill;
            }
        }
    }
    for (Py_ssize_t t = 0; t < k; t++) {
        const REAL *restrict sys_row = sys_t + t * batch + lo;
        const REAL *restrict par_row = par_t + t * batch + lo;
        const REAL *restrict ap_row = ap_t + t * batch + lo;
        for (Py_ssize_t b = 0; b < w; b++) {
            c[b] = (REAL)0.5 * (sys_row[b] + ap_row[b]);
            hp[b] = (REAL)0.5 * par_row[b];
        }
        const REAL *restrict alpha = alphas + t * (Py_ssize_t)s_count * w;
        REAL *restrict nxt = alphas + (t + 1) * (Py_ssize_t)s_count * w;
        for (int s = 0; s < s_count; s++) {
            /* The two predecessor candidates of target state s live in the
             * two planes of the flat forward layout (rows s and S + s). */
            const REAL *restrict a0 = alpha + (Py_ssize_t)prev_flat[s] * w;
            const REAL *restrict a1 =
                alpha + (Py_ssize_t)prev_flat[s_count + s] * w;
            const REAL is0 = in_sign_fwd[s];
            const REAL ps0 = par_sign_fwd[s];
            const REAL is1 = in_sign_fwd[s_count + s];
            const REAL ps1 = par_sign_fwd[s_count + s];
            REAL *restrict out_row = nxt + (Py_ssize_t)s * w;
            for (Py_ssize_t b = 0; b < w; b++) {
                const REAL m0 = a0[b] + (c[b] * is0 + hp[b] * ps0);
                const REAL m1 = a1[b] + (c[b] * is1 + hp[b] * ps1);
                out_row[b] = m0 > m1 ? m0 : m1;
            }
        }
        /* Per-step normalisation by the per-column state maximum. */
        for (Py_ssize_t b = 0; b < w; b++) {
            rowmax[b] = nxt[b];
        }
        for (int s = 1; s < s_count; s++) {
            const REAL *restrict row = nxt + (Py_ssize_t)s * w;
            for (Py_ssize_t b = 0; b < w; b++) {
                rowmax[b] = row[b] > rowmax[b] ? row[b] : rowmax[b];
            }
        }
        for (int s = 0; s < s_count; s++) {
            REAL *restrict row = nxt + (Py_ssize_t)s * w;
            for (Py_ssize_t b = 0; b < w; b++) {
                row[b] -= rowmax[b];
            }
        }
    }

    /* ------------- backward recursion + APP output ------------- */
    for (Py_ssize_t i = 0; i < (Py_ssize_t)plane_len; i++) {
        beta[i] = (REAL)0.0;
    }
    for (Py_ssize_t t = k - 1; t >= 0; t--) {
        const REAL *restrict sys_row = sys_t + t * batch + lo;
        const REAL *restrict par_row = par_t + t * batch + lo;
        const REAL *restrict ap_row = ap_t + t * batch + lo;
        for (Py_ssize_t b = 0; b < w; b++) {
            c[b] = (REAL)0.5 * (sys_row[b] + ap_row[b]);
            hp[b] = (REAL)0.5 * par_row[b];
        }
        const REAL *restrict alpha = alphas + t * (Py_ssize_t)s_count * w;
        for (Py_ssize_t b = 0; b < w; b++) {
            best0[b] = (REAL)SISO_NEG_INF;
            best1[b] = (REAL)SISO_NEG_INF;
        }
        for (int u = 0; u < 2; u++) {
            const REAL isg = (u == 0) ? (REAL)1.0 : (REAL)-1.0;
            REAL *restrict best = (u == 0) ? best0 : best1;
            REAL *restrict gb_plane = gb + (Py_ssize_t)u * plane_len;
            for (int s = 0; s < s_count; s++) {
                const int row_index = u * s_count + s;
                const REAL *restrict beta_next =
                    beta + (Py_ssize_t)next_flat[row_index] * w;
                const REAL psg = par_sign_bwd[row_index];
                const REAL *restrict alpha_row = alpha + (Py_ssize_t)s * w;
                REAL *restrict gb_row = gb_plane + (Py_ssize_t)s * w;
                for (Py_ssize_t b = 0; b < w; b++) {
                    const REAL branch = c[b] * isg + hp[b] * psg;
                    const REAL branch_beta = branch + beta_next[b];
                    const REAL metric = alpha_row[b] + branch_beta;
                    gb_row[b] = branch_beta;
                    best[b] = metric > best[b] ? metric : best[b];
                }
            }
        }
        REAL *restrict app_row = app_t + t * batch + lo;
        for (Py_ssize_t b = 0; b < w; b++) {
            app_row[b] = best0[b] - best1[b];
        }
        /* beta update: max over inputs of (branch + beta_next), normalised. */
        const REAL *restrict gb0 = gb;
        const REAL *restrict gb1 = gb + plane_len;
        for (Py_ssize_t i = 0; i < (Py_ssize_t)plane_len; i++) {
            beta[i] = gb0[i] > gb1[i] ? gb0[i] : gb1[i];
        }
        for (Py_ssize_t b = 0; b < w; b++) {
            rowmax[b] = beta[b];
        }
        for (int s = 1; s < s_count; s++) {
            const REAL *restrict row = beta + (Py_ssize_t)s * w;
            for (Py_ssize_t b = 0; b < w; b++) {
                rowmax[b] = row[b] > rowmax[b] ? row[b] : rowmax[b];
            }
        }
        for (int s = 0; s < s_count; s++) {
            REAL *restrict row = beta + (Py_ssize_t)s * w;
            for (Py_ssize_t b = 0; b < w; b++) {
                row[b] -= rowmax[b];
            }
        }
    }

    free(scratch);
    return 0;
}

#undef KERNEL_NAME
#undef REAL
