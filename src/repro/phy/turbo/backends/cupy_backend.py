"""Optional GPU SISO kernel built on :mod:`cupy` array operations.

A straight port of the numpy reference recursion to cupy: the branch-metric
tables, the forward/backward recursions and the per-step normalisation are
the same plane-major, batch-last formulation, evaluated on the GPU.  Inputs
arrive as host numpy arrays (the decoder's contract), so each ``siso`` call
pays two host/device transfers; the family therefore only wins on large
batches, which is exactly the regime the Monte-Carlo batch aggregator
produces.

Like ``native``, this is a max-log family with tolerance-gated parity — GPU
float arithmetic is not bit-pinned against the CPU reference — and it is
only registered when :mod:`cupy` is importable (see the registry probe).
"""

from __future__ import annotations

import numpy as np

from repro.phy.turbo.backends.base import NEG_INF, BackendSpec, SisoBackend
from repro.phy.turbo.trellis import RscTrellis


def probe() -> "tuple[bool, str]":
    """Availability probe: cupy importable *and* a device is usable."""
    try:
        import cupy  # noqa: F401
    except ImportError as exc:
        return False, f"cupy not importable: {exc}"
    try:
        cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # pragma: no cover - depends on the driver
        return False, f"cupy importable but no usable CUDA device: {exc}"
    return True, "cupy importable with a usable CUDA device"


class CupySisoBackend(SisoBackend):
    """GPU max-log-MAP kernel (cupy port of the numpy reference)."""

    def __init__(
        self,
        trellis: RscTrellis,
        block_size: int,
        spec: BackendSpec = BackendSpec("cupy", "float32"),
    ) -> None:
        super().__init__(trellis, block_size, spec)
        import cupy as cp  # deferred so the module imports without cupy

        self._cp = cp
        dtype = self.dtype
        num_states = trellis.num_states
        parity_sign = 1.0 - 2.0 * trellis.parity.astype(np.float64)
        input_sign = np.array([1.0, -1.0])
        prev_state = trellis.prev_state
        prev_input = trellis.prev_input

        self._prev_flat = cp.asarray(prev_state.T.reshape(-1).astype(np.intp))
        self._next_flat = cp.asarray(
            trellis.next_state.T.reshape(-1).astype(np.intp)
        )
        self._in_sign_bwd = cp.asarray(
            np.repeat(input_sign, num_states).reshape(-1, 1).astype(dtype)
        )
        self._par_sign_bwd = cp.asarray(
            parity_sign.T.reshape(-1, 1).astype(dtype)
        )
        self._fwd_from_bwd = cp.asarray(
            (prev_input.T * num_states + prev_state.T).reshape(-1).astype(np.intp)
        )
        self._num_states = num_states

    def siso(
        self,
        sys_llrs: np.ndarray,
        par_llrs: np.ndarray,
        apriori_llrs: np.ndarray,
        out: np.ndarray,
        *,
        terminated_start: bool = True,
    ) -> np.ndarray:
        cp = self._cp
        num_states = self._num_states
        batch, k = sys_llrs.shape

        sys_d = cp.asarray(sys_llrs)
        par_d = cp.asarray(par_llrs)
        ap_d = cp.asarray(apriori_llrs)

        combined = (sys_d + ap_d) * 0.5
        half_par = par_d * 0.5

        # Shared branch tables for every step: backward layout built
        # arithmetically, forward layout gathered from it.
        branch_bwd = (
            combined.T[:, None, :] * self._in_sign_bwd
            + half_par.T[:, None, :] * self._par_sign_bwd
        )  # (k, 2S, batch)
        branch_fwd = branch_bwd[:, self._fwd_from_bwd, :]

        alphas = cp.empty((k + 1, num_states, batch), dtype=self.dtype)
        alpha = alphas[0]
        if terminated_start:
            alpha.fill(NEG_INF)
            alpha[0, :] = 0.0
        else:
            alpha.fill(0.0)
        for t in range(k):
            cand = alpha[self._prev_flat] + branch_fwd[t]
            nxt = cp.maximum(cand[:num_states], cand[num_states:])
            nxt -= nxt.max(axis=0)
            alphas[t + 1] = nxt
            alpha = alphas[t + 1]

        absum = alphas[:k, None] + branch_bwd.reshape(k, 2, num_states, batch)
        beta = cp.zeros((num_states, batch), dtype=self.dtype)
        app_t = cp.empty((k, batch), dtype=self.dtype)
        for t in range(k - 1, -1, -1):
            bnext = beta[self._next_flat]
            metric = absum[t].reshape(2 * num_states, batch) + bnext
            best = metric.reshape(2, num_states, batch).max(axis=1)
            app_t[t] = best[0] - best[1]
            gsum = branch_bwd[t] + bnext
            beta = cp.maximum(gsum[:num_states], gsum[num_states:])
            beta -= beta.max(axis=0)

        np.copyto(out, cp.asnumpy(app_t.T))
        return out


__all__ = ["CupySisoBackend", "probe"]
