"""Numba-JIT max-log-MAP kernel (optional).

Importing this module requires :mod:`numba`; the registry only reaches it
after :func:`repro.phy.turbo.backends._numba_available` has confirmed the
import works, so environments without numba never touch this file.

The kernel mirrors the numpy backend's arithmetic step for step (same
operand order, no fastmath), so its output matches the numpy backend to the
last bit in practice; the backend-equivalence suite still only asserts a
small tolerance to stay robust against compiler differences.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.phy.turbo.backends.base import NEG_INF, BackendSpec, SisoBackend
from repro.phy.turbo.trellis import RscTrellis


@njit(cache=True, fastmath=False)
def _siso_kernel(
    combined,
    half_par,
    prev_state,
    prev_input,
    next_state,
    parity_sign,
    out_app,
    terminated_start,
):  # pragma: no cover - requires numba
    batch, k = combined.shape
    num_states = prev_state.shape[0]
    dtype = combined.dtype

    alphas = np.empty((k + 1, batch, num_states), dtype=dtype)
    for b in range(batch):
        for s in range(num_states):
            alphas[0, b, s] = 0.0 if not terminated_start else NEG_INF
        if terminated_start:
            alphas[0, b, 0] = 0.0

    # Forward recursion.
    for t in range(k):
        for b in range(batch):
            c = combined[b, t]
            p = half_par[b, t]
            norm = -np.inf
            for s in range(num_states):
                best = -np.inf
                for j in range(2):
                    sp = prev_state[s, j]
                    u = prev_input[s, j]
                    in_sign = 1.0 - 2.0 * u
                    branch = c * in_sign + p * parity_sign[sp, u]
                    cand = alphas[t, b, sp] + branch
                    if cand > best:
                        best = cand
                if best > norm:
                    norm = best
                alphas[t + 1, b, s] = best
            for s in range(num_states):
                alphas[t + 1, b, s] -= norm

    # Backward recursion with on-the-fly LLR computation.
    beta = np.zeros((batch, num_states), dtype=dtype)
    beta_next = np.empty(num_states, dtype=dtype)
    for t in range(k - 1, -1, -1):
        for b in range(batch):
            c = combined[b, t]
            p = half_par[b, t]
            best0 = -np.inf
            best1 = -np.inf
            for s in range(num_states):
                for u in range(2):
                    in_sign = 1.0 - 2.0 * u
                    branch = c * in_sign + p * parity_sign[s, u]
                    bn = beta[b, next_state[s, u]]
                    metric = (alphas[t, b, s] + branch) + bn
                    if u == 0:
                        if metric > best0:
                            best0 = metric
                    else:
                        if metric > best1:
                            best1 = metric
            out_app[b, t] = best0 - best1
            norm = -np.inf
            for s in range(num_states):
                best = -np.inf
                for u in range(2):
                    in_sign = 1.0 - 2.0 * u
                    branch = c * in_sign + p * parity_sign[s, u]
                    bn = beta[b, next_state[s, u]]
                    cand = branch + bn
                    if cand > best:
                        best = cand
                beta_next[s] = best
                if best > norm:
                    norm = best
            for s in range(num_states):
                beta[b, s] = beta_next[s] - norm

    return out_app


class NumbaSisoBackend(SisoBackend):
    """JIT-compiled SISO kernel; requires :mod:`numba` at import time."""

    def __init__(
        self,
        trellis: RscTrellis,
        block_size: int,
        spec: BackendSpec = BackendSpec("numba", "float64"),
    ) -> None:
        super().__init__(trellis, block_size, spec)
        dtype = self.dtype
        self._prev_state = trellis.prev_state.astype(np.int64)
        self._prev_input = trellis.prev_input.astype(np.int64)
        self._next_state = trellis.next_state.astype(np.int64)
        self._parity_sign = (1.0 - 2.0 * trellis.parity.astype(np.float64)).astype(dtype)
        self._scratch: dict = {}

    def siso(
        self,
        sys_llrs: np.ndarray,
        par_llrs: np.ndarray,
        apriori_llrs: np.ndarray,
        out: np.ndarray,
        *,
        terminated_start: bool = True,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        batch, k = sys_llrs.shape
        dtype = self.dtype
        # One capacity-grown buffer pair per block size: early stopping
        # shrinks batches call by call, so keying on the batch size itself
        # would retain O(max_batch^2) memory over a worker's lifetime.
        entry = self._scratch.get(k)
        if entry is None or entry[0] < batch:
            capacity = batch if entry is None else max(batch, 2 * entry[0])
            entry = (
                capacity,
                np.empty((capacity, k), dtype=dtype),
                np.empty((capacity, k), dtype=dtype),
            )
            self._scratch[k] = entry
        combined, half_par = entry[1][:batch], entry[2][:batch]
        np.add(sys_llrs, apriori_llrs, out=combined)
        combined *= 0.5
        np.multiply(par_llrs, 0.5, out=half_par)
        _siso_kernel(
            combined,
            half_par,
            self._prev_state,
            self._prev_input,
            self._next_state,
            self._parity_sign,
            out,
            terminated_start,
        )
        return out
