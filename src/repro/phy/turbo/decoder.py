"""Iterative max-log-MAP (BCJR) turbo decoder, vectorised over a batch.

The decoder operates on channel LLRs with the library-wide convention
``LLR = log P(bit = 0) - log P(bit = 1)`` (positive favours 0).  Internally
the BCJR branch metrics use the antipodal value ``(1 - 2*bit)`` so that a
positive LLR rewards the bit-0 branches.

Performance notes
-----------------
Monte-Carlo link simulation decodes many packets per operating point, so the
decoder processes a *batch* of packets simultaneously and the hot
forward/backward kernel is pluggable (see :mod:`repro.phy.turbo.backends`):
the default vectorised numpy backend precomputes per-step branch metrics
once and runs the trellis loop allocation-free; an optional numba backend
JIT-compiles the same recursion.

Early stopping is *per packet*: once a packet's hard decisions are stable
over a full iteration its result is frozen and the packet leaves the active
batch, so converged packets stop paying for the stragglers.  Every packet is
decoded exactly as if it were alone in the batch — the property that lets
the link layer aggregate packets from many work items into one decoder call
without changing any result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.phy.turbo.backends import SisoBackend, create_backend
from repro.phy.turbo.interleaver import TurboInterleaver, make_turbo_interleaver
from repro.phy.turbo.trellis import RscTrellis, UMTS_TRELLIS
from repro.utils.validation import ensure_positive_int

_NEG_INF = -1e30


@dataclass
class TurboDecoderResult:
    """Outcome of decoding one batch of code blocks.

    Attributes
    ----------
    decoded_bits:
        Hard decisions, shape ``(batch, block_size)``, dtype ``int8``.
    app_llrs:
        A-posteriori LLRs of the information bits, same shape (float64
        regardless of the backend's compute dtype).
    iterations_run:
        Number of full iterations executed by the slowest packet in the
        batch (per-packet early stopping freezes faster packets earlier).
    converged:
        Boolean per-batch-element flag: hard decisions stable over the last
        iteration the packet participated in.  With ``num_iterations == 1``
        stability is measured against the pre-iteration (channel LLR) hard
        decisions.
    """

    decoded_bits: np.ndarray
    app_llrs: np.ndarray
    iterations_run: int
    converged: np.ndarray


class TurboDecoder:
    """Iterative turbo decoder matching :class:`~repro.phy.turbo.encoder.TurboEncoder`.

    Parameters
    ----------
    block_size:
        Number of information bits per code block.
    num_iterations:
        Maximum number of full (two half-) iterations.
    interleaver_kind:
        Must match the encoder's internal interleaver construction.
    trellis:
        Constituent-code trellis.
    early_stopping:
        If ``True`` (default), freeze each packet as soon as its hard
        decisions are unchanged over ``stable_iterations`` consecutive full
        iterations and shrink the active batch accordingly.
    stable_iterations:
        Number of consecutive stable full iterations required before a
        packet is frozen.  The default of 2 makes the frozen output
        provably equal to running one more iteration whenever the decisions
        are at a fixed point, which keeps the decoder's results independent
        of batch composition *and* matched to the reference whole-batch
        stopping on the golden runs.
    freeze_min_llr:
        Min-LLR fast path: a packet whose decisions are stable over one
        full iteration *and* whose smallest APP magnitude is at least this
        value freezes immediately (the standard hardware min-LLR stopping
        rule) — weakly-converged packets still wait for the
        ``stable_iterations`` streak.  ``None`` disables the fast path.
    extrinsic_scale:
        Scaling applied to extrinsic information between half-iterations; a
        value slightly below 1 (0.75) compensates the optimism of the max-log
        approximation (standard practice in hardware decoders).
    backend:
        Backend name (``"numpy"``, ``"numpy-f32"``, ``"numba"``, ``"auto"``,
        ...) or a pre-built :class:`~repro.phy.turbo.backends.SisoBackend`.
        See :mod:`repro.phy.turbo.backends`.
    """

    def __init__(
        self,
        block_size: int,
        num_iterations: int = 6,
        interleaver_kind: str = "qpp",
        trellis: RscTrellis = UMTS_TRELLIS,
        *,
        early_stopping: bool = True,
        stable_iterations: int = 2,
        freeze_min_llr: Optional[float] = 2.0,
        extrinsic_scale: float = 0.75,
        interleaver: Optional[TurboInterleaver] = None,
        backend: Union[str, SisoBackend] = "numpy",
    ) -> None:
        self.block_size = ensure_positive_int(block_size, "block_size")
        self.num_iterations = ensure_positive_int(num_iterations, "num_iterations")
        self.early_stopping = early_stopping
        self.stable_iterations = ensure_positive_int(stable_iterations, "stable_iterations")
        self.freeze_min_llr = None if freeze_min_llr is None else float(freeze_min_llr)
        self.extrinsic_scale = float(extrinsic_scale)
        self.trellis = trellis
        self.interleaver = interleaver or make_turbo_interleaver(block_size, interleaver_kind)
        self._siso = create_backend(backend, trellis, block_size)

    @property
    def backend(self) -> SisoBackend:
        """The backend instance running the SISO kernel."""
        return self._siso

    # ------------------------------------------------------------------ #
    def decode(
        self,
        systematic_llrs: np.ndarray,
        parity1_llrs: np.ndarray,
        parity2_llrs: np.ndarray,
    ) -> TurboDecoderResult:
        """Decode one batch of code blocks.

        Each input is either 1-D (single block) or 2-D ``(batch, block_size)``.
        Every row is decoded independently: batching (and per-packet early
        stopping) never changes a row's output.
        """
        dtype = self._siso.dtype
        sys_llrs = self._as_batch(systematic_llrs, dtype)
        par1 = self._as_batch(parity1_llrs, dtype)
        par2 = self._as_batch(parity2_llrs, dtype)
        batch, k = sys_llrs.shape

        perm = self.interleaver.permutation
        sys_interleaved = sys_llrs[:, perm]

        # Full-batch outputs; active-row work arrays are compacted as
        # packets converge.
        app_llrs = np.zeros((batch, k), dtype=dtype)
        converged = np.zeros(batch, dtype=bool)
        # Pre-iteration hard decisions: the reference the first iteration's
        # stability check compares against.
        previous_hard = sys_llrs < 0

        active = np.arange(batch)
        extrinsic12 = np.zeros((batch, k), dtype=dtype)  # from dec2 to dec1
        app1 = np.empty((batch, k), dtype=dtype)
        app2 = np.empty((batch, k), dtype=dtype)
        apriori1 = np.empty((batch, k), dtype=dtype)
        app_nat = np.empty((batch, k), dtype=dtype)
        iterations_run = 0

        sys_a, par1_a, par2_a, sys_i_a = sys_llrs, par1, par2, sys_interleaved
        prev_hard_a = previous_hard
        streak_a = np.zeros(batch, dtype=np.int64)

        for iteration in range(self.num_iterations):
            iterations_run = iteration + 1
            n = active.size

            # --- Decoder 1: natural order ---------------------------------
            ap1 = apriori1[:n]
            ap1[:, perm] = extrinsic12[:n]  # de-interleave extrinsic from dec2
            a1 = self._siso.siso(sys_a, par1_a, ap1, app1[:n])
            extrinsic1 = self.extrinsic_scale * (a1 - sys_a - ap1)

            # --- Decoder 2: interleaved order ------------------------------
            apriori2 = extrinsic1[:, perm]
            a2 = self._siso.siso(sys_i_a, par2_a, apriori2, app2[:n], terminated_start=True)
            extrinsic12[:n] = self.extrinsic_scale * (a2 - sys_i_a - apriori2)

            # A-posteriori LLRs in natural order: the decoder-2 output already
            # contains the systematic channel LLR plus both extrinsics (via its
            # a-priori input), so mapping it back is the complete APP.
            nat = app_nat[:n]
            nat[:, perm] = a2
            app_llrs[active] = nat

            hard = nat < 0
            stable = np.all(hard == prev_hard_a, axis=1)
            converged[active] = stable
            prev_hard_a = hard

            # Per-packet early stopping: freeze rows whose decisions were
            # stable across `stable_iterations` consecutive full turbo
            # iterations, or stable once with every APP magnitude above the
            # min-LLR threshold.  The iteration-1 comparison against the
            # channel decisions never counts, so the freeze point depends
            # only on the row's own trajectory.
            if iteration >= 1:
                streak_a = np.where(stable, streak_a + 1, 0)
                if self.early_stopping:
                    frozen = streak_a >= self.stable_iterations
                    if self.freeze_min_llr is not None:
                        confident = np.abs(nat).min(axis=1) >= self.freeze_min_llr
                        frozen |= stable & confident
                    if frozen.any():
                        keep = ~frozen
                        if not keep.any():
                            break
                        active = active[keep]
                        sys_a = sys_a[keep]
                        par1_a = par1_a[keep]
                        par2_a = par2_a[keep]
                        sys_i_a = sys_i_a[keep]
                        extrinsic12[: active.size] = extrinsic12[:n][keep]
                        prev_hard_a = prev_hard_a[keep]
                        streak_a = streak_a[keep]

        decoded = (app_llrs < 0).astype(np.int8)
        return TurboDecoderResult(
            decoded_bits=decoded,
            app_llrs=np.asarray(app_llrs, dtype=np.float64),
            iterations_run=iterations_run,
            converged=converged,
        )

    # ------------------------------------------------------------------ #
    def _as_batch(self, llrs: np.ndarray, dtype: np.dtype) -> np.ndarray:
        arr = np.asarray(llrs, dtype=dtype)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.block_size:
            raise ValueError(
                f"expected shape (batch, {self.block_size}), got {arr.shape}"
            )
        return np.ascontiguousarray(arr)
