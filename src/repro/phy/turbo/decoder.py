"""Iterative max-log-MAP (BCJR) turbo decoder, vectorised over a batch.

The decoder operates on channel LLRs with the library-wide convention
``LLR = log P(bit = 0) - log P(bit = 1)`` (positive favours 0).  Internally
the BCJR branch metrics use the antipodal value ``(1 - 2*bit)`` so that a
positive LLR rewards the bit-0 branches.

Performance notes
-----------------
Monte-Carlo link simulation decodes many packets per operating point, so the
component decoder is written to process a *batch* of packets simultaneously:
all state metrics have shape ``(batch, num_states)`` and the Python-level
loop only runs over the trellis length.  This keeps the per-packet cost low
enough for the paper's figure sweeps without any compiled extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.phy.turbo.interleaver import TurboInterleaver, make_turbo_interleaver
from repro.phy.turbo.trellis import RscTrellis, UMTS_TRELLIS
from repro.utils.validation import ensure_positive_int

_NEG_INF = -1e30


@dataclass
class TurboDecoderResult:
    """Outcome of decoding one batch of code blocks.

    Attributes
    ----------
    decoded_bits:
        Hard decisions, shape ``(batch, block_size)``, dtype ``int8``.
    app_llrs:
        A-posteriori LLRs of the information bits, same shape.
    iterations_run:
        Number of full iterations executed (early stopping may cut this
        short for the whole batch).
    converged:
        Boolean per-batch-element flag: hard decisions stable over the last
        iteration.
    """

    decoded_bits: np.ndarray
    app_llrs: np.ndarray
    iterations_run: int
    converged: np.ndarray


class _SisoDecoder:
    """Soft-in/soft-out max-log-MAP decoder for one RSC constituent code."""

    def __init__(self, trellis: RscTrellis, block_size: int) -> None:
        self.trellis = trellis
        self.block_size = block_size
        # Antipodal parity values per (state, input): +1 for bit 0, -1 for bit 1.
        self._parity_sign = (1.0 - 2.0 * trellis.parity.astype(np.float64))
        self._input_sign = np.array([1.0, -1.0])
        self._next_state = trellis.next_state
        self._prev_state = trellis.prev_state
        self._prev_input = trellis.prev_input

    def decode(
        self,
        sys_llrs: np.ndarray,
        par_llrs: np.ndarray,
        apriori_llrs: np.ndarray,
        *,
        terminated_start: bool = True,
    ) -> np.ndarray:
        """Return a-posteriori LLRs for the information bits.

        All inputs have shape ``(batch, block_size)``.
        """
        batch, k = sys_llrs.shape
        num_states = self.trellis.num_states

        # Branch metric components.
        # gamma[b, t, s, u] = 0.5 * (input_sign[u] * (Lsys + La) + parity_sign[s, u] * Lpar)
        combined = 0.5 * (sys_llrs + apriori_llrs)  # (batch, k)
        half_par = 0.5 * par_llrs  # (batch, k)

        # Forward recursion (store all alphas).
        alphas = np.empty((k + 1, batch, num_states), dtype=np.float64)
        alpha = np.full((batch, num_states), _NEG_INF)
        if terminated_start:
            alpha[:, 0] = 0.0
        else:
            alpha[:, :] = 0.0
        alphas[0] = alpha

        prev_state = self._prev_state  # (S, 2)
        prev_input = self._prev_input  # (S, 2)
        next_state = self._next_state  # (S, 2)
        parity_sign = self._parity_sign  # (S, 2)
        input_sign = self._input_sign  # (2,)

        # Precompute, for each target state s' and predecessor slot j:
        #   the systematic sign and parity sign of the incoming branch.
        in_sign_for_target = input_sign[prev_input]  # (S, 2)
        par_sign_for_target = parity_sign[prev_state, prev_input]  # (S, 2)

        for t in range(k):
            c = combined[:, t][:, None, None]  # (batch, 1, 1)
            p = half_par[:, t][:, None, None]
            # Metric of the branch arriving at each (target state, slot).
            branch = c * in_sign_for_target[None, :, :] + p * par_sign_for_target[None, :, :]
            candidates = alpha[:, prev_state] + branch  # (batch, S, 2)
            alpha = candidates.max(axis=2)
            alpha -= alpha.max(axis=1, keepdims=True)
            alphas[t + 1] = alpha

        # Backward recursion with on-the-fly LLR computation.
        beta = np.zeros((batch, num_states), dtype=np.float64)
        app = np.empty((batch, k), dtype=np.float64)

        in_sign_from_state = input_sign[None, :]  # (1, 2) broadcast over states
        par_sign_from_state = parity_sign  # (S, 2)

        for t in range(k - 1, -1, -1):
            c = combined[:, t][:, None, None]
            p = half_par[:, t][:, None, None]
            # Branch metric leaving state s with input u.
            branch = c * in_sign_from_state[None, :, :] + p * par_sign_from_state[None, :, :]
            beta_next = beta[:, next_state]  # (batch, S, 2)
            metric = alphas[t][:, :, None] + branch + beta_next  # (batch, S, 2)
            best0 = metric[:, :, 0].max(axis=1)
            best1 = metric[:, :, 1].max(axis=1)
            app[:, t] = best0 - best1
            # Update beta for time t.
            beta = (branch + beta_next).max(axis=2)
            beta -= beta.max(axis=1, keepdims=True)

        return app


class TurboDecoder:
    """Iterative turbo decoder matching :class:`~repro.phy.turbo.encoder.TurboEncoder`.

    Parameters
    ----------
    block_size:
        Number of information bits per code block.
    num_iterations:
        Maximum number of full (two half-) iterations.
    interleaver_kind:
        Must match the encoder's internal interleaver construction.
    trellis:
        Constituent-code trellis.
    early_stopping:
        If ``True`` (default), stop when the hard decisions of every packet in
        the batch are unchanged over a full iteration.
    extrinsic_scale:
        Scaling applied to extrinsic information between half-iterations; a
        value slightly below 1 (0.75) compensates the optimism of the max-log
        approximation (standard practice in hardware decoders).
    """

    def __init__(
        self,
        block_size: int,
        num_iterations: int = 6,
        interleaver_kind: str = "qpp",
        trellis: RscTrellis = UMTS_TRELLIS,
        *,
        early_stopping: bool = True,
        extrinsic_scale: float = 0.75,
        interleaver: Optional[TurboInterleaver] = None,
    ) -> None:
        self.block_size = ensure_positive_int(block_size, "block_size")
        self.num_iterations = ensure_positive_int(num_iterations, "num_iterations")
        self.early_stopping = early_stopping
        self.extrinsic_scale = float(extrinsic_scale)
        self.trellis = trellis
        self.interleaver = interleaver or make_turbo_interleaver(block_size, interleaver_kind)
        self._siso = _SisoDecoder(trellis, block_size)

    # ------------------------------------------------------------------ #
    def decode(
        self,
        systematic_llrs: np.ndarray,
        parity1_llrs: np.ndarray,
        parity2_llrs: np.ndarray,
    ) -> TurboDecoderResult:
        """Decode one batch of code blocks.

        Each input is either 1-D (single block) or 2-D ``(batch, block_size)``.
        """
        sys_llrs = self._as_batch(systematic_llrs)
        par1 = self._as_batch(parity1_llrs)
        par2 = self._as_batch(parity2_llrs)
        batch, k = sys_llrs.shape

        perm = self.interleaver.permutation
        sys_interleaved = sys_llrs[:, perm]

        extrinsic12 = np.zeros((batch, k), dtype=np.float64)  # from dec1 to dec2
        previous_hard = None
        app_llrs = sys_llrs.copy()
        iterations_run = 0
        converged = np.zeros(batch, dtype=bool)

        for iteration in range(self.num_iterations):
            iterations_run = iteration + 1

            # --- Decoder 1: natural order ---------------------------------
            apriori1 = np.zeros((batch, k), dtype=np.float64)
            apriori1[:, perm] = extrinsic12  # de-interleave extrinsic from dec2
            app1 = self._siso.decode(sys_llrs, par1, apriori1)
            extrinsic1 = self.extrinsic_scale * (app1 - sys_llrs - apriori1)

            # --- Decoder 2: interleaved order ------------------------------
            apriori2 = extrinsic1[:, perm]
            app2 = self._siso.decode(sys_interleaved, par2, apriori2, terminated_start=True)
            extrinsic2 = self.extrinsic_scale * (app2 - sys_interleaved - apriori2)
            extrinsic12 = extrinsic2

            # A-posteriori LLRs in natural order: the decoder-2 output already
            # contains the systematic channel LLR plus both extrinsics (via its
            # a-priori input), so mapping it back is the complete APP.
            app_llrs = np.empty((batch, k), dtype=np.float64)
            app_llrs[:, perm] = app2

            hard = (app_llrs < 0).astype(np.int8)
            if previous_hard is not None:
                converged = np.all(hard == previous_hard, axis=1)
                if self.early_stopping and converged.all():
                    break
            previous_hard = hard

        decoded = (app_llrs < 0).astype(np.int8)
        return TurboDecoderResult(
            decoded_bits=decoded,
            app_llrs=app_llrs,
            iterations_run=iterations_run,
            converged=converged,
        )

    # ------------------------------------------------------------------ #
    def _as_batch(self, llrs: np.ndarray) -> np.ndarray:
        arr = np.asarray(llrs, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.block_size:
            raise ValueError(
                f"expected shape (batch, {self.block_size}), got {arr.shape}"
            )
        return arr
