"""Trellis description of a recursive systematic convolutional (RSC) encoder.

The UMTS/HSPA turbo code uses the 8-state RSC code with feedback polynomial
``1 + D^2 + D^3`` (octal 13) and feed-forward polynomial ``1 + D + D^3``
(octal 15).  This module precomputes the state-transition and output tables
the encoder and the max-log-MAP decoder need, plus the reverse tables
(predecessor states) used by the vectorised forward recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ensure_positive_int


def _octal_to_taps(octal_value: int, constraint_length: int) -> np.ndarray:
    """Convert an octal generator (e.g. 0o13) to a tap array [g0, g1, ..]."""
    binary = np.array(
        [(octal_value >> i) & 1 for i in range(constraint_length - 1, -1, -1)],
        dtype=np.int8,
    )
    return binary


@dataclass(frozen=True)
class RscTrellis:
    """Precomputed trellis tables for a rate-1/2 RSC encoder.

    Parameters
    ----------
    feedback:
        Feedback polynomial in octal (13 for UMTS).
    feedforward:
        Feed-forward (parity) polynomial in octal (15 for UMTS).
    constraint_length:
        Number of taps including the current input (4 for UMTS, 8 states).

    Attributes
    ----------
    next_state:
        ``next_state[s, u]`` — state after input bit ``u`` from state ``s``.
    parity:
        ``parity[s, u]`` — parity output bit for that transition.
    prev_state:
        ``prev_state[s', k]`` (k = 0, 1) — the two predecessor states of
        ``s'``.
    prev_input:
        ``prev_input[s', k]`` — the input bit on the branch from
        ``prev_state[s', k]`` to ``s'``.
    termination_input:
        ``termination_input[s]`` — input bit that drives the encoder from
        state ``s`` towards the all-zero state (the feedback bit itself).
    """

    feedback: int = 0o13
    feedforward: int = 0o15
    constraint_length: int = 4

    next_state: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    parity: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    prev_state: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    prev_input: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    termination_input: np.ndarray = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        ensure_positive_int(self.constraint_length, "constraint_length")
        memory = self.constraint_length - 1
        num_states = 1 << memory
        fb_taps = _octal_to_taps(self.feedback, self.constraint_length)
        ff_taps = _octal_to_taps(self.feedforward, self.constraint_length)

        next_state = np.zeros((num_states, 2), dtype=np.int64)
        parity = np.zeros((num_states, 2), dtype=np.int8)
        termination_input = np.zeros(num_states, dtype=np.int8)

        for state in range(num_states):
            # Shift register contents, most recent bit first.
            register = np.array(
                [(state >> (memory - 1 - i)) & 1 for i in range(memory)], dtype=np.int8
            )
            # The feedback contribution from the register (excluding input tap).
            fb_from_register = int(np.dot(fb_taps[1:], register) % 2)
            termination_input[state] = fb_from_register
            for u in (0, 1):
                # Recursive bit entering the register.
                d = (u ^ fb_from_register) & 1
                full = np.concatenate([[d], register])
                parity[state, u] = int(np.dot(ff_taps, full) % 2)
                new_register = full[:-1]
                new_state = 0
                for bit in new_register:
                    new_state = (new_state << 1) | int(bit)
                next_state[state, u] = new_state

        prev_state = np.zeros((num_states, 2), dtype=np.int64)
        prev_input = np.zeros((num_states, 2), dtype=np.int64)
        counts = np.zeros(num_states, dtype=np.int64)
        for state in range(num_states):
            for u in (0, 1):
                target = next_state[state, u]
                slot = counts[target]
                prev_state[target, slot] = state
                prev_input[target, slot] = u
                counts[target] += 1
        if not np.all(counts == 2):
            raise RuntimeError("invalid trellis: every state must have two predecessors")

        object.__setattr__(self, "next_state", next_state)
        object.__setattr__(self, "parity", parity)
        object.__setattr__(self, "prev_state", prev_state)
        object.__setattr__(self, "prev_input", prev_input)
        object.__setattr__(self, "termination_input", termination_input)

    @property
    def num_states(self) -> int:
        """Number of trellis states (8 for the UMTS code)."""
        return int(self.next_state.shape[0])

    def encode_bits(self, bits: np.ndarray, initial_state: int = 0) -> tuple[np.ndarray, int]:
        """Run the RSC encoder over *bits*; return (parity bits, final state)."""
        state = int(initial_state)
        out = np.empty(len(bits), dtype=np.int8)
        for i, u in enumerate(np.asarray(bits, dtype=np.int64)):
            out[i] = self.parity[state, u]
            state = int(self.next_state[state, u])
        return out, state

    def encode_bits_batch(
        self, bits: np.ndarray, initial_state: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise :meth:`encode_bits` for a ``(batch, length)`` bit matrix.

        The shift-register recursion is exact integer table lookup, so the
        vectorised per-column sweep is bit-identical to encoding each row
        alone; returns ``(parity_matrix, final_states)``.
        """
        info = np.asarray(bits, dtype=np.int64)
        if info.ndim != 2:
            raise ValueError(f"expected a 2-D bit matrix, got shape {info.shape}")
        batch, length = info.shape
        if batch == 1:
            # Scalar table lookups beat one-element fancy indexing by an
            # order of magnitude; both are exact integer recursions, so the
            # delegation is bit-identical.
            row, final_state = self.encode_bits(info[0], initial_state)
            return row.reshape(1, -1), np.array([final_state], dtype=np.int64)
        state = np.full(batch, int(initial_state), dtype=np.int64)
        out = np.empty((batch, length), dtype=np.int8)
        parity, next_state = self.parity, self.next_state
        for i in range(length):
            u = info[:, i]
            out[:, i] = parity[state, u]
            state = next_state[state, u]
        return out, state


#: The UMTS / HSPA constituent-code trellis (octal generators 13 / 15).
UMTS_TRELLIS = RscTrellis()
