"""3GPP-style parallel-concatenated convolutional (turbo) code.

The HSDPA transport channel uses the UMTS rate-1/3 turbo code built from two
8-state recursive systematic convolutional (RSC) encoders with generator
polynomials (13, 15) in octal, separated by an internal interleaver.  The
decoder iterates two soft-in/soft-out max-log-MAP (BCJR) component decoders
exchanging extrinsic information — the "sophisticated channel decoding
algorithm" whose sensitivity to corrupted LLRs is at the heart of the paper.
"""

from repro.phy.turbo.trellis import RscTrellis, UMTS_TRELLIS
from repro.phy.turbo.interleaver import TurboInterleaver, make_turbo_interleaver
from repro.phy.turbo.encoder import TurboEncoder
from repro.phy.turbo.decoder import TurboDecoder, TurboDecoderResult
from repro.phy.turbo.code import TurboCode

__all__ = [
    "RscTrellis",
    "TurboCode",
    "TurboDecoder",
    "TurboDecoderResult",
    "TurboEncoder",
    "TurboInterleaver",
    "UMTS_TRELLIS",
    "make_turbo_interleaver",
]
