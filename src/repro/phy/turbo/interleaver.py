"""Turbo-code internal interleaver.

Two constructions are provided:

* **QPP (quadratic permutation polynomial)** — ``pi(i) = (f1*i + f2*i^2) mod K``,
  the contention-free construction used by LTE and a faithful functional model
  of the UMTS internal interleaver's spreading behaviour.  Valid ``(f1, f2)``
  pairs are derived automatically for any block size.
* **Pseudo-random** — a deterministic seeded permutation, the classic turbo
  interleaver of the original Berrou construction.  Used as a fallback and in
  tests.

Both give the pseudo-random spreading the iterative decoder needs; the exact
3GPP prunable mother interleaver is bit-level irrelevant to the paper's study.
"""

from __future__ import annotations

from math import gcd

import numpy as np

from repro.phy.interleaving import Interleaver
from repro.utils.rng import as_rng
from repro.utils.validation import ensure_positive_int


class TurboInterleaver(Interleaver):
    """An :class:`~repro.phy.interleaving.Interleaver` used inside the turbo code."""


def _valid_qpp_parameters(block_size: int) -> tuple[int, int]:
    """Derive a valid QPP parameter pair (f1, f2) for *block_size*.

    Requirements (Takeshita): ``gcd(f1, K) == 1`` and every prime factor of K
    must divide f2 (with an extra factor of 2 if 4 divides K).
    """
    k = block_size
    # f2: product of the distinct prime factors of K (doubled if 4 | K).
    remaining = k
    f2 = 1
    factor = 2
    while factor * factor <= remaining:
        if remaining % factor == 0:
            f2 *= factor
            while remaining % factor == 0:
                remaining //= factor
        factor += 1
    if remaining > 1:
        f2 *= remaining
    if k % 4 == 0 and f2 % 4 != 0:
        f2 *= 2
    f2 %= k
    if f2 == 0:
        f2 = k // 2 if k % 2 == 0 else 1
    # f1: smallest odd value >= 3 coprime with K.
    f1 = 3
    while gcd(f1, k) != 1:
        f1 += 2
    return f1, f2


def qpp_interleaver(block_size: int, f1: int | None = None, f2: int | None = None) -> TurboInterleaver:
    """Quadratic-permutation-polynomial interleaver for *block_size* bits."""
    k = ensure_positive_int(block_size, "block_size")
    if f1 is None or f2 is None:
        auto_f1, auto_f2 = _valid_qpp_parameters(k)
        f1 = auto_f1 if f1 is None else f1
        f2 = auto_f2 if f2 is None else f2
    i = np.arange(k, dtype=np.int64)
    permutation = (f1 * i + f2 * i * i) % k
    if np.unique(permutation).size != k:
        raise ValueError(
            f"(f1={f1}, f2={f2}) is not a valid QPP parameter pair for K={k}"
        )
    return TurboInterleaver(permutation)


def pseudo_random_interleaver(block_size: int, seed: int = 0x5EED) -> TurboInterleaver:
    """Deterministic pseudo-random interleaver (Berrou-style)."""
    k = ensure_positive_int(block_size, "block_size")
    permutation = as_rng(seed + k).permutation(k)
    return TurboInterleaver(permutation)


def make_turbo_interleaver(block_size: int, kind: str = "qpp") -> TurboInterleaver:
    """Factory for the internal interleaver.

    Parameters
    ----------
    block_size:
        Number of information bits per code block.
    kind:
        ``"qpp"`` (default) or ``"random"``.
    """
    if kind == "qpp":
        try:
            return qpp_interleaver(block_size)
        except ValueError:
            # Extremely rare (automatic parameters failed); fall back safely.
            return pseudo_random_interleaver(block_size)
    if kind == "random":
        return pseudo_random_interleaver(block_size)
    raise ValueError(f"unknown turbo interleaver kind {kind!r}")
