"""Fixed-point quantization of log-likelihood ratios (LLRs).

The HARQ soft buffer stores *quantized* LLRs.  The paper uses a 10-bit
quantization ("to avoid any throughput-loss due to quantization noise") and
Section 6.4 studies 10/11/12-bit widths jointly with hardware defects.  The
fault-injection point of the whole study is the bit pattern produced by this
quantizer, so its word format is the contract between the PHY and the
unreliable-memory model.

Two word formats are provided:

* ``sign-magnitude`` (default) — bit 0 (the MSB of the stored word) is the
  sign, the remaining bits the magnitude.  This is the natural format for the
  paper's discussion ("the sign information is of higher importance than the
  rest bits").
* ``twos-complement`` — standard two's complement integer representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_choice, ensure_positive_int

_FORMATS = ("sign-magnitude", "twos-complement")


@dataclass(frozen=True)
class LlrQuantizer:
    """Uniform saturating quantizer mapping real LLRs to fixed-point words.

    Parameters
    ----------
    num_bits:
        Total word width (sign included).  The paper's default is 10.
    max_abs:
        Saturation level: LLRs are clipped to ``[-max_abs, +max_abs]`` before
        quantization.  Chosen large enough that clipping is rare for the
        operating SNRs (default 32.0, i.e. very confident bits saturate).
    word_format:
        ``"sign-magnitude"`` or ``"twos-complement"``.
    """

    num_bits: int = 10
    max_abs: float = 32.0
    word_format: str = "sign-magnitude"

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_bits, "num_bits")
        if self.num_bits < 2:
            raise ValueError("num_bits must be at least 2 (sign + magnitude)")
        if self.max_abs <= 0:
            raise ValueError(f"max_abs must be positive, got {self.max_abs}")
        ensure_choice(self.word_format, "word_format", _FORMATS)

    # ------------------------------------------------------------------ #
    # scalar properties
    # ------------------------------------------------------------------ #
    @property
    def num_levels(self) -> int:
        """Number of distinct magnitude levels on each side of zero."""
        return (1 << (self.num_bits - 1)) - 1

    @property
    def step(self) -> float:
        """Quantization step size."""
        return self.max_abs / self.num_levels

    # ------------------------------------------------------------------ #
    # float <-> integer code
    # ------------------------------------------------------------------ #
    def quantize_to_index(self, llrs: np.ndarray) -> np.ndarray:
        """Quantize real LLRs to signed integer codes in [-num_levels, +num_levels]."""
        llrs = np.asarray(llrs, dtype=np.float64)
        clipped = np.clip(llrs, -self.max_abs, self.max_abs)
        return np.rint(clipped / self.step).astype(np.int32)

    def index_to_value(self, indices: np.ndarray) -> np.ndarray:
        """Map signed integer codes back to real LLR values."""
        return np.asarray(indices, dtype=np.float64) * self.step

    def quantize(self, llrs: np.ndarray) -> np.ndarray:
        """Round-trip a real LLR array through the quantizer (float output)."""
        return self.index_to_value(self.quantize_to_index(llrs))

    # ------------------------------------------------------------------ #
    # integer code <-> stored word bits
    # ------------------------------------------------------------------ #
    def index_to_words(self, indices: np.ndarray) -> np.ndarray:
        """Encode signed integer codes as unsigned memory words.

        Returns an ``int32`` array of non-negative word values, each fitting
        in :attr:`num_bits` bits, in the configured :attr:`word_format`.
        """
        idx = np.asarray(indices, dtype=np.int64)
        levels = self.num_levels
        idx = np.clip(idx, -levels, levels)
        if self.word_format == "sign-magnitude":
            sign = (idx < 0).astype(np.int64)
            magnitude = np.abs(idx)
            words = (sign << (self.num_bits - 1)) | magnitude
        else:  # twos-complement
            words = np.where(idx < 0, idx + (1 << self.num_bits), idx)
        return words.astype(np.int64)

    def words_to_index(self, words: np.ndarray) -> np.ndarray:
        """Decode unsigned memory words back to signed integer codes."""
        w = np.asarray(words, dtype=np.int64)
        if w.size and (w.min() < 0 or w.max() >= (1 << self.num_bits)):
            raise ValueError(f"words must fit in {self.num_bits} bits")
        if self.word_format == "sign-magnitude":
            sign_mask = 1 << (self.num_bits - 1)
            magnitude = w & (sign_mask - 1)
            sign = (w & sign_mask) != 0
            idx = np.where(sign, -magnitude, magnitude)
        else:  # twos-complement
            half = 1 << (self.num_bits - 1)
            idx = np.where(w >= half, w - (1 << self.num_bits), w)
        return idx.astype(np.int32)

    # ------------------------------------------------------------------ #
    # end-to-end helpers used by the HARQ buffer
    # ------------------------------------------------------------------ #
    def llrs_to_words(self, llrs: np.ndarray) -> np.ndarray:
        """Quantize real LLRs directly into unsigned memory words."""
        return self.index_to_words(self.quantize_to_index(llrs))

    def words_to_llrs(self, words: np.ndarray) -> np.ndarray:
        """Decode unsigned memory words directly into real LLR values."""
        return self.index_to_value(self.words_to_index(words))

    def words_to_bits(self, words: np.ndarray) -> np.ndarray:
        """Expand memory words into a (num_words, num_bits) bit matrix, MSB first.

        Bit column 0 is the most significant stored bit — the sign bit for the
        sign-magnitude format.  This is the layout the fault-injection and
        preferential-protection machinery operates on.
        """
        w = np.asarray(words, dtype=np.int64)
        shifts = np.arange(self.num_bits - 1, -1, -1, dtype=np.int64)
        return ((w[:, None] >> shifts[None, :]) & 1).astype(np.int8)

    def bits_to_words(self, bits: np.ndarray) -> np.ndarray:
        """Pack a (num_words, num_bits) bit matrix (MSB first) into words."""
        mat = np.asarray(bits, dtype=np.int64)
        if mat.ndim != 2 or mat.shape[1] != self.num_bits:
            raise ValueError(
                f"expected shape (n, {self.num_bits}), got {mat.shape}"
            )
        weights = 1 << np.arange(self.num_bits - 1, -1, -1, dtype=np.int64)
        return mat @ weights

    def quantization_noise_power(self) -> float:
        """Variance of the quantization error for uniformly distributed inputs."""
        return self.step**2 / 12.0
