"""Physical-layer substrate for the HSPA+-like link simulator.

Contains every transmit/receive building block the paper's system model
(Fig. 1a) requires: bit utilities, CRC attachment, the 3GPP-style turbo code,
rate matching with redundancy versions, channel interleaving, Gray-mapped
QPSK/16QAM/64QAM with soft (LLR) demapping, OVSF spreading/scrambling,
root-raised-cosine pulse shaping and fixed-point LLR quantization.
"""

from repro.phy.bits import (
    bits_to_int,
    bits_to_symbols_matrix,
    hamming_distance,
    int_to_bits,
    pack_bits,
    random_bits,
    unpack_bits,
)
from repro.phy.crc import Crc, CRC_8, CRC_16, CRC_24A
from repro.phy.modulation import Modulator, MODULATIONS
from repro.phy.quantization import LlrQuantizer
from repro.phy.turbo import TurboCode, TurboDecoder, TurboEncoder

__all__ = [
    "Crc",
    "CRC_8",
    "CRC_16",
    "CRC_24A",
    "LlrQuantizer",
    "MODULATIONS",
    "Modulator",
    "TurboCode",
    "TurboDecoder",
    "TurboEncoder",
    "bits_to_int",
    "bits_to_symbols_matrix",
    "hamming_distance",
    "int_to_bits",
    "pack_bits",
    "random_bits",
    "unpack_bits",
]
