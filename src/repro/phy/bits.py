"""Bit-level helpers used throughout the transmit and receive chains."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_bit_array, ensure_positive_int


def random_bits(n: int, rng: RngLike = None) -> np.ndarray:
    """Return *n* uniformly random bits as an ``int8`` array."""
    n = ensure_positive_int(n, "n") if n != 0 else 0
    return as_rng(rng).integers(0, 2, size=n, dtype=np.int8)


def int_to_bits(value: int, width: int, *, msb_first: bool = True) -> np.ndarray:
    """Convert a non-negative integer to a fixed-width bit array.

    Parameters
    ----------
    value:
        Non-negative integer to convert.
    width:
        Number of bits in the output.
    msb_first:
        If ``True`` (default) the most significant bit comes first.
    """
    width = ensure_positive_int(width, "width")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.int8)
    return bits[::-1].copy() if msb_first else bits


def bits_to_int(bits: Union[Sequence[int], np.ndarray], *, msb_first: bool = True) -> int:
    """Convert a bit array back to an integer (inverse of :func:`int_to_bits`)."""
    arr = ensure_bit_array(bits)
    if not msb_first:
        arr = arr[::-1]
    value = 0
    for b in arr:
        value = (value << 1) | int(b)
    return value


def pack_bits(bits: np.ndarray, width: int, *, msb_first: bool = True) -> np.ndarray:
    """Pack a flat bit array into integers of *width* bits each (vectorised).

    The length of *bits* must be a multiple of *width*.
    """
    arr = ensure_bit_array(bits)
    width = ensure_positive_int(width, "width")
    if arr.size % width:
        raise ValueError(f"bit length {arr.size} is not a multiple of width {width}")
    mat = arr.reshape(-1, width).astype(np.int64)
    if msb_first:
        weights = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
    else:
        weights = 1 << np.arange(width, dtype=np.int64)
    return mat @ weights


def unpack_bits(values: np.ndarray, width: int, *, msb_first: bool = True) -> np.ndarray:
    """Unpack integers into a flat bit array of *width* bits each (vectorised)."""
    vals = np.asarray(values, dtype=np.int64)
    width = ensure_positive_int(width, "width")
    if vals.size and (vals.min() < 0 or vals.max() >= (1 << width)):
        raise ValueError(f"values must be in [0, 2**{width})")
    if msb_first:
        shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    else:
        shifts = np.arange(width, dtype=np.int64)
    bits = (vals[:, None] >> shifts[None, :]) & 1
    return bits.reshape(-1).astype(np.int8)


def bits_to_symbols_matrix(bits: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    """Reshape a flat bit stream into a (num_symbols, bits_per_symbol) matrix.

    Pads with zeros if the length is not a multiple of *bits_per_symbol*.
    """
    arr = ensure_bit_array(bits)
    bits_per_symbol = ensure_positive_int(bits_per_symbol, "bits_per_symbol")
    remainder = arr.size % bits_per_symbol
    if remainder:
        pad = bits_per_symbol - remainder
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.int8)])
    return arr.reshape(-1, bits_per_symbol)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions in which two equal-length bit arrays differ."""
    arr_a = ensure_bit_array(a, "a")
    arr_b = ensure_bit_array(b, "b")
    if arr_a.size != arr_b.size:
        raise ValueError(f"length mismatch: {arr_a.size} vs {arr_b.size}")
    return int(np.count_nonzero(arr_a != arr_b))


def bit_error_rate(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of differing positions between two equal-length bit arrays."""
    arr_a = ensure_bit_array(a, "a")
    if arr_a.size == 0:
        return 0.0
    return hamming_distance(a, b) / arr_a.size


def gray_code(n_bits: int) -> np.ndarray:
    """Return the length-``2**n_bits`` binary-reflected Gray code sequence."""
    n_bits = ensure_positive_int(n_bits, "n_bits")
    values = np.arange(1 << n_bits, dtype=np.int64)
    return values ^ (values >> 1)


def gray_to_binary(gray: np.ndarray, n_bits: int) -> np.ndarray:
    """Invert the binary-reflected Gray code (vectorised)."""
    out = np.asarray(gray, dtype=np.int64).copy()
    shift = 1
    while shift < n_bits:
        out ^= out >> shift
        shift <<= 1
    return out
