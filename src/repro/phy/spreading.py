"""CDMA spreading: OVSF channelisation codes and scrambling.

HSPA+ is a CDMA system — data symbols are spread by orthogonal variable
spreading factor (OVSF) codes (spreading factor 16 for HS-PDSCH) and
scrambled by a pseudo-random sequence before pulse shaping.  The spreading
operation itself is transparent to the error-resilience study (it is undone
at the receiver), but it is part of the paper's system model (Fig. 1a) and it
determines the chip-rate signal the multipath channel acts on, so it is
implemented fully here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_positive_int


def ovsf_code(spreading_factor: int, index: int) -> np.ndarray:
    """Return OVSF code ``C_{SF,index}`` as a ±1 array of length *spreading_factor*.

    The OVSF code tree is built by the standard recursion
    ``C_{2n,2k} = [C_{n,k},  C_{n,k}]`` and ``C_{2n,2k+1} = [C_{n,k}, -C_{n,k}]``.
    """
    sf = ensure_positive_int(spreading_factor, "spreading_factor")
    if sf & (sf - 1):
        raise ValueError(f"spreading_factor must be a power of two, got {sf}")
    if not 0 <= index < sf:
        raise ValueError(f"index must be in [0, {sf}), got {index}")
    depth = sf.bit_length() - 1
    code = np.array([1.0])
    # Walk the OVSF tree from the root; the index bits (MSB first) choose the
    # child at each level: 0 -> [c, c], 1 -> [c, -c].
    for level in range(depth):
        bit = (index >> (depth - 1 - level)) & 1
        code = np.concatenate([code, -code]) if bit else np.concatenate([code, code])
    return code


def ovsf_code_tree(spreading_factor: int) -> np.ndarray:
    """Return all OVSF codes of a given SF as a (SF, SF) ±1 matrix."""
    sf = ensure_positive_int(spreading_factor, "spreading_factor")
    if sf & (sf - 1):
        raise ValueError(f"spreading_factor must be a power of two, got {sf}")
    tree = np.array([[1.0]])
    while tree.shape[1] < sf:
        upper = np.hstack([tree, tree])
        lower = np.hstack([tree, -tree])
        tree = np.empty((2 * tree.shape[0], 2 * tree.shape[1]))
        tree[0::2] = upper
        tree[1::2] = lower
    return tree


def scrambling_sequence(length: int, seed: int = 0) -> np.ndarray:
    """Pseudo-random complex scrambling sequence of unit-modulus chips.

    3GPP uses Gold-code based complex scrambling; for the link-level study a
    reproducible pseudo-random QPSK-valued sequence has identical statistical
    behaviour (it is removed exactly at the receiver).
    """
    length = ensure_positive_int(length, "length")
    rng = np.random.default_rng(seed)
    phases = rng.integers(0, 4, size=length)
    return np.exp(1j * (np.pi / 2.0) * phases + 1j * np.pi / 4.0)


@dataclass(frozen=True)
class Spreader:
    """Spreads modulated symbols to chip rate and despreads them back.

    Parameters
    ----------
    spreading_factor:
        Chips per symbol (16 for HS-PDSCH; smaller values are useful for fast
        simulations since the despread SNR behaviour is identical).
    code_index:
        Which OVSF code of that spreading factor to use.
    scrambling_seed:
        Seed of the cell-specific scrambling sequence.
    """

    spreading_factor: int = 16
    code_index: int = 1
    scrambling_seed: int = 0

    def __post_init__(self) -> None:
        ovsf_code(self.spreading_factor, self.code_index)  # validates

    @property
    def code(self) -> np.ndarray:
        """The ±1 channelisation code."""
        return ovsf_code(self.spreading_factor, self.code_index)

    def spread(self, symbols: np.ndarray) -> np.ndarray:
        """Spread symbols to chips and apply scrambling."""
        syms = np.asarray(symbols, dtype=np.complex128).reshape(-1)
        chips = (syms[:, None] * self.code[None, :]).reshape(-1)
        scramble = scrambling_sequence(chips.size, self.scrambling_seed)
        return chips * scramble

    def spread_batch(self, symbols: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`spread` for a ``(batch, num_symbols)`` matrix.

        Every packet sees the same cell-specific scrambling sequence (it is a
        pure function of the seed and the chip count), so the batched form
        tiles one sequence across the rows — bit-identical to spreading each
        row alone.
        """
        syms = np.asarray(symbols, dtype=np.complex128)
        if syms.ndim != 2:
            raise ValueError(f"expected a 2-D symbol matrix, got shape {syms.shape}")
        batch = syms.shape[0]
        chips = (syms[:, :, None] * self.code[None, None, :]).reshape(batch, -1)
        scramble = scrambling_sequence(chips.shape[1], self.scrambling_seed)
        return chips * scramble[None, :]

    def despread_batch(self, chips: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`despread` for a ``(batch, num_chips)`` matrix."""
        chip_arr = np.asarray(chips, dtype=np.complex128)
        if chip_arr.ndim != 2:
            raise ValueError(f"expected a 2-D chip matrix, got shape {chip_arr.shape}")
        batch, num_chips = chip_arr.shape
        sf = self.spreading_factor
        if num_chips % sf:
            raise ValueError(
                f"chip count {num_chips} is not a multiple of the spreading factor {sf}"
            )
        scramble = scrambling_sequence(num_chips, self.scrambling_seed)
        descrambled = chip_arr * np.conj(scramble)[None, :]
        mat = descrambled.reshape(-1, sf)
        return (mat @ self.code / sf).reshape(batch, -1)

    def despread(self, chips: np.ndarray) -> np.ndarray:
        """Descramble and despread chips back to symbol estimates.

        The despreading correlation averages the chips of each symbol, which
        also averages the chip-level noise — the standard CDMA processing
        gain.  The chip count must be a multiple of the spreading factor.
        """
        chip_arr = np.asarray(chips, dtype=np.complex128).reshape(-1)
        sf = self.spreading_factor
        if chip_arr.size % sf:
            raise ValueError(
                f"chip count {chip_arr.size} is not a multiple of the spreading factor {sf}"
            )
        scramble = scrambling_sequence(chip_arr.size, self.scrambling_seed)
        descrambled = chip_arr * np.conj(scramble)
        mat = descrambled.reshape(-1, sf)
        return mat @ self.code / sf

    def processing_gain_db(self) -> float:
        """Processing gain of the despreading correlation in dB."""
        return float(10.0 * np.log10(self.spreading_factor))


def cross_correlation(code_a: np.ndarray, code_b: np.ndarray) -> float:
    """Normalised cross-correlation between two codes of equal length."""
    a = np.asarray(code_a, dtype=np.float64)
    b = np.asarray(code_b, dtype=np.float64)
    if a.size != b.size:
        raise ValueError(f"code length mismatch: {a.size} vs {b.size}")
    return float(np.dot(a, b) / a.size)
