"""Root-raised-cosine (RRC) pulse shaping.

The spread chip stream "modulates a root-raised cosine pulse-train" before
transmission (paper Section 2.1).  HSPA uses a roll-off of 0.22.  A matched
RRC filter at the receiver recovers (approximately) inter-chip-interference
free samples over an ideal channel; over a multipath channel the cascade of
pulse shaping and the physical taps forms the effective channel the equalizer
has to invert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_in_range, ensure_positive_int


def rrc_taps(span_symbols: int, samples_per_symbol: int, roll_off: float = 0.22) -> np.ndarray:
    """Impulse response of a root-raised-cosine filter.

    Parameters
    ----------
    span_symbols:
        Filter length in symbol (chip) periods; the filter has
        ``span_symbols * samples_per_symbol + 1`` taps.
    samples_per_symbol:
        Oversampling factor.
    roll_off:
        Excess-bandwidth factor beta in (0, 1]; 0.22 for UMTS/HSPA.

    Returns
    -------
    numpy.ndarray
        Unit-energy filter taps.
    """
    span_symbols = ensure_positive_int(span_symbols, "span_symbols")
    sps = ensure_positive_int(samples_per_symbol, "samples_per_symbol")
    beta = ensure_in_range(roll_off, "roll_off", 0.0, 1.0, inclusive=False) \
        if roll_off != 1.0 else 1.0

    n_taps = span_symbols * sps + 1
    t = (np.arange(n_taps) - (n_taps - 1) / 2.0) / sps
    taps = np.empty(n_taps, dtype=np.float64)
    for i, ti in enumerate(t):
        if abs(ti) < 1e-12:
            taps[i] = 1.0 - beta + 4.0 * beta / np.pi
        elif abs(abs(ti) - 1.0 / (4.0 * beta)) < 1e-12:
            taps[i] = (beta / np.sqrt(2.0)) * (
                (1.0 + 2.0 / np.pi) * np.sin(np.pi / (4.0 * beta))
                + (1.0 - 2.0 / np.pi) * np.cos(np.pi / (4.0 * beta))
            )
        else:
            numerator = np.sin(np.pi * ti * (1.0 - beta)) + 4.0 * beta * ti * np.cos(
                np.pi * ti * (1.0 + beta)
            )
            denominator = np.pi * ti * (1.0 - (4.0 * beta * ti) ** 2)
            taps[i] = numerator / denominator
    return taps / np.sqrt(np.sum(taps**2))


@dataclass(frozen=True)
class PulseShaper:
    """Transmit RRC shaping and receive matched filtering.

    Parameters
    ----------
    samples_per_symbol:
        Oversampling factor applied to the chip stream.
    roll_off:
        RRC roll-off factor (0.22 for HSPA).
    span_symbols:
        Filter span in chips.
    """

    samples_per_symbol: int = 4
    roll_off: float = 0.22
    span_symbols: int = 8

    @property
    def taps(self) -> np.ndarray:
        """Unit-energy RRC taps for this configuration."""
        return rrc_taps(self.span_symbols, self.samples_per_symbol, self.roll_off)

    @property
    def delay_samples(self) -> int:
        """Group delay of one filter in samples."""
        return (self.taps.size - 1) // 2

    def shape(self, chips: np.ndarray) -> np.ndarray:
        """Upsample the chip stream and apply the transmit RRC filter."""
        chip_arr = np.asarray(chips, dtype=np.complex128).reshape(-1)
        upsampled = np.zeros(chip_arr.size * self.samples_per_symbol, dtype=np.complex128)
        upsampled[:: self.samples_per_symbol] = chip_arr
        return np.convolve(upsampled, self.taps)

    def matched_filter(self, samples: np.ndarray, num_chips: int) -> np.ndarray:
        """Apply the receive matched filter and downsample to chip rate.

        Parameters
        ----------
        samples:
            Received oversampled waveform (output of :meth:`shape` plus
            channel/noise).
        num_chips:
            Number of chips to recover.
        """
        received = np.asarray(samples, dtype=np.complex128).reshape(-1)
        filtered = np.convolve(received, self.taps)
        # Total delay of the Tx+Rx filter cascade.
        total_delay = 2 * self.delay_samples
        indices = total_delay + np.arange(num_chips) * self.samples_per_symbol
        if indices[-1] >= filtered.size:
            raise ValueError("received waveform too short for the requested chip count")
        return filtered[indices]

    def end_to_end_response(self) -> np.ndarray:
        """Combined Tx+Rx raised-cosine response sampled at chip rate."""
        cascade = np.convolve(self.taps, self.taps)
        center = (cascade.size - 1) // 2
        offsets = np.arange(-self.span_symbols, self.span_symbols + 1) * self.samples_per_symbol
        indices = center + offsets
        valid = (indices >= 0) & (indices < cascade.size)
        return cascade[indices[valid]]
