"""Non-recursive convolutional code with Viterbi decoding.

UMTS uses a rate-1/3, constraint-length-9 convolutional code for control
channels; it also serves in this library as the *hard-decision* / simpler
baseline against which the soft turbo-coded HARQ chain is compared (the
"hard receiver" of Section 2.1 implies lower complexity but a sizable
performance loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.validation import ensure_bit_array, ensure_positive_int

_NEG_INF = -1e30

#: UMTS rate-1/3 convolutional code generators (TS 25.212), octal.
UMTS_CONV_GENERATORS = (0o557, 0o663, 0o711)
UMTS_CONV_CONSTRAINT_LENGTH = 9


def _octal_taps(octal_value: int, constraint_length: int) -> np.ndarray:
    return np.array(
        [(octal_value >> i) & 1 for i in range(constraint_length - 1, -1, -1)],
        dtype=np.int8,
    )


@dataclass(frozen=True)
class ConvolutionalCode:
    """Feed-forward convolutional encoder + soft/hard Viterbi decoder.

    Parameters
    ----------
    generators:
        Octal generator polynomials, one per output bit.
    constraint_length:
        Total number of taps (memory + 1).
    terminate:
        If ``True`` (default) the encoder appends ``constraint_length - 1``
        zero tail bits so the trellis ends in state 0.
    """

    generators: Sequence[int] = (0o5, 0o7)
    constraint_length: int = 3
    terminate: bool = True

    _next_state: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _outputs: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        ensure_positive_int(self.constraint_length, "constraint_length")
        if self.constraint_length < 2:
            raise ValueError("constraint_length must be at least 2")
        memory = self.constraint_length - 1
        num_states = 1 << memory
        taps = np.stack([_octal_taps(g, self.constraint_length) for g in self.generators])
        next_state = np.zeros((num_states, 2), dtype=np.int64)
        outputs = np.zeros((num_states, 2, len(self.generators)), dtype=np.int8)
        for state in range(num_states):
            register = np.array(
                [(state >> (memory - 1 - i)) & 1 for i in range(memory)], dtype=np.int8
            )
            for u in (0, 1):
                full = np.concatenate([[u], register])
                outputs[state, u] = taps @ full % 2
                new_register = full[:-1]
                ns = 0
                for bit in new_register:
                    ns = (ns << 1) | int(bit)
                next_state[state, u] = ns
        object.__setattr__(self, "generators", tuple(self.generators))
        object.__setattr__(self, "_next_state", next_state)
        object.__setattr__(self, "_outputs", outputs)

    # ------------------------------------------------------------------ #
    @property
    def rate(self) -> float:
        """Code rate ignoring termination overhead."""
        return 1.0 / len(self.generators)

    @property
    def num_states(self) -> int:
        """Number of trellis states."""
        return int(self._next_state.shape[0])

    @property
    def num_outputs(self) -> int:
        """Coded bits emitted per information bit."""
        return len(self.generators)

    def num_coded_bits(self, num_info_bits: int) -> int:
        """Coded sequence length for *num_info_bits* information bits."""
        tail = self.constraint_length - 1 if self.terminate else 0
        return (num_info_bits + tail) * self.num_outputs

    # ------------------------------------------------------------------ #
    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode a bit sequence (tail bits appended when terminating)."""
        info = ensure_bit_array(bits)
        if self.terminate:
            info = np.concatenate(
                [info, np.zeros(self.constraint_length - 1, dtype=np.int8)]
            )
        state = 0
        out = np.empty((info.size, self.num_outputs), dtype=np.int8)
        for i, u in enumerate(info):
            out[i] = self._outputs[state, u]
            state = int(self._next_state[state, u])
        return out.reshape(-1)

    # ------------------------------------------------------------------ #
    def decode(self, llrs: np.ndarray) -> np.ndarray:
        """Soft-decision Viterbi decoding.

        Parameters
        ----------
        llrs:
            Channel LLRs (positive favours bit 0), length must be a multiple
            of :attr:`num_outputs`.

        Returns
        -------
        numpy.ndarray
            Decoded information bits (tail bits stripped when terminating).
        """
        llr_arr = np.asarray(llrs, dtype=np.float64).reshape(-1)
        n_out = self.num_outputs
        if llr_arr.size % n_out:
            raise ValueError(f"LLR length must be a multiple of {n_out}")
        num_steps = llr_arr.size // n_out
        stage_llrs = llr_arr.reshape(num_steps, n_out)

        num_states = self.num_states
        # Branch metric: sum over outputs of 0.5 * sign(output bit) * LLR.
        output_sign = 1.0 - 2.0 * self._outputs.astype(np.float64)  # (S, 2, n_out)

        metrics = np.full(num_states, _NEG_INF)
        metrics[0] = 0.0
        survivors = np.zeros((num_steps, num_states), dtype=np.int64)
        survivor_inputs = np.zeros((num_steps, num_states), dtype=np.int8)

        for t in range(num_steps):
            branch = 0.5 * output_sign @ stage_llrs[t]  # (S, 2)
            candidate = metrics[:, None] + branch  # (S, 2)
            new_metrics = np.full(num_states, _NEG_INF)
            for state in range(num_states):
                for u in (0, 1):
                    ns = self._next_state[state, u]
                    if candidate[state, u] > new_metrics[ns]:
                        new_metrics[ns] = candidate[state, u]
                        survivors[t, ns] = state
                        survivor_inputs[t, ns] = u
            metrics = new_metrics - new_metrics.max()

        # Trace back from the best final state (state 0 when terminated).
        state = 0 if self.terminate else int(np.argmax(metrics))
        decoded = np.empty(num_steps, dtype=np.int8)
        for t in range(num_steps - 1, -1, -1):
            decoded[t] = survivor_inputs[t, state]
            state = int(survivors[t, state])
        if self.terminate:
            decoded = decoded[: num_steps - (self.constraint_length - 1)]
        return decoded

    def decode_hard(self, bits: np.ndarray) -> np.ndarray:
        """Hard-decision Viterbi decoding of received coded bits."""
        hard = ensure_bit_array(bits).astype(np.float64)
        return self.decode(1.0 - 2.0 * hard)


def umts_convolutional_code() -> ConvolutionalCode:
    """The UMTS rate-1/3, constraint-length-9 convolutional code."""
    return ConvolutionalCode(UMTS_CONV_GENERATORS, UMTS_CONV_CONSTRAINT_LENGTH)
