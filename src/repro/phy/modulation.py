"""Gray-mapped QAM modulation and soft (LLR) demapping.

HSDPA uses QPSK and 16QAM; HSPA+ adds 64QAM, which is the mode the paper
evaluates ("the most noise-sensitive, high throughput 64QAM modulation
mode").  The demapper produces per-bit log-likelihood ratios with the
max-log approximation, matching the soft receiver described in Section 2.1.

LLR sign convention
-------------------
``LLR = log P(bit = 0) - log P(bit = 1)`` (up to the max-log approximation),
so a *positive* LLR favours bit 0.  The turbo decoder and the HARQ combiner
use the same convention throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.phy.bits import bits_to_symbols_matrix
from repro.utils.validation import ensure_bit_array, ensure_positive_int


def _gray_pam_levels(bits_per_axis: int) -> np.ndarray:
    """Amplitude levels of a Gray-coded PAM constellation, indexed by bit pattern.

    Returns an array ``levels`` such that ``levels[b]`` is the (unnormalised)
    amplitude transmitted for the integer bit pattern ``b`` read MSB-first,
    with adjacent amplitudes differing in exactly one bit (Gray property).
    """
    m = 1 << bits_per_axis
    # Natural-order amplitudes: -(m-1), -(m-3), ..., (m-1)
    amplitudes = np.arange(-(m - 1), m, 2, dtype=np.float64)
    # Position k in amplitude order carries Gray codeword k ^ (k >> 1).
    gray = np.arange(m) ^ (np.arange(m) >> 1)
    levels = np.empty(m, dtype=np.float64)
    levels[gray] = amplitudes
    return levels


@dataclass(frozen=True)
class Modulator:
    """Square-QAM Gray modulator/demodulator.

    Parameters
    ----------
    bits_per_symbol:
        2 (QPSK), 4 (16QAM) or 6 (64QAM).

    The constellation is normalised to unit average symbol energy.  Bits are
    mapped alternately to the I and Q axes: even-indexed bits of a symbol's
    bit group drive the in-phase amplitude and odd-indexed bits the
    quadrature amplitude, each Gray-coded per axis.
    """

    bits_per_symbol: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        ensure_positive_int(self.bits_per_symbol, "bits_per_symbol")
        if self.bits_per_symbol % 2 or self.bits_per_symbol < 2:
            raise ValueError(
                f"bits_per_symbol must be a positive even number, got {self.bits_per_symbol}"
            )
        if not self.name:
            object.__setattr__(self, "name", f"{1 << self.bits_per_symbol}QAM")

    # ------------------------------------------------------------------ #
    # constellation geometry
    # ------------------------------------------------------------------ #
    @property
    def bits_per_axis(self) -> int:
        """Number of bits mapped onto each of the I and Q axes."""
        return self.bits_per_symbol // 2

    @property
    def constellation_size(self) -> int:
        """Number of points in the constellation."""
        return 1 << self.bits_per_symbol

    @property
    def normalization(self) -> float:
        """Scale factor giving unit average symbol energy."""
        m_axis = 1 << self.bits_per_axis
        # Mean square of PAM levels {±1, ±3, ...}: (m^2 - 1) / 3 per axis.
        es = 2.0 * (m_axis**2 - 1) / 3.0
        return 1.0 / np.sqrt(es)

    def _axis_levels(self) -> np.ndarray:
        return _gray_pam_levels(self.bits_per_axis)

    def constellation(self) -> np.ndarray:
        """Return the complex constellation indexed by the symbol bit pattern."""
        k = self.bits_per_symbol
        points = np.empty(1 << k, dtype=np.complex128)
        for pattern in range(1 << k):
            bits = [(pattern >> (k - 1 - i)) & 1 for i in range(k)]
            points[pattern] = self._map_bit_group(np.array(bits, dtype=np.int8))
        return points

    def _map_bit_group(self, bits: np.ndarray) -> complex:
        levels = self._axis_levels()
        i_bits = bits[0::2]
        q_bits = bits[1::2]
        i_idx = int("".join(str(int(b)) for b in i_bits), 2)
        q_idx = int("".join(str(int(b)) for b in q_bits), 2)
        return self.normalization * complex(levels[i_idx], levels[q_idx])

    # ------------------------------------------------------------------ #
    # modulation
    # ------------------------------------------------------------------ #
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a flat bit stream to complex symbols (vectorised).

        The bit stream is zero-padded to a multiple of :attr:`bits_per_symbol`.
        """
        groups = bits_to_symbols_matrix(ensure_bit_array(bits), self.bits_per_symbol)
        levels = self._axis_levels()
        i_bits = groups[:, 0::2].astype(np.int64)
        q_bits = groups[:, 1::2].astype(np.int64)
        weights = 1 << np.arange(self.bits_per_axis - 1, -1, -1, dtype=np.int64)
        i_idx = i_bits @ weights
        q_idx = q_bits @ weights
        return self.normalization * (levels[i_idx] + 1j * levels[q_idx])

    # ------------------------------------------------------------------ #
    # demodulation
    # ------------------------------------------------------------------ #
    def demodulate_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demapping: nearest constellation point per symbol."""
        llrs = self.demodulate_soft(symbols, noise_variance=1.0)
        return (llrs < 0).astype(np.int8)

    def demodulate_soft(
        self,
        symbols: np.ndarray,
        noise_variance: float | np.ndarray = 1.0,
    ) -> np.ndarray:
        """Max-log LLR demapping of received symbols.

        Parameters
        ----------
        symbols:
            Received (equalized) complex symbols.
        noise_variance:
            Effective complex-noise variance per symbol (scalar or per-symbol
            array).  The per-axis variance is half of this value.

        Returns
        -------
        numpy.ndarray
            Flat float64 array of LLRs, ``bits_per_symbol`` per input symbol,
            with ``LLR > 0`` favouring bit 0.
        """
        y = np.asarray(symbols, dtype=np.complex128).reshape(-1)
        n0 = np.broadcast_to(np.asarray(noise_variance, dtype=np.float64), y.shape)
        n0 = np.maximum(n0, 1e-12)
        levels = self._axis_levels() * self.normalization
        llr_i = self._axis_llrs(y.real, levels, n0 / 2.0)
        llr_q = self._axis_llrs(y.imag, levels, n0 / 2.0)
        # Interleave: even bit positions from I axis, odd from Q axis.
        out = np.empty((y.size, self.bits_per_symbol), dtype=np.float64)
        out[:, 0::2] = llr_i
        out[:, 1::2] = llr_q
        return out.reshape(-1)

    def _axis_llrs(
        self, received: np.ndarray, levels: np.ndarray, axis_var: np.ndarray
    ) -> np.ndarray:
        """Per-axis max-log LLRs for all bits mapped to one PAM axis."""
        b = self.bits_per_axis
        m = levels.size
        # Squared distances to each PAM level: shape (num_symbols, m).
        dist = (received[:, None] - levels[None, :]) ** 2
        metrics = -dist / (2.0 * axis_var[:, None])
        llrs = np.empty((received.size, b), dtype=np.float64)
        patterns = np.arange(m)
        for bit in range(b):
            mask0 = ((patterns >> (b - 1 - bit)) & 1) == 0
            max0 = metrics[:, mask0].max(axis=1)
            max1 = metrics[:, ~mask0].max(axis=1)
            llrs[:, bit] = max0 - max1
        return llrs

    def average_symbol_energy(self) -> float:
        """Average energy of the (normalised) constellation — should be 1.0."""
        points = self.constellation()
        return float(np.mean(np.abs(points) ** 2))


#: Modulators keyed by their 3GPP-style names.
MODULATIONS: Dict[str, Modulator] = {
    "QPSK": Modulator(2, name="QPSK"),
    "16QAM": Modulator(4, name="16QAM"),
    "64QAM": Modulator(6, name="64QAM"),
}


def get_modulator(name: str) -> Modulator:
    """Look up a modulator by name (``"QPSK"``, ``"16QAM"`` or ``"64QAM"``)."""
    try:
        return MODULATIONS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown modulation {name!r}; choose from {sorted(MODULATIONS)}"
        ) from exc
