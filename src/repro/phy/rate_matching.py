"""HARQ rate matching with redundancy versions (circular-buffer model).

The HSDPA physical-layer HARQ functionality (TS 25.212) adapts the turbo
coder's mother rate-1/3 output to the number of channel bits available in a
TTI, and selects *which* coded bits are sent in each (re)transmission via a
redundancy version (RV).  Two operating styles matter for the paper:

* **Chase combining** — every transmission sends the same bits; the receiver
  adds the LLRs.
* **Incremental redundancy (IR)** — retransmissions send different parity
  bits, so combining also lowers the effective code rate.

This module implements a circular-buffer rate matcher (the same abstraction
LTE uses, and an accurate functional model of the HSDPA two-stage rate
matcher): systematic bits first, then the two parity streams interlaced, with
the RV selecting the starting offset of the read-out window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_non_negative_int, ensure_positive_int


@dataclass(frozen=True)
class RateMatcher:
    """Circular-buffer rate matching for a rate-1/3 mother code.

    Parameters
    ----------
    num_coded_bits:
        Length of the mother-code output (3 * K + tail bits).
    num_output_bits:
        Number of channel bits per transmission.
    num_redundancy_versions:
        How many distinct starting offsets are available (4 in HSDPA/LTE).
    """

    num_coded_bits: int
    num_output_bits: int
    num_redundancy_versions: int = 4

    def __post_init__(self) -> None:
        ensure_positive_int(self.num_coded_bits, "num_coded_bits")
        ensure_positive_int(self.num_output_bits, "num_output_bits")
        ensure_positive_int(self.num_redundancy_versions, "num_redundancy_versions")
        object.__setattr__(self, "_indices_cache", {})

    def _start_offset(self, redundancy_version: int) -> int:
        rv = ensure_non_negative_int(redundancy_version, "redundancy_version")
        rv %= self.num_redundancy_versions
        return (rv * self.num_coded_bits) // self.num_redundancy_versions

    def output_indices(self, redundancy_version: int) -> np.ndarray:
        """Mother-code bit indices transmitted for a given redundancy version.

        The index vector per redundancy version is cached (read-only view),
        since the batched transmit/derate paths gather with it every round.
        """
        start = self._start_offset(redundancy_version)
        cached = self._indices_cache.get(start)
        if cached is None:
            cached = (start + np.arange(self.num_output_bits)) % self.num_coded_bits
            cached.setflags(write=False)
            self._indices_cache[start] = cached
        return cached

    # ------------------------------------------------------------------ #
    # transmitter side
    # ------------------------------------------------------------------ #
    def rate_match(self, coded_bits: np.ndarray, redundancy_version: int = 0) -> np.ndarray:
        """Select the channel bits for one transmission.

        Repetition happens naturally when ``num_output_bits > num_coded_bits``
        (the circular buffer wraps), puncturing when it is smaller.
        """
        bits = np.asarray(coded_bits)
        if bits.shape[0] != self.num_coded_bits:
            raise ValueError(
                f"expected {self.num_coded_bits} coded bits, got {bits.shape[0]}"
            )
        return bits[self.output_indices(redundancy_version)]

    def rate_match_batch(
        self, coded_bits: np.ndarray, redundancy_version: int = 0
    ) -> np.ndarray:
        """Row-wise :meth:`rate_match` for a ``(batch, num_coded_bits)`` matrix."""
        bits = np.asarray(coded_bits)
        if bits.ndim != 2 or bits.shape[1] != self.num_coded_bits:
            raise ValueError(
                f"expected shape (batch, {self.num_coded_bits}), got {bits.shape}"
            )
        return bits[:, self.output_indices(redundancy_version)]

    # ------------------------------------------------------------------ #
    # receiver side
    # ------------------------------------------------------------------ #
    def derate_match(
        self, llrs: np.ndarray, redundancy_version: int = 0
    ) -> np.ndarray:
        """Scatter received LLRs back onto mother-code positions.

        Positions that were not transmitted get LLR 0 (erasure); positions
        transmitted more than once (repetition) have their LLRs summed.

        Returns
        -------
        numpy.ndarray
            Length-``num_coded_bits`` float array of accumulated LLRs.
        """
        llr_arr = np.asarray(llrs, dtype=np.float64).reshape(-1)
        if llr_arr.size != self.num_output_bits:
            raise ValueError(
                f"expected {self.num_output_bits} LLRs, got {llr_arr.size}"
            )
        buffer = np.zeros(self.num_coded_bits, dtype=np.float64)
        np.add.at(buffer, self.output_indices(redundancy_version), llr_arr)
        return buffer

    def derate_match_batch(
        self, llrs: np.ndarray, redundancy_version: int = 0
    ) -> np.ndarray:
        """Row-wise :meth:`derate_match` for a ``(batch, num_output_bits)`` matrix.

        Without repetition (``num_output_bits <= num_coded_bits``) the scatter
        is a plain assignment; with repetition ``np.add.at`` iterates row-major
        — per row in index order, exactly the serial accumulation order.
        """
        llr_arr = np.asarray(llrs, dtype=np.float64)
        if llr_arr.ndim != 2 or llr_arr.shape[1] != self.num_output_bits:
            raise ValueError(
                f"expected shape (batch, {self.num_output_bits}), got {llr_arr.shape}"
            )
        indices = self.output_indices(redundancy_version)
        buffer = np.zeros((llr_arr.shape[0], self.num_coded_bits), dtype=np.float64)
        if self.num_output_bits <= self.num_coded_bits:
            buffer[:, indices] = llr_arr
            buffer += 0.0  # fold any -0.0 like the serial 0.0 + x scatter does
        else:
            rows = np.arange(llr_arr.shape[0])
            np.add.at(buffer, (rows[:, None], indices[None, :]), llr_arr)
        return buffer

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def effective_code_rate(self) -> float:
        """Code rate seen on the channel for a single transmission.

        Assumes a rate-1/3 mother code: information bits are roughly one third
        of the coded bits (tail bits neglected).
        """
        info_bits = self.num_coded_bits / 3.0
        return info_bits / self.num_output_bits

    def coverage(self, redundancy_versions: list[int]) -> float:
        """Fraction of mother-code bits observed after the given transmissions."""
        seen = np.zeros(self.num_coded_bits, dtype=bool)
        for rv in redundancy_versions:
            seen[self.output_indices(rv)] = True
        return float(seen.mean())


def make_systematic_priority_buffer(
    systematic: np.ndarray, parity1: np.ndarray, parity2: np.ndarray
) -> np.ndarray:
    """Arrange turbo-coder streams in the circular-buffer order.

    Systematic bits first, then the two parity streams interlaced — the
    arrangement used by the HSDPA virtual IR buffer so that the first
    transmission at high code rates is mostly systematic (self-decodable).
    """
    sys_arr = np.asarray(systematic)
    p1 = np.asarray(parity1)
    p2 = np.asarray(parity2)
    if not (sys_arr.shape[0] == p1.shape[0] == p2.shape[0]):
        raise ValueError("systematic and parity streams must have equal length")
    interlaced = np.empty(p1.shape[0] * 2, dtype=sys_arr.dtype)
    interlaced[0::2] = p1
    interlaced[1::2] = p2
    return np.concatenate([sys_arr, interlaced])


def make_systematic_priority_buffer_batch(
    systematic: np.ndarray, parity1: np.ndarray, parity2: np.ndarray
) -> np.ndarray:
    """Whole-batch :func:`make_systematic_priority_buffer` (rows = blocks)."""
    sys_arr = np.asarray(systematic)
    p1 = np.asarray(parity1)
    p2 = np.asarray(parity2)
    if sys_arr.ndim != 2 or sys_arr.shape != p1.shape or sys_arr.shape != p2.shape:
        raise ValueError("systematic and parity batches must share a 2-D shape")
    batch, block = sys_arr.shape
    out = np.empty((batch, 3 * block), dtype=sys_arr.dtype)
    out[:, :block] = sys_arr
    out[:, block::2] = p1
    out[:, block + 1 :: 2] = p2
    return out


def split_systematic_priority_buffer(
    buffer: np.ndarray, num_systematic: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Invert :func:`make_systematic_priority_buffer`."""
    buf = np.asarray(buffer)
    num_systematic = ensure_positive_int(num_systematic, "num_systematic")
    remaining = buf.shape[0] - num_systematic
    if remaining < 0 or remaining % 2:
        raise ValueError("buffer length inconsistent with num_systematic")
    systematic = buf[:num_systematic]
    interlaced = buf[num_systematic:]
    return systematic, interlaced[0::2], interlaced[1::2]


def split_systematic_priority_buffer_batch(
    buffers: np.ndarray, num_systematic: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whole-batch :func:`split_systematic_priority_buffer` (rows = blocks).

    The parity streams are returned as contiguous arrays (the decoder's
    kernels index them heavily); the systematic part is a view.
    """
    buf = np.asarray(buffers)
    num_systematic = ensure_positive_int(num_systematic, "num_systematic")
    if buf.ndim != 2:
        raise ValueError(f"expected a 2-D batch of buffers, got shape {buf.shape}")
    remaining = buf.shape[1] - num_systematic
    if remaining < 0 or remaining % 2:
        raise ValueError("buffer length inconsistent with num_systematic")
    systematic = buf[:, :num_systematic]
    parity1 = np.ascontiguousarray(buf[:, num_systematic::2])
    parity2 = np.ascontiguousarray(buf[:, num_systematic + 1 :: 2])
    return systematic, parity1, parity2
