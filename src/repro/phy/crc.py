"""Cyclic-redundancy-check attachment and verification.

HSDPA transport blocks carry a CRC (gCRC24A in 3GPP TS 25.212) that the
receiver uses to decide ACK/NACK for the HARQ protocol.  The block-error rate
(BLER) the paper reports is exactly the probability that this check fails
after channel decoding, so a faithful CRC model is part of the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ensure_bit_array


@dataclass(frozen=True)
class Crc:
    """A binary CRC defined by its generator polynomial.

    Parameters
    ----------
    polynomial:
        Generator polynomial coefficients, MSB first, *including* the leading
        1.  For example CRC-8 ``x^8 + x^7 + x^4 + x^3 + x + 1`` is
        ``[1, 1, 0, 0, 1, 1, 0, 1, 1]``.
    name:
        Human-readable identifier used in reprs and error messages.
    """

    polynomial: tuple
    name: str = "crc"
    _poly_arr: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        poly = np.asarray(self.polynomial, dtype=np.int8)
        if poly.ndim != 1 or poly.size < 2:
            raise ValueError("polynomial must be a 1-D sequence of length >= 2")
        if poly[0] != 1:
            raise ValueError("polynomial must start with its leading 1 coefficient")
        if not np.isin(poly, (0, 1)).all():
            raise ValueError("polynomial coefficients must be 0/1")
        object.__setattr__(self, "polynomial", tuple(int(b) for b in poly))
        object.__setattr__(self, "_poly_arr", poly)
        object.__setattr__(self, "_matrix_cache", {})

    @property
    def num_check_bits(self) -> int:
        """Number of parity bits appended by :meth:`attach`."""
        return len(self.polynomial) - 1

    def compute(self, bits: np.ndarray) -> np.ndarray:
        """Return the CRC remainder (parity bits) for *bits*."""
        data = ensure_bit_array(bits)
        degree = self.num_check_bits
        register = np.concatenate([data, np.zeros(degree, dtype=np.int8)]).astype(np.int8)
        poly = self._poly_arr
        # Long division over GF(2).  The loop is over message bits only, which
        # is fast enough for the packet sizes used in link simulations.
        for i in range(data.size):
            if register[i]:
                register[i : i + degree + 1] ^= poly
        return register[-degree:].copy()

    def _remainder_matrix(self, num_bits: int) -> np.ndarray:
        """GF(2) generator matrix ``G`` with ``compute(d) == (d @ G) % 2``.

        Row ``i`` is the remainder of ``x^(num_bits - 1 - i + degree)`` modulo
        the generator polynomial, so the matrix product reproduces the long
        division of :meth:`compute` exactly (CRC is linear over GF(2)).
        Cached per message length.
        """
        cached = self._matrix_cache.get(num_bits)
        if cached is not None:
            return cached
        degree = self.num_check_bits
        tail = self._poly_arr[1:].copy()  # x^degree mod g(x)
        rows = np.empty((num_bits, degree), dtype=np.int64)
        remainder = tail.astype(np.int64)
        rows[num_bits - 1] = remainder
        for i in range(num_bits - 2, -1, -1):
            carry = remainder[0]
            remainder = np.concatenate([remainder[1:], np.zeros(1, dtype=np.int64)])
            if carry:
                remainder ^= tail
            rows[i] = remainder
        self._matrix_cache[num_bits] = rows
        return rows

    def compute_batch(self, bits: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`compute` for a ``(batch, num_bits)`` bit matrix.

        Bit-exact with the per-row long division (both compute the polynomial
        remainder over GF(2)); the batched form is one integer matmul.
        """
        data = np.asarray(bits)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D bit matrix, got shape {data.shape}")
        matrix = self._remainder_matrix(data.shape[1])
        return ((data.astype(np.int64) @ matrix) % 2).astype(np.int8)

    def attach(self, bits: np.ndarray) -> np.ndarray:
        """Append the CRC parity bits to *bits*."""
        data = ensure_bit_array(bits)
        return np.concatenate([data, self.compute(data)])

    def attach_batch(self, bits: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`attach` for a ``(batch, num_bits)`` bit matrix."""
        data = np.asarray(bits, dtype=np.int8)
        return np.hstack([data, self.compute_batch(data)])

    def check(self, bits_with_crc: np.ndarray) -> bool:
        """Return ``True`` when the trailing CRC of *bits_with_crc* is valid."""
        data = ensure_bit_array(bits_with_crc)
        if data.size < self.num_check_bits:
            raise ValueError(
                f"need at least {self.num_check_bits} bits to hold the CRC, got {data.size}"
            )
        payload = data[: -self.num_check_bits]
        expected = self.compute(payload)
        return bool(np.array_equal(expected, data[-self.num_check_bits :]))

    def check_batch(self, bits_with_crc: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`check` for a ``(batch, num_bits)`` bit matrix."""
        data = np.asarray(bits_with_crc)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D bit matrix, got shape {data.shape}")
        if data.shape[1] < self.num_check_bits:
            raise ValueError(
                f"need at least {self.num_check_bits} bits to hold the CRC, "
                f"got {data.shape[1]}"
            )
        expected = self.compute_batch(data[:, : -self.num_check_bits])
        return np.all(expected == data[:, -self.num_check_bits :], axis=1)

    def strip(self, bits_with_crc: np.ndarray) -> np.ndarray:
        """Remove the CRC parity bits (without checking them)."""
        data = ensure_bit_array(bits_with_crc)
        return data[: -self.num_check_bits].copy()


def _poly_from_exponents(degree: int, exponents: tuple) -> tuple:
    """Build an MSB-first coefficient tuple from the exponents present."""
    coeffs = [0] * (degree + 1)
    for e in exponents:
        coeffs[degree - e] = 1
    return tuple(coeffs)


#: 3GPP gCRC24A: x^24 + x^23 + x^6 + x^5 + x + 1 (TS 25.212 / TS 36.212).
CRC_24A = Crc(_poly_from_exponents(24, (24, 23, 6, 5, 1, 0)), name="gCRC24A")

#: CRC-16-CCITT: x^16 + x^12 + x^5 + 1, used for smaller transport blocks.
CRC_16 = Crc(_poly_from_exponents(16, (16, 12, 5, 0)), name="gCRC16")

#: CRC-8: x^8 + x^7 + x^4 + x^3 + x + 1 (3GPP gCRC8).
CRC_8 = Crc(_poly_from_exponents(8, (8, 7, 4, 3, 1, 0)), name="gCRC8")

#: Registry keyed by the number of check bits, for configuration files.
CRC_BY_LENGTH = {24: CRC_24A, 16: CRC_16, 8: CRC_8}
