"""Channel interleavers.

The HSPA+ transmitter passes the encoded bit stream through an interleaver
that "generates a pseudo-random permutation of the input bit stream"
(Section 2.1).  Interleaving decorrelates burst errors — both those caused by
frequency-selective fading and, in this study, those caused by clustered
memory faults — before they reach the channel decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import ensure_positive_int


@dataclass(frozen=True)
class Interleaver:
    """A fixed permutation applied to equal-length sequences.

    Parameters
    ----------
    permutation:
        Array ``pi`` such that output position ``i`` carries input element
        ``pi[i]``.
    """

    permutation: np.ndarray

    def __post_init__(self) -> None:
        perm = np.asarray(self.permutation, dtype=np.int64)
        if perm.ndim != 1:
            raise ValueError("permutation must be one-dimensional")
        if not np.array_equal(np.sort(perm), np.arange(perm.size)):
            raise ValueError("permutation must be a permutation of 0..N-1")
        object.__setattr__(self, "permutation", perm)

    @property
    def size(self) -> int:
        """Block length the interleaver operates on."""
        return int(self.permutation.size)

    def interleave(self, sequence: np.ndarray) -> np.ndarray:
        """Permute *sequence* (any dtype); length must equal :attr:`size`."""
        arr = np.asarray(sequence)
        if arr.shape[0] != self.size:
            raise ValueError(f"expected length {self.size}, got {arr.shape[0]}")
        return arr[self.permutation]

    def deinterleave(self, sequence: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave`."""
        arr = np.asarray(sequence)
        if arr.shape[0] != self.size:
            raise ValueError(f"expected length {self.size}, got {arr.shape[0]}")
        out = np.empty_like(arr)
        out[self.permutation] = arr
        return out

    def interleave_batch(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`interleave` for a ``(batch, size)`` matrix."""
        arr = np.asarray(rows)
        if arr.ndim != 2 or arr.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {arr.shape}")
        return arr[:, self.permutation]

    def deinterleave_batch(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`deinterleave` for a ``(batch, size)`` matrix."""
        arr = np.asarray(rows)
        if arr.ndim != 2 or arr.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {arr.shape}")
        out = np.empty_like(arr)
        out[:, self.permutation] = arr
        return out

    @property
    def inverse(self) -> "Interleaver":
        """The inverse permutation as an :class:`Interleaver`."""
        inv = np.empty(self.size, dtype=np.int64)
        inv[self.permutation] = np.arange(self.size)
        return Interleaver(inv)


def identity_interleaver(size: int) -> Interleaver:
    """The trivial (no-op) interleaver."""
    return Interleaver(np.arange(ensure_positive_int(size, "size")))


def block_interleaver(size: int, num_columns: int = 30) -> Interleaver:
    """Row-in / column-out rectangular block interleaver (3GPP 2nd interleaver style).

    Bits are written row-by-row into a matrix with *num_columns* columns
    (padded virtually), the columns are read out in a fixed pseudo-random
    column order, and padding positions are pruned.
    """
    size = ensure_positive_int(size, "size")
    num_columns = ensure_positive_int(num_columns, "num_columns")
    num_rows = int(np.ceil(size / num_columns))
    # Column permutation pattern from TS 25.212 (2nd interleaving, 30 columns),
    # truncated/extended deterministically for other widths.
    base_pattern = [
        0, 20, 10, 5, 15, 25, 3, 13, 23, 8, 18, 28, 1, 11, 21,
        6, 16, 26, 4, 14, 24, 19, 9, 29, 12, 2, 7, 22, 27, 17,
    ]
    if num_columns <= len(base_pattern):
        col_order = [c for c in base_pattern if c < num_columns]
    else:
        rng = np.random.default_rng(num_columns)
        col_order = list(rng.permutation(num_columns))
    indices = np.arange(num_rows * num_columns).reshape(num_rows, num_columns)
    read_out = indices[:, col_order].T.reshape(-1)
    permutation = read_out[read_out < size]
    return Interleaver(permutation)


def random_interleaver(size: int, seed: Optional[int] = 0) -> Interleaver:
    """Uniformly random interleaver (useful as an idealised reference)."""
    size = ensure_positive_int(size, "size")
    return Interleaver(as_rng(seed).permutation(size))


@dataclass(frozen=True)
class ChannelInterleaver:
    """Length-adaptive wrapper building a block interleaver per packet length.

    The transmit chain deals with rate-matched blocks whose length depends on
    the HARQ redundancy version and modulation; this wrapper constructs (and
    caches per instance) the appropriate fixed permutation for each length.
    """

    num_columns: int = 30
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    def for_length(self, length: int) -> Interleaver:
        """Return the interleaver for a given block length."""
        if length not in self._cache:
            self._cache[length] = block_interleaver(length, self.num_columns)
        return self._cache[length]

    def interleave(self, sequence: np.ndarray) -> np.ndarray:
        """Interleave a sequence of arbitrary (per-call) length."""
        return self.for_length(np.asarray(sequence).shape[0]).interleave(sequence)

    def deinterleave(self, sequence: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave` for a sequence of the same length."""
        return self.for_length(np.asarray(sequence).shape[0]).deinterleave(sequence)

    def interleave_batch(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`interleave` for a ``(batch, length)`` matrix."""
        arr = np.asarray(rows)
        return self.for_length(arr.shape[1]).interleave_batch(arr)

    def deinterleave_batch(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`deinterleave` for a ``(batch, length)`` matrix."""
        arr = np.asarray(rows)
        return self.for_length(arr.shape[1]).deinterleave_batch(arr)
