"""Receiver front-end substrate: channel estimation, MMSE and RAKE equalizers."""

from repro.equalizer.estimation import estimate_channel_ls
from repro.equalizer.mmse import MmseEqualizer, MmseEqualizerOutput
from repro.equalizer.rake import RakeReceiver

__all__ = [
    "MmseEqualizer",
    "MmseEqualizerOutput",
    "RakeReceiver",
    "estimate_channel_ls",
]
