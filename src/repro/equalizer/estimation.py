"""Pilot-aided channel estimation.

The link simulator usually runs with perfect channel knowledge (the paper's
study isolates the effect of memory faults), but a least-squares estimator is
provided so that experiments can also include channel-estimation error, and
so that the receiver chain is complete as a substrate.
"""

from __future__ import annotations

import numpy as np


def estimate_channel_ls(
    received: np.ndarray,
    pilots: np.ndarray,
    channel_length: int,
) -> np.ndarray:
    """Least-squares estimate of a FIR channel from a known pilot sequence.

    Parameters
    ----------
    received:
        Received samples covering (at least) the convolution of the pilots
        with the channel, i.e. ``len(pilots) + channel_length - 1`` samples.
    pilots:
        Known transmitted pilot samples.
    channel_length:
        Number of channel taps to estimate.

    Returns
    -------
    numpy.ndarray
        Estimated impulse response of length *channel_length*.
    """
    p = np.asarray(pilots, dtype=np.complex128).reshape(-1)
    r = np.asarray(received, dtype=np.complex128).reshape(-1)
    if channel_length <= 0:
        raise ValueError("channel_length must be positive")
    if p.size < channel_length:
        raise ValueError("need at least channel_length pilot samples")
    expected_len = p.size + channel_length - 1
    if r.size < expected_len:
        raise ValueError(
            f"received must have at least {expected_len} samples, got {r.size}"
        )
    # Build the pilot convolution matrix (full convolution model): r = P h + n.
    rows = expected_len
    matrix = np.zeros((rows, channel_length), dtype=np.complex128)
    for tap in range(channel_length):
        matrix[tap : tap + p.size, tap] = p
    estimate, *_ = np.linalg.lstsq(matrix, r[:rows], rcond=None)
    return estimate
