"""RAKE receiver (maximum-ratio combining of channel taps).

The classical CDMA receiver: one finger per resolvable multipath tap, each
despreading the chip stream at its delay, combined with maximum-ratio
weights.  It serves as the lower-complexity baseline against the MMSE
equalizer — it suffers from inter-path interference at high data rates, which
is exactly why HSPA+ terminals use equalizers for 64QAM operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RakeReceiver:
    """Maximum-ratio combining RAKE receiver for a known impulse response.

    Parameters
    ----------
    max_fingers:
        Maximum number of fingers (strongest taps are selected).
    """

    max_fingers: int = 8

    def __post_init__(self) -> None:
        if self.max_fingers <= 0:
            raise ValueError("max_fingers must be positive")

    def finger_delays(self, impulse_response: np.ndarray) -> np.ndarray:
        """Delays (sample indices) of the selected fingers, strongest first."""
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        powers = np.abs(h) ** 2
        nonzero = np.nonzero(powers > 0)[0]
        order = nonzero[np.argsort(powers[nonzero])[::-1]]
        return order[: self.max_fingers]

    def combine(
        self,
        received: np.ndarray,
        impulse_response: np.ndarray,
        noise_variance: float,
        num_symbols: int,
    ) -> tuple[np.ndarray, float]:
        """MRC-combine the received samples.

        Returns
        -------
        tuple
            ``(symbols, effective_noise_variance)`` — symbol estimates after
            normalising the combined channel gain, and the per-symbol
            effective noise variance (ignoring inter-path interference, which
            is the RAKE's intrinsic approximation).
        """
        r = np.asarray(received, dtype=np.complex128).reshape(-1)
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        delays = self.finger_delays(h)
        if delays.size == 0:
            return np.zeros(num_symbols, dtype=np.complex128), float("inf")
        total_gain = float(np.sum(np.abs(h[delays]) ** 2))
        combined = np.zeros(num_symbols, dtype=np.complex128)
        for delay in delays:
            segment = r[delay : delay + num_symbols]
            if segment.size < num_symbols:
                segment = np.pad(segment, (0, num_symbols - segment.size))
            combined += np.conj(h[delay]) * segment
        symbols = combined / total_gain
        effective_noise_variance = float(noise_variance) / total_gain
        return symbols, effective_noise_variance
