"""RAKE receiver (maximum-ratio combining of channel taps).

The classical CDMA receiver: one finger per resolvable multipath tap, each
despreading the chip stream at its delay, combined with maximum-ratio
weights.  It serves as the lower-complexity baseline against the MMSE
equalizer — it suffers from inter-path interference at high data rates, which
is exactly why HSPA+ terminals use equalizers for 64QAM operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RakeReceiver:
    """Maximum-ratio combining RAKE receiver for a known impulse response.

    Parameters
    ----------
    max_fingers:
        Maximum number of fingers (strongest taps are selected).
    """

    max_fingers: int = 8

    def __post_init__(self) -> None:
        if self.max_fingers <= 0:
            raise ValueError("max_fingers must be positive")

    def finger_delays(self, impulse_response: np.ndarray) -> np.ndarray:
        """Delays (sample indices) of the selected fingers, strongest first."""
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        powers = np.abs(h) ** 2
        nonzero = np.nonzero(powers > 0)[0]
        order = nonzero[np.argsort(powers[nonzero])[::-1]]
        return order[: self.max_fingers]

    def combine(
        self,
        received: np.ndarray,
        impulse_response: np.ndarray,
        noise_variance: float,
        num_symbols: int,
    ) -> tuple[np.ndarray, float]:
        """MRC-combine the received samples.

        Returns
        -------
        tuple
            ``(symbols, effective_noise_variance)`` — symbol estimates after
            normalising the combined channel gain, and the per-symbol
            effective noise variance (ignoring inter-path interference, which
            is the RAKE's intrinsic approximation).
        """
        r = np.asarray(received, dtype=np.complex128).reshape(-1)
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        delays = self.finger_delays(h)
        if delays.size == 0:
            return np.zeros(num_symbols, dtype=np.complex128), float("inf")
        total_gain = float(np.sum(np.abs(h[delays]) ** 2))
        combined = np.zeros(num_symbols, dtype=np.complex128)
        for delay in delays:
            segment = r[delay : delay + num_symbols]
            if segment.size < num_symbols:
                segment = np.pad(segment, (0, num_symbols - segment.size))
            combined += np.conj(h[delay]) * segment
        symbols = combined / total_gain
        effective_noise_variance = float(noise_variance) / total_gain
        return symbols, effective_noise_variance

    def combine_batch(
        self,
        received: np.ndarray,
        impulse_responses: np.ndarray,
        noise_variances: np.ndarray,
        num_symbols: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise :meth:`combine` for a batch of packets.

        Finger selection stays per packet (the order is a per-realisation
        power sort), but when every packet selects the same finger *count* —
        the generic case for a fixed delay profile — the per-finger
        accumulation runs across the whole batch in the serial finger order,
        which keeps the floating-point accumulation bit-identical.

        Returns
        -------
        tuple
            ``(symbols, effective_noise_variance)`` with shapes
            ``(batch, num_symbols)`` and ``(batch,)``.
        """
        r2d = np.asarray(received, dtype=np.complex128)
        h2d = np.asarray(impulse_responses, dtype=np.complex128)
        if r2d.ndim != 2 or h2d.ndim != 2 or r2d.shape[0] != h2d.shape[0]:
            raise ValueError("received and impulse_responses must be matching 2-D batches")
        nv = np.asarray(noise_variances, dtype=np.float64).reshape(-1)
        batch = r2d.shape[0]
        delay_rows = [self.finger_delays(h2d[i]) for i in range(batch)]
        num_fingers = {d.size for d in delay_rows}
        if len(num_fingers) != 1 or 0 in num_fingers:
            # Ragged or empty finger sets (zero taps) — fall back per packet.
            symbols = np.empty((batch, num_symbols), dtype=np.complex128)
            effective = np.empty(batch, dtype=np.float64)
            for i in range(batch):
                symbols[i], effective[i] = self.combine(
                    r2d[i], h2d[i], float(nv[i]), num_symbols
                )
            return symbols, effective
        delays = np.stack(delay_rows)
        rows = np.arange(batch)
        finger_gains = h2d[rows[:, None], delays]  # (batch, fingers), finger order
        total_gain = np.sum(np.abs(finger_gains) ** 2, axis=1)
        combined = np.zeros((batch, num_symbols), dtype=np.complex128)
        sample_range = np.arange(num_symbols)
        for k in range(delays.shape[1]):
            cols = delays[:, k][:, None] + sample_range[None, :]
            valid = cols < r2d.shape[1]
            segment = np.where(
                valid, r2d[rows[:, None], np.minimum(cols, r2d.shape[1] - 1)], 0.0
            )
            combined += np.conj(finger_gains[:, k])[:, None] * segment
        symbols = combined / total_gain[:, None]
        effective_noise = nv / total_gain
        return symbols, effective_noise
