"""Linear MMSE equalization of frequency-selective channels.

The paper's receiver uses "a minimum mean-square error (MMSE) equalizer ...
for the generation of LLRs".  This module implements a finite-impulse-response
MMSE equalizer designed from the (known or estimated) channel impulse
response, and computes the post-equalization signal-to-interference-and-noise
ratio (SINR) needed to scale the demapper LLRs correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive_int


@dataclass
class MmseEqualizerOutput:
    """Result of equalizing one block of received samples.

    Attributes
    ----------
    symbols:
        Bias-compensated symbol estimates (same scale as the transmitted
        constellation).
    effective_noise_variance:
        Residual interference-plus-noise variance *after* bias compensation;
        feed this to the soft demapper.
    sinr:
        Post-equalization SINR (linear).
    taps:
        The equalizer taps that were applied.
    """

    symbols: np.ndarray
    effective_noise_variance: float
    sinr: float
    taps: np.ndarray


class MmseEqualizer:
    """FIR MMSE equalizer for a known channel impulse response.

    Parameters
    ----------
    num_taps:
        Equalizer filter length.
    decision_delay:
        Delay (in samples) of the symbol the equalizer targets; ``None``
        selects the centre of the combined channel+equalizer response, which
        is close to optimal for symmetric filters.
    """

    def __init__(self, num_taps: int = 16, decision_delay: int | None = None) -> None:
        self.num_taps = ensure_positive_int(num_taps, "num_taps")
        if decision_delay is not None and decision_delay < 0:
            raise ValueError("decision_delay must be non-negative")
        self.decision_delay = decision_delay

    # ------------------------------------------------------------------ #
    def design(
        self,
        impulse_response: np.ndarray,
        noise_variance: float,
        signal_power: float = 1.0,
    ) -> tuple[np.ndarray, int, float, float]:
        """Compute MMSE taps for a channel.

        Returns
        -------
        tuple
            ``(taps, delay, bias, residual_variance)`` — *bias* is the
            effective complex gain on the desired symbol; *residual_variance*
            is the variance of interference plus noise at the equalizer
            output (before bias compensation).
        """
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        if h.size == 0:
            raise ValueError("impulse_response must be non-empty")
        if noise_variance < 0:
            raise ValueError("noise_variance must be non-negative")
        channel_length = h.size
        nf = self.num_taps
        # Channel (convolution) matrix H such that the received window
        #   r_k = [r[k], ..., r[k + nf - 1]]^T
        # satisfies r_k = H s_k + n with
        #   s_k = [s[k - L + 1], ..., s[k + nf - 1]]^T  (length nf + L - 1).
        # Row i covers symbols s[k + i - L + 1 .. k + i], hence the reversed
        # channel taps: H[i, i + L - 1 - l] = h[l].
        num_symbols = nf + channel_length - 1
        conv_matrix = np.zeros((nf, num_symbols), dtype=np.complex128)
        for i in range(nf):
            conv_matrix[i, i : i + channel_length] = h[::-1]
        delay = (
            self.decision_delay
            if self.decision_delay is not None
            else (num_symbols - 1) // 2
        )
        if not 0 <= delay < num_symbols:
            raise ValueError(f"decision_delay must be in [0, {num_symbols}), got {delay}")

        es = float(signal_power)
        covariance = es * (conv_matrix @ conv_matrix.conj().T) + noise_variance * np.eye(nf)
        desired = es * conv_matrix[:, delay]
        taps = np.linalg.solve(covariance, desired)

        # Effective gain on the desired symbol and total output power split.
        response = taps.conj() @ conv_matrix  # combined channel+equalizer response
        bias = response[delay]
        interference = es * (np.sum(np.abs(response) ** 2) - np.abs(bias) ** 2)
        noise_out = noise_variance * float(np.sum(np.abs(taps) ** 2))
        residual_variance = float(interference + noise_out)
        return taps, delay, complex(bias), residual_variance

    # ------------------------------------------------------------------ #
    def equalize(
        self,
        received: np.ndarray,
        impulse_response: np.ndarray,
        noise_variance: float,
        num_symbols: int,
        signal_power: float = 1.0,
    ) -> MmseEqualizerOutput:
        """Equalize a received block.

        Parameters
        ----------
        received:
            Received samples (length >= num_symbols + L - 1, i.e. the full
            convolution output).
        impulse_response:
            Channel impulse response used for the design.
        noise_variance:
            Complex noise variance at the receiver input.
        num_symbols:
            Number of transmitted symbols to recover.
        signal_power:
            Average transmit symbol energy.
        """
        r = np.asarray(received, dtype=np.complex128).reshape(-1)
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        taps, delay, bias, residual_variance = self.design(
            impulse_response, noise_variance, signal_power
        )
        # The design estimates s[k - L + 1 + delay] from the window
        # [r[k], ..., r[k + nf - 1]], i.e. symbol n is estimated as
        #   y[n] = sum_i conj(taps[i]) * r[n + (L - 1 - delay) + i].
        # Implemented as a full convolution with the reversed conjugate taps,
        # then sampled at offset n + nf + L - 2 - delay.
        filtered = np.convolve(r, np.conj(taps)[::-1])
        offset = self.num_taps + h.size - 2 - delay
        indices = np.arange(num_symbols) + offset
        if indices[-1] >= filtered.size or indices[0] < 0:
            raise ValueError("received block too short for the requested symbol count")
        raw = filtered[indices]

        bias_abs2 = np.abs(bias) ** 2
        if bias_abs2 < 1e-30:
            # Degenerate design (zero channel) — return unusable, very noisy output.
            return MmseEqualizerOutput(
                symbols=np.zeros(num_symbols, dtype=np.complex128),
                effective_noise_variance=1e30,
                sinr=0.0,
                taps=taps,
            )
        symbols = raw / bias
        effective_noise_variance = residual_variance / bias_abs2
        sinr = float(signal_power * bias_abs2 / max(residual_variance, 1e-30))
        return MmseEqualizerOutput(
            symbols=symbols,
            effective_noise_variance=effective_noise_variance,
            sinr=sinr,
            taps=taps,
        )
