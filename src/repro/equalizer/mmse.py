"""Linear MMSE equalization of frequency-selective channels.

The paper's receiver uses "a minimum mean-square error (MMSE) equalizer ...
for the generation of LLRs".  This module implements a finite-impulse-response
MMSE equalizer designed from the (known or estimated) channel impulse
response, and computes the post-equalization signal-to-interference-and-noise
ratio (SINR) needed to scale the demapper LLRs correctly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_positive_int


@dataclass
class MmseEqualizerOutput:
    """Result of equalizing one block of received samples.

    Attributes
    ----------
    symbols:
        Bias-compensated symbol estimates (same scale as the transmitted
        constellation).
    effective_noise_variance:
        Residual interference-plus-noise variance *after* bias compensation;
        feed this to the soft demapper.
    sinr:
        Post-equalization SINR (linear).
    taps:
        The equalizer taps that were applied.
    """

    symbols: np.ndarray
    effective_noise_variance: float
    sinr: float
    taps: np.ndarray


class MmseEqualizer:
    """FIR MMSE equalizer for a known channel impulse response.

    Parameters
    ----------
    num_taps:
        Equalizer filter length.
    decision_delay:
        Delay (in samples) of the symbol the equalizer targets; ``None``
        selects the centre of the combined channel+equalizer response, which
        is close to optimal for symmetric filters.
    """

    #: Bounded size of the per-instance (channel, noise, power) -> design cache.
    DESIGN_CACHE_SIZE = 256

    def __init__(self, num_taps: int = 16, decision_delay: int | None = None) -> None:
        self.num_taps = ensure_positive_int(num_taps, "num_taps")
        if decision_delay is not None and decision_delay < 0:
            raise ValueError("decision_delay must be non-negative")
        self.decision_delay = decision_delay
        # LRU cache of solved designs keyed by the exact (impulse response
        # bytes, noise variance, signal power) triple: at a fixed operating
        # point the filter is built once and reused for every packet that
        # sees the same channel realisation (repeated equalize calls, HARQ
        # re-processing, reference evaluations) instead of re-solving.
        self._design_cache: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------ #
    def design(
        self,
        impulse_response: np.ndarray,
        noise_variance: float,
        signal_power: float = 1.0,
    ) -> tuple[np.ndarray, int, float, float]:
        """Compute MMSE taps for a channel.

        Returns
        -------
        tuple
            ``(taps, delay, bias, residual_variance)`` — *bias* is the
            effective complex gain on the desired symbol; *residual_variance*
            is the variance of interference plus noise at the equalizer
            output (before bias compensation).
        """
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        if h.size == 0:
            raise ValueError("impulse_response must be non-empty")
        taps, delay, bias, residual = self.design_batch(
            h[None, :], np.asarray([noise_variance], dtype=np.float64), signal_power
        )
        return taps[0], delay, complex(bias[0]), float(residual[0])

    def _design_key(self, h: np.ndarray, noise_variance: float, signal_power: float):
        return (h.tobytes(), float(noise_variance), float(signal_power))

    def _cache_store(self, key, value) -> None:
        cache = self._design_cache
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > self.DESIGN_CACHE_SIZE:
            cache.popitem(last=False)

    def design_batch(
        self,
        impulse_responses: np.ndarray,
        noise_variances: np.ndarray,
        signal_power: float = 1.0,
    ) -> tuple[np.ndarray, int, np.ndarray, np.ndarray]:
        """Row-wise :meth:`design` with stacked linear algebra.

        The covariance build, the linear solve and the combined-response
        product run as batched gemm/``np.linalg.solve``/matmul calls, which
        are bit-identical to their per-packet counterparts; rows whose exact
        ``(impulse response, noise variance, signal power)`` triple was
        designed before are served from the filter cache without re-solving.

        Returns
        -------
        tuple
            ``(taps, delay, bias, residual_variance)`` with shapes
            ``(batch, num_taps)``, scalar, ``(batch,)``, ``(batch,)``.
        """
        h2d = np.asarray(impulse_responses, dtype=np.complex128)
        if h2d.ndim != 2 or h2d.shape[1] == 0:
            raise ValueError(
                f"expected a non-empty 2-D impulse-response matrix, got shape {h2d.shape}"
            )
        nv = np.asarray(noise_variances, dtype=np.float64).reshape(-1)
        if nv.size != h2d.shape[0]:
            raise ValueError("one noise variance per impulse response required")
        if (nv < 0).any():
            raise ValueError("noise_variance must be non-negative")
        batch, channel_length = h2d.shape
        nf = self.num_taps
        num_symbols = nf + channel_length - 1
        delay = (
            self.decision_delay
            if self.decision_delay is not None
            else (num_symbols - 1) // 2
        )
        if not 0 <= delay < num_symbols:
            raise ValueError(f"decision_delay must be in [0, {num_symbols}), got {delay}")
        es = float(signal_power)

        taps = np.empty((batch, nf), dtype=np.complex128)
        bias = np.empty(batch, dtype=np.complex128)
        residual = np.empty(batch, dtype=np.float64)
        cache = self._design_cache
        keys = [self._design_key(h2d[i], nv[i], es) for i in range(batch)]
        missing = []
        for i, key in enumerate(keys):
            hit = cache.get(key)
            if hit is None:
                missing.append(i)
            else:
                cache.move_to_end(key)
                taps[i], bias[i], residual[i] = hit
        if missing:
            rows = np.asarray(missing)
            new_taps, new_bias, new_residual = self._design_rows(
                h2d[rows], nv[rows], es, delay, num_symbols
            )
            taps[rows] = new_taps
            bias[rows] = new_bias
            residual[rows] = new_residual
            for j, i in enumerate(missing):
                self._cache_store(
                    keys[i], (new_taps[j].copy(), new_bias[j], new_residual[j])
                )
        return taps, delay, bias, residual

    def _design_rows(
        self,
        h2d: np.ndarray,
        nv: np.ndarray,
        es: float,
        delay: int,
        num_symbols: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve the MMSE design for a stack of channels (no cache)."""
        batch, channel_length = h2d.shape
        nf = self.num_taps
        # Channel (convolution) matrix H such that the received window
        #   r_k = [r[k], ..., r[k + nf - 1]]^T
        # satisfies r_k = H s_k + n with
        #   s_k = [s[k - L + 1], ..., s[k + nf - 1]]^T  (length nf + L - 1).
        # Row i covers symbols s[k + i - L + 1 .. k + i], hence the reversed
        # channel taps: H[i, i + L - 1 - l] = h[l].
        conv_matrix = np.zeros((batch, nf, num_symbols), dtype=np.complex128)
        reversed_taps = h2d[:, ::-1]
        for i in range(nf):
            conv_matrix[:, i, i : i + channel_length] = reversed_taps
        covariance = es * (
            conv_matrix @ conv_matrix.conj().transpose(0, 2, 1)
        ) + nv[:, None, None] * np.eye(nf)
        desired = es * conv_matrix[:, :, delay]
        taps = np.linalg.solve(covariance, desired[:, :, None])[:, :, 0]

        # Effective gain on the desired symbol and total output power split.
        response = (taps.conj()[:, None, :] @ conv_matrix)[:, 0, :]
        bias = response[:, delay]
        interference = es * (
            np.sum(np.abs(response) ** 2, axis=1) - np.abs(bias) ** 2
        )
        noise_out = nv * np.sum(np.abs(taps) ** 2, axis=1)
        residual = interference + noise_out
        return taps, bias, residual

    # ------------------------------------------------------------------ #
    def equalize(
        self,
        received: np.ndarray,
        impulse_response: np.ndarray,
        noise_variance: float,
        num_symbols: int,
        signal_power: float = 1.0,
    ) -> MmseEqualizerOutput:
        """Equalize a received block.

        Parameters
        ----------
        received:
            Received samples (length >= num_symbols + L - 1, i.e. the full
            convolution output).
        impulse_response:
            Channel impulse response used for the design.
        noise_variance:
            Complex noise variance at the receiver input.
        num_symbols:
            Number of transmitted symbols to recover.
        signal_power:
            Average transmit symbol energy.
        """
        r = np.asarray(received, dtype=np.complex128).reshape(-1)
        h = np.asarray(impulse_response, dtype=np.complex128).reshape(-1)
        taps, delay, bias, residual_variance = self.design(
            impulse_response, noise_variance, signal_power
        )
        # The design estimates s[k - L + 1 + delay] from the window
        # [r[k], ..., r[k + nf - 1]], i.e. symbol n is estimated as
        #   y[n] = sum_i conj(taps[i]) * r[n + (L - 1 - delay) + i].
        # Implemented as a full convolution with the reversed conjugate taps,
        # then sampled at offset n + nf + L - 2 - delay.
        filtered = np.convolve(r, np.conj(taps)[::-1])
        offset = self.num_taps + h.size - 2 - delay
        indices = np.arange(num_symbols) + offset
        if indices[-1] >= filtered.size or indices[0] < 0:
            raise ValueError("received block too short for the requested symbol count")
        raw = filtered[indices]

        bias_abs2 = np.abs(bias) ** 2
        if bias_abs2 < 1e-30:
            # Degenerate design (zero channel) — return unusable, very noisy output.
            return MmseEqualizerOutput(
                symbols=np.zeros(num_symbols, dtype=np.complex128),
                effective_noise_variance=1e30,
                sinr=0.0,
                taps=taps,
            )
        symbols = raw / bias
        effective_noise_variance = residual_variance / bias_abs2
        sinr = float(signal_power * bias_abs2 / max(residual_variance, 1e-30))
        return MmseEqualizerOutput(
            symbols=symbols,
            effective_noise_variance=effective_noise_variance,
            sinr=sinr,
            taps=taps,
        )

    def equalize_batch(
        self,
        received: np.ndarray,
        impulse_responses: np.ndarray,
        noise_variances: np.ndarray,
        num_symbols: int,
        signal_power: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise :meth:`equalize` for a batch of packets.

        The tap design runs as one stacked solve (through the filter cache);
        the filtering itself stays a per-packet ``np.convolve`` because a
        batched shifted-tap accumulation is not bit-identical to the serial
        convolution.

        Returns
        -------
        tuple
            ``(symbols, effective_noise_variance)`` with shapes
            ``(batch, num_symbols)`` and ``(batch,)``.
        """
        r2d = np.asarray(received, dtype=np.complex128)
        h2d = np.asarray(impulse_responses, dtype=np.complex128)
        if r2d.ndim != 2 or h2d.ndim != 2 or r2d.shape[0] != h2d.shape[0]:
            raise ValueError("received and impulse_responses must be matching 2-D batches")
        taps, delay, bias, residual = self.design_batch(
            h2d, noise_variances, signal_power
        )
        batch = r2d.shape[0]
        offset = self.num_taps + h2d.shape[1] - 2 - delay
        indices = np.arange(num_symbols) + offset
        filtered_size = r2d.shape[1] + self.num_taps - 1
        if indices[-1] >= filtered_size or indices[0] < 0:
            raise ValueError("received block too short for the requested symbol count")
        raw = np.empty((batch, num_symbols), dtype=np.complex128)
        conj_taps = np.conj(taps)[:, ::-1]
        for i in range(batch):
            raw[i] = np.convolve(r2d[i], conj_taps[i])[indices]

        bias_abs2 = np.abs(bias) ** 2
        degenerate = bias_abs2 < 1e-30
        if degenerate.any():
            # Degenerate design (zero channel) — unusable, very noisy output.
            safe_bias = np.where(degenerate, 1.0, bias)
            symbols = raw / safe_bias[:, None]
            symbols[degenerate] = 0.0
            effective_noise = np.where(
                degenerate, 1e30, residual / np.where(degenerate, 1.0, bias_abs2)
            )
        else:
            symbols = raw / bias[:, None]
            effective_noise = residual / bias_abs2
        return symbols, effective_noise
