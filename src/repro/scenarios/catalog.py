"""The built-in scenario catalog.

Registers the paper's nine figure scenarios (declared next to their drivers
in :mod:`repro.experiments`) plus compositions the paper never ran — the
point of the declarative layer: every ingredient the repository models
(fading/multipath channels, RAKE vs MMSE equalization, stuck-at vs bit-flip
faults, ECC vs MSB protection, voltage operating points, chase vs IR
combining, float32 LLR datapaths) is one registry entry away from a full
Monte-Carlo sweep with the stock determinism and caching contracts.

Importing this module registers everything; use
:func:`repro.scenarios.registry.get_scenario` /
``python -m repro scenarios ls`` to enumerate.
"""

from __future__ import annotations

from repro.experiments import (
    fig2_bler_vs_harq,
    fig3_cell_failure,
    fig5_yield,
    fig6_throughput_vs_defects,
    fig7_msb_protection,
    fig8_efficiency,
    fig9_bitwidth,
    power_savings,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec, SweepAxis

# --------------------------------------------------------------------------- #
# the paper's figures, in paper order
# --------------------------------------------------------------------------- #
for _module in (
    fig2_bler_vs_harq,
    fig3_cell_failure,
    fig5_yield,
    fig6_throughput_vs_defects,
    fig7_msb_protection,
    fig8_efficiency,
    fig9_bitwidth,
    power_savings,
):
    register_scenario(_module.SCENARIO)


# --------------------------------------------------------------------------- #
# compositions the paper never ran
# --------------------------------------------------------------------------- #
register_scenario(
    ScenarioSpec(
        name="rayleigh-harq",
        title="HARQ failure probability over a flat Rayleigh fading channel",
        summary="single-path Rayleigh fading (no multipath) HARQ failure curves",
        kind="bler",
        channel_profile="SinglePath",
        axes=(SweepAxis("snr_db"),),
    )
)

register_scenario(
    ScenarioSpec(
        name="pedb-rake-defects",
        title="RAKE receiver on ITU-PedB multipath under LLR-storage defects",
        summary="strongly frequency-selective channel + RAKE baseline, defect x SNR grid",
        kind="fault",
        channel_profile="ITU-PedB",
        equalizer="rake",
        axes=(SweepAxis("defect_rate"), SweepAxis("snr_db")),
    )
)

register_scenario(
    ScenarioSpec(
        name="veha-qpsk-defects",
        title="QPSK on ITU-VehA multipath under LLR-storage defects",
        summary="robust low-order modulation on a vehicular channel, defect x SNR grid",
        kind="fault",
        modulation="QPSK",
        channel_profile="ITU-VehA",
        axes=(SweepAxis("defect_rate"), SweepAxis("snr_db")),
    )
)

register_scenario(
    ScenarioSpec(
        name="stuckat-vs-bitflip",
        title="Fault read-out semantics: bit-flip vs stuck-at at 10% defects",
        summary="fault-model axis (bit-flip, stuck-at-0/1/random) over SNR",
        kind="fault",
        defect_rate=0.10,
        axes=(
            SweepAxis(
                "fault_model",
                ("bit-flip", "stuck-at-0", "stuck-at-1", "stuck-at-random"),
            ),
            SweepAxis("snr_db"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="ecc-low-voltage",
        title="Full-ECC protected LLR memory under voltage scaling",
        summary="Hamming-SEC storage swept over supply voltage (defects from Pcell(Vdd))",
        kind="fault",
        protection="ecc",
        snr_db=20.0,
        axes=(SweepAxis("vdd", (0.60, 0.66, 0.70, 0.75, 0.80)),),
    )
)

register_scenario(
    ScenarioSpec(
        name="float32-llr",
        title="float32 end-to-end LLR datapath under defects",
        summary="single-precision link LLRs + float32 decoder kernel, SNR sweep at 1% defects",
        kind="fault",
        llr_dtype="float32",
        decoder_backend="numpy-f32",
        defect_rate=0.01,
        axes=(SweepAxis("snr_db"),),
    )
)

register_scenario(
    ScenarioSpec(
        name="chase-vs-ir",
        title="Chase combining vs incremental redundancy on the defect-free link",
        summary="HARQ combining-scheme axis over SNR (failure probability per transmission)",
        kind="bler",
        axes=(SweepAxis("combining", ("chase", "ir")), SweepAxis("snr_db")),
    )
)


# --------------------------------------------------------------------------- #
# time-correlated fading, clustered defects and transient soft errors (PR 5)
# --------------------------------------------------------------------------- #
# The Jakes Doppler values are deliberately extreme: at the UMTS chip rate a
# smoke-scale packet spans only ~8 us, so bringing the coherence time
# (0.423 / fD) down to the packet duration — the regime the axis is meant to
# probe — needs tens of kHz of Doppler.
register_scenario(
    ScenarioSpec(
        name="jakes-doppler-sweep",
        title="HARQ failure probability under intra-packet Jakes fading",
        summary="time-correlated (Jakes) fading inside each transmission, Doppler x SNR grid",
        kind="bler",
        axes=(
            SweepAxis("fading", ("block", "jakes:4000", "jakes:40000", "jakes:120000")),
            SweepAxis("snr_db"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="jakes-harq-gain",
        title="Defect absorption by HARQ when the channel varies within a packet",
        summary="LLR-storage defect x SNR grid with intra-packet Jakes fading (fD = 40 kHz)",
        kind="fault",
        fading="jakes:40000",
        axes=(SweepAxis("defect_rate"), SweepAxis("snr_db")),
    )
)

register_scenario(
    ScenarioSpec(
        name="clustered-vs-uniform",
        title="Spatial fault correlation: clustered vs uniform defect placement",
        summary="fault-placement axis (uniform bit-flips vs clusters of radius 2 / 6) at 10% defects",
        kind="fault",
        defect_rate=0.10,
        axes=(
            SweepAxis("fault_model", ("bit-flip", "clustered:2", "clustered:6")),
            SweepAxis("snr_db"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="soft-vs-hard-faults",
        title="Transient soft errors vs persistent parametric faults",
        summary="per-read upset rate x persistent defect rate grid at 20 dB",
        kind="fault",
        snr_db=20.0,
        axes=(
            SweepAxis("soft_error_rate", (0.0, 1e-3, 1e-2)),
            SweepAxis("defect_rate"),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="clustered-interleaver-depth",
        title="Interleaver depth against clustered LLR-storage defects",
        summary="channel-interleaver columns axis under radius-4 fault clusters at 10% defects",
        kind="fault",
        fault_model="clustered:4",
        defect_rate=0.10,
        axes=(SweepAxis("interleaver_columns", (6, 30, 90)), SweepAxis("snr_db")),
    )
)
