"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one composable operating mode of the study:
channel profile x equalizer x modulation x memory fault model x protection
scheme x voltage operating point x HARQ settings — plus the sweep axes that
turn the point into a grid.  A spec resolves deterministically to today's
:class:`~repro.link.config.LinkConfig` / fault-map machinery, so every
scenario (the paper's nine figures and any new composition) runs through the
same keyed-SeedSequence sharding as the stock drivers.

Specs are *data*: frozen dataclasses whose non-default fields are hashed
into the cache identity of a scenario run (see
:func:`resolved_scenario_fields`).  Two presentation hooks — ``presenter``
for Monte-Carlo grids and ``analytic`` for closed-form drivers — carry the
figure-specific table construction and never enter the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments.scales import Scale
from repro.harq.combining import CombiningScheme
from repro.link.config import LinkConfig, parse_fading_token
from repro.memory.cells import BitCellType, CELL_6T
from repro.memory.faults import FaultModelSpec
from repro.core.protection import (
    EccProtection,
    FullCellProtection,
    ProtectionScheme,
    msb_protection_scheme,
)

#: Scenario fields a sweep axis (or a ``--set`` override) may target.
#: ``protected_bits`` is sugar for ``protection="msb:<k>"`` so protection
#: depth sweeps read like the paper's figures.
AXIS_FIELDS = (
    "snr_db",
    "defect_rate",
    "vdd",
    "protection",
    "protected_bits",
    "fault_model",
    "soft_error_rate",
    "llr_bits",
    "modulation",
    "channel_profile",
    "fading",
    "combining",
    "max_transmissions",
    "turbo_iterations",
    "llr_max_abs",
    "interleaver_columns",
)

#: Scalar spec fields an override may replace directly.
OVERRIDABLE_FIELDS = AXIS_FIELDS + ("equalizer", "llr_dtype", "decoder_backend")

#: Fields that describe rather than parameterise a scenario — never hashed.
_DESCRIPTIVE_FIELDS = ("name", "title", "summary", "kind", "experiment", "presenter", "analytic")


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension of a scenario grid.

    Parameters
    ----------
    field:
        The scenario field the axis varies (one of :data:`AXIS_FIELDS`).
    values:
        The grid values, or ``None`` to resolve them from the scale preset
        (supported for ``snr_db`` -> ``Scale.snr_points_db`` and
        ``defect_rate`` -> ``Scale.defect_rates``).
    """

    field: str
    values: Optional[Tuple[Any, ...]] = None

    def __post_init__(self) -> None:
        if self.field not in AXIS_FIELDS:
            raise ValueError(
                f"axis field {self.field!r} is not sweepable; choose from {AXIS_FIELDS}"
            )
        if self.values is not None:
            object.__setattr__(self, "values", tuple(self.values))
            if not self.values:
                raise ValueError(f"axis {self.field!r} must have at least one value")

    def resolve_values(self, scale: Scale) -> Tuple[Any, ...]:
        """The axis values, defaulting from the scale preset when unset."""
        if self.values is not None:
            return self.values
        if self.field == "snr_db":
            return tuple(float(s) for s in scale.snr_points_db)
        if self.field == "defect_rate":
            return tuple(float(r) for r in scale.defect_rates)
        raise ValueError(
            f"axis {self.field!r} has no scale-derived default; give explicit values"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: operating point plus sweep axes.

    Parameters
    ----------
    name, title, summary:
        Registry identifier, display title and one-line description.
    kind:
        ``"fault"`` (fault-map grid over dies, the Fig. 6-9 shape),
        ``"bler"`` (defect-free HARQ packet chunks, the Fig. 2 shape) or
        ``"analytical"`` (closed-form driver, no work items).
    experiment:
        Name of the registered experiment whose run identity (and golden
        snapshot) this scenario reproduces when run with no overrides;
        ``None`` for compositions the paper never ran.
    modulation, channel_profile, llr_bits, llr_max_abs, llr_dtype,
    turbo_iterations, max_transmissions, combining, buffer_architecture,
    decoder_backend, fading, interleaver_columns:
        Link-configuration fields; ``None`` keeps the scale/link default.
        ``combining`` takes the :class:`CombiningScheme` tokens ``"chase"``
        / ``"ir"``; ``fading`` takes ``"block"`` (quasi-static, the
        default) or ``"jakes:<doppler_hz>"`` (intra-packet time-correlated
        fading).
    equalizer:
        ``"mmse"`` (default) or ``"rake"``.
    fault_model:
        Fault read-out semantics / placement token (see
        :class:`~repro.memory.faults.FaultModelSpec`): ``"bit-flip"``,
        ``"stuck-at-*"`` or ``"clustered:<r>"``.
    soft_error_rate:
        Per-read transient upset probability per stored cell, composing
        with the persistent fault map (fault-kind scenarios only).
    protection:
        Storage scheme token: ``"none"``, ``"msb:<k>"``, ``"all-8T"``,
        ``"ecc"`` or ``"ecc-ded"``.
    defect_rate:
        Fraction of the fallible LLR-storage cells that are faulty.
    vdd:
        Optional supply-voltage operating point; when set, the defect rate
        is derived from the 6T cell-failure curve at that voltage
        (``Pcell(vdd)``) instead of :attr:`defect_rate`.
    snr_db:
        Fixed receive SNR for grids without an SNR axis.
    axes:
        Sweep axes, outermost first; the cell spawn key is the tuple of
        per-axis indices, so scenario grids shard exactly like the stock
        figure drivers.
    reference_point:
        Prepend a defect-free, unprotected reference cell with spawn key
        ``(0,)`` and shift the (single) axis keys by one — the Fig. 8
        layout.  Requires a custom presenter.
    presenter:
        ``presenter(outcome) -> SweepTable | dict`` building the result
        tables from a
        :class:`~repro.scenarios.engine.ScenarioOutcome`; ``None`` selects
        the generic table builder.
    analytic:
        For ``kind="analytical"``: the driver entry point
        ``analytic(scale, seed, runner=...)``.
    """

    name: str
    title: str
    summary: str
    kind: str = "fault"
    experiment: Optional[str] = None
    # -- link operating mode ------------------------------------------- #
    modulation: Optional[str] = None
    channel_profile: Optional[str] = None
    equalizer: str = "mmse"
    llr_bits: Optional[int] = None
    llr_max_abs: Optional[float] = None
    llr_dtype: Optional[str] = None
    turbo_iterations: Optional[int] = None
    max_transmissions: Optional[int] = None
    combining: Optional[str] = None
    buffer_architecture: Optional[str] = None
    decoder_backend: Optional[str] = None
    fading: Optional[str] = None
    interleaver_columns: Optional[int] = None
    # -- memory fault / protection / operating point -------------------- #
    fault_model: str = "bit-flip"
    soft_error_rate: float = 0.0
    protection: str = "none"
    defect_rate: float = 0.0
    vdd: Optional[float] = None
    snr_db: Optional[float] = None
    # -- sweep structure ------------------------------------------------ #
    axes: Tuple[SweepAxis, ...] = ()
    reference_point: bool = False
    # -- presentation hooks (never part of the identity) ----------------- #
    presenter: Optional[Callable[..., Any]] = None
    analytic: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("fault", "bler", "analytical"):
            raise ValueError(
                f"kind must be 'fault', 'bler' or 'analytical', got {self.kind!r}"
            )
        if self.equalizer not in ("mmse", "rake"):
            raise ValueError(f"equalizer must be 'mmse' or 'rake', got {self.equalizer!r}")
        FaultModelSpec.parse(self.fault_model)  # validates the token
        parse_protection_token(self.protection)
        if self.combining is not None:
            parse_combining(self.combining)
        if self.fading is not None:
            parse_fading_token(self.fading)
        if self.defect_rate < 0:
            raise ValueError("defect_rate must be non-negative")
        if not 0.0 <= self.soft_error_rate <= 1.0:
            raise ValueError("soft_error_rate must be a probability")
        if self.soft_error_rate > 0.0 and self.kind != "fault":
            raise ValueError(
                "soft_error_rate applies to fault-kind scenarios only "
                "(the defect-free BLER path has no memory to upset)"
            )
        object.__setattr__(self, "axes", tuple(self.axes))
        seen = set()
        for axis in self.axes:
            if axis.field in seen:
                raise ValueError(f"duplicate sweep axis {axis.field!r}")
            seen.add(axis.field)
        if self.reference_point and len(self.axes) != 1:
            raise ValueError("reference_point requires exactly one sweep axis")
        if self.kind == "analytical" and self.analytic is None:
            raise ValueError("analytical scenarios need an `analytic` entry point")

    # ------------------------------------------------------------------ #
    def with_updates(self, **kwargs: Any) -> "ScenarioSpec":
        """Copy of the spec with selected fields replaced."""
        return replace(self, **kwargs)

    def with_axis_values(self, **values: Any) -> "ScenarioSpec":
        """Replace the values of the named axes (``None`` keeps the default)."""
        updates = {k: v for k, v in values.items() if v is not None}
        unknown = set(updates) - {axis.field for axis in self.axes}
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no axes {sorted(unknown)}; "
                f"its axes are {[axis.field for axis in self.axes]}"
            )
        axes = tuple(
            replace(axis, values=tuple(updates[axis.field]))
            if axis.field in updates
            else axis
            for axis in self.axes
        )
        return replace(self, axes=axes)

    def apply_override(self, field: str, value: Any) -> "ScenarioSpec":
        """Apply one ``--set field=value`` override.

        A field that names one of this scenario's axes replaces the axis
        values (the value must be a sequence); any other overridable field
        is replaced as a scalar, with ``protected_bits`` translated to the
        matching ``protection`` token.
        """
        if field in {axis.field for axis in self.axes}:
            values = value if isinstance(value, (list, tuple)) else (value,)
            return self.with_axis_values(**{field: tuple(values)})
        if isinstance(value, (list, tuple)):
            raise ValueError(
                f"{field!r} is not an axis of scenario {self.name!r}; "
                "give a single value"
            )
        if field == "protected_bits":
            return replace(self, protection=f"msb:{int(value)}")
        if field not in OVERRIDABLE_FIELDS:
            raise ValueError(
                f"unknown scenario field {field!r}; choose from "
                f"{sorted(set(OVERRIDABLE_FIELDS))}"
            )
        return replace(self, **{field: value})


# --------------------------------------------------------------------------- #
# token resolution
# --------------------------------------------------------------------------- #
def parse_protection_token(token: str) -> Tuple[str, int]:
    """Validate a protection token, returning ``(family, msbs)``."""
    value = str(token).strip().lower()
    if value in ("none", "all-8t", "ecc", "ecc-ded"):
        return value, 0
    if value.startswith("msb:"):
        try:
            msbs = int(value[4:])
        except ValueError:
            raise ValueError(f"bad protection token {token!r}: msb:<k> needs an integer")
        if msbs < 0:
            raise ValueError("protected MSB count must be non-negative")
        return "msb", msbs
    raise ValueError(
        f"unknown protection token {token!r}; use 'none', 'msb:<k>', "
        "'all-8T', 'ecc' or 'ecc-ded'"
    )


def resolve_protection(token: str, bits_per_word: int) -> ProtectionScheme:
    """Build the :class:`ProtectionScheme` a token names, for a word width."""
    family, msbs = parse_protection_token(token)
    if family == "none":
        return msb_protection_scheme(bits_per_word, 0)
    if family == "msb":
        return msb_protection_scheme(bits_per_word, msbs)
    if family == "all-8t":
        return FullCellProtection(bits_per_word=bits_per_word)
    return EccProtection(bits_per_word=bits_per_word, extended=(family == "ecc-ded"))


def parse_combining(token: str) -> CombiningScheme:
    """Resolve a combining-scheme token (``"chase"`` / ``"ir"``)."""
    try:
        return CombiningScheme(str(token).strip().lower())
    except ValueError:
        raise ValueError(
            f"unknown combining scheme {token!r}; use "
            f"{[scheme.value for scheme in CombiningScheme]}"
        ) from None


def voltage_defect_rate(vdd: float, cell: BitCellType = CELL_6T) -> float:
    """The defect rate a supply-voltage operating point implies.

    The worst-case accepted die at voltage *vdd* carries ``Pcell(vdd)`` of
    its fallible (baseline 6T) cells as faults; robust 8T cells are assumed
    reliable over the studied range, matching the hybrid-array acceptance
    criterion of Section 6.
    """
    return float(cell.failure_probability(float(vdd)))


# --------------------------------------------------------------------------- #
# resolution to the link / fault machinery
# --------------------------------------------------------------------------- #
def resolve_link_config(
    spec: ScenarioSpec, scale: Scale, decoder_backend: Optional[str] = None
) -> LinkConfig:
    """The :class:`LinkConfig` one scenario cell operates at.

    ``None``-valued spec fields keep the scale/link defaults, so a scenario
    that overrides nothing resolves to exactly the configuration the stock
    figure drivers build — the property that keeps default figure scenarios
    byte-identical to their golden snapshots.  An explicit
    *decoder_backend* (the CLI flag) wins over the spec's own.
    """
    combining = None if spec.combining is None else parse_combining(spec.combining)
    return scale.link_config(
        modulation=spec.modulation,
        channel_profile=spec.channel_profile,
        llr_bits=spec.llr_bits,
        llr_max_abs=spec.llr_max_abs,
        llr_dtype=spec.llr_dtype,
        turbo_iterations=spec.turbo_iterations,
        max_transmissions=spec.max_transmissions,
        combining=combining,
        buffer_architecture=spec.buffer_architecture,
        decoder_backend=decoder_backend or spec.decoder_backend,
        fading=spec.fading,
        interleaver_columns=spec.interleaver_columns,
    )


def cell_defect_rate(spec: ScenarioSpec) -> float:
    """The defect rate of one cell: explicit, or derived from ``vdd``."""
    if spec.vdd is not None:
        return voltage_defect_rate(spec.vdd)
    return float(spec.defect_rate)


def _non_default_fields(spec: ScenarioSpec) -> Dict[str, Any]:
    """Scalar spec fields differing from the :class:`ScenarioSpec` defaults.

    Descriptive fields, presentation hooks and the sweep structure are
    excluded — this is the single source for both the cache identity and
    the machine-readable listing, so the two can never disagree.
    """
    fields: Dict[str, Any] = {}
    for field in dataclass_fields(ScenarioSpec):
        if field.name in _DESCRIPTIVE_FIELDS or field.name in ("axes", "reference_point"):
            continue
        value = getattr(spec, field.name)
        if value != field.default:
            fields[field.name] = value
    return fields


def resolved_scenario_fields(spec: ScenarioSpec, scale: Scale) -> Dict[str, Any]:
    """The non-default fields that key a scenario run's cache identity.

    Every scalar field differing from the :class:`ScenarioSpec` default is
    recorded, plus the fully resolved axis values (axes define the grid, so
    they always enter the identity).  Descriptive fields and presentation
    hooks are excluded — they cannot change the numbers.
    """
    resolved = _non_default_fields(spec)
    resolved["axes"] = {
        axis.field: list(axis.resolve_values(scale)) for axis in spec.axes
    }
    if spec.reference_point:
        resolved["reference_point"] = True
    return resolved


def scenario_listing(spec: ScenarioSpec) -> Dict[str, Any]:
    """A JSON-able description of one scenario (``repro scenarios ls --json``).

    Axis values are reported literally; axes that default from the scale
    preset are marked ``"scale-default"`` because their values depend on the
    ``--scale`` a run picks.
    """
    return {
        "name": spec.name,
        "kind": spec.kind,
        "title": spec.title,
        "summary": spec.summary,
        "experiment": spec.experiment,
        "axes": [
            {
                "field": axis.field,
                "values": "scale-default" if axis.values is None else list(axis.values),
            }
            for axis in spec.axes
        ],
        "reference_point": spec.reference_point,
        "fields": _non_default_fields(spec),
    }
