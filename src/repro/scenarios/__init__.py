"""Declarative scenario layer: compose channel x fault x protection x voltage.

A :class:`~repro.scenarios.spec.ScenarioSpec` composes the repository's
ingredients — AWGN/fading/multipath channels, RAKE/MMSE equalizers,
bit-flip/stuck-at fault models, MSB/ECC/full-cell protection, the
voltage-dependent 6T failure curve, HARQ combining schemes — into one named
operating point plus sweep axes.  Every scenario (including the paper's nine
figures, which are declared here too) executes through the one sweep-grid
engine (:func:`~repro.scenarios.engine.run_scenario_grid`) and therefore
inherits the keyed-SeedSequence sharding contract: results depend only on
``(scenario, scale, seed)``, never on workers or execution backend.

This is the repository's third name-based registry, next to the decoder
backends (:mod:`repro.phy.turbo.backends`) and the execution backends
(:mod:`repro.runner.backends`).  CLI surface::

    python -m repro scenarios ls [--json]
    python -m repro run scenario <name> [--set axis=v1,v2] [--scale ...]
"""

from repro.scenarios.engine import (
    ScenarioCell,
    ScenarioOutcome,
    default_tables,
    expand_grid,
    run_scenario,
    run_scenario_grid,
)
from repro.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    SweepAxis,
    resolved_scenario_fields,
    voltage_defect_rate,
)

__all__ = [
    "SCENARIOS",
    "ScenarioCell",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SweepAxis",
    "default_tables",
    "expand_grid",
    "get_scenario",
    "register_scenario",
    "resolved_scenario_fields",
    "run_scenario",
    "run_scenario_grid",
    "scenario_names",
    "voltage_defect_rate",
]
