"""The sweep-grid engine every scenario executes through.

:func:`expand_grid` turns a :class:`~repro.scenarios.spec.ScenarioSpec` into
an ordered list of grid cells (cartesian product of its axes, outermost axis
first); :func:`run_scenario_grid` resolves each cell to the existing
link/fault machinery and executes the whole grid through the stock
keyed-SeedSequence sharding:

* ``kind="fault"`` cells become :class:`~repro.runner.tasks.GridPoint`
  entries of :func:`~repro.runner.tasks.run_fault_map_grid` — one work item
  per die, spawn key ``cell_key + (die,)`` — exactly the decomposition the
  Fig. 6-9 drivers have always used.
* ``kind="bler"`` cells become defect-free
  :class:`~repro.runner.tasks.LinkChunkTask` chunks with spawn keys
  ``cell_key + (chunk,)`` — the Fig. 2 decomposition.

Because the spawn keys coincide with the historical drivers', a figure
declared as a scenario grid reproduces its golden snapshot byte for byte,
and any new composition inherits the serial == parallel == distributed
bit-identity contract for free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.fault_simulator import FaultSimulationPoint
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.harq.metrics import HarqStatistics, merge_statistics
from repro.link.config import LinkConfig
from repro.memory.faults import coerce_fault_model
from repro.runner.backends.base import TaskQuarantined
from repro.runner.parallel import ParallelRunner, runner_scope
from repro.runner.tasks import (
    GridPoint,
    LinkChunkTask,
    group_tasks_for_batching,
    resolve_adaptive,
    run_fault_map_grid,
    simulate_link_chunk_batch,
    split_packets,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    cell_defect_rate,
    resolve_link_config,
    resolve_protection,
)
from repro.utils.rng import RngLike, resolve_entropy

#: Runner argument accepted everywhere: an instance, a backend name, or None.
RunnerLike = Union[ParallelRunner, str, None]


@dataclass(frozen=True)
class ScenarioCell:
    """One cell of an expanded scenario grid.

    Attributes
    ----------
    key:
        The cell's spawn-key prefix (per-axis indices; the Fig. 8-style
        reference cell is ``(0,)`` with axis cells shifted by one).
    values:
        Axis field -> value mapping of this cell (empty for the reference
        cell, which instead sets :attr:`is_reference`).
    spec:
        The scenario spec with every axis field replaced by this cell's
        value — the single source the link/fault resolution reads from.
    is_reference:
        Whether this is the prepended defect-free reference cell.
    """

    key: Tuple[int, ...]
    values: Dict[str, Any]
    spec: ScenarioSpec
    is_reference: bool = False


@dataclass
class ScenarioOutcome:
    """Everything a presenter needs to build the result tables.

    Attributes
    ----------
    spec:
        The (override-resolved) scenario that ran.
    scale, entropy:
        Resolved scale preset and integer seed.
    base_config:
        The link configuration of the scenario's fixed fields (cells with a
        configuration axis, e.g. ``llr_bits``, differ per cell).
    cells:
        The expanded grid, in execution order.
    points:
        ``kind="fault"``: one merged
        :class:`~repro.core.fault_simulator.FaultSimulationPoint` per cell.
    statistics:
        ``kind="bler"``: one merged
        :class:`~repro.harq.metrics.HarqStatistics` per cell.
    """

    spec: ScenarioSpec
    scale: Scale
    entropy: int
    base_config: LinkConfig
    cells: List[ScenarioCell]
    points: List[FaultSimulationPoint] = dataclass_field(default_factory=list)
    statistics: List[HarqStatistics] = dataclass_field(default_factory=list)


# --------------------------------------------------------------------------- #
def _apply_cell_value(spec: ScenarioSpec, field: str, value: Any) -> ScenarioSpec:
    """Replace one axis field on a spec (``protected_bits`` is protection sugar)."""
    if field == "protected_bits":
        return replace(spec, protection=f"msb:{int(value)}")
    return replace(spec, **{field: value})


def expand_grid(spec: ScenarioSpec, scale: Scale) -> List[ScenarioCell]:
    """Expand a scenario's axes into its ordered grid cells.

    The cartesian product runs outermost axis first, so a two-axis grid
    ``(A, B)`` enumerates ``(a0,b0), (a0,b1), ..., (a1,b0), ...`` with spawn
    keys ``(i_A, i_B)`` — matching the point-major layout of the stock
    figure drivers.
    """
    if spec.kind == "analytical":
        raise ValueError(f"analytical scenario {spec.name!r} has no grid to expand")
    axis_values = [axis.resolve_values(scale) for axis in spec.axes]
    offset = 1 if spec.reference_point else 0
    cells: List[ScenarioCell] = []
    if spec.reference_point:
        reference = replace(
            spec, protection="none", defect_rate=0.0, vdd=None, soft_error_rate=0.0
        )
        cells.append(
            ScenarioCell(key=(0,), values={}, spec=reference, is_reference=True)
        )
    if not spec.axes:
        if not spec.reference_point:
            cells.append(ScenarioCell(key=(), values={}, spec=spec))
        return cells
    for indices in itertools.product(*(range(len(values)) for values in axis_values)):
        cell_spec = spec
        values: Dict[str, Any] = {}
        for axis, value_list, index in zip(spec.axes, axis_values, indices):
            value = value_list[index]
            cell_spec = _apply_cell_value(cell_spec, axis.field, value)
            values[axis.field] = value
        key = (indices[0] + offset,) + indices[1:] if offset else indices
        cells.append(ScenarioCell(key=key, values=values, spec=cell_spec))
    return cells


def _cell_grid_point(
    cell: ScenarioCell, scale: Scale, decoder_backend: Optional[str]
) -> GridPoint:
    """Resolve one fault-kind cell to a :class:`GridPoint` work description."""
    spec = cell.spec
    config = resolve_link_config(spec, scale, decoder_backend)
    if spec.snr_db is None:
        raise ValueError(
            f"scenario {spec.name!r} needs an SNR: set snr_db or add an snr_db axis"
        )
    return GridPoint(
        key_prefix=cell.key,
        config=config,
        protection=resolve_protection(spec.protection, config.llr_bits),
        snr_db=float(spec.snr_db),
        defect_rate=cell_defect_rate(spec),
        fault_model=coerce_fault_model(spec.fault_model),
        soft_error_rate=float(spec.soft_error_rate),
    )


# --------------------------------------------------------------------------- #
def run_scenario_grid(
    spec: ScenarioSpec,
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    *,
    runner: RunnerLike = None,
    decoder_backend: Optional[str] = None,
    adaptive: Any = None,
    point_store: Any = None,
    journal: Any = None,
) -> ScenarioOutcome:
    """Execute a scenario grid and return its per-cell outcomes.

    This is the one sweep path shared by all nine figure drivers and every
    new scenario: axes expand to cells, cells resolve to the existing work
    items, and the items run through whatever :class:`ParallelRunner` /
    execution backend the caller provides — with results that depend only
    on ``(spec, scale, seed)``, never on the topology.

    *point_store* (a :class:`~repro.runner.point_store.PointStore` or a
    directory path) short-circuits cells whose merged results are already
    in the shared store and persists freshly computed ones.  It is pure
    topology: a warm store changes how much work is scheduled, never a bit
    of the outcome.

    *journal* (a :class:`~repro.runner.journal.SweepJournal`) checkpoints
    every merged cell as it completes and, on ``--resume``, loads replayed
    cells instead of recomputing them.  Also pure topology: the remaining
    cells run with exactly the spawn keys a fresh run would use.
    """
    from repro.runner.point_store import bler_cell_identity, resolve_point_store

    resolved = get_scale(scale)
    entropy = resolve_entropy(seed)
    base_config = resolve_link_config(spec, resolved, decoder_backend)
    cells = expand_grid(spec, resolved)
    store = resolve_point_store(point_store)
    outcome = ScenarioOutcome(
        spec=spec,
        scale=resolved,
        entropy=entropy,
        base_config=base_config,
        cells=cells,
    )

    if spec.kind == "fault":
        grid = [_cell_grid_point(cell, resolved, decoder_backend) for cell in cells]
        with runner_scope(runner) as active_runner:
            outcome.points = run_fault_map_grid(
                active_runner,
                grid,
                num_packets=resolved.num_packets,
                num_fault_maps=resolved.num_fault_maps,
                entropy=entropy,
                use_rake=spec.equalizer == "rake",
                adaptive=resolve_adaptive(adaptive),
                point_store=store,
                journal=journal,
            )
        return outcome

    if spec.kind == "bler":
        if resolve_adaptive(adaptive) is not None:
            raise ValueError("adaptive stopping applies to fault-map scenarios only")
        chunk_sizes = split_packets(resolved.num_packets)
        use_rake = spec.equalizer == "rake"
        merged: List[Optional[HarqStatistics]] = [None] * len(cells)
        pending: List[Tuple[int, Optional[str], Optional[Dict[str, Any]]]] = []
        tasks = []
        for cell_index, cell in enumerate(cells):
            config = resolve_link_config(cell.spec, resolved, decoder_backend)
            if cell.spec.snr_db is None:
                raise ValueError(
                    f"scenario {spec.name!r} needs an SNR: set snr_db or add an "
                    "snr_db axis"
                )
            if journal is not None:
                checkpointed = journal.completed_bler_cell(cell_index)
                if checkpointed is not None:
                    merged[cell_index] = checkpointed
                    continue
            if store is not None:
                identity = bler_cell_identity(
                    config,
                    snr_db=float(cell.spec.snr_db),
                    chunk_sizes=chunk_sizes,
                    entropy=entropy,
                    key=cell.key,
                    use_rake=use_rake,
                )
                digest = store.digest(identity)
                cached = store.load_statistics(digest)
                if cached is not None:
                    merged[cell_index] = cached
                    continue
                pending.append((cell_index, digest, identity))
            else:
                pending.append((cell_index, None, None))
            tasks.extend(
                LinkChunkTask(
                    config=config,
                    snr_db=float(cell.spec.snr_db),
                    num_packets=chunk_packets,
                    entropy=entropy,
                    key=cell.key + (chunk_index,),
                    use_rake=use_rake,
                )
                for chunk_index, chunk_packets in enumerate(chunk_sizes)
            )
        task_groups = group_tasks_for_batching(tasks)
        chunk_statistics: List[Optional[HarqStatistics]] = []
        with runner_scope(runner) as active_runner:
            for group, batch in zip(
                task_groups,
                active_runner.map(
                    simulate_link_chunk_batch, task_groups, allow_quarantined=True
                ),
            ):
                if isinstance(batch, TaskQuarantined):
                    # A quarantined batch loses every chunk it pooled; keep
                    # the cell-major layout intact with per-chunk holes.
                    chunk_statistics.extend([None] * len(group))
                else:
                    chunk_statistics.extend(batch)
        for slot, (cell_index, digest, identity) in enumerate(pending):
            cell_chunks = chunk_statistics[
                slot * len(chunk_sizes) : (slot + 1) * len(chunk_sizes)
            ]
            survivors = [s for s in cell_chunks if s is not None]
            if not survivors:
                raise RuntimeError(
                    f"every chunk of grid cell {cell_index} "
                    f"(key={cells[cell_index].key}) was quarantined; there is "
                    f"nothing left to merge — see the quarantine directory "
                    f"for the tracebacks"
                )
            cell_statistics = merge_statistics(survivors)
            if len(survivors) == len(cell_chunks):
                # Only complete cells reach the persistent layers; a cell
                # with quarantined chunks has different statistics and must
                # never poison the store or the journal.
                if store is not None:
                    store.store_statistics(digest, cell_statistics, identity)
                if journal is not None:
                    journal.record_bler_cell(cell_index, cell_statistics)
            merged[cell_index] = cell_statistics
        outcome.statistics = merged
        return outcome

    raise ValueError(f"scenario kind {spec.kind!r} has no grid execution path")


# --------------------------------------------------------------------------- #
def default_tables(outcome: ScenarioOutcome) -> SweepTable:
    """The generic result table for scenarios without a custom presenter.

    Fault grids get one row per cell with the headline system metrics;
    BLER grids get one row per (cell, HARQ transmission) with the
    conditional decoding-failure probability — the Fig. 2 quantity.
    """
    spec = outcome.spec
    if spec.reference_point:
        raise ValueError(
            f"scenario {spec.name!r} uses a reference point and needs a custom presenter"
        )
    axis_fields = [axis.field for axis in spec.axes]
    metadata = {
        "scenario": spec.name,
        "scale": outcome.scale.name,
        "seed": outcome.entropy,
        "config": outcome.base_config.describe(),
        "equalizer": spec.equalizer,
        "protection": spec.protection,
        "fault_model": spec.fault_model,
    }

    if spec.kind == "fault":
        extra = [
            c
            for c in ("snr_db", "defect_rate", "num_faults")
            if c not in axis_fields
        ]
        table = SweepTable(
            title=spec.title,
            columns=axis_fields + extra + ["throughput", "avg_transmissions", "bler"],
            metadata=metadata,
        )
        for cell, point in zip(outcome.cells, outcome.points):
            row = dict(cell.values)
            row.setdefault("snr_db", point.snr_db)
            row.setdefault("defect_rate", point.defect_rate)
            row.setdefault("num_faults", point.num_faults)
            table.add_row(
                throughput=point.normalized_throughput,
                avg_transmissions=point.average_transmissions,
                bler=point.block_error_rate,
                **{k: v for k, v in row.items() if k in table.columns},
            )
        return table

    table = SweepTable(
        title=spec.title,
        columns=axis_fields + ["transmission", "failure_probability", "attempts"],
        metadata=metadata,
    )
    for cell, statistics in zip(outcome.cells, outcome.statistics):
        probabilities = statistics.failure_probability_per_transmission()
        attempts = statistics.attempts_per_transmission
        for transmission_index, probability in enumerate(probabilities):
            table.add_row(
                transmission=transmission_index + 1,
                failure_probability=float(probability),
                attempts=int(attempts[transmission_index]),
                **cell.values,
            )
    return table


def run_scenario(
    spec: ScenarioSpec,
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    *,
    runner: RunnerLike = None,
    decoder_backend: Optional[str] = None,
    adaptive: Any = None,
    point_store: Any = None,
    journal: Any = None,
) -> Any:
    """Run one scenario end to end and return its tables.

    Analytical scenarios dispatch to their closed-form driver; grid
    scenarios run through :func:`run_scenario_grid` and present through
    their presenter (the figure drivers' table builders) or the generic
    :func:`default_tables`.
    """
    if spec.kind == "analytical":
        if (
            decoder_backend is not None
            or resolve_adaptive(adaptive) is not None
            or point_store is not None
            or journal is not None
        ):
            raise ValueError(
                f"scenario {spec.name!r} is analytical; decoder/adaptive/"
                "point-store/journal flags do not apply"
            )
        return spec.analytic(scale, seed, runner=runner)
    outcome = run_scenario_grid(
        spec,
        scale,
        seed,
        runner=runner,
        decoder_backend=decoder_backend,
        adaptive=adaptive,
        point_store=point_store,
        journal=journal,
    )
    presenter = spec.presenter or default_tables
    return presenter(outcome)
