"""The name-based scenario registry behind ``python -m repro run scenario``.

The repository's third registry, mirroring the decoder-backend registry
(:mod:`repro.phy.turbo.backends`) and the execution-backend registry
(:mod:`repro.runner.backends`): scenarios are selected by name, duplicates
are rejected, and lookups fail with the full menu.  The built-in catalog
(:mod:`repro.scenarios.catalog` — the nine figure scenarios plus the
compositions the paper never ran) is registered lazily on first lookup so
that importing a driver module never drags in every other driver.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import ScenarioSpec

#: All registered scenarios by name, in registration order.
SCENARIOS: Dict[str, ScenarioSpec] = {}

_catalog_loaded = False


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the registry (rejecting duplicate names)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"duplicate scenario name {spec.name!r}")
    SCENARIOS[spec.name] = spec
    return spec


def _ensure_catalog() -> None:
    """Import the built-in catalog once (idempotent, import-cycle safe)."""
    global _catalog_loaded
    if not _catalog_loaded:
        _catalog_loaded = True
        from repro.scenarios import catalog  # noqa: F401  (registers on import)


def scenario_names() -> List[str]:
    """Registered scenario names, in registration (catalog) order."""
    _ensure_catalog()
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name, with a helpful error on typos."""
    _ensure_catalog()
    try:
        return SCENARIOS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from exc
