"""Fig. 3 — memory (cell) failure probability versus supply voltage.

Evaluates the calibrated bit-cell models for the medium-sized 6T cell, the
15 %-upsized 6T cell and the 8T cell over the 0.5-1.1 V range, together with
the voltage dependence of the soft-error rate (3x per 500 mV), reproducing
the orderings and orders of magnitude of the paper's Fig. 3.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.memory.cells import CELL_6T, CELL_6T_UPSIZED, CELL_8T, SoftErrorModel

#: Default supply-voltage grid (V).
DEFAULT_VOLTAGES = tuple(np.round(np.arange(0.5, 1.101, 0.05), 3))


def run(
    scale: Union[str, Scale] = "smoke",
    seed: int = 0,
    voltages: Sequence[float] = DEFAULT_VOLTAGES,
    runner=None,
) -> SweepTable:
    """Run the Fig. 3 experiment and return its data table.

    The *scale*, *seed* and *runner* parameters are accepted for interface
    uniformity (*runner* may be a
    :class:`~repro.runner.parallel.ParallelRunner`, an execution-backend
    name, or ``None``); the cell models are analytical so the result is
    deterministic and cheap — no work items are ever scheduled.
    """
    get_scale(scale)  # validate the name even though the scale is unused
    soft_errors = SoftErrorModel()
    table = SweepTable(
        title="Fig. 3 — cell failure probability vs supply voltage (65 nm, slow-fast corner)",
        columns=["vdd", "p_6t", "p_6t_upsized", "p_8t", "soft_error_rate"],
    )
    for vdd in voltages:
        table.add_row(
            vdd=float(vdd),
            p_6t=CELL_6T.failure_probability(float(vdd)),
            p_6t_upsized=CELL_6T_UPSIZED.failure_probability(float(vdd)),
            p_8t=CELL_8T.failure_probability(float(vdd)),
            soft_error_rate=soft_errors.rate(float(vdd)),
        )
    return table


from repro.scenarios.spec import ScenarioSpec  # noqa: E402  (spec needs `run`)

#: Fig. 3 as a declarative (analytical) scenario.
SCENARIO = ScenarioSpec(
    name="fig3",
    title="Fig. 3 — cell failure probability vs supply voltage",
    summary="calibrated 6T/6T-upsized/8T bit-cell failure curves (analytical)",
    kind="analytical",
    experiment="fig3",
    analytic=run,
)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run().print()
