"""Fig. 2 — decoding-failure probability over HARQ retransmissions.

Reproduces the BLER-after-each-transmission curves for a low, a medium and a
high SNR regime on a defect-free system, showing that HARQ combining rescues
packets that the first transmission cannot deliver ("the LLR combination in
the HARQ unit increases the decoding probability after each retransmission").

The paper's SNR anchors are 3, 11 and 29 dB on its testbed; the same three
regimes are reproduced here relative to this simulator's operating range
(deep outage, mid-range, and first-transmission-success SNR).
"""

from __future__ import annotations

from typing import Union

from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.link.system import HspaLikeLink
from repro.utils.rng import RngLike, child_rngs

#: SNR regimes (dB): low (outage), medium, high (mostly first-transmission success).
SNR_REGIMES_DB = (8.0, 16.0, 26.0)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    snr_regimes_db=SNR_REGIMES_DB,
) -> SweepTable:
    """Run the Fig. 2 experiment and return its data table.

    Parameters
    ----------
    scale:
        Scale preset (or name).
    seed:
        Reproducibility seed.
    snr_regimes_db:
        The three SNR regimes to simulate.

    Returns
    -------
    SweepTable
        One row per (SNR regime, transmission index) with the conditional
        decoding-failure probability after that transmission.
    """
    resolved = get_scale(scale)
    config = resolved.link_config()
    link = HspaLikeLink(config)

    table = SweepTable(
        title="Fig. 2 — decoding failure probability vs HARQ transmission",
        columns=["snr_db", "transmission", "failure_probability", "attempts"],
        metadata={"scale": resolved.name, "config": config.describe()},
    )
    regime_rngs = child_rngs(seed, len(tuple(snr_regimes_db)))
    for snr_db, regime_rng in zip(snr_regimes_db, regime_rngs):
        result = link.simulate_packets(resolved.num_packets, float(snr_db), regime_rng)
        probabilities = result.statistics.failure_probability_per_transmission()
        attempts = result.statistics.attempts_per_transmission
        for transmission_index, probability in enumerate(probabilities):
            table.add_row(
                snr_db=float(snr_db),
                transmission=transmission_index + 1,
                failure_probability=float(probability),
                attempts=int(attempts[transmission_index]),
            )
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run("default").print()
