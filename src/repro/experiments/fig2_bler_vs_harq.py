"""Fig. 2 — decoding-failure probability over HARQ retransmissions.

Reproduces the BLER-after-each-transmission curves for a low, a medium and a
high SNR regime on a defect-free system, showing that HARQ combining rescues
packets that the first transmission cannot deliver ("the LLR combination in
the HARQ unit increases the decoding probability after each retransmission").

The paper's SNR anchors are 3, 11 and 29 dB on its testbed; the same three
regimes are reproduced here relative to this simulator's operating range
(deep outage, mid-range, and first-transmission-success SNR).

The sweep is declared as a ``kind="bler"`` scenario (an SNR-regime axis over
the defect-free link) and executed through the shared
:func:`~repro.scenarios.engine.run_scenario_grid` engine: each regime's
packet budget is sharded into fixed chunks seeded by ``(regime, chunk)``
spawn keys, so results depend on neither the worker count nor the backend.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.results import SweepTable
from repro.experiments.scales import Scale
from repro.runner.parallel import ParallelRunner
from repro.scenarios.engine import ScenarioOutcome, run_scenario_grid
from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.utils.rng import RngLike

#: SNR regimes (dB): low (outage), medium, high (mostly first-transmission success).
SNR_REGIMES_DB = (8.0, 16.0, 26.0)


def _present(outcome: ScenarioOutcome) -> SweepTable:
    """Build the Fig. 2 table from the executed scenario grid."""
    table = SweepTable(
        title="Fig. 2 — decoding failure probability vs HARQ transmission",
        columns=["snr_db", "transmission", "failure_probability", "attempts"],
        metadata={
            "scale": outcome.scale.name,
            "config": outcome.base_config.describe(),
            "seed": outcome.entropy,
        },
    )
    for cell, statistics in zip(outcome.cells, outcome.statistics):
        probabilities = statistics.failure_probability_per_transmission()
        attempts = statistics.attempts_per_transmission
        for transmission_index, probability in enumerate(probabilities):
            table.add_row(
                snr_db=float(cell.values["snr_db"]),
                transmission=transmission_index + 1,
                failure_probability=float(probability),
                attempts=int(attempts[transmission_index]),
            )
    return table


#: Fig. 2 as a declarative scenario: defect-free link, one SNR-regime axis.
SCENARIO = ScenarioSpec(
    name="fig2",
    title="Fig. 2 — decoding failure probability vs HARQ transmission",
    summary="defect-free HARQ failure probability at three SNR regimes",
    kind="bler",
    experiment="fig2",
    axes=(SweepAxis("snr_db", SNR_REGIMES_DB),),
    presenter=_present,
)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    snr_regimes_db=SNR_REGIMES_DB,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    point_store=None,
    journal=None,
) -> SweepTable:
    """Run the Fig. 2 experiment and return its data table.

    Parameters
    ----------
    scale:
        Scale preset (or name).
    seed:
        Reproducibility seed.
    snr_regimes_db:
        The three SNR regimes to simulate.
    runner:
        Execution strategy: a :class:`ParallelRunner`, an execution-backend
        name (``"serial"``, ``"process"``, ``"socket"``) or ``None``
        (in-process serial).

    Returns
    -------
    SweepTable
        One row per (SNR regime, transmission index) with the conditional
        decoding-failure probability after that transmission.
    """
    spec = SCENARIO.with_axis_values(
        snr_db=tuple(float(snr) for snr in snr_regimes_db)
    )
    outcome = run_scenario_grid(
        spec, scale, seed, runner=runner, decoder_backend=decoder_backend,
        point_store=point_store,
        journal=journal,
    )
    return _present(outcome)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run("default").print()
