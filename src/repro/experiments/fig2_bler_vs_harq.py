"""Fig. 2 — decoding-failure probability over HARQ retransmissions.

Reproduces the BLER-after-each-transmission curves for a low, a medium and a
high SNR regime on a defect-free system, showing that HARQ combining rescues
packets that the first transmission cannot deliver ("the LLR combination in
the HARQ unit increases the decoding probability after each retransmission").

The paper's SNR anchors are 3, 11 and 29 dB on its testbed; the same three
regimes are reproduced here relative to this simulator's operating range
(deep outage, mid-range, and first-transmission-success SNR).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.harq.metrics import merge_statistics
from repro.runner.parallel import ParallelRunner, runner_scope
from repro.runner.tasks import (
    LinkChunkTask,
    group_tasks_for_batching,
    simulate_link_chunk_batch,
    split_packets,
)
from repro.utils.rng import RngLike, resolve_entropy

#: SNR regimes (dB): low (outage), medium, high (mostly first-transmission success).
SNR_REGIMES_DB = (8.0, 16.0, 26.0)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    snr_regimes_db=SNR_REGIMES_DB,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
) -> SweepTable:
    """Run the Fig. 2 experiment and return its data table.

    Parameters
    ----------
    scale:
        Scale preset (or name).
    seed:
        Reproducibility seed.
    snr_regimes_db:
        The three SNR regimes to simulate.
    runner:
        Execution strategy: a :class:`ParallelRunner`, an execution-backend
        name (``"serial"``, ``"process"``, ``"socket"``) or ``None``
        (in-process serial).  The packet budget of each regime is sharded
        into fixed chunks seeded by ``(regime, chunk)`` spawn keys, so
        results depend on neither the worker count nor the backend.

    Returns
    -------
    SweepTable
        One row per (SNR regime, transmission index) with the conditional
        decoding-failure probability after that transmission.
    """
    resolved = get_scale(scale)
    config = resolved.link_config(decoder_backend=decoder_backend)
    entropy = resolve_entropy(seed)

    regimes = [float(snr) for snr in snr_regimes_db]
    chunk_sizes = split_packets(resolved.num_packets)
    tasks = [
        LinkChunkTask(
            config=config,
            snr_db=snr_db,
            num_packets=chunk_packets,
            entropy=entropy,
            key=(regime_index, chunk_index),
        )
        for regime_index, snr_db in enumerate(regimes)
        for chunk_index, chunk_packets in enumerate(chunk_sizes)
    ]
    # Chunks are pooled into cross-work-item decode batches; flattening the
    # grouped results restores task order, so the reduction below is
    # unchanged from the per-task path.
    with runner_scope(runner) as active_runner:
        chunk_statistics = [
            statistics
            for batch in active_runner.map(
                simulate_link_chunk_batch, group_tasks_for_batching(tasks)
            )
            for statistics in batch
        ]

    table = SweepTable(
        title="Fig. 2 — decoding failure probability vs HARQ transmission",
        columns=["snr_db", "transmission", "failure_probability", "attempts"],
        metadata={"scale": resolved.name, "config": config.describe(), "seed": entropy},
    )
    for regime_index, snr_db in enumerate(regimes):
        start = regime_index * len(chunk_sizes)
        statistics = merge_statistics(chunk_statistics[start : start + len(chunk_sizes)])
        probabilities = statistics.failure_probability_per_transmission()
        attempts = statistics.attempts_per_transmission
        for transmission_index, probability in enumerate(probabilities):
            table.add_row(
                snr_db=snr_db,
                transmission=transmission_index + 1,
                failure_probability=float(probability),
                attempts=int(attempts[transmission_index]),
            )
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run("default").print()
