"""Fig. 7 — throughput after protecting various numbers of MSBs.

For a high defect rate in the unprotected 6T cells (1 % for Fig. 7(a), 10 %
for Fig. 7(b)), sweeps the number of most-significant LLR bits implemented in
robust 8T cells and measures throughput versus SNR — reproducing the finding
that protecting only 3-4 MSBs is sufficient to keep the throughput loss small
even at a 10 % defect rate.

The sweep is declared as a scenario grid (protection-depth x SNR axes at a
fixed defect rate) and executed through the shared
:func:`~repro.scenarios.engine.run_scenario_grid` engine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.results import SweepTable
from repro.experiments.scales import Scale
from repro.runner.parallel import ParallelRunner
from repro.scenarios.engine import ScenarioOutcome, run_scenario_grid
from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.utils.rng import RngLike

#: Protection depths evaluated (0 = unprotected reference, 10 = all bits).
DEFAULT_PROTECTED_BITS = (0, 2, 3, 4, 10)
#: Defect rates of the two sub-figures.
SUBFIGURE_DEFECT_RATES = {"a": 0.01, "b": 0.10}


def _present(outcome: ScenarioOutcome) -> SweepTable:
    """Build the Fig. 7 table from the executed scenario grid."""
    defect_rate = outcome.spec.defect_rate
    table = SweepTable(
        title=f"Fig. 7 — throughput vs SNR protecting k MSBs (defects {defect_rate:.0%} in 6T cells)",
        columns=["protected_bits", "snr_db", "throughput", "avg_transmissions", "bler"],
        metadata={
            "scale": outcome.scale.name,
            "defect_rate": defect_rate,
            "seed": outcome.entropy,
        },
    )
    for cell, point in zip(outcome.cells, outcome.points):
        table.add_row(
            protected_bits=int(cell.values["protected_bits"]),
            snr_db=point.snr_db,
            throughput=point.normalized_throughput,
            avg_transmissions=point.average_transmissions,
            bler=point.block_error_rate,
        )
    return table


#: Fig. 7(b) as a declarative scenario: 10 % defects in the fallible cells,
#: a protection-depth axis (outer) and a scale-derived SNR axis (inner).
SCENARIO = ScenarioSpec(
    name="fig7",
    title="Fig. 7 — throughput vs SNR protecting k MSBs at 10% defects",
    summary="MSB-protection depth sweep at a 10% defect rate",
    kind="fault",
    experiment="fig7",
    defect_rate=0.10,
    axes=(SweepAxis("protected_bits", DEFAULT_PROTECTED_BITS), SweepAxis("snr_db")),
    presenter=_present,
)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rate: float = 0.10,
    protected_bit_counts: Sequence[int] = DEFAULT_PROTECTED_BITS,
    snr_points_db: Sequence[float] | None = None,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
    point_store=None,
    journal=None,
) -> SweepTable:
    """Run one Fig. 7 sub-figure (defect_rate 0.01 -> (a), 0.10 -> (b)).

    The (protection depth x SNR x fault map) grid is decomposed into one
    work item per die, seeded by its coordinates, so serial and parallel
    runs coincide bit-for-bit.
    """
    spec = SCENARIO.with_updates(defect_rate=float(defect_rate)).with_axis_values(
        protected_bits=tuple(int(c) for c in protected_bit_counts),
        snr_db=None if snr_points_db is None else tuple(float(s) for s in snr_points_db),
    )
    outcome = run_scenario_grid(
        spec, scale, seed, runner=runner, decoder_backend=decoder_backend, adaptive=adaptive,
        point_store=point_store,
        journal=journal,
    )
    return _present(outcome)


def run_both_subfigures(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    runner: Union[ParallelRunner, str, None] = None,
) -> dict:
    """Run Fig. 7(a) (1 % defects) and Fig. 7(b) (10 % defects)."""
    return {
        name: run(scale, seed, defect_rate=rate, runner=runner)
        for name, rate in SUBFIGURE_DEFECT_RATES.items()
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run("default").print()
