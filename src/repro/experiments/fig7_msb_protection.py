"""Fig. 7 — throughput after protecting various numbers of MSBs.

For a high defect rate in the unprotected 6T cells (1 % for Fig. 7(a), 10 %
for Fig. 7(b)), sweeps the number of most-significant LLR bits implemented in
robust 8T cells and measures throughput versus SNR — reproducing the finding
that protecting only 3-4 MSBs is sufficient to keep the throughput loss small
even at a 10 % defect rate.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.fault_simulator import SystemLevelFaultSimulator
from repro.core.protection import MsbProtection, NoProtection
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.utils.rng import RngLike, child_rngs

#: Protection depths evaluated (0 = unprotected reference, 10 = all bits).
DEFAULT_PROTECTED_BITS = (0, 2, 3, 4, 10)
#: Defect rates of the two sub-figures.
SUBFIGURE_DEFECT_RATES = {"a": 0.01, "b": 0.10}


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rate: float = 0.10,
    protected_bit_counts: Sequence[int] = DEFAULT_PROTECTED_BITS,
    snr_points_db: Sequence[float] | None = None,
) -> SweepTable:
    """Run one Fig. 7 sub-figure (defect_rate 0.01 -> (a), 0.10 -> (b))."""
    resolved = get_scale(scale)
    config = resolved.link_config()
    snrs = snr_points_db if snr_points_db is not None else resolved.snr_points_db
    table = SweepTable(
        title=f"Fig. 7 — throughput vs SNR protecting k MSBs (defects {defect_rate:.0%} in 6T cells)",
        columns=["protected_bits", "snr_db", "throughput", "avg_transmissions", "bler"],
        metadata={"scale": resolved.name, "defect_rate": defect_rate},
    )
    count_rngs = child_rngs(seed, len(tuple(protected_bit_counts)))
    for protected_bits, count_rng in zip(protected_bit_counts, count_rngs):
        if protected_bits == 0:
            protection = NoProtection(bits_per_word=config.llr_bits)
        else:
            protection = MsbProtection(
                bits_per_word=config.llr_bits, protected_msbs=int(protected_bits)
            )
        simulator = SystemLevelFaultSimulator(
            config, protection, num_fault_maps=resolved.num_fault_maps
        )
        for point in simulator.snr_sweep(snrs, defect_rate, resolved.num_packets, count_rng):
            table.add_row(
                protected_bits=int(protected_bits),
                snr_db=point.snr_db,
                throughput=point.normalized_throughput,
                avg_transmissions=point.average_transmissions,
                bler=point.block_error_rate,
            )
    return table


def run_both_subfigures(
    scale: Union[str, Scale] = "smoke", seed: RngLike = 2012
) -> dict:
    """Run Fig. 7(a) (1 % defects) and Fig. 7(b) (10 % defects)."""
    return {
        name: run(scale, seed, defect_rate=rate)
        for name, rate in SUBFIGURE_DEFECT_RATES.items()
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run("default").print()
