"""Fig. 7 — throughput after protecting various numbers of MSBs.

For a high defect rate in the unprotected 6T cells (1 % for Fig. 7(a), 10 %
for Fig. 7(b)), sweeps the number of most-significant LLR bits implemented in
robust 8T cells and measures throughput versus SNR — reproducing the finding
that protecting only 3-4 MSBs is sufficient to keep the throughput loss small
even at a 10 % defect rate.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.protection import msb_protection_scheme
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.runner.parallel import ParallelRunner, runner_scope
from repro.runner.tasks import GridPoint, resolve_adaptive, run_fault_map_grid
from repro.utils.rng import RngLike, resolve_entropy

#: Protection depths evaluated (0 = unprotected reference, 10 = all bits).
DEFAULT_PROTECTED_BITS = (0, 2, 3, 4, 10)
#: Defect rates of the two sub-figures.
SUBFIGURE_DEFECT_RATES = {"a": 0.01, "b": 0.10}


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rate: float = 0.10,
    protected_bit_counts: Sequence[int] = DEFAULT_PROTECTED_BITS,
    snr_points_db: Sequence[float] | None = None,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
) -> SweepTable:
    """Run one Fig. 7 sub-figure (defect_rate 0.01 -> (a), 0.10 -> (b)).

    The (protection depth x SNR x fault map) grid is decomposed into one
    work item per die, seeded by its coordinates, so serial and parallel
    runs coincide bit-for-bit.
    """
    resolved = get_scale(scale)
    config = resolved.link_config(decoder_backend=decoder_backend)
    entropy = resolve_entropy(seed)
    snrs = [float(s) for s in (snr_points_db if snr_points_db is not None else resolved.snr_points_db)]
    counts = [int(c) for c in protected_bit_counts]

    grid = [
        GridPoint(
            key_prefix=(count_index, snr_index),
            config=config,
            protection=msb_protection_scheme(config.llr_bits, counts[count_index]),
            snr_db=snrs[snr_index],
            defect_rate=float(defect_rate),
        )
        for count_index in range(len(counts))
        for snr_index in range(len(snrs))
    ]
    with runner_scope(runner) as active_runner:
        merged = run_fault_map_grid(
            active_runner,
            grid,
            num_packets=resolved.num_packets,
            num_fault_maps=resolved.num_fault_maps,
            entropy=entropy,
            adaptive=resolve_adaptive(adaptive),
        )

    table = SweepTable(
        title=f"Fig. 7 — throughput vs SNR protecting k MSBs (defects {defect_rate:.0%} in 6T cells)",
        columns=["protected_bits", "snr_db", "throughput", "avg_transmissions", "bler"],
        metadata={"scale": resolved.name, "defect_rate": defect_rate, "seed": entropy},
    )
    for grid_point, point in zip(grid, merged):
        table.add_row(
            protected_bits=counts[grid_point.key_prefix[0]],
            snr_db=point.snr_db,
            throughput=point.normalized_throughput,
            avg_transmissions=point.average_transmissions,
            bler=point.block_error_rate,
        )
    return table


def run_both_subfigures(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    runner: Union[ParallelRunner, str, None] = None,
) -> dict:
    """Run Fig. 7(a) (1 % defects) and Fig. 7(b) (10 % defects)."""
    return {
        name: run(scale, seed, defect_rate=rate, runner=runner)
        for name, rate in SUBFIGURE_DEFECT_RATES.items()
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run("default").print()
