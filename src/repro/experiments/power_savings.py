"""Section 6.3 — potential for power reduction.

Combines the resilience limits (how many defects the system tolerates with
and without preferential protection), the yield model (what cell failure
probability — hence supply voltage — those defect budgets admit at the 95 %
yield target) and the power model (what running the HARQ LLR memory at that
voltage saves), reproducing the paper's numbers: roughly 0.8 V for the
unprotected array, 0.6 V with 4 protected MSBs, and on the order of 30 %
power savings for the HARQ memory block.
"""

from __future__ import annotations

from typing import Union

from repro.core.protection import MsbProtection, NoProtection
from repro.core.results import SweepTable
from repro.core.voltage import VoltageScalingAnalysis
from repro.experiments.scales import Scale, get_scale

#: Defect rates the system tolerates (outputs of the Fig. 6/7 analyses).
TOLERABLE_DEFECT_RATE_UNPROTECTED = 0.001
TOLERABLE_DEFECT_RATE_PROTECTED = 0.10


def run(
    scale: Union[str, Scale] = "smoke",
    seed: int = 0,
    yield_target: float = 0.95,
    tolerable_defect_rate_unprotected: float = TOLERABLE_DEFECT_RATE_UNPROTECTED,
    tolerable_defect_rate_protected: float = TOLERABLE_DEFECT_RATE_PROTECTED,
    protected_msbs: int = 4,
    runner=None,
) -> SweepTable:
    """Run the Section 6.3 power-saving analysis.

    Returns a table with one row per storage scheme: the minimum admissible
    supply voltage for the given defect budget and yield target, and the
    resulting power relative to (and saving versus) the nominal-voltage 6T
    array.  The analysis is analytical: *seed* and *runner* (a
    :class:`~repro.runner.parallel.ParallelRunner`, an execution-backend
    name, or ``None``) are accepted for interface uniformity only.
    """
    resolved = get_scale(scale)
    config = resolved.link_config()
    schemes = {
        "unprotected-6T": (
            NoProtection(bits_per_word=config.llr_bits),
            tolerable_defect_rate_unprotected,
        ),
        f"msb-{protected_msbs}-protected": (
            MsbProtection(bits_per_word=config.llr_bits, protected_msbs=protected_msbs),
            tolerable_defect_rate_protected,
        ),
    }
    table = SweepTable(
        title="Section 6.3 — supply voltage and power savings of the HARQ LLR memory",
        columns=[
            "scheme",
            "tolerable_defect_rate",
            "min_vdd",
            "pcell_at_min_vdd",
            "relative_power",
            "power_saving",
            "area_overhead",
        ],
        metadata={"scale": resolved.name, "yield_target": yield_target},
    )
    for name, (protection, defect_budget) in schemes.items():
        analysis = VoltageScalingAnalysis(
            config.llr_storage_words, protection, yield_target=yield_target
        )
        point = analysis.min_voltage_for_defect_budget(defect_budget)
        table.add_row(
            scheme=name,
            tolerable_defect_rate=defect_budget,
            min_vdd=point.vdd,
            pcell_at_min_vdd=point.cell_failure_probability,
            relative_power=point.relative_power,
            power_saving=analysis.power_saving_versus_nominal(point.vdd),
            area_overhead=protection.area_overhead(),
        )
    return table


from repro.scenarios.spec import ScenarioSpec  # noqa: E402  (spec needs `run`)

#: Section 6.3 as a declarative (analytical) scenario.
SCENARIO = ScenarioSpec(
    name="power_savings",
    title="Section 6.3 — supply voltage and power savings of the HARQ LLR memory",
    summary="minimum Vdd and power saving per storage scheme (analytical)",
    kind="analytical",
    experiment="power_savings",
    analytic=run,
)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    run().print()
