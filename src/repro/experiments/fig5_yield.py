"""Fig. 5 — yield of a 200 Kb array when accepting up to ``Nf`` faulty cells.

Evaluates Eq. (2) over a grid of accepted-defect counts for several cell
failure probabilities, and reports, for each ``Pcell``, the defect fraction
that must be accepted to reach the 95 % yield target — reproducing the
paper's reading of the figure (about 0.1 % of the cells for
``Pcell = 1e-3``).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.memory.yield_model import acceptance_yield_curve, min_defects_for_yield

#: Array size of the paper's Fig. 5 (200 Kb).
ARRAY_SIZE_CELLS = 200 * 1024
#: Cell failure probabilities plotted in the paper's figure.
DEFAULT_PCELLS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)
#: Yield target annotated in the figure.
YIELD_TARGET = 0.95


def run(
    scale: Union[str, Scale] = "smoke",
    seed: int = 0,
    cell_failure_probabilities: Sequence[float] = DEFAULT_PCELLS,
    array_size: int = ARRAY_SIZE_CELLS,
    yield_target: float = YIELD_TARGET,
    runner=None,
) -> dict:
    """Run the Fig. 5 experiment.

    Returns
    -------
    dict
        ``{"curves": SweepTable, "targets": SweepTable}`` — the yield-vs-Nf
        curves and, per ``Pcell``, the accepted-defect fraction needed to hit
        the yield target.
    """
    # Interface uniformity: the computation is analytical, so *seed* and
    # *runner* (a ParallelRunner, an execution-backend name, or None) are
    # accepted but never used — no work items are scheduled.
    get_scale(scale)
    defect_fractions = np.concatenate(
        [[0.0], np.logspace(-5, -1.3, 25)]
    )
    curves = SweepTable(
        title=f"Fig. 5 — yield of a {array_size} cell array accepting Nf faulty cells",
        columns=["pcell", "accepted_defect_fraction", "accepted_faults", "yield"],
        metadata={"yield_target": yield_target},
    )
    targets = SweepTable(
        title="Fig. 5 — defects to accept for the yield target",
        columns=["pcell", "defects_for_target", "defect_fraction_for_target"],
        metadata={"yield_target": yield_target},
    )
    for pcell in cell_failure_probabilities:
        counts = np.unique((defect_fractions * array_size).astype(np.int64))
        yields = acceptance_yield_curve(float(pcell), array_size, counts)
        for count, y in zip(counts, yields):
            curves.add_row(
                pcell=float(pcell),
                accepted_defect_fraction=count / array_size,
                accepted_faults=int(count),
                **{"yield": float(y)},
            )
        needed = min_defects_for_yield(float(pcell), array_size, yield_target)
        targets.add_row(
            pcell=float(pcell),
            defects_for_target=int(needed),
            defect_fraction_for_target=needed / array_size,
        )
    return {"curves": curves, "targets": targets}


from repro.scenarios.spec import ScenarioSpec  # noqa: E402  (spec needs `run`)

#: Fig. 5 as a declarative (analytical) scenario.
SCENARIO = ScenarioSpec(
    name="fig5",
    title="Fig. 5 — array yield vs accepted defect count",
    summary="yield of a 200 Kb array accepting Nf faulty cells (analytical)",
    kind="analytical",
    experiment="fig5",
    analytic=run,
)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    tables = run()
    tables["targets"].print()
