"""Fig. 6 — throughput (a) and average transmissions (b) under defect rates.

Sweeps the unprotected 6T LLR storage across defect rates (0 %, 0.1 %, 1 %,
10 % of the storage cells) and SNR, reproducing the two headline
observations of Section 5:

* up to ~0.1 % defects the throughput is indistinguishable from the
  defect-free system, and
* beyond the critical rate the corrupted LLRs dominate over channel noise,
  the average number of transmissions climbs and throughput collapses.

The sweep is declared as a scenario grid (defect-rate x SNR axes over the
default link) and executed through the shared
:func:`~repro.scenarios.engine.run_scenario_grid` engine; only the table
construction is figure-specific.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.results import SweepTable
from repro.experiments.scales import Scale
from repro.runner.parallel import ParallelRunner
from repro.scenarios.engine import ScenarioOutcome, run_scenario_grid
from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.utils.rng import RngLike


def _present(outcome: ScenarioOutcome) -> SweepTable:
    """Build the Fig. 6 table from the executed scenario grid."""
    config = outcome.base_config
    protection_name = "unprotected-6T"
    table = SweepTable(
        title="Fig. 6 — throughput and transmissions vs SNR for defect rates (unprotected 6T)",
        columns=["defect_rate", "snr_db", "throughput", "avg_transmissions", "bler"],
        metadata={
            "protection": protection_name,
            "config": config.describe(),
            "num_packets": outcome.scale.num_packets,
            "num_fault_maps": outcome.scale.num_fault_maps,
            "scale": outcome.scale.name,
            "seed": outcome.entropy,
        },
    )
    for cell, point in zip(outcome.cells, outcome.points):
        table.add_row(
            defect_rate=float(cell.values["defect_rate"]),
            snr_db=point.snr_db,
            throughput=point.normalized_throughput,
            avg_transmissions=point.average_transmissions,
            bler=point.block_error_rate,
        )
    return table


#: Fig. 6 as a declarative scenario: the default link, no protection, a
#: defect-rate axis (outer) and an SNR axis (inner), both scale-derived.
SCENARIO = ScenarioSpec(
    name="fig6",
    title="Fig. 6 — throughput and transmissions vs SNR under defect rates",
    summary="unprotected 6T array swept over defect rates and SNR",
    kind="fault",
    experiment="fig6",
    axes=(SweepAxis("defect_rate"), SweepAxis("snr_db")),
    presenter=_present,
)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rates: Sequence[float] | None = None,
    snr_points_db: Sequence[float] | None = None,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
    point_store=None,
    journal=None,
) -> SweepTable:
    """Run the Fig. 6 experiment and return its data table.

    Each row carries both the Fig. 6(a) quantity (normalized throughput) and
    the Fig. 6(b) quantity (average number of transmissions).  The full
    (defect rate x SNR x fault map) grid is decomposed into one work item per
    die, seeded by its ``(rate, snr, map)`` coordinates, so any
    :class:`~repro.runner.parallel.ParallelRunner` worker count — and any
    execution backend (*runner* also accepts a backend name) — reproduces
    the same table bit-for-bit.  *decoder_backend* selects the turbo-decoder
    kernel; *adaptive* (``True`` or an
    :class:`~repro.runner.tasks.AdaptiveStopping`) lets confidently-resolved
    points stop before the full packet budget.
    """
    spec = SCENARIO.with_axis_values(
        defect_rate=None if defect_rates is None else tuple(float(r) for r in defect_rates),
        snr_db=None if snr_points_db is None else tuple(float(s) for s in snr_points_db),
    )
    outcome = run_scenario_grid(
        spec, scale, seed, runner=runner, decoder_backend=decoder_backend, adaptive=adaptive,
        point_store=point_store,
        journal=journal,
    )
    return _present(outcome)


def throughput_requirement_check(
    table: SweepTable, requirement: float = 0.53
) -> SweepTable:
    """For each defect rate, the lowest SNR meeting a throughput requirement.

    The paper's reading of Fig. 6(a): the 64QAM mode must reach a normalized
    throughput of 0.53; the check reports where each defect-rate curve first
    meets it.
    """
    summary = SweepTable(
        title=f"Fig. 6 — lowest SNR meeting throughput >= {requirement}",
        columns=["defect_rate", "snr_meeting_requirement"],
        metadata={"requirement": requirement},
    )
    by_rate: dict = {}
    for row in table.rows:
        by_rate.setdefault(row["defect_rate"], []).append(row)
    for defect_rate, rows in sorted(by_rate.items()):
        meeting = [r["snr_db"] for r in rows if r["throughput"] >= requirement]
        summary.add_row(
            defect_rate=defect_rate,
            snr_meeting_requirement=min(meeting) if meeting else float("nan"),
        )
    return summary


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    data = run("default")
    data.print()
    throughput_requirement_check(data).print()
