"""Fig. 6 — throughput (a) and average transmissions (b) under defect rates.

Sweeps the unprotected 6T LLR storage across defect rates (0 %, 0.1 %, 1 %,
10 % of the storage cells) and SNR, reproducing the two headline
observations of Section 5:

* up to ~0.1 % defects the throughput is indistinguishable from the
  defect-free system, and
* beyond the critical rate the corrupted LLRs dominate over channel noise,
  the average number of transmissions climbs and throughput collapses.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.protection import NoProtection
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.runner.parallel import ParallelRunner, runner_scope
from repro.runner.tasks import GridPoint, resolve_adaptive, run_fault_map_grid
from repro.utils.rng import RngLike, resolve_entropy


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rates: Sequence[float] | None = None,
    snr_points_db: Sequence[float] | None = None,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
) -> SweepTable:
    """Run the Fig. 6 experiment and return its data table.

    Each row carries both the Fig. 6(a) quantity (normalized throughput) and
    the Fig. 6(b) quantity (average number of transmissions).  The full
    (defect rate x SNR x fault map) grid is decomposed into one work item per
    die, seeded by its ``(rate, snr, map)`` coordinates, so any
    :class:`~repro.runner.parallel.ParallelRunner` worker count — and any
    execution backend (*runner* also accepts a backend name) — reproduces
    the same table bit-for-bit.  *decoder_backend* selects the turbo-decoder
    kernel; *adaptive* (``True`` or an
    :class:`~repro.runner.tasks.AdaptiveStopping`) lets confidently-resolved
    points stop before the full packet budget.
    """
    resolved = get_scale(scale)
    config = resolved.link_config(decoder_backend=decoder_backend)
    protection = NoProtection(bits_per_word=config.llr_bits)
    entropy = resolve_entropy(seed)

    rates = [float(r) for r in (defect_rates if defect_rates is not None else resolved.defect_rates)]
    snrs = [float(s) for s in (snr_points_db if snr_points_db is not None else resolved.snr_points_db)]
    grid = [
        GridPoint(
            key_prefix=(rate_index, snr_index),
            config=config,
            protection=protection,
            snr_db=snrs[snr_index],
            defect_rate=rates[rate_index],
        )
        for rate_index in range(len(rates))
        for snr_index in range(len(snrs))
    ]
    with runner_scope(runner) as active_runner:
        merged = run_fault_map_grid(
            active_runner,
            grid,
            num_packets=resolved.num_packets,
            num_fault_maps=resolved.num_fault_maps,
            entropy=entropy,
            adaptive=resolve_adaptive(adaptive),
        )

    table = SweepTable(
        title="Fig. 6 — throughput and transmissions vs SNR for defect rates (unprotected 6T)",
        columns=["defect_rate", "snr_db", "throughput", "avg_transmissions", "bler"],
        metadata={
            "protection": protection.name,
            "config": config.describe(),
            "num_packets": resolved.num_packets,
            "num_fault_maps": resolved.num_fault_maps,
            "scale": resolved.name,
            "seed": entropy,
        },
    )
    for grid_point, point in zip(grid, merged):
        table.add_row(
            defect_rate=grid_point.defect_rate,
            snr_db=point.snr_db,
            throughput=point.normalized_throughput,
            avg_transmissions=point.average_transmissions,
            bler=point.block_error_rate,
        )
    return table


def throughput_requirement_check(
    table: SweepTable, requirement: float = 0.53
) -> SweepTable:
    """For each defect rate, the lowest SNR meeting a throughput requirement.

    The paper's reading of Fig. 6(a): the 64QAM mode must reach a normalized
    throughput of 0.53; the check reports where each defect-rate curve first
    meets it.
    """
    summary = SweepTable(
        title=f"Fig. 6 — lowest SNR meeting throughput >= {requirement}",
        columns=["defect_rate", "snr_meeting_requirement"],
        metadata={"requirement": requirement},
    )
    by_rate: dict = {}
    for row in table.rows:
        by_rate.setdefault(row["defect_rate"], []).append(row)
    for defect_rate, rows in sorted(by_rate.items()):
        meeting = [r["snr_db"] for r in rows if r["throughput"] >= requirement]
        summary.add_row(
            defect_rate=defect_rate,
            snr_meeting_requirement=min(meeting) if meeting else float("nan"),
        )
    return summary


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    data = run("default")
    data.print()
    throughput_requirement_check(data).print()
