"""Fig. 6 — throughput (a) and average transmissions (b) under defect rates.

Sweeps the unprotected 6T LLR storage across defect rates (0 %, 0.1 %, 1 %,
10 % of the storage cells) and SNR, reproducing the two headline
observations of Section 5:

* up to ~0.1 % defects the throughput is indistinguishable from the
  defect-free system, and
* beyond the critical rate the corrupted LLRs dominate over channel noise,
  the average number of transmissions climbs and throughput collapses.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.fault_simulator import SystemLevelFaultSimulator
from repro.core.protection import NoProtection
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.utils.rng import RngLike


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rates: Sequence[float] | None = None,
    snr_points_db: Sequence[float] | None = None,
) -> SweepTable:
    """Run the Fig. 6 experiment and return its data table.

    Each row carries both the Fig. 6(a) quantity (normalized throughput) and
    the Fig. 6(b) quantity (average number of transmissions).
    """
    resolved = get_scale(scale)
    config = resolved.link_config()
    simulator = SystemLevelFaultSimulator(
        config,
        NoProtection(bits_per_word=config.llr_bits),
        num_fault_maps=resolved.num_fault_maps,
    )
    table = simulator.throughput_table(
        snr_points_db if snr_points_db is not None else resolved.snr_points_db,
        defect_rates if defect_rates is not None else resolved.defect_rates,
        num_packets=resolved.num_packets,
        rng=seed,
        title="Fig. 6 — throughput and transmissions vs SNR for defect rates (unprotected 6T)",
    )
    table.metadata["scale"] = resolved.name
    return table


def throughput_requirement_check(
    table: SweepTable, requirement: float = 0.53
) -> SweepTable:
    """For each defect rate, the lowest SNR meeting a throughput requirement.

    The paper's reading of Fig. 6(a): the 64QAM mode must reach a normalized
    throughput of 0.53; the check reports where each defect-rate curve first
    meets it.
    """
    summary = SweepTable(
        title=f"Fig. 6 — lowest SNR meeting throughput >= {requirement}",
        columns=["defect_rate", "snr_meeting_requirement"],
        metadata={"requirement": requirement},
    )
    by_rate: dict = {}
    for row in table.rows:
        by_rate.setdefault(row["defect_rate"], []).append(row)
    for defect_rate, rows in sorted(by_rate.items()):
        meeting = [r["snr_db"] for r in rows if r["throughput"] >= requirement]
        summary.add_row(
            defect_rate=defect_rate,
            snr_meeting_requirement=min(meeting) if meeting else float("nan"),
        )
    return summary


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    data = run("default")
    data.print()
    throughput_requirement_check(data).print()
