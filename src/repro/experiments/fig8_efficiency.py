"""Fig. 8 — protection efficiency (throughput gain per area overhead).

At the SNR where the unprotected system suffers its worst relative throughput
penalty and a 10 % defect rate, sweeps the number of protected MSBs and
reports throughput gain (relative to the defect-free system), hybrid-array
area overhead and their ratio — reproducing the conclusion that protecting
4 bits (~12-13 % overhead with 8T cells) is the optimum and that full ECC is
less efficient.

The sweep is declared as a scenario grid (a protection-depth axis plus the
prepended defect-free reference cell) and executed through the shared
:func:`~repro.scenarios.engine.run_scenario_grid` engine; the efficiency
arithmetic stays in the presenter.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.efficiency import ProtectionEfficiencyAnalysis, ProtectionEfficiencyPoint
from repro.core.results import SweepTable
from repro.experiments.scales import Scale
from repro.runner.parallel import ParallelRunner
from repro.scenarios.engine import ScenarioOutcome, run_scenario_grid
from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.utils.rng import RngLike

#: Protection depths evaluated along the Fig. 8 x-axis.
DEFAULT_PROTECTED_BITS = (1, 2, 3, 4, 6, 8, 10)


def _present(outcome: ScenarioOutcome) -> dict:
    """Build the Fig. 8 tables (sweep, optimum depth, ECC comparison)."""
    config = outcome.base_config
    spec = outcome.spec
    analysis = ProtectionEfficiencyAnalysis(
        config, num_fault_maps=outcome.scale.num_fault_maps
    )
    reference = outcome.points[0].normalized_throughput
    counts = [int(cell.values["protected_bits"]) for cell in outcome.cells[1:]]
    points = []
    for count, merged in zip(counts, outcome.points[1:]):
        overhead = analysis.area_model.hybrid_overhead(config.llr_bits, count)
        gain = merged.normalized_throughput / reference if reference > 0 else float("nan")
        points.append(
            ProtectionEfficiencyPoint(
                protected_bits=count,
                throughput=merged.normalized_throughput,
                throughput_gain=gain,
                area_overhead=overhead,
                efficiency=gain / overhead if overhead > 0 else float("nan"),
            )
        )

    table = SweepTable(
        title=f"Fig. 8 — protection efficiency at {spec.snr_db:.0f} dB, {spec.defect_rate:.0%} defects",
        columns=["protected_bits", "throughput", "throughput_gain", "area_overhead", "efficiency"],
        metadata={
            "scale": outcome.scale.name,
            "snr_db": spec.snr_db,
            "defect_rate": spec.defect_rate,
            "seed": outcome.entropy,
        },
    )
    for point in points:
        table.add_row(
            protected_bits=point.protected_bits,
            throughput=point.throughput,
            throughput_gain=point.throughput_gain,
            area_overhead=point.area_overhead,
            efficiency=point.efficiency,
        )
    return {
        "table": table,
        "optimum_bits": analysis.optimum_protection_depth(points),
        "ecc": analysis.ecc_comparison(),
    }


#: Fig. 8 as a declarative scenario: one protection-depth axis at a fixed
#: (SNR, defect-rate) operating point, plus the defect-free reference cell
#: (spawn key 0; axis cells are keyed 1 + i — the historical layout).
SCENARIO = ScenarioSpec(
    name="fig8",
    title="Fig. 8 — protection efficiency (throughput gain per area overhead)",
    summary="protection-depth efficiency sweep against the defect-free reference",
    kind="fault",
    experiment="fig8",
    snr_db=14.0,
    defect_rate=0.10,
    axes=(SweepAxis("protected_bits", DEFAULT_PROTECTED_BITS),),
    reference_point=True,
    presenter=_present,
)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    snr_db: float = 14.0,
    defect_rate: float = 0.10,
    protected_bit_counts: Sequence[int] = DEFAULT_PROTECTED_BITS,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
    point_store=None,
    journal=None,
) -> dict:
    """Run the Fig. 8 experiment.

    The defect-free reference and every protection depth become independent
    work items (one per fault map), so the whole figure parallelises; the
    efficiency arithmetic stays in the presenter.

    Returns
    -------
    dict
        ``{"table": SweepTable, "optimum_bits": int, "ecc": dict}`` — the
        efficiency sweep, the optimum protection depth it implies, and the
        Section 6.2 ECC-overhead comparison.
    """
    spec = SCENARIO.with_updates(
        snr_db=float(snr_db), defect_rate=float(defect_rate)
    ).with_axis_values(protected_bits=tuple(int(c) for c in protected_bit_counts))
    outcome = run_scenario_grid(
        spec, scale, seed, runner=runner, decoder_backend=decoder_backend, adaptive=adaptive,
        point_store=point_store,
        journal=journal,
    )
    return _present(outcome)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    output = run("default")
    output["table"].print()
    print("optimum protected bits:", output["optimum_bits"])
    print("ECC comparison:", output["ecc"])
