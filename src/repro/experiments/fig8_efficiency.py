"""Fig. 8 — protection efficiency (throughput gain per area overhead).

At the SNR where the unprotected system suffers its worst relative throughput
penalty and a 10 % defect rate, sweeps the number of protected MSBs and
reports throughput gain (relative to the defect-free system), hybrid-array
area overhead and their ratio — reproducing the conclusion that protecting
4 bits (~12-13 % overhead with 8T cells) is the optimum and that full ECC is
less efficient.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.efficiency import ProtectionEfficiencyAnalysis, ProtectionEfficiencyPoint
from repro.core.protection import msb_protection_scheme
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.runner.parallel import ParallelRunner, runner_scope
from repro.runner.tasks import GridPoint, resolve_adaptive, run_fault_map_grid
from repro.utils.rng import RngLike, resolve_entropy

#: Protection depths evaluated along the Fig. 8 x-axis.
DEFAULT_PROTECTED_BITS = (1, 2, 3, 4, 6, 8, 10)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    snr_db: float = 14.0,
    defect_rate: float = 0.10,
    protected_bit_counts: Sequence[int] = DEFAULT_PROTECTED_BITS,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
) -> dict:
    """Run the Fig. 8 experiment.

    The defect-free reference and every protection depth become independent
    work items (one per fault map), so the whole figure parallelises; the
    efficiency arithmetic stays in the driver.

    Returns
    -------
    dict
        ``{"table": SweepTable, "optimum_bits": int, "ecc": dict}`` — the
        efficiency sweep, the optimum protection depth it implies, and the
        Section 6.2 ECC-overhead comparison.
    """
    resolved = get_scale(scale)
    config = resolved.link_config(decoder_backend=decoder_backend)
    analysis = ProtectionEfficiencyAnalysis(config, num_fault_maps=resolved.num_fault_maps)
    entropy = resolve_entropy(seed)
    counts = [int(c) for c in protected_bit_counts]

    # Work item coordinates: 0 is the defect-free reference, 1 + i the i-th
    # protection depth of the sweep.
    grid = [
        GridPoint(
            key_prefix=(0,),
            config=config,
            protection=msb_protection_scheme(config.llr_bits, 0),
            snr_db=float(snr_db),
            defect_rate=0.0,
        )
    ] + [
        GridPoint(
            key_prefix=(1 + count_index,),
            config=config,
            protection=msb_protection_scheme(config.llr_bits, count),
            snr_db=float(snr_db),
            defect_rate=float(defect_rate),
        )
        for count_index, count in enumerate(counts)
    ]
    with runner_scope(runner) as active_runner:
        merged = run_fault_map_grid(
            active_runner,
            grid,
            num_packets=resolved.num_packets,
            num_fault_maps=resolved.num_fault_maps,
            entropy=entropy,
            adaptive=resolve_adaptive(adaptive),
        )
    reference = merged[0].normalized_throughput
    points = []
    for count, outcome in zip(counts, merged[1:]):
        overhead = analysis.area_model.hybrid_overhead(config.llr_bits, count)
        gain = outcome.normalized_throughput / reference if reference > 0 else float("nan")
        points.append(
            ProtectionEfficiencyPoint(
                protected_bits=count,
                throughput=outcome.normalized_throughput,
                throughput_gain=gain,
                area_overhead=overhead,
                efficiency=gain / overhead if overhead > 0 else float("nan"),
            )
        )

    table = SweepTable(
        title=f"Fig. 8 — protection efficiency at {snr_db:.0f} dB, {defect_rate:.0%} defects",
        columns=["protected_bits", "throughput", "throughput_gain", "area_overhead", "efficiency"],
        metadata={
            "scale": resolved.name,
            "snr_db": snr_db,
            "defect_rate": defect_rate,
            "seed": entropy,
        },
    )
    for point in points:
        table.add_row(
            protected_bits=point.protected_bits,
            throughput=point.throughput,
            throughput_gain=point.throughput_gain,
            area_overhead=point.area_overhead,
            efficiency=point.efficiency,
        )
    return {
        "table": table,
        "optimum_bits": analysis.optimum_protection_depth(points),
        "ecc": analysis.ecc_comparison(),
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    output = run("default")
    output["table"].print()
    print("optimum protected bits:", output["optimum_bits"])
    print("ECC comparison:", output["ecc"])
