"""Fig. 9 — throughput under various LLR bit-widths with 10 % defects.

Compares 10-, 11- and 12-bit LLR quantization on the unprotected array at a
10 % defect rate.  Although wider words have less quantization noise, they
enlarge the LLR storage, so at a fixed defect *rate* they accumulate more
faulty cells — reproducing the paper's counter-intuitive result that the
narrower 10-bit quantization delivers the better throughput once circuit
faults are part of the design space.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.bitwidth import BitWidthAnalysis
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.utils.rng import RngLike

#: LLR word widths of the paper's Fig. 9.
DEFAULT_WIDTHS = (10, 11, 12)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rate: float = 0.10,
    llr_widths: Sequence[int] = DEFAULT_WIDTHS,
    snr_points_db: Sequence[float] | None = None,
) -> dict:
    """Run the Fig. 9 experiment.

    Returns
    -------
    dict
        ``{"table": SweepTable, "best_width_per_snr": dict}``.
    """
    resolved = get_scale(scale)
    config = resolved.link_config()
    analysis = BitWidthAnalysis(config, num_fault_maps=resolved.num_fault_maps)
    snrs = snr_points_db if snr_points_db is not None else resolved.snr_points_db
    points = analysis.sweep(llr_widths, snrs, defect_rate, resolved.num_packets, seed)
    table = SweepTable(
        title=f"Fig. 9 — throughput vs LLR bit-width at {defect_rate:.0%} defects (no protection)",
        columns=[
            "llr_bits",
            "snr_db",
            "storage_cells",
            "num_faults",
            "throughput",
            "avg_transmissions",
        ],
        metadata={"defect_rate": defect_rate},
    )
    for point in points:
        table.add_row(
            llr_bits=point.llr_bits,
            snr_db=point.snr_db,
            storage_cells=point.storage_cells,
            num_faults=point.num_faults,
            throughput=point.throughput,
            avg_transmissions=point.average_transmissions,
        )
    table.metadata["scale"] = resolved.name
    return {"table": table, "best_width_per_snr": analysis.best_width_per_snr(points)}


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    output = run("default")
    output["table"].print()
    print("best width per SNR:", output["best_width_per_snr"])
