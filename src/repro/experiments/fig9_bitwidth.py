"""Fig. 9 — throughput under various LLR bit-widths with 10 % defects.

Compares 10-, 11- and 12-bit LLR quantization on the unprotected array at a
10 % defect rate.  Although wider words have less quantization noise, they
enlarge the LLR storage, so at a fixed defect *rate* they accumulate more
faulty cells — reproducing the paper's counter-intuitive result that the
narrower 10-bit quantization delivers the better throughput once circuit
faults are part of the design space.

The sweep is declared as a scenario grid (LLR-width x SNR axes at a fixed
defect rate; each width resolves to its own link configuration, which the
workers memoise per process) and executed through the shared
:func:`~repro.scenarios.engine.run_scenario_grid` engine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.bitwidth import BitWidthAnalysis, BitWidthPoint
from repro.core.results import SweepTable
from repro.experiments.scales import Scale
from repro.runner.parallel import ParallelRunner
from repro.scenarios.engine import ScenarioOutcome, run_scenario_grid
from repro.scenarios.spec import ScenarioSpec, SweepAxis, resolve_link_config
from repro.utils.rng import RngLike

#: LLR word widths of the paper's Fig. 9.
DEFAULT_WIDTHS = (10, 11, 12)


def _present(outcome: ScenarioOutcome) -> dict:
    """Build the Fig. 9 tables from the executed scenario grid."""
    defect_rate = outcome.spec.defect_rate
    analysis = BitWidthAnalysis(
        outcome.base_config, num_fault_maps=outcome.scale.num_fault_maps
    )
    points = []
    for cell, merged in zip(outcome.cells, outcome.points):
        cell_config = resolve_link_config(cell.spec, outcome.scale)
        points.append(
            BitWidthPoint(
                llr_bits=cell_config.llr_bits,
                snr_db=merged.snr_db,
                defect_rate=defect_rate,
                storage_cells=cell_config.llr_storage_cells,
                num_faults=merged.num_faults,
                throughput=merged.normalized_throughput,
                average_transmissions=merged.average_transmissions,
            )
        )

    table = SweepTable(
        title=f"Fig. 9 — throughput vs LLR bit-width at {defect_rate:.0%} defects (no protection)",
        columns=[
            "llr_bits",
            "snr_db",
            "storage_cells",
            "num_faults",
            "throughput",
            "avg_transmissions",
        ],
        metadata={"defect_rate": defect_rate, "seed": outcome.entropy},
    )
    for point in points:
        table.add_row(
            llr_bits=point.llr_bits,
            snr_db=point.snr_db,
            storage_cells=point.storage_cells,
            num_faults=point.num_faults,
            throughput=point.throughput,
            avg_transmissions=point.average_transmissions,
        )
    table.metadata["scale"] = outcome.scale.name
    return {"table": table, "best_width_per_snr": analysis.best_width_per_snr(points)}


#: Fig. 9 as a declarative scenario: an LLR-width axis (outer) and a
#: scale-derived SNR axis (inner) at a 10 % defect rate, no protection.
SCENARIO = ScenarioSpec(
    name="fig9",
    title="Fig. 9 — throughput vs LLR bit-width at 10% defects",
    summary="LLR quantization-width sweep on the unprotected array",
    kind="fault",
    experiment="fig9",
    defect_rate=0.10,
    axes=(SweepAxis("llr_bits", DEFAULT_WIDTHS), SweepAxis("snr_db")),
    presenter=_present,
)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rate: float = 0.10,
    llr_widths: Sequence[int] = DEFAULT_WIDTHS,
    snr_points_db: Sequence[float] | None = None,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
    point_store=None,
    journal=None,
) -> dict:
    """Run the Fig. 9 experiment.

    Every (LLR width, SNR, fault map) combination is an independent work
    item; each width gets its own link configuration, which the workers
    memoise per process.

    Returns
    -------
    dict
        ``{"table": SweepTable, "best_width_per_snr": dict}``.
    """
    spec = SCENARIO.with_updates(defect_rate=float(defect_rate)).with_axis_values(
        llr_bits=tuple(int(w) for w in llr_widths),
        snr_db=None if snr_points_db is None else tuple(float(s) for s in snr_points_db),
    )
    outcome = run_scenario_grid(
        spec, scale, seed, runner=runner, decoder_backend=decoder_backend, adaptive=adaptive,
        point_store=point_store,
        journal=journal,
    )
    return _present(outcome)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    output = run("default")
    output["table"].print()
    print("best width per SNR:", output["best_width_per_snr"])
