"""Fig. 9 — throughput under various LLR bit-widths with 10 % defects.

Compares 10-, 11- and 12-bit LLR quantization on the unprotected array at a
10 % defect rate.  Although wider words have less quantization noise, they
enlarge the LLR storage, so at a fixed defect *rate* they accumulate more
faulty cells — reproducing the paper's counter-intuitive result that the
narrower 10-bit quantization delivers the better throughput once circuit
faults are part of the design space.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.bitwidth import BitWidthAnalysis, BitWidthPoint
from repro.core.protection import NoProtection
from repro.core.results import SweepTable
from repro.experiments.scales import Scale, get_scale
from repro.runner.parallel import ParallelRunner, runner_scope
from repro.runner.tasks import GridPoint, resolve_adaptive, run_fault_map_grid
from repro.utils.rng import RngLike, resolve_entropy

#: LLR word widths of the paper's Fig. 9.
DEFAULT_WIDTHS = (10, 11, 12)


def run(
    scale: Union[str, Scale] = "smoke",
    seed: RngLike = 2012,
    defect_rate: float = 0.10,
    llr_widths: Sequence[int] = DEFAULT_WIDTHS,
    snr_points_db: Sequence[float] | None = None,
    runner: Union[ParallelRunner, str, None] = None,
    decoder_backend: Optional[str] = None,
    adaptive=None,
) -> dict:
    """Run the Fig. 9 experiment.

    Every (LLR width, SNR, fault map) combination is an independent work
    item; each width gets its own link configuration, which the workers
    memoise per process.

    Returns
    -------
    dict
        ``{"table": SweepTable, "best_width_per_snr": dict}``.
    """
    resolved = get_scale(scale)
    base_config = resolved.link_config(decoder_backend=decoder_backend)
    analysis = BitWidthAnalysis(base_config, num_fault_maps=resolved.num_fault_maps)
    entropy = resolve_entropy(seed)
    widths = [int(w) for w in llr_widths]
    snrs = [float(s) for s in (snr_points_db if snr_points_db is not None else resolved.snr_points_db)]

    grid = [
        GridPoint(
            key_prefix=(width_index, snr_index),
            config=base_config.with_updates(llr_bits=widths[width_index]),
            protection=NoProtection(bits_per_word=widths[width_index]),
            snr_db=snrs[snr_index],
            defect_rate=float(defect_rate),
        )
        for width_index in range(len(widths))
        for snr_index in range(len(snrs))
    ]
    with runner_scope(runner) as active_runner:
        merged_points = run_fault_map_grid(
            active_runner,
            grid,
            num_packets=resolved.num_packets,
            num_fault_maps=resolved.num_fault_maps,
            entropy=entropy,
            adaptive=resolve_adaptive(adaptive),
        )

    points = []
    for grid_point, merged in zip(grid, merged_points):
        points.append(
            BitWidthPoint(
                llr_bits=grid_point.config.llr_bits,
                snr_db=merged.snr_db,
                defect_rate=defect_rate,
                storage_cells=grid_point.config.llr_storage_cells,
                num_faults=merged.num_faults,
                throughput=merged.normalized_throughput,
                average_transmissions=merged.average_transmissions,
            )
        )

    table = SweepTable(
        title=f"Fig. 9 — throughput vs LLR bit-width at {defect_rate:.0%} defects (no protection)",
        columns=[
            "llr_bits",
            "snr_db",
            "storage_cells",
            "num_faults",
            "throughput",
            "avg_transmissions",
        ],
        metadata={"defect_rate": defect_rate, "seed": entropy},
    )
    for point in points:
        table.add_row(
            llr_bits=point.llr_bits,
            snr_db=point.snr_db,
            storage_cells=point.storage_cells,
            num_faults=point.num_faults,
            throughput=point.throughput,
            avg_transmissions=point.average_transmissions,
        )
    table.metadata["scale"] = resolved.name
    return {"table": table, "best_width_per_snr": analysis.best_width_per_snr(points)}


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    output = run("default")
    output["table"].print()
    print("best width per SNR:", output["best_width_per_snr"])
