"""Experiment drivers — one per evaluation figure of the paper.

Every driver exposes a ``run(scale=..., seed=..., runner=...)`` function
returning a :class:`~repro.core.results.SweepTable` (or a dict of tables)
with exactly the series the corresponding figure plots.  Drivers decompose
their sweeps into keyed-seed work items executed by a
:class:`~repro.runner.parallel.ParallelRunner` (serial by default; the
``runner`` argument also accepts an execution-backend name such as
``"process"`` or ``"socket"``), so any worker count and any execution
backend reproduce the same numbers; the unified CLI lives at
``python -m repro`` (see :mod:`repro.runner`).  The benchmark harness under
``benchmarks/`` calls these drivers at the ``"smoke"`` scale; the
``"paper"`` scale produces smoother curves for EXPERIMENTS.md.

| Driver                               | Paper figure |
|--------------------------------------|--------------|
| :mod:`repro.experiments.fig2_bler_vs_harq`        | Fig. 2 |
| :mod:`repro.experiments.fig3_cell_failure`        | Fig. 3 |
| :mod:`repro.experiments.fig5_yield`               | Fig. 5 |
| :mod:`repro.experiments.fig6_throughput_vs_defects` | Fig. 6(a)/(b) |
| :mod:`repro.experiments.fig7_msb_protection`      | Fig. 7(a)/(b) |
| :mod:`repro.experiments.fig8_efficiency`          | Fig. 8 |
| :mod:`repro.experiments.fig9_bitwidth`            | Fig. 9 |
| :mod:`repro.experiments.power_savings`            | Section 6.3 numbers |
"""

from repro.experiments.scales import SCALES, Scale, get_scale

__all__ = ["SCALES", "Scale", "get_scale"]
