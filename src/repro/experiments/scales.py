"""Scale presets shared by all experiment drivers.

Monte-Carlo link simulation cost grows with packet size, packet count, SNR
points and HARQ budget; the presets trade smoothness of the curves against
run time without changing any structural parameter of the study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.link.config import LinkConfig


@dataclass(frozen=True)
class Scale:
    """A named simulation scale.

    Attributes
    ----------
    name:
        Preset identifier.
    payload_bits:
        Information bits per packet (before CRC).
    num_packets:
        Monte-Carlo packets per operating point.
    num_fault_maps:
        Independent fault maps (dies) per operating point.
    turbo_iterations:
        Turbo-decoder iterations.
    snr_points_db:
        SNR grid used by the throughput-versus-SNR figures.
    defect_rates:
        Defect-rate grid used by the defect sweeps (fractions of the
        fallible LLR-storage cells).
    """

    name: str
    payload_bits: int
    num_packets: int
    num_fault_maps: int
    turbo_iterations: int
    snr_points_db: Tuple[float, ...]
    defect_rates: Tuple[float, ...]

    def link_config(self, **overrides) -> LinkConfig:
        """Build the default :class:`~repro.link.config.LinkConfig` at this scale.

        ``None``-valued overrides mean "keep the default", so drivers can
        forward optional keywords (e.g. ``decoder_backend``) unconditionally.

        The LLR dtype default is scale-dependent: the smoke scale pins
        ``float64`` (its results are the byte-level golden/identity
        reference), while the larger scales default to ``float32`` — the
        BLER characterisation (``repro bench front-end --bler``) shows the
        single-precision front end is statistically indistinguishable, and
        it halves the LLR bandwidth of the dominant Monte-Carlo runs.  An
        explicit ``llr_dtype`` override always wins.
        """
        config = LinkConfig(
            payload_bits=self.payload_bits,
            crc_bits=16,
            turbo_iterations=self.turbo_iterations,
        )
        overrides = {key: value for key, value in overrides.items() if value is not None}
        if "llr_dtype" not in overrides and self.name != "smoke":
            overrides["llr_dtype"] = "float32"
        if overrides:
            config = config.with_updates(**overrides)
        return config

    def with_updates(self, **kwargs) -> "Scale":
        """Copy of the scale with selected fields replaced."""
        return replace(self, **kwargs)


#: Seconds-level preset used by the test suite and pytest-benchmark runs.
SMOKE = Scale(
    name="smoke",
    payload_bits=120,
    num_packets=8,
    num_fault_maps=2,
    turbo_iterations=4,
    snr_points_db=(8.0, 14.0, 20.0, 26.0),
    defect_rates=(0.0, 0.001, 0.01, 0.10),
)

#: Minutes-level preset with a denser grid for day-to-day exploration.
DEFAULT = Scale(
    name="default",
    payload_bits=296,
    num_packets=32,
    num_fault_maps=2,
    turbo_iterations=5,
    snr_points_db=(6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0, 27.0),
    defect_rates=(0.0, 0.001, 0.01, 0.05, 0.10),
)

#: The preset used to regenerate the numbers recorded in EXPERIMENTS.md.
PAPER = Scale(
    name="paper",
    payload_bits=488,
    num_packets=96,
    num_fault_maps=4,
    turbo_iterations=6,
    snr_points_db=(5.0, 8.0, 11.0, 14.0, 17.0, 20.0, 23.0, 26.0, 29.0),
    defect_rates=(0.0, 0.0001, 0.001, 0.01, 0.05, 0.10),
)

#: Registry of the built-in scales by name.
SCALES: Dict[str, Scale] = {scale.name: scale for scale in (SMOKE, DEFAULT, PAPER)}


def get_scale(scale: "str | Scale") -> Scale:
    """Resolve a scale given by name or passed through unchanged."""
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError as exc:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from exc
