"""Picklable work items executed by :class:`~repro.runner.parallel.ParallelRunner`.

Every task is a frozen dataclass carrying (a) the full simulation
configuration, (b) an integer ``entropy`` (the user-visible experiment seed)
and (c) a ``key`` — the task's coordinates inside its sweep (SNR index,
defect-rate index, fault-map index, chunk index, ...).  The worker derives
its random stream as ``keyed_seed_sequence(entropy, key)``, so the stream is
a pure function of *what* is being simulated, never of *where* (which worker
process) or *when* (in which order) it runs.  That is the whole determinism
contract: serial and parallel executions of the same task list are
bit-identical.

Workers memoise the (expensive to build) link simulator per configuration,
so scheduling many tasks that share a :class:`~repro.link.config.LinkConfig`
costs one construction per worker process, not one per task.  The memo is a
small LRU: long-lived distributed workers (``python -m repro worker``) serve
many runs with many distinct configurations, so an unbounded cache would
grow without limit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fault_simulator import FaultSimulationPoint
from repro.core.protection import ProtectionScheme
from repro.harq.metrics import HarqStatistics, merge_statistics
from repro.link.config import LinkConfig
from repro.memory.faults import FaultModel, FaultModelSpec, coerce_fault_model
from repro.link.system import HspaLikeLink, PacketGroup, simulate_packet_groups
from repro.runner.backends.base import TaskQuarantined
from repro.utils.rng import keyed_seed_sequence

#: Upper bound on memoised link simulators per worker process.  Comfortably
#: above the distinct configurations of any single experiment (Fig. 9 sweeps
#: one configuration per LLR bit-width), so within one run the cache never
#: thrashes — it only evicts across runs on long-lived workers.
LINK_CACHE_MAX_ENTRIES = 16

#: Per-*thread* LRUs of constructed link simulators, keyed by configuration.
#: Thread-local because a simulator is stateful while it runs: a multi-slot
#: worker daemon executes several work items concurrently on a thread pool,
#: and two threads sharing one ``HspaLikeLink`` would race on its internal
#: buffers (corrupting results nondeterministically).  Each slot thread
#: therefore owns its simulators; single-threaded workers (the process pool,
#: serial runs, slots=1 daemons) see exactly the one-cache-per-process
#: behaviour they always had.
_LINK_CACHES = threading.local()


def _link_cache() -> "OrderedDict[Tuple[LinkConfig, bool], HspaLikeLink]":
    """The calling thread's simulator LRU (created on first use)."""
    cache = getattr(_LINK_CACHES, "cache", None)
    if cache is None:
        cache = _LINK_CACHES.cache = OrderedDict()
    return cache


def _cached_link(config: LinkConfig, use_rake: bool = False) -> HspaLikeLink:
    """The thread-local simulator for *config* (LRU-memoised)."""
    cache = _link_cache()
    cache_key = (config, use_rake)
    link = cache.get(cache_key)
    if link is None:
        link = HspaLikeLink(config, use_rake=use_rake)
        cache[cache_key] = link
    else:
        cache.move_to_end(cache_key)
    while len(cache) > LINK_CACHE_MAX_ENTRIES:
        cache.popitem(last=False)
    return link


#: Packets per shard used by the stock experiment decompositions.  Part of
#: the sharding plan (chunk boundaries move per-packet seed streams), so it
#: is a constant of the experiment definition — never derived from the
#: worker count.
DEFAULT_CHUNK_PACKETS = 8

#: Target decode-batch width of the cross-work-item aggregation layer:
#: consecutive tasks are pooled until their packets add up to roughly this
#: many.  Purely a throughput knob — grouping can never change results,
#: because every task keeps its own seed stream and the decoder treats
#: batch rows independently.
DEFAULT_AGGREGATE_PACKETS = 32


def split_packets(num_packets: int, chunk_packets: int = DEFAULT_CHUNK_PACKETS) -> List[int]:
    """Split a packet budget into deterministic shard sizes.

    ``split_packets(20, 8) == [8, 8, 4]``; the plan depends only on the
    budget and the chunk size, so any worker count replays the same shards.
    """
    if num_packets <= 0:
        raise ValueError(f"num_packets must be positive, got {num_packets}")
    if chunk_packets <= 0:
        raise ValueError(f"chunk_packets must be positive, got {chunk_packets}")
    full, remainder = divmod(num_packets, chunk_packets)
    return [chunk_packets] * full + ([remainder] if remainder else [])


# --------------------------------------------------------------------------- #
# fault-free link chunks (Fig. 2 and adaptive BLER estimation)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LinkChunkTask:
    """Simulate a chunk of packets on the defect-free link at one SNR point."""

    config: LinkConfig
    snr_db: float
    num_packets: int
    entropy: int
    key: Tuple[int, ...]
    use_rake: bool = False


def simulate_link_chunk(task: LinkChunkTask) -> HarqStatistics:
    """Run one :class:`LinkChunkTask` and return its aggregate statistics."""
    return simulate_link_chunk_batch((task,))[0]


def simulate_link_chunk_batch(tasks: Sequence[LinkChunkTask]) -> List[HarqStatistics]:
    """Run several link chunks with shared (cross-work-item) decoder calls.

    All tasks must share a link configuration; each keeps its own seed
    stream and SNR point, so the per-task statistics are bit-identical to
    running the tasks one by one — pooling only widens the decode batches.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    link = _require_shared_link(tasks)
    groups = [
        PacketGroup(
            num_packets=task.num_packets,
            snr_db=task.snr_db,
            rng=keyed_seed_sequence(task.entropy, task.key),
        )
        for task in tasks
    ]
    return [result.statistics for result in simulate_packet_groups(link, groups)]


def count_block_errors(task: LinkChunkTask) -> Tuple[int, int]:
    """Run one chunk and return ``(block_errors, packets)`` for adaptive stopping."""
    statistics = simulate_link_chunk(task)
    return statistics.num_packets - statistics.num_successful, statistics.num_packets


def count_block_errors_batched(runner, tasks: Sequence[LinkChunkTask]) -> List[Tuple[int, int]]:
    """Round executor for adaptive BLER runs with cross-chunk decode pooling.

    Drop-in ``map_chunks`` argument for
    :meth:`~repro.runner.parallel.ParallelRunner.run_adaptive_proportion`:
    pools the round's chunks into aggregated decode batches and returns one
    ``(block_errors, packets)`` pair per chunk, in chunk order.
    """
    counts: List[Tuple[int, int]] = []
    groups = group_tasks_for_batching(tasks)
    for statistics_list in runner.map(simulate_link_chunk_batch, groups):
        counts.extend(
            (s.num_packets - s.num_successful, s.num_packets) for s in statistics_list
        )
    return counts


def _require_shared_link(tasks: Sequence) -> HspaLikeLink:
    """The cached link of a task batch, asserting one shared configuration."""
    first = tasks[0]
    for task in tasks[1:]:
        if task.config != first.config or task.use_rake != first.use_rake:
            raise ValueError(
                "aggregated tasks must share one link configuration; "
                "group them with group_tasks_for_batching first"
            )
    return _cached_link(first.config, first.use_rake)


def group_tasks_for_batching(
    tasks: Sequence, aggregate_packets: int = DEFAULT_AGGREGATE_PACKETS
) -> List[Tuple]:
    """Pool consecutive compatible tasks into decode-aggregation groups.

    Consecutive tasks sharing a ``(config, use_rake)`` pair are grouped
    until their packet budgets add up to *aggregate_packets* (each group
    holds at least one task).  Order is preserved, so flattening the
    grouped results reproduces the task-order contract of
    :meth:`~repro.runner.parallel.ParallelRunner.map`.
    """
    if aggregate_packets <= 0:
        raise ValueError(f"aggregate_packets must be positive, got {aggregate_packets}")
    groups: List[Tuple] = []
    current: List = []
    current_packets = 0
    for task in tasks:
        compatible = (
            not current
            or (task.config == current[0].config and task.use_rake == current[0].use_rake)
        )
        if current and (not compatible or current_packets >= aggregate_packets):
            groups.append(tuple(current))
            current, current_packets = [], 0
        current.append(task)
        current_packets += task.num_packets
    if current:
        groups.append(tuple(current))
    return groups


# --------------------------------------------------------------------------- #
# faulty-buffer chunks (Figs. 6-9: one task per fault map / die)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultMapTask:
    """Simulate one fault map (die) at one (SNR, defect-rate) operating point.

    Mirrors one iteration of the fault-map loop in
    :meth:`repro.core.fault_simulator.SystemLevelFaultSimulator.evaluate`:
    draw a worst-case accepted die with exactly ``Nf`` faults in the fallible
    cells, install it in the HARQ soft buffer, and push a packet batch
    through the link.

    ``fault_model`` carries the read-out semantics and the spatial placement
    (a plain :class:`~repro.memory.faults.FaultModel` for the historical
    uniform placement, a :class:`~repro.memory.faults.FaultModelSpec` for
    clustered placement).  A positive ``soft_error_rate`` additionally flips
    each stored cell with that probability on every buffer read (transient
    upsets), drawn from a dedicated child of the task's keyed stream — one
    per packet, so results stay independent of batch composition.
    """

    config: LinkConfig
    protection: ProtectionScheme
    snr_db: float
    defect_rate: float
    num_packets: int
    entropy: int
    key: Tuple[int, ...]
    use_rake: bool = False
    fault_model: "FaultModel | FaultModelSpec" = FaultModel.BIT_FLIP
    soft_error_rate: float = 0.0


@dataclass(frozen=True)
class FaultMapOutcome:
    """Statistics of one simulated die, plus its fault-injection bookkeeping."""

    statistics: HarqStatistics
    num_faults: int
    fallible_cells: int

    @property
    def normalized_throughput(self) -> float:
        """Normalized throughput of this die."""
        return self.statistics.normalized_throughput


def simulate_fault_map(task: FaultMapTask) -> FaultMapOutcome:
    """Run one :class:`FaultMapTask` and return the die's outcome."""
    return simulate_fault_map_batch((task,))[0]


def _fault_map_group(link: HspaLikeLink, task: FaultMapTask) -> Tuple[PacketGroup, int, int]:
    """Build one die's packet group (fault map installed) from its task.

    With soft errors enabled the keyed stream spawns a third child whose
    grandchildren seed one upset stream per packet buffer; with the default
    rate of 0.0 the historical two-way spawn is untouched, so pre-existing
    seeded runs are bit-identical.
    """
    fallible = task.protection.unprotected_cells(task.config.llr_storage_words)
    if task.defect_rate < 0:
        raise ValueError("defect_rate must be non-negative")
    num_faults = int(round(task.defect_rate * fallible))
    seed = keyed_seed_sequence(task.entropy, task.key)
    if task.soft_error_rate > 0.0:
        map_seed, sim_seed, soft_seed = seed.spawn(3)
        soft_seeds = soft_seed.spawn(task.num_packets)
    else:
        map_seed, sim_seed = seed.spawn(2)
        soft_seeds = None
    fault_map = task.protection.make_fault_map(
        task.config.llr_storage_words,
        num_faults,
        rng=np.random.default_rng(map_seed),
        fault_model=task.fault_model,
    )
    ecc = task.protection.ecc

    def buffer_factory(index: int):
        return link.make_buffer(
            fault_map=fault_map,
            ecc=ecc,
            soft_error_rate=task.soft_error_rate,
            soft_error_rng=None if soft_seeds is None else soft_seeds[index],
        )

    group = PacketGroup(
        num_packets=task.num_packets,
        snr_db=task.snr_db,
        rng=sim_seed,
        buffer_factory=buffer_factory,
    )
    return group, num_faults, fallible


def simulate_fault_map_batch(tasks: Sequence[FaultMapTask]) -> List[FaultMapOutcome]:
    """Run several dies' fault-map tasks with shared decoder calls.

    This is the cross-work-item aggregation path of the Fig. 6-9 sweeps:
    each die keeps its own fault map, seed stream and soft buffers, while
    all packets at the same HARQ combining state — across every die in the
    batch — are decoded in one turbo-decoder call.  Per-die outcomes are
    bit-identical to running the tasks one by one.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    link = _require_shared_link(tasks)
    groups: List[PacketGroup] = []
    bookkeeping: List[Tuple[int, int]] = []
    for task in tasks:
        group, num_faults, fallible = _fault_map_group(link, task)
        groups.append(group)
        bookkeeping.append((num_faults, fallible))
    results = simulate_packet_groups(link, groups)
    return [
        FaultMapOutcome(
            statistics=result.statistics, num_faults=num_faults, fallible_cells=fallible
        )
        for result, (num_faults, fallible) in zip(results, bookkeeping)
    ]


def merge_fault_outcomes(
    outcomes: Sequence[FaultMapOutcome],
    *,
    snr_db: float,
    protection: ProtectionScheme,
) -> FaultSimulationPoint:
    """Reduce per-die outcomes into one :class:`FaultSimulationPoint`.

    The reduction matches what
    :meth:`~repro.core.fault_simulator.SystemLevelFaultSimulator.evaluate`
    produces when it runs the same dies serially: packet statistics are
    summed and the per-die throughputs are kept for die-to-die variation.
    """
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("outcomes must not be empty")
    statistics = merge_statistics([o.statistics for o in outcomes])
    num_faults = outcomes[0].num_faults
    fallible = outcomes[0].fallible_cells
    defect_rate = num_faults / fallible if fallible else 0.0
    return FaultSimulationPoint(
        snr_db=float(snr_db),
        num_faults=num_faults,
        defect_rate=defect_rate,
        statistics=statistics,
        per_map_throughput=[o.normalized_throughput for o in outcomes],
        protection_name=protection.name,
    )


@dataclass(frozen=True)
class GridPoint:
    """One operating point of a fault-map sweep grid.

    Attributes
    ----------
    key_prefix:
        The point's coordinates in the sweep (die index is appended).
    config, protection:
        Link configuration and storage scheme evaluated at this point.
    snr_db, defect_rate:
        Operating conditions.
    fault_model:
        Read-out semantics and placement of the injected faults (bit-flip,
        uniformly placed by default, matching the paper's model).
    soft_error_rate:
        Per-read transient upset probability per cell (0.0 disables).
    """

    key_prefix: Tuple[int, ...]
    config: LinkConfig
    protection: ProtectionScheme
    snr_db: float
    defect_rate: float
    fault_model: "FaultModel | FaultModelSpec" = FaultModel.BIT_FLIP
    soft_error_rate: float = 0.0


@dataclass(frozen=True)
class AdaptiveStopping:
    """Configuration of adaptive (early) stopping for fault-map sweeps.

    Each grid point keeps scheduling fixed-size die chunks — in rounds, so
    the stopping decision never depends on the worker count — until its
    block-error proportion is confidently resolved or the packet budget for
    the smallest BLER of interest is spent.  High-SNR points (few or no
    errors) therefore stop after a fraction of the fixed budget.

    Attributes
    ----------
    confidence, relative_error:
        Wilson-interval target: stop once the half-width is at most
        ``relative_error`` times the estimate.
    bler_floor:
        Smallest BLER worth resolving; error-free points stop once the
        :func:`~repro.core.montecarlo.required_packets_for_bler` budget for
        this floor is spent.
    chunks_per_round:
        Dies scheduled per decision round (the deterministic quantum).
    min_trials:
        Soft floor on packets before the confidence test may stop the point.
    max_trials:
        Hard packet ceiling per point; ``None`` uses the scale's fixed
        packet budget, so adaptive mode never simulates more than the
        fixed-schedule sweep at any point.
    """

    confidence: float = 0.95
    relative_error: float = 0.3
    bler_floor: float = 0.05
    chunks_per_round: int = 4
    min_trials: int = 16
    max_trials: Optional[int] = None


def resolve_adaptive(value) -> Optional[AdaptiveStopping]:
    """Normalise a driver's ``adaptive`` keyword.

    Accepts ``None``/``False`` (fixed schedule), ``True`` (defaults) or an
    :class:`AdaptiveStopping` instance.
    """
    if value is None or value is False:
        return None
    if value is True:
        return AdaptiveStopping()
    if isinstance(value, AdaptiveStopping):
        return value
    raise TypeError(
        f"adaptive must be None, a bool or AdaptiveStopping, got {type(value).__name__}"
    )


def _fault_outcome_errors(outcome: FaultMapOutcome) -> Tuple[int, int]:
    """Project one die's outcome to ``(block_errors, packets)``."""
    statistics = outcome.statistics
    return statistics.num_packets - statistics.num_successful, statistics.num_packets


def run_fault_map_grid(
    runner,
    points: Sequence[GridPoint],
    *,
    num_packets: int,
    num_fault_maps: int,
    entropy: int,
    use_rake: bool = False,
    aggregate_packets: int = DEFAULT_AGGREGATE_PACKETS,
    adaptive: Optional[AdaptiveStopping] = None,
    point_store=None,
    journal=None,
) -> List[FaultSimulationPoint]:
    """Evaluate a whole sweep grid and return one merged point per entry.

    This owns the task-order/slicing invariant shared by the Fig. 6-9
    drivers: tasks are laid out point-major (``num_fault_maps`` consecutive
    tasks per grid point) and reduced back in the same order.  Work items
    are pooled into cross-work-item decode batches of roughly
    *aggregate_packets* packets (see :func:`group_tasks_for_batching`) —
    a pure throughput knob that never changes results.

    With *adaptive*, each point instead schedules die chunks in rounds
    until its BLER is confidently resolved (or the budget is spent), so
    high-SNR points stop early.  Adaptive runs simulate a
    schedule-dependent number of dies per point and are therefore a
    distinct experiment identity (drivers expose it as a keyword that is
    hashed into the cache key).

    With *point_store* (a :class:`~repro.runner.point_store.PointStore`),
    every grid point is first looked up by its content digest: known points
    are loaded instead of scheduled — zero work items — and freshly merged
    points are stored for the next coordinator sharing the directory.  The
    store returns exact round-trips, so warm-store results are
    byte-identical to cold ones; like the execution backend, the store is
    topology and never part of any run identity.

    With *journal* (a :class:`~repro.runner.journal.SweepJournal`), every
    freshly merged point is checkpointed as it completes, and points the
    journal already holds (replayed from an interrupted run via
    ``--resume``) are loaded instead of recomputed.  Like the point store,
    the journal is pure topology — the remaining points run with exactly
    the spawn keys a fresh run would use, so resumed output is
    byte-identical.

    Under a runner whose backend quarantines poisoned tasks
    (``--on-task-error=quarantine``), a point that lost *some* dies is
    still merged from the surviving ones — marked tainted, so it is never
    written to the cache, the point store or the journal — and a point
    that lost *every* die raises.  Quarantine changes that point's
    statistics (fewer dies), which is exactly why tainted results never
    reach any persistent store.
    """
    from repro.runner.point_store import fault_point_identity, resolve_point_store

    store = resolve_point_store(point_store)
    points = list(points)
    results: List[Optional[FaultSimulationPoint]] = [None] * len(points)
    pending = list(range(len(points)))
    identities: Dict[int, Tuple[str, dict]] = {}
    if store is not None:
        pending = []
        for index, point in enumerate(points):
            identity = fault_point_identity(
                point,
                num_packets=num_packets,
                num_fault_maps=num_fault_maps,
                entropy=entropy,
                use_rake=use_rake,
                adaptive=adaptive,
            )
            digest = store.digest(identity)
            identities[index] = (digest, identity)
            cached = store.load_fault_point(digest)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

    def finish(
        index: int,
        merged: FaultSimulationPoint,
        *,
        tainted: bool = False,
        checkpoint: bool = True,
    ) -> None:
        if not tainted:
            if store is not None:
                digest, identity = identities[index]
                store.store_fault_point(digest, merged, identity)
            if journal is not None and checkpoint:
                journal.record_fault_point(index, merged)
        results[index] = merged

    if journal is not None:
        still_pending = []
        for index in pending:
            checkpointed = journal.completed_fault_point(index)
            if checkpointed is not None:
                # Replayed from the interrupted run; re-recording it would
                # only duplicate the journal entry.
                finish(index, checkpointed, checkpoint=False)
            else:
                still_pending.append(index)
        pending = still_pending

    if adaptive is not None:
        for index in pending:
            finish(
                index,
                _run_adaptive_point(
                    runner,
                    points[index],
                    num_packets=num_packets,
                    num_fault_maps=num_fault_maps,
                    entropy=entropy,
                    use_rake=use_rake,
                    adaptive=adaptive,
                    aggregate_packets=aggregate_packets,
                    journal=journal,
                    point_index=index,
                ),
            )
        return results

    tasks: List[FaultMapTask] = []
    for index in pending:
        point = points[index]
        tasks.extend(
            fault_map_tasks_for_point(
                point.config,
                point.protection,
                snr_db=point.snr_db,
                defect_rate=point.defect_rate,
                num_packets=num_packets,
                num_fault_maps=num_fault_maps,
                entropy=entropy,
                key_prefix=point.key_prefix,
                use_rake=use_rake,
                fault_model=point.fault_model,
                soft_error_rate=point.soft_error_rate,
            )
        )
    task_groups = group_tasks_for_batching(tasks, aggregate_packets)
    outcomes: List[Optional[FaultMapOutcome]] = []
    for group, group_result in zip(
        task_groups,
        runner.map(simulate_fault_map_batch, task_groups, allow_quarantined=True),
    ):
        if isinstance(group_result, TaskQuarantined):
            # A quarantined *batch* loses every die it pooled; keep the
            # point-major layout intact with per-die holes.
            outcomes.extend([None] * len(group))
        else:
            outcomes.extend(group_result)
    for slot, index in enumerate(pending):
        point_outcomes = outcomes[slot * num_fault_maps : (slot + 1) * num_fault_maps]
        survivors = [o for o in point_outcomes if o is not None]
        if not survivors:
            raise RuntimeError(
                f"every die of grid point {index} "
                f"(key_prefix={points[index].key_prefix}) was quarantined; "
                f"there is nothing left to merge — see the quarantine "
                f"directory for the tracebacks"
            )
        finish(
            index,
            merge_fault_outcomes(
                survivors,
                snr_db=points[index].snr_db,
                protection=points[index].protection,
            ),
            tainted=len(survivors) < len(point_outcomes),
        )
    return results


def _run_adaptive_point(
    runner,
    point: GridPoint,
    *,
    num_packets: int,
    num_fault_maps: int,
    entropy: int,
    use_rake: bool,
    adaptive: AdaptiveStopping,
    aggregate_packets: int = DEFAULT_AGGREGATE_PACKETS,
    journal=None,
    point_index: Optional[int] = None,
) -> FaultSimulationPoint:
    """Adaptively estimate one grid point, one round of die chunks at a time.

    Die ``m`` uses the same spawn key as the fixed schedule
    (``key_prefix + (m,)``), so the first ``num_fault_maps`` dies coincide
    with the fixed sweep's dies; adaptive mode only decides *how many* of
    them (and, for hard points, how many extra dies) to run.  Each round's
    dies are pooled into cross-work-item decode batches exactly like the
    fixed path, and the loop itself is the shared
    :meth:`~repro.runner.parallel.ParallelRunner.run_adaptive_rounds`
    scheduler — which dies run depends only on round membership, so neither
    grouping, nor the worker count, nor the execution backend can change
    the result.

    With a *journal*, every completed round is checkpointed under
    *point_index*, and a resumed run replays those rounds into the
    estimator's ``(errors, trials, num_items)`` state before scheduling
    more — so the stopping decision, the spawn keys of the remaining
    rounds, and hence the merged point are byte-identical to an
    uninterrupted run.  An abandoned (half-executed, never journaled)
    round is simply re-run from its deterministic keys.
    """
    from repro.core.montecarlo import required_packets_for_bler

    packets_per_map = max(1, num_packets // num_fault_maps)
    budget = required_packets_for_bler(adaptive.bler_floor, adaptive.relative_error)
    max_trials = adaptive.max_trials if adaptive.max_trials is not None else num_packets
    min_trials = min(adaptive.min_trials, max_trials)
    trial_ceiling = min(max_trials, budget)

    def schedule_round(num_dies: int, trials: int) -> List[FaultMapTask]:
        # Never schedule past the trial ceiling: a round shrinks to however
        # many dies the remaining budget still covers, so adaptive mode
        # cannot simulate more than the fixed-schedule sweep at any point.
        remaining_dies = -(-(trial_ceiling - trials) // packets_per_map)  # ceil
        round_dies = max(1, min(adaptive.chunks_per_round, remaining_dies))
        return [
            FaultMapTask(
                config=point.config,
                protection=point.protection,
                snr_db=float(point.snr_db),
                defect_rate=float(point.defect_rate),
                num_packets=packets_per_map,
                entropy=entropy,
                key=point.key_prefix + (num_dies + i,),
                use_rake=use_rake,
                fault_model=point.fault_model,
                soft_error_rate=point.soft_error_rate,
            )
            for i in range(round_dies)
        ]

    def execute_round(round_runner, round_tasks):
        groups = group_tasks_for_batching(round_tasks, aggregate_packets)
        for group_outcomes in round_runner.map(simulate_fault_map_batch, groups):
            yield from group_outcomes

    outcomes: List[FaultMapOutcome] = []
    initial = None
    on_round = None
    if journal is not None and point_index is not None:
        errors = trials = num_items = 0
        for round_outcomes in journal.adaptive_rounds(point_index):
            for outcome in round_outcomes:
                outcomes.append(outcome)
                round_errors, round_trials = _fault_outcome_errors(outcome)
                errors += round_errors
                trials += round_trials
            num_items += len(round_outcomes)
        initial = (errors, trials, num_items)

        def on_round(round_results: Sequence[FaultMapOutcome]) -> None:
            journal.record_adaptive_round(point_index, list(round_results))

    runner.run_adaptive_rounds(
        schedule_round,
        execute_round,
        _fault_outcome_errors,
        confidence=adaptive.confidence,
        relative_error=adaptive.relative_error,
        min_trials=min_trials,
        budget=budget,
        max_trials=max_trials,
        on_result=outcomes.append,
        initial=initial,
        on_round=on_round,
    )

    return merge_fault_outcomes(outcomes, snr_db=point.snr_db, protection=point.protection)


def fault_map_tasks_for_point(
    config: LinkConfig,
    protection: ProtectionScheme,
    *,
    snr_db: float,
    defect_rate: float,
    num_packets: int,
    num_fault_maps: int,
    entropy: int,
    key_prefix: Tuple[int, ...],
    use_rake: bool = False,
    fault_model: "FaultModel | FaultModelSpec | str" = FaultModel.BIT_FLIP,
    soft_error_rate: float = 0.0,
) -> List[FaultMapTask]:
    """The standard sharding of one operating point: one task per die.

    Packets are split across dies exactly as the serial fault simulator does
    (``max(1, num_packets // num_fault_maps)`` per die); die ``m`` gets spawn
    key ``key_prefix + (m,)``.
    """
    packets_per_map = max(1, num_packets // num_fault_maps)
    return [
        FaultMapTask(
            config=config,
            protection=protection,
            snr_db=float(snr_db),
            defect_rate=float(defect_rate),
            num_packets=packets_per_map,
            entropy=entropy,
            key=key_prefix + (map_index,),
            use_rake=use_rake,
            fault_model=coerce_fault_model(fault_model),
            soft_error_rate=float(soft_error_rate),
        )
        for map_index in range(num_fault_maps)
    ]
