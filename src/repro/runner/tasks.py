"""Picklable work items executed by :class:`~repro.runner.parallel.ParallelRunner`.

Every task is a frozen dataclass carrying (a) the full simulation
configuration, (b) an integer ``entropy`` (the user-visible experiment seed)
and (c) a ``key`` — the task's coordinates inside its sweep (SNR index,
defect-rate index, fault-map index, chunk index, ...).  The worker derives
its random stream as ``keyed_seed_sequence(entropy, key)``, so the stream is
a pure function of *what* is being simulated, never of *where* (which worker
process) or *when* (in which order) it runs.  That is the whole determinism
contract: serial and parallel executions of the same task list are
bit-identical.

Workers memoise the (expensive to build) link simulator per configuration,
so scheduling many tasks that share a :class:`~repro.link.config.LinkConfig`
costs one construction per worker process, not one per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.fault_simulator import FaultSimulationPoint
from repro.core.protection import ProtectionScheme
from repro.harq.metrics import HarqStatistics, merge_statistics
from repro.link.config import LinkConfig
from repro.link.system import HspaLikeLink
from repro.utils.rng import keyed_seed_sequence

#: Per-process cache of constructed link simulators, keyed by configuration.
_LINK_CACHE: Dict[Tuple[LinkConfig, bool], HspaLikeLink] = {}


def _cached_link(config: LinkConfig, use_rake: bool = False) -> HspaLikeLink:
    """The worker-local simulator for *config* (constructed once per process)."""
    cache_key = (config, use_rake)
    link = _LINK_CACHE.get(cache_key)
    if link is None:
        link = HspaLikeLink(config, use_rake=use_rake)
        _LINK_CACHE[cache_key] = link
    return link


#: Packets per shard used by the stock experiment decompositions.  Part of
#: the sharding plan (chunk boundaries move per-packet seed streams), so it
#: is a constant of the experiment definition — never derived from the
#: worker count.
DEFAULT_CHUNK_PACKETS = 8


def split_packets(num_packets: int, chunk_packets: int = DEFAULT_CHUNK_PACKETS) -> List[int]:
    """Split a packet budget into deterministic shard sizes.

    ``split_packets(20, 8) == [8, 8, 4]``; the plan depends only on the
    budget and the chunk size, so any worker count replays the same shards.
    """
    if num_packets <= 0:
        raise ValueError(f"num_packets must be positive, got {num_packets}")
    if chunk_packets <= 0:
        raise ValueError(f"chunk_packets must be positive, got {chunk_packets}")
    full, remainder = divmod(num_packets, chunk_packets)
    return [chunk_packets] * full + ([remainder] if remainder else [])


# --------------------------------------------------------------------------- #
# fault-free link chunks (Fig. 2 and adaptive BLER estimation)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LinkChunkTask:
    """Simulate a chunk of packets on the defect-free link at one SNR point."""

    config: LinkConfig
    snr_db: float
    num_packets: int
    entropy: int
    key: Tuple[int, ...]
    use_rake: bool = False


def simulate_link_chunk(task: LinkChunkTask) -> HarqStatistics:
    """Run one :class:`LinkChunkTask` and return its aggregate statistics."""
    link = _cached_link(task.config, task.use_rake)
    seed = keyed_seed_sequence(task.entropy, task.key)
    result = link.simulate_packets(task.num_packets, task.snr_db, seed)
    return result.statistics


def count_block_errors(task: LinkChunkTask) -> Tuple[int, int]:
    """Run one chunk and return ``(block_errors, packets)`` for adaptive stopping."""
    statistics = simulate_link_chunk(task)
    return statistics.num_packets - statistics.num_successful, statistics.num_packets


# --------------------------------------------------------------------------- #
# faulty-buffer chunks (Figs. 6-9: one task per fault map / die)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultMapTask:
    """Simulate one fault map (die) at one (SNR, defect-rate) operating point.

    Mirrors one iteration of the fault-map loop in
    :meth:`repro.core.fault_simulator.SystemLevelFaultSimulator.evaluate`:
    draw a worst-case accepted die with exactly ``Nf`` faults in the fallible
    cells, install it in the HARQ soft buffer, and push a packet batch
    through the link.
    """

    config: LinkConfig
    protection: ProtectionScheme
    snr_db: float
    defect_rate: float
    num_packets: int
    entropy: int
    key: Tuple[int, ...]
    use_rake: bool = False


@dataclass(frozen=True)
class FaultMapOutcome:
    """Statistics of one simulated die, plus its fault-injection bookkeeping."""

    statistics: HarqStatistics
    num_faults: int
    fallible_cells: int

    @property
    def normalized_throughput(self) -> float:
        """Normalized throughput of this die."""
        return self.statistics.normalized_throughput


def simulate_fault_map(task: FaultMapTask) -> FaultMapOutcome:
    """Run one :class:`FaultMapTask` and return the die's outcome."""
    link = _cached_link(task.config, task.use_rake)
    fallible = task.protection.unprotected_cells(task.config.llr_storage_words)
    if task.defect_rate < 0:
        raise ValueError("defect_rate must be non-negative")
    num_faults = int(round(task.defect_rate * fallible))
    seed = keyed_seed_sequence(task.entropy, task.key)
    map_seed, sim_seed = seed.spawn(2)
    fault_map = task.protection.make_fault_map(
        task.config.llr_storage_words, num_faults, rng=np.random.default_rng(map_seed)
    )
    ecc = task.protection.ecc

    def buffer_factory(_index: int):
        return link.make_buffer(fault_map=fault_map, ecc=ecc)

    result = link.simulate_packets(
        task.num_packets, task.snr_db, sim_seed, buffer_factory=buffer_factory
    )
    return FaultMapOutcome(
        statistics=result.statistics, num_faults=num_faults, fallible_cells=fallible
    )


def merge_fault_outcomes(
    outcomes: Sequence[FaultMapOutcome],
    *,
    snr_db: float,
    protection: ProtectionScheme,
) -> FaultSimulationPoint:
    """Reduce per-die outcomes into one :class:`FaultSimulationPoint`.

    The reduction matches what
    :meth:`~repro.core.fault_simulator.SystemLevelFaultSimulator.evaluate`
    produces when it runs the same dies serially: packet statistics are
    summed and the per-die throughputs are kept for die-to-die variation.
    """
    outcomes = list(outcomes)
    if not outcomes:
        raise ValueError("outcomes must not be empty")
    statistics = merge_statistics([o.statistics for o in outcomes])
    num_faults = outcomes[0].num_faults
    fallible = outcomes[0].fallible_cells
    defect_rate = num_faults / fallible if fallible else 0.0
    return FaultSimulationPoint(
        snr_db=float(snr_db),
        num_faults=num_faults,
        defect_rate=defect_rate,
        statistics=statistics,
        per_map_throughput=[o.normalized_throughput for o in outcomes],
        protection_name=protection.name,
    )


@dataclass(frozen=True)
class GridPoint:
    """One operating point of a fault-map sweep grid.

    Attributes
    ----------
    key_prefix:
        The point's coordinates in the sweep (die index is appended).
    config, protection:
        Link configuration and storage scheme evaluated at this point.
    snr_db, defect_rate:
        Operating conditions.
    """

    key_prefix: Tuple[int, ...]
    config: LinkConfig
    protection: ProtectionScheme
    snr_db: float
    defect_rate: float


def run_fault_map_grid(
    runner,
    points: Sequence[GridPoint],
    *,
    num_packets: int,
    num_fault_maps: int,
    entropy: int,
    use_rake: bool = False,
) -> List[FaultSimulationPoint]:
    """Evaluate a whole sweep grid and return one merged point per entry.

    This owns the task-order/slicing invariant shared by the Fig. 6-9
    drivers: tasks are laid out point-major (``num_fault_maps`` consecutive
    tasks per grid point), executed in one :meth:`ParallelRunner.map` call,
    and reduced back in the same order.
    """
    tasks: List[FaultMapTask] = []
    for point in points:
        tasks.extend(
            fault_map_tasks_for_point(
                point.config,
                point.protection,
                snr_db=point.snr_db,
                defect_rate=point.defect_rate,
                num_packets=num_packets,
                num_fault_maps=num_fault_maps,
                entropy=entropy,
                key_prefix=point.key_prefix,
                use_rake=use_rake,
            )
        )
    outcomes = runner.map(simulate_fault_map, tasks)
    return [
        merge_fault_outcomes(
            outcomes[index * num_fault_maps : (index + 1) * num_fault_maps],
            snr_db=point.snr_db,
            protection=point.protection,
        )
        for index, point in enumerate(points)
    ]


def fault_map_tasks_for_point(
    config: LinkConfig,
    protection: ProtectionScheme,
    *,
    snr_db: float,
    defect_rate: float,
    num_packets: int,
    num_fault_maps: int,
    entropy: int,
    key_prefix: Tuple[int, ...],
    use_rake: bool = False,
) -> List[FaultMapTask]:
    """The standard sharding of one operating point: one task per die.

    Packets are split across dies exactly as the serial fault simulator does
    (``max(1, num_packets // num_fault_maps)`` per die); die ``m`` gets spawn
    key ``key_prefix + (m,)``.
    """
    packets_per_map = max(1, num_packets // num_fault_maps)
    return [
        FaultMapTask(
            config=config,
            protection=protection,
            snr_db=float(snr_db),
            defect_rate=float(defect_rate),
            num_packets=packets_per_map,
            entropy=entropy,
            key=key_prefix + (map_index,),
            use_rake=use_rake,
        )
        for map_index in range(num_fault_maps)
    ]
